"""Fuzz the density-statistic propagation through random op chains.

Random sparse matrices flow through random chains of transpose, scalar
multiply, negate, add, hadamard, and matrix multiply (the
:mod:`repro.core.ops` wrappers).  After each step the propagated
:class:`~repro.storage.stats.DensityStats` on the result — obtained
without running any count action — is compared against the *actual*
content of the result storage:

* chains of **linear** ops (transpose/scale/negate exact, add union,
  hadamard product) use sound upper bounds: the propagated densities
  must never undershoot the truth, asserted strictly;
* once a **multiply** enters the lineage the contraction rule is an
  estimate, documented never to undershoot the true density of
  uniformly placed inputs by more than
  :data:`~repro.storage.stats.CONTRACTION_SLACK`.

Values are kept strictly positive so sums and products cannot cancel —
the measured density of a result is then exactly its support size.
"""

import math

import numpy as np
import pytest

from repro import SacSession
from repro.core import ops
from repro.engine import TINY_CLUSTER
from repro.storage import stats as density
from repro.storage.stats import CONTRACTION_SLACK

N, TILE = 48, 16
GRID = math.ceil(N / TILE)
TRIALS = 12
CHAIN_LENGTH = 4


def _sparse_input(session, rng):
    d = rng.uniform(0.03, 0.35)
    values = rng.uniform(1, 2, size=(N, N))
    array = np.where(rng.random((N, N)) < d, values, 0.0)
    return session.sparse_tiled(array)


def _true_stats(result):
    """Measured element and *stored-tile* densities of a result."""
    dense = result.to_numpy()
    true_d = np.count_nonzero(dense) / dense.size
    stored = result.tiles.count()
    return true_d, stored / (GRID * GRID)


def _apply_random_op(session, rng, pool):
    """One random step; returns (result, sound) where ``sound`` is True
    while no contraction estimate has entered the lineage."""
    op = rng.choice(["transpose", "scale", "negate", "add", "hadamard", "multiply"])
    a, a_sound = pool[rng.integers(len(pool))]
    b, b_sound = pool[rng.integers(len(pool))]
    if op == "transpose":
        return ops.transpose(session, a), a_sound
    if op == "scale":
        return ops.scale(session, a, float(rng.uniform(1, 3))), a_sound
    if op == "negate":
        return ops.scale(session, a, -1.0), a_sound
    if op == "add":
        return ops.add(session, a, b), a_sound and b_sound
    if op == "hadamard":
        return ops.hadamard(session, a, b), a_sound and b_sound
    return ops.multiply(session, a, b), False


@pytest.mark.parametrize("seed", range(TRIALS))
def test_propagated_stats_bracket_true_density(seed):
    rng = np.random.default_rng(1000 + seed)
    session = SacSession(cluster=TINY_CLUSTER, tile_size=TILE)
    source = _sparse_input(session, rng)
    # The recorded statistics of the source are exact by construction.
    true_d, true_bd = _true_stats(source)
    assert source.stats.density == pytest.approx(true_d)
    assert source.stats.block_density == pytest.approx(true_bd)

    pool = [(source, True), (_sparse_input(session, rng), True)]
    for _step in range(CHAIN_LENGTH):
        result, sound = _apply_random_op(session, rng, pool)
        stats = density.of(result)
        true_d, true_bd = _true_stats(result)
        if sound:
            # Sound upper bounds: never below the truth.
            assert stats.density >= true_d - 1e-9, (
                f"step {_step}: propagated {stats.density} < true {true_d}"
            )
            assert stats.block_density >= true_bd - 1e-9, (
                f"step {_step}: propagated block {stats.block_density} "
                f"< true {true_bd}"
            )
        else:
            # Contraction estimate: documented slack on uniform inputs.
            assert stats.density >= true_d / CONTRACTION_SLACK - 1e-9
            assert stats.block_density >= true_bd / CONTRACTION_SLACK - 1e-9
        pool.append((result, sound))


def test_propagation_runs_no_jobs():
    """Reading stats off a chained result must launch no engine work."""
    rng = np.random.default_rng(7)
    session = SacSession(cluster=TINY_CLUSTER, tile_size=TILE)
    a = _sparse_input(session, rng)
    result = ops.transpose(session, ops.scale(session, a, 2.0))
    before = session.engine.metrics.total.tasks
    stats = density.of(result)
    assert not stats.is_dense
    assert session.engine.metrics.total.tasks == before


def test_chain_keeps_costing_sparse():
    """A transpose result must carry its stats into the next multiply's
    candidate pricing (the chained-query guarantee)."""
    rng = np.random.default_rng(8)
    session = SacSession(cluster=TINY_CLUSTER, tile_size=TILE)
    a = _sparse_input(session, rng)
    at = ops.transpose(session, a)
    compiled = session.compile(
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        A=at, B=at, n=N, m=N,
    )
    assert compiled.plan.estimate is not None
    assert compiled.plan.estimate.densities != "dense"
