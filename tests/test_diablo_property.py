"""Property tests: translated loop programs match direct Python loops."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SacSession
from repro.diablo import run
from repro.engine import TINY_CLUSTER

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

dims = st.integers(min_value=1, max_value=10)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=4)


@SETTINGS
@given(n=dims, m=dims, seed=seeds)
def test_row_sum_loop_matches_python(n, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5, 5, size=(n, m))
    s = session()
    env = run(s, """
        var V: tiled_vector(n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            V[i] += M[i, j]
          end
        end
    """, {"M": s.tiled(a), "n": n, "m": m})

    expected = np.zeros(n)
    for i in range(n):
        for j in range(m):
            expected[i] += a[i, j]
    np.testing.assert_allclose(env["V"].to_numpy(), expected, rtol=1e-9)


@SETTINGS
@given(n=dims, k=dims, m=dims, seed=seeds)
def test_matmul_loop_matches_python(n, k, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-3, 3, size=(n, k))
    b = rng.uniform(-3, 3, size=(k, m))
    s = session()
    env = run(s, """
        var C: tiled(n, m)
        for i = 0, n-1 do
          for kk = 0, l-1 do
            for j = 0, m-1 do
              C[i, j] += A[i, kk] * B[kk, j]
            end
          end
        end
    """, {"A": s.tiled(a), "B": s.tiled(b), "n": n, "l": k, "m": m})
    np.testing.assert_allclose(env["C"].to_numpy(), a @ b, rtol=1e-8, atol=1e-10)


@SETTINGS
@given(n=dims, m=dims, seed=seeds, threshold=st.floats(-5, 5))
def test_conditional_sum_loop_matches_python(n, m, seed, threshold):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5, 5, size=(n, m))
    s = session()
    env = run(s, """
        for i = 0, n-1 do
          for j = 0, m-1 do
            if (M[i, j] > t) total += M[i, j]
          end
        end
    """, {"M": s.tiled(a), "n": n, "m": m, "t": threshold})

    expected = 0.0
    for i in range(n):
        for j in range(m):
            if a[i, j] > threshold:
                expected += a[i, j]
    assert np.isclose(env["total"], expected, rtol=1e-9, atol=1e-12)


@SETTINGS
@given(n=dims, m=dims, seed=seeds)
def test_scale_assignment_loop_matches_python(n, m, seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5, 5, size=(n, m))
    s = session()
    env = run(s, """
        var S: tiled(n, m)
        for i = 0, n-1 do
          for j = 0, m-1 do
            S[i, j] = 2.0 * M[i, j] + 1.0
          end
        end
    """, {"M": s.tiled(a), "n": n, "m": m})
    np.testing.assert_allclose(env["S"].to_numpy(), 2 * a + 1, rtol=1e-12)
