"""Property-based fuzzing of the out-of-core spill tier.

Hypothesis drives random chains of matrix operations (add, multiply,
transpose, hadamard) over dense and block-sparse inputs, executed under
a randomly drawn memory cap.  Every capped run must match the uncapped
oracle byte-for-byte, and the spill counters must stay internally
consistent: each restore consumes a spill object (``restored_bytes <=
spilled_bytes``), resident bytes never go negative, and with no cap the
tier does not exist at all.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import SacSession  # noqa: E402
from repro.engine import TINY_CLUSTER  # noqa: E402

N = 20  # square matrices keep every op in the chain shape-compatible
TILE = 10

QUERIES = {
    "add": (
        "tiled(n,m)[ ((i,j), a + b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
        " ii == i, jj == j ]"
    ),
    "multiply": (
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
        " kk == k, let v = a*b, group by (i,j) ]"
    ),
    "transpose": "tiled(m,n)[ ((j,i), a) | ((i,j),a) <- A ]",
    "hadamard": (
        "tiled(n,m)[ ((i,j), a * b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
        " ii == i, jj == j ]"
    ),
}


def _make_input(seed: int, sparse: bool) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(size=(N, N))
    if sparse:
        # Zero out a block pattern so the sparse builder actually drops
        # tiles (block sparsity, the engine's unit of skipping).
        for bi in range(0, N, TILE):
            for bj in range(0, N, TILE):
                if rng.random() < 0.5:
                    matrix[bi:bi + TILE, bj:bj + TILE] = 0.0
    return matrix


def _run_chain(matrix: np.ndarray, ops, sparse: bool, memory_limit):
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=TILE, adaptive=False,
        memory_limit=memory_limit,
    )
    try:
        bind = session.sparse_tiled if sparse else session.tiled
        base = bind(matrix)
        current = base
        for op in ops:
            current = session.run(QUERIES[op], A=current, B=base, n=N, m=N)
        result = np.asarray(current.to_numpy())
        total = session.engine.metrics.total
        resident = session.engine.block_manager.cached_bytes
        return result, total, resident
    finally:
        session.engine.close()


@given(
    ops=st.lists(
        st.sampled_from(sorted(QUERIES)), min_size=1, max_size=3
    ),
    cap=st.integers(min_value=1024, max_value=16384),
    sparse=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=15, deadline=None)
def test_random_chains_under_random_caps_match_uncapped_oracle(
    ops, cap, sparse, seed
):
    matrix = _make_input(seed, sparse)
    capped_result, capped, capped_resident = _run_chain(
        matrix, ops, sparse, memory_limit=cap
    )
    oracle_result, oracle, _ = _run_chain(
        matrix, ops, sparse, memory_limit=None
    )

    np.testing.assert_array_equal(capped_result, oracle_result)
    # The cap may only move bytes between tiers, never change the work.
    assert capped.stages == oracle.stages
    assert capped.tasks == oracle.tasks
    assert capped.shuffles == oracle.shuffles
    assert capped.shuffle_records == oracle.shuffle_records
    assert capped.shuffle_bytes == oracle.shuffle_bytes

    # Internal consistency of the spill accounting.
    assert capped.restored_bytes <= capped.spilled_bytes
    assert capped.spilled_bytes >= 0
    assert capped.spill_restores >= 0
    assert capped.prefetch_hits <= capped.spill_restores
    assert capped.restore_stall_seconds >= 0.0
    assert 0.0 <= capped.spill_hit_rate() <= 1.0
    assert capped_resident >= 0  # no negative budgets, ever

    # The uncapped oracle has no spill machinery at all.
    assert oracle.spilled_bytes == 0
    assert oracle.restored_bytes == 0
    assert oracle.spill_restores == 0
    assert oracle.prefetch_hits == 0
