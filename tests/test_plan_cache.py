"""Correctness of the session's compiled-query (plan) cache.

The cache keys the parse→normalize front half on (query text, binding
storage signatures) and always re-runs rule dispatch against the live
environment — so a hit must be indistinguishable from a cold compile
except for speed.  These tests pin the invalidation rules (tile shape,
storage class, partitioner), the ``cache=False`` escape hatch, engine
counter parity, and thread safety.
"""

import threading

import numpy as np
import pytest

from repro import SacSession
from repro.core.session import _LruCache
from repro.engine import TINY_CLUSTER
from repro.engine.partitioner import GridPartitioner
from repro.planner import (
    PlannerOptions, RULE_GROUP_BY_JOIN, RULE_TILED_REDUCE,
)
from repro.storage import TiledMatrix

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)
RNG = np.random.default_rng(7)


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=10)


def _mats(session, n=30, k=20, m=30, **kwargs):
    a = RNG.uniform(0, 9, size=(n, k))
    b = RNG.uniform(0, 9, size=(k, m))
    return session.tiled(a, **kwargs), session.tiled(b, **kwargs)


def plan_stats(session):
    return session.compile_stats()["plan_cache"]


# ----------------------------------------------------------------------
# Hits and invalidation
# ----------------------------------------------------------------------


def test_identical_recompile_hits(session):
    A, B = _mats(session)
    first = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    assert plan_stats(session) == {
        "size": 1, "hits": 0, "misses": 1, "evictions": 0
    }
    second = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    assert plan_stats(session)["hits"] == 1
    # The front half is shared; the plan itself is re-derived.
    assert second.normalized is first.normalized
    assert second.plan is not first.plan


def test_hit_with_fresh_storages_of_same_shape(session):
    """Iterative loops rebind names to new arrays of the same shape."""
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    A2, B2 = _mats(session)
    compiled = session.compile(MULTIPLY, A=A2, B=B2, n=30, m=30)
    assert plan_stats(session)["hits"] == 1
    # The cached compile must close over the storages passed *now*.
    np.testing.assert_allclose(
        compiled.execute().to_numpy(),
        A2.to_numpy() @ B2.to_numpy(),
        rtol=1e-10,
    )


def test_scalar_value_change_still_hits(session):
    """Scalar values only matter at planning time, which always re-runs."""
    V = session.tiled_vector(np.arange(10.0))
    q = "tiled_vector(n)[ (i, v * c) | (i, v) <- V ]"
    session.compile(q, V=V, n=10, c=2.0)
    compiled = session.compile(q, V=V, n=10, c=3.0)
    assert plan_stats(session)["hits"] == 1
    np.testing.assert_allclose(
        compiled.execute().to_numpy(), np.arange(10.0) * 3.0
    )


def test_miss_on_changed_tile_size(session):
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    A2 = TiledMatrix.from_numpy(session.engine, RNG.uniform(size=(30, 20)), 15)
    B2 = TiledMatrix.from_numpy(session.engine, RNG.uniform(size=(20, 30)), 15)
    session.compile(MULTIPLY, A=A2, B=B2, n=30, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_miss_on_changed_matrix_shape(session):
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    A2, B2 = _mats(session, n=40, k=20, m=30)
    session.compile(MULTIPLY, A=A2, B=B2, n=40, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_miss_on_changed_storage_class(session):
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    a = RNG.uniform(0, 9, size=(30, 20))
    sparse_a = session.sparse_tiled(a)
    session.compile(MULTIPLY, A=sparse_a, B=B, n=30, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_miss_on_changed_partitioner(session):
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    regridded = TiledMatrix(
        A.rows, A.cols, A.tile_size,
        A.tiles.partition_by(GridPartitioner(3, 2, 2)),
    )
    session.compile(MULTIPLY, A=regridded, B=B, n=30, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_miss_on_changed_planner_options(session):
    """Strategy overrides are part of the key — no stale front halves."""
    A, B = _mats(session)
    first = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    assert first.plan.rule == RULE_GROUP_BY_JOIN
    session.options = PlannerOptions(group_by_join=False)
    second = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2
    assert second.plan.rule == RULE_TILED_REDUCE


def test_miss_on_adaptive_toggle(session):
    """Arming/disarming adaptive re-optimization changes the key."""
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    session.engine.adaptive.enabled = not session.engine.adaptive.enabled
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_miss_on_cse_toggle(session):
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    session.options = PlannerOptions(cse=True)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    stats = plan_stats(session)
    assert stats["hits"] == 0 and stats["misses"] == 2


def test_cse_fingerprint_swaps_in_prior_plan():
    """With CSE on, an identical recompile hands back the same Plan.

    The fingerprint hashes storage identity, so rebinding a name to a
    *fresh* array of the same shape must still produce a new plan.
    """
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(cse=True),
    )
    A, B = _mats(session)
    first = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    second = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    assert second.plan is first.plan
    A2, B2 = _mats(session)
    third = session.compile(MULTIPLY, A=A2, B=B2, n=30, m=30)
    assert third.plan is not first.plan


def test_cache_false_bypasses(session):
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30, cache=False)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30, cache=False)
    stats = plan_stats(session)
    assert stats["size"] == 0
    assert stats["hits"] == 0 and stats["misses"] == 0


# ----------------------------------------------------------------------
# Execution parity
# ----------------------------------------------------------------------


def _run_twice(cache: bool):
    session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    a = np.arange(600.0).reshape(30, 20)
    b = np.arange(600.0).reshape(20, 30)
    A, B = session.tiled(a), session.tiled(b)
    results = []
    for _ in range(2):
        compiled = session.compile(MULTIPLY, A=A, B=B, n=30, m=30, cache=cache)
        results.append(compiled.execute().to_numpy())
    total = session.engine.metrics.total
    counters = (
        total.stages, total.tasks, total.shuffles,
        total.shuffle_records, total.shuffle_bytes,
        total.estimated_shuffle_bytes,
    )
    return results, counters


def test_counters_identical_cache_on_and_off():
    """A cache hit changes compile time only — never what executes."""
    on_results, on_counters = _run_twice(cache=True)
    off_results, off_counters = _run_twice(cache=False)
    assert on_counters == off_counters
    for got, want in zip(on_results, off_results):
        np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Compile-time speedup (the point of the cache)
# ----------------------------------------------------------------------

#: The fig4c factorization-step comprehensions (verbatim from
#: ``ops.multiply_nt`` and ``linalg/factorization.py``): the group-by
#: multiply and the element-wise gradient update re-compiled every
#: iteration.
FIG4C_STEPS = [
    (
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),x) <- A, ((j,kk),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]"
    ),
    (
        "tiled(n, k)[ ((i,j), p + gamma * (2.0 * g - lam * p))"
        " | ((i,j),p) <- P, ((ii,jj),g) <- G, ii == i, jj == j ]"
    ),
]


def test_fig4c_step_recompile_5x_faster_with_cache():
    """Acceptance bar: a plan-cache hit beats a full compile >= 5x."""
    import time

    session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    a = RNG.uniform(size=(30, 20))
    env = {
        "A": session.tiled(a), "B": session.tiled(RNG.uniform(size=(30, 20))),
        "P": session.tiled(a), "G": session.tiled(a),
        "n": 30, "m": 30, "k": 20, "gamma": 0.002, "lam": 0.02,
    }

    def best_rate(cache):
        # Best-of-batches guards against scheduler noise in CI.
        best = float("inf")
        for _batch in range(5):
            start = time.perf_counter()
            for query in FIG4C_STEPS:
                for _ in range(20):
                    session.compile(query, env, cache=cache)
            best = min(best, time.perf_counter() - start)
        return best

    session.compile(FIG4C_STEPS[0], env)  # warm both caches
    session.compile(FIG4C_STEPS[1], env)
    uncached = best_rate(False)
    cached = best_rate(True)
    assert uncached / cached >= 5.0, (
        f"plan-cache speedup only {uncached / cached:.1f}x "
        f"({uncached * 1e3:.2f}ms vs {cached * 1e3:.2f}ms per batch)"
    )


# ----------------------------------------------------------------------
# Pass-pipeline reuse (the back-half cache)
# ----------------------------------------------------------------------


def pass_stats(session):
    return session.compile_stats()["pass_cache"]


def test_pass_cache_hits_on_identical_bindings(session):
    A, B = _mats(session)
    env = dict(A=A, B=B, n=30, m=30)
    session.compile(MULTIPLY, env)
    session.compile(MULTIPLY, env)
    stats = pass_stats(session)
    assert stats == {"size": 1, "hits": 1, "misses": 1, "evictions": 0}


def test_pass_cache_misses_on_changed_scalar(session):
    """A decaying step size must never serve a stale pass result.

    The front half matches (scalar signatures carry only the type), so
    this is exactly the case the identity-level key exists for.
    """
    A = session.tiled(RNG.uniform(0, 9, size=(30, 20)))
    B = session.tiled(RNG.uniform(0, 9, size=(30, 20)))
    step = (
        "tiled(n, m)[ ((i,j), a + gamma * b)"
        " | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]"
    )
    results = {}
    for gamma in (0.5, 0.25):
        compiled = session.compile(step, A=A, B=B, n=30, m=20, gamma=gamma)
        results[gamma] = compiled.execute().to_numpy()
    assert pass_stats(session)["misses"] == 2
    np.testing.assert_allclose(
        results[0.25], A.to_numpy() + 0.25 * B.to_numpy()
    )
    assert not np.allclose(results[0.5], results[0.25])


def test_pass_cache_misses_on_swapped_storage(session):
    """Same shape, different array object: identity gates reuse."""
    A, B = _mats(session)
    A2 = session.tiled(RNG.uniform(0, 9, size=(30, 20)))
    first = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    second = session.compile(MULTIPLY, A=A2, B=B, n=30, m=30)
    assert pass_stats(session)["misses"] == 2
    assert pass_stats(session)["hits"] == 0
    np.testing.assert_allclose(
        second.execute().to_numpy(), A2.to_numpy() @ B.to_numpy()
    )
    np.testing.assert_allclose(
        first.execute().to_numpy(), A.to_numpy() @ B.to_numpy()
    )


def test_pass_cache_distinguishes_scalar_types(session):
    """``1`` and ``True`` hash alike; the typed key keeps them apart."""
    A, B = _mats(session)
    session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    key_int = session._pass_cache_key(("k",), {"n": 1})
    key_bool = session._pass_cache_key(("k",), {"n": True})
    key_float = session._pass_cache_key(("k",), {"n": 1.0})
    assert len({key_int, key_bool, key_float}) == 3


def test_pass_cache_skips_unhashable_bindings(session):
    assert session._pass_cache_key(("k",), {"n": [1, 2]}) is None


def test_pass_cache_hit_execution_is_byte_identical(session):
    """A back-half hit lowers fresh RDDs: same bytes, same counters."""
    A, B = _mats(session)
    env = dict(A=A, B=B, n=30, m=30)
    first = session.compile(MULTIPLY, env)
    r1 = first.execute().to_numpy()
    c1 = session.engine.metrics.total.shuffle_bytes
    second = session.compile(MULTIPLY, env)
    assert pass_stats(session)["hits"] == 1
    assert second.plan is not first.plan
    r2 = second.execute().to_numpy()
    c2 = session.engine.metrics.total.shuffle_bytes
    assert r1.tobytes() == r2.tobytes()
    assert c2 - c1 == c1  # second run shuffled exactly as many bytes


# ----------------------------------------------------------------------
# Thread safety
# ----------------------------------------------------------------------


def test_threaded_compiles_are_safe():
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10, runner="threads"
    )
    A, B = _mats(session)
    expected = A.to_numpy() @ B.to_numpy()
    errors = []

    def worker():
        try:
            compiled = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
            np.testing.assert_allclose(
                compiled.execute().to_numpy(), expected, rtol=1e-10
            )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    stats = plan_stats(session)
    assert stats["hits"] + stats["misses"] == 8
    assert stats["misses"] >= 1
    session.close()


# ----------------------------------------------------------------------
# The LRU itself
# ----------------------------------------------------------------------


def test_lru_evicts_oldest_and_counts():
    cache = _LruCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats() == {
        "size": 2, "hits": 3, "misses": 1, "evictions": 1
    }


def test_parse_cache_is_bounded():
    session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    V = session.tiled_vector(np.ones(4))
    for i in range(600):
        session.compile(f"+/[ v + {i} | (i,v) <- V ]", V=V)
    stats = session.compile_stats()
    assert stats["parse_cache"]["size"] <= 512
    assert stats["parse_cache"]["evictions"] >= 88
    assert stats["plan_cache"]["size"] <= 256
