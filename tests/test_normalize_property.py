"""Property tests: ``normalize`` is idempotent and alpha-renaming stable.

The pass pipeline's normalize-bridge assumes the normalizer is a real
normal form: running it twice changes nothing, and consistently renaming
the variables of a query yields the same normal form up to that
renaming.  Both properties matter for plan caching — cache keys hash
normalized trees, so an unstable normalizer would make identical
queries miss (or worse, distinct queries collide).

Hypothesis fuzzes comprehension ASTs with the same constructors as the
round-trip suite; inputs the front end rejects (bad group-by shapes,
constant folding hitting division by zero) are skipped, not failures.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.comprehension import (
    BinOp, Call, Comprehension, FreshNames, Generator, GroupByQual, Guard,
    IfExpr, Index, LetQual, Lit, RangeExpr, Reduce, TupleExpr, TuplePat,
    UnOp, Var, VarPat, WildPat, desugar, normalize, to_source,
)
from repro.comprehension.ast import Node
from repro.comprehension.errors import SacError
from repro.comprehension.lexer import KEYWORDS

SETTINGS = settings(
    max_examples=120, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_NAMES = ["x", "y", "z", "alpha", "beta", "M", "V2", "foo_bar"]
#: Injective, order-preserving renaming ("r" prefix keeps lexicographic
#: order, so name-keyed tie-breaks inside normalize cannot flip).
_RENAMING = {name: f"r{name}" for name in _NAMES}
assert not set(_NAMES) & KEYWORDS
assert not set(_RENAMING.values()) & (set(_NAMES) | KEYWORDS)

names = st.sampled_from(_NAMES)

literals = st.one_of(
    st.integers(min_value=0, max_value=999).map(Lit),
    st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda f: Lit(float(f))),
    st.booleans().map(Lit),
)

_OPS = ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]
_MONOIDS = ["+", "*", "min", "max", "&&", "||", "count", "avg"]


def expressions(max_depth: int = 3):
    base = st.one_of(literals, names.map(Var))

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(_OPS), children, children).map(
                lambda t: BinOp(*t)
            ),
            children.map(lambda e: UnOp("-", e)),
            children.map(lambda e: UnOp("!", e)),
            st.tuples(children, children, children).map(
                lambda t: IfExpr(*t)
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda items: TupleExpr(tuple(items))
            ),
            st.tuples(names, st.lists(children, min_size=0, max_size=2)).map(
                lambda t: Call(t[0], tuple(t[1]))
            ),
            st.tuples(names.map(Var), st.lists(children, min_size=1, max_size=2)).map(
                lambda t: Index(t[0], tuple(t[1]))
            ),
            st.tuples(children, children, st.booleans()).map(
                lambda t: RangeExpr(*t)
            ),
            st.tuples(st.sampled_from(_MONOIDS), children).map(
                lambda t: Reduce(*t)
            ),
        )

    return st.recursive(base, extend, max_leaves=10)


patterns = st.one_of(
    names.map(VarPat),
    st.just(WildPat()),
    st.lists(names.map(VarPat), min_size=2, max_size=3).map(
        lambda items: TuplePat(tuple(items))
    ),
)


def qualifiers():
    expr = expressions(3)
    return st.one_of(
        st.tuples(patterns, expr).map(lambda t: Generator(*t)),
        st.tuples(patterns, expr).map(lambda t: LetQual(*t)),
        expr.map(Guard),
        st.one_of(
            names.map(lambda n: GroupByQual(VarPat(n), None)),
            st.tuples(names, expr).map(
                lambda t: GroupByQual(VarPat(t[0]), t[1])
            ),
        ),
    )


comprehensions = st.tuples(
    expressions(3), st.lists(qualifiers(), min_size=0, max_size=4)
).map(lambda t: Comprehension(t[0], tuple(t[1])))


def _pipeline(expr):
    """desugar + normalize, skipping inputs the front end rejects."""
    try:
        fresh = FreshNames()
        return normalize(desugar(expr, fresh=fresh), fresh=fresh)
    except (SacError, ZeroDivisionError, OverflowError):
        assume(False)


# ----------------------------------------------------------------------
# Alpha-renaming machinery for the stability property
# ----------------------------------------------------------------------

#: Fields holding a variable reference, binder, or called name.
_NAME_FIELDS = {Var: "name", VarPat: "name", Call: "func"}


def _name_field(node):
    return _NAME_FIELDS.get(type(node))


def _rename(value, mapping):
    if isinstance(value, Node):
        updates = {
            f.name: _rename(getattr(value, f.name), mapping)
            for f in dataclasses.fields(value)
        }
        named = _name_field(value)
        if named is not None:
            old = getattr(value, named)
            updates[named] = mapping.get(old, old)
        return type(value)(**updates)
    if isinstance(value, tuple):
        return tuple(_rename(item, mapping) for item in value)
    return value


def _alpha_equal(a, b, fwd, rev) -> bool:
    """Structural equality modulo a growing name bijection."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Node):
        named = _name_field(a)
        if named is not None:
            name_a, name_b = getattr(a, named), getattr(b, named)
            if fwd.setdefault(name_a, name_b) != name_b:
                return False
            if rev.setdefault(name_b, name_a) != name_a:
                return False
        for f in dataclasses.fields(a):
            if f.name == named:
                continue
            if not _alpha_equal(
                getattr(a, f.name), getattr(b, f.name), fwd, rev
            ):
                return False
        return True
    if isinstance(a, tuple):
        return len(a) == len(b) and all(
            _alpha_equal(x, y, fwd, rev) for x, y in zip(a, b)
        )
    return a == b


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


@SETTINGS
@given(comp=comprehensions)
def test_normalize_is_idempotent(comp):
    once = _pipeline(comp)
    twice = normalize(once, fresh=FreshNames())
    assert to_source(twice) == to_source(once)


@SETTINGS
@given(expr=expressions())
def test_normalize_is_idempotent_on_expressions(expr):
    once = _pipeline(expr)
    twice = normalize(once, fresh=FreshNames())
    assert to_source(twice) == to_source(once)


@SETTINGS
@given(comp=comprehensions)
def test_normalize_is_alpha_renaming_stable(comp):
    """Renaming the query's variables commutes with normalization."""
    original = _pipeline(comp)
    renamed = _pipeline(_rename(comp, _RENAMING))
    assert _alpha_equal(original, renamed, {}, {}), (
        f"normal forms diverge beyond the renaming:\n"
        f"  {to_source(original)}\n  {to_source(renamed)}"
    )


def test_alpha_equal_rejects_inconsistent_renaming():
    """Sanity-check the checker itself: a swap is not a bijection."""
    a = TupleExpr((Var("x"), Var("y"), Var("x")))
    b = TupleExpr((Var("u"), Var("v"), Var("v")))
    assert not _alpha_equal(a, b, {}, {})
    c = TupleExpr((Var("u"), Var("v"), Var("u")))
    assert _alpha_equal(a, c, {}, {})
