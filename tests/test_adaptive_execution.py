"""Adaptive query execution: re-optimization from measured statistics.

Covers the three mechanisms end to end — reduce-partition coalescing,
skew splitting, and the runtime broadcast downgrade — plus the pure
planning helpers and the invariant that ``adaptive=False`` takes no
action on any workload.  Result equality between the adaptive and
static arms is asserted everywhere: re-optimization may re-associate
floating-point reductions but must never change what is computed
(`assert_allclose` where association changes, exact equality where the
execution is untouched).
"""

import dataclasses

import numpy as np

from repro import PlannerOptions, SacSession
from repro.engine import (
    EngineContext,
    PAPER_CLUSTER,
    TINY_CLUSTER,
    MapOutputStatistics,
)
from repro.engine.adaptive import (
    _expand_cartesian_records,
    _lower_median,
    coalesce_contiguous_partitions,
)
from repro.workloads import dense_uniform, zipf_block_rows

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def _makespan(delta) -> float:
    """Simulated critical path: the longest task of every stage, chained."""
    return sum(sc.longest_task_seconds for sc in delta.stage_costs)


# ----------------------------------------------------------------------
# Pure planning helpers
# ----------------------------------------------------------------------


def _stats(byte_buckets):
    return MapOutputStatistics(
        bytes_per_partition=tuple(byte_buckets),
        records_per_partition=tuple(1 if b else 0 for b in byte_buckets),
    )


def test_lower_median_ignores_empty_buckets_and_hot_tail():
    assert _lower_median([0, 10, 0, 1000]) == 10
    assert _lower_median([5, 10, 1000]) == 10
    assert _lower_median([0, 0]) == 0


def test_coalesce_hook_packs_contiguous_buckets():
    stats = _stats([100] * 32)
    planned = coalesce_contiguous_partitions(stats, TINY_CLUSTER)
    assert planned is not None
    groups, decision = planned
    assert decision.kind == "coalesce"
    # Groups are a contiguous, order-preserving, complete partition cover.
    assert [pid for group in groups for pid in group] == list(range(32))
    assert 1 < len(groups) < 32
    assert decision.measured["tasks"] == len(groups)


def test_coalesce_hook_declines_well_sized_shuffles():
    # At or below total_cores partitions there is nothing to win.
    assert coalesce_contiguous_partitions(_stats([100] * 4), TINY_CLUSTER) is None
    # Partitions already at the byte target stay alone.
    big = 2 * TINY_CLUSTER.adaptive_coalesce_bytes
    assert coalesce_contiguous_partitions(_stats([big] * 8), TINY_CLUSTER) is None


def test_expand_cartesian_records_preserves_pair_multiset():
    records = [(7, (list(range(6)), list("abcd"))), (8, ([1], ["z"]))]

    def pairs(recs):
        return sorted(
            (key, l, r) for key, (ls, rs) in recs for l in ls for r in rs
        )

    expanded = _expand_cartesian_records(list(records), 9)
    assert len(expanded) >= 9
    assert pairs(expanded) == pairs(records)
    # Unsplittable shapes are returned unchanged rather than looping.
    odd = [(1, "not-a-pair")]
    assert _expand_cartesian_records(list(odd), 4) == odd


# ----------------------------------------------------------------------
# Partition coalescing (engine level)
# ----------------------------------------------------------------------


def _coalesce_run(adaptive):
    with EngineContext(
        cluster=TINY_CLUSTER, runner="serial", adaptive=adaptive
    ) as ctx:
        data = [(i % 32, i) for i in range(640)]
        snapshot = ctx.metrics.snapshot()
        shuffled = ctx.parallelize(data, 8).reduce_by_key(
            lambda a, b: a + b, num_partitions=32
        )
        result = sorted(shuffled.collect())
        delta = ctx.metrics.delta_since(snapshot)
        decisions = delta.adaptive_decisions
    return result, delta, decisions


def test_coalesce_cuts_reduce_tasks_not_partitions():
    off_result, off_delta, off_decisions = _coalesce_run(False)
    on_result, on_delta, on_decisions = _coalesce_run(True)
    assert on_result == off_result
    assert off_decisions == []
    kinds = [d.kind for d in on_decisions]
    assert "coalesce" in kinds
    # Fewer reduce tasks launched, same shuffle accounting.
    assert on_delta.tasks < off_delta.tasks
    assert on_delta.shuffle_bytes == off_delta.shuffle_bytes
    assert on_delta.shuffle_records == off_delta.shuffle_records


# ----------------------------------------------------------------------
# Skew splitting (the Section 5.3 hot join key)
# ----------------------------------------------------------------------

#: Paper cluster with the skew floor lowered so the unit-test-sized
#: workload (45x45 tiles, ~16KB each) crosses the detection threshold.
_SKEW_CLUSTER = dataclasses.replace(
    PAPER_CLUSTER, adaptive_skew_min_bytes=64 * 2**10
)


def _skewed_arrays(n=360, tile=45, alpha=2.5, seed=7):
    skewed = zipf_block_rows(n, n, tile, alpha=alpha, seed=seed)
    return skewed.T.copy(), skewed


def _skew_run(adaptive, n=360, tile=45):
    a, b = _skewed_arrays(n, tile)
    with SacSession(
        cluster=_SKEW_CLUSTER, tile_size=tile,
        options=PlannerOptions(group_by_join=False),
        runner="serial", adaptive=adaptive,
    ) as session:
        A = session.sparse_tiled(a)
        B = session.sparse_tiled(b)
        snapshot = session.metrics_snapshot()
        out = session.run(MULTIPLY, A=A, B=B, n=n, m=n).to_numpy()
        delta = session.metrics_delta(snapshot)
    return out, delta, a, b


def test_skew_split_fires_and_preserves_results():
    off_out, off_delta, a, b = _skew_run(False)
    on_out, on_delta, _, _ = _skew_run(True)
    assert off_delta.adaptive_decisions == []
    split_decisions = [
        d for d in on_delta.adaptive_decisions if d.kind == "skew-split"
    ]
    assert split_decisions, "hot join partition was not split"
    decision = split_decisions[0]
    assert decision.measured["splits"] >= 2
    assert decision.measured["partition_bytes"] > (
        _SKEW_CLUSTER.adaptive_skew_factor * decision.measured["median_bytes"]
    )
    # The hot partition fanned out over extra map tasks; shuffle volume is
    # measured identically (the same records cross, in more groups).
    assert on_delta.tasks > off_delta.tasks
    assert on_delta.shuffle_bytes == off_delta.shuffle_bytes
    # Splitting re-associates the += of partial tiles: allclose, not equal.
    np.testing.assert_allclose(on_out, off_out, rtol=1e-12)
    np.testing.assert_allclose(on_out, a @ b)


def test_skew_split_decision_reaches_job_metrics():
    _, delta, _, _ = _skew_run(True)
    kinds = {d.kind for d in delta.adaptive_decisions}
    assert "skew-split" in kinds
    summary = [d for d in delta.adaptive_decisions if d.kind == "skew-split"][0].summary()
    assert "skew-split" in summary and "median" in summary


# ----------------------------------------------------------------------
# Runtime broadcast downgrade (planner level)
# ----------------------------------------------------------------------


def _downgrade_session(tile=90, n=720):
    """A multiply whose right side is tiny but whose statistics were
    stripped, so the compile-time cost model prices it as dense."""
    a = dense_uniform(n, n, seed=1)
    b = np.zeros((n, n))
    b[:tile, :] = dense_uniform(tile, n, seed=2)
    session = SacSession(tile_size=tile, runner="serial", adaptive=True)
    A = session.tiled(a)
    B = session.sparse_tiled(b)
    B._recorded_nnz = None
    B._recorded_tiles = None
    assert B.stats.block_density == 1.0  # stats really are gone
    return session, A, B, a, b, n


def test_broadcast_downgrade_recovers_cheap_plan_mid_job():
    session, A, B, a, b, n = _downgrade_session()
    with session:
        compiled = session.compile(MULTIPLY, A=A, B=B, n=n, m=n)
        # Dense pricing picks a non-broadcast strategy at compile time.
        assert compiled.plan.details["strategy"] != "gbj-broadcast-right"
        out = compiled.execute()
        assert compiled.plan.details["adaptive_strategy"] == "gbj-broadcast-right"
        downgrades = [
            d for d in compiled.plan.adaptive_decisions
            if d.kind == "broadcast-downgrade"
        ]
        assert len(downgrades) == 1
        decision = downgrades[0]
        # The decision report carries measurement and contradicted estimate.
        assert decision.measured["side"] == "right"
        assert decision.measured["side_bytes"] < decision.estimate["shuffle_bytes"]
        explained = compiled.plan.explain()
        assert "adaptive decisions:" in explained
        assert "broadcast-downgrade" in explained
        np.testing.assert_allclose(out.to_numpy(), a @ b)


def test_measured_sizes_feed_later_compiles():
    session, A, B, a, b, n = _downgrade_session()
    with session:
        first = session.compile(MULTIPLY, A=A, B=B, n=n, m=n)
        assert first.plan.details["strategy"] != "gbj-broadcast-right"
        first.execute()
        # The downgrade's measurements persist: recompiling the same query
        # now prices with facts and picks broadcast up front.
        second = session.compile(MULTIPLY, A=A, B=B, n=n, m=n, cache=False)
        assert second.plan.details["strategy"] == "gbj-broadcast-right"
        np.testing.assert_allclose(second.execute().to_numpy(), a @ b)


def test_downgrade_respects_explicit_strategy_overrides():
    session, A, B, a, b, n = _downgrade_session()
    session.options = PlannerOptions(group_by_join=True)  # pinned by user
    with session:
        compiled = session.compile(MULTIPLY, A=A, B=B, n=n, m=n)
        assert compiled.plan.details["strategy"] == "gbj-replicate"
        out = compiled.execute()
        # A pinned strategy is never second-guessed.
        assert "adaptive_strategy" not in compiled.plan.details
        assert all(
            d.kind != "broadcast-downgrade"
            for d in session.engine.adaptive.decisions
        )
        np.testing.assert_allclose(out.to_numpy(), a @ b)


def test_adaptive_disabled_session_takes_no_actions():
    session = SacSession(tile_size=45, runner="serial", adaptive=False)
    a, b = _skewed_arrays()
    with session:
        A = session.sparse_tiled(a)
        B = session.sparse_tiled(b)
        out = session.run(MULTIPLY, A=A, B=B, n=360, m=360).to_numpy()
        assert session.engine.adaptive.decisions == []
        assert session.engine.adaptive.measured_sizes == {}
        np.testing.assert_allclose(out, a @ b)


def test_engine_env_var_enables_adaptive(monkeypatch):
    monkeypatch.setenv("REPRO_ADAPTIVE", "1")
    assert EngineContext(cluster=TINY_CLUSTER).adaptive.enabled
    monkeypatch.delenv("REPRO_ADAPTIVE")
    # Raw engine contexts stay non-adaptive by default...
    assert not EngineContext(cluster=TINY_CLUSTER).adaptive.enabled
    # ...while sessions default to adaptive on.
    assert SacSession(tile_size=10).engine.adaptive.enabled
    monkeypatch.setenv("REPRO_ADAPTIVE", "0")
    assert not SacSession(tile_size=10).engine.adaptive.enabled
