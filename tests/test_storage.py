"""Tests for the storage layer: sparsifiers, builders, and the registry."""

import numpy as np
import pytest

from repro.comprehension.errors import SacTypeError
from repro.engine import EngineContext, TINY_CLUSTER
from repro.storage import (
    CooMatrix, CooVector, CsrMatrix, DenseMatrix, DenseVector, REGISTRY,
    TiledMatrix, TiledVector,
)
from repro.storage.registry import BuildContext, StorageRegistry


@pytest.fixture()
def engine():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


# ----------------------------------------------------------------------
# Dense
# ----------------------------------------------------------------------


def test_dense_vector_sparsify_roundtrip():
    v = DenseVector(np.array([1.0, 2.0, 3.0]))
    items = list(v.sparsify())
    assert items == [(0, 1.0), (1, 2.0), (2, 3.0)]
    rebuilt = DenseVector.from_items(3, items)
    assert rebuilt == v


def test_dense_vector_builder_clips_out_of_range():
    v = DenseVector.from_items(2, [(0, 1.0), (5, 9.0), (-1, 9.0)])
    np.testing.assert_allclose(v.data, [1.0, 0.0])


def test_dense_matrix_row_major_flat_layout():
    m = DenseMatrix.from_numpy(np.array([[1.0, 2.0], [3.0, 4.0]]))
    np.testing.assert_allclose(m.flat, [1.0, 2.0, 3.0, 4.0])
    assert m.get(1, 0) == 3.0


def test_dense_matrix_data_view_shares_buffer():
    m = DenseMatrix.zeros(2, 2)
    m.data[0, 1] = 7.0
    assert m.flat[1] == 7.0


def test_dense_matrix_sparsify_order():
    m = DenseMatrix.from_numpy(np.array([[1.0, 2.0], [3.0, 4.0]]))
    keys = [k for k, _ in m.sparsify()]
    assert keys == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_dense_matrix_rejects_wrong_buffer_size():
    with pytest.raises(SacTypeError):
        DenseMatrix(2, 2, np.zeros(3))


def test_dense_matrix_builder_clips():
    m = DenseMatrix.from_items(2, 2, [((0, 0), 1.0), ((9, 9), 5.0)])
    assert m.get(0, 0) == 1.0
    assert np.count_nonzero(m.flat) == 1


# ----------------------------------------------------------------------
# COO
# ----------------------------------------------------------------------


def test_coo_drops_zeros_and_clips():
    coo = CooMatrix.from_items(2, 2, [((0, 0), 0.0), ((1, 1), 3.0), ((5, 5), 1.0)])
    assert coo.nnz == 1
    assert coo.get(1, 1) == 3.0
    assert coo.get(0, 0) == 0


def test_coo_density():
    coo = CooMatrix.from_items(2, 2, [((0, 0), 1.0)])
    assert coo.density() == 0.25


def test_coo_from_numpy_roundtrip():
    a = np.array([[0.0, 1.0], [2.0, 0.0]])
    coo = CooMatrix.from_numpy(a)
    np.testing.assert_allclose(coo.to_numpy(), a)


def test_coo_vector():
    v = CooVector.from_items(5, [(1, 2.0), (3, 0.0)])
    assert v.nnz == 1
    assert v.get(1) == 2.0
    assert v.get(3) == 0
    assert list(v.sparsify()) == [(1, 2.0)]


# ----------------------------------------------------------------------
# CSR
# ----------------------------------------------------------------------


def test_csr_structure():
    a = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
    csr = CsrMatrix.from_numpy(a)
    assert csr.nnz == 3
    assert list(csr.indptr) == [0, 2, 2, 3]
    np.testing.assert_allclose(csr.to_numpy(), a)


def test_csr_get_and_row():
    a = np.array([[0.0, 5.0], [7.0, 0.0]])
    csr = CsrMatrix.from_numpy(a)
    assert csr.get(0, 1) == 5.0
    assert csr.get(0, 0) == 0
    cols, values = csr.row(1)
    assert list(cols) == [0] and list(values) == [7.0]


def test_csr_sparsify_row_order():
    a = np.array([[0.0, 1.0], [2.0, 3.0]])
    keys = [k for k, _ in CsrMatrix.from_numpy(a).sparsify()]
    assert keys == [(0, 1), (1, 0), (1, 1)]


def test_csr_rejects_inconsistent_indptr():
    with pytest.raises(SacTypeError):
        CsrMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


# ----------------------------------------------------------------------
# Tiled
# ----------------------------------------------------------------------


def test_tiled_matrix_grid_shape(engine):
    t = TiledMatrix.from_numpy(engine, np.ones((25, 33)), tile_size=10)
    assert (t.grid_rows, t.grid_cols) == (3, 4)
    assert t.tile_shape(2, 3) == (5, 3)  # ragged edges
    assert t.num_tiles() == 12


def test_tiled_matrix_roundtrip(engine):
    a = np.arange(35.0).reshape(5, 7)
    t = TiledMatrix.from_numpy(engine, a, tile_size=3)
    np.testing.assert_allclose(t.to_numpy(), a)


def test_tiled_matrix_sparsify_matches_dense(engine):
    a = np.arange(6.0).reshape(2, 3)
    t = TiledMatrix.from_numpy(engine, a, tile_size=2)
    assert dict(t.sparsify()) == {
        (i, j): a[i, j] for i in range(2) for j in range(3)
    }


def test_tiled_matrix_from_items(engine):
    items = [((0, 0), 1.0), ((4, 6), 2.0), ((9, 9), 99.0)]  # last clipped
    t = TiledMatrix.from_items(engine, 5, 7, 3, items)
    dense = t.to_numpy()
    assert dense[0, 0] == 1.0 and dense[4, 6] == 2.0
    assert dense.sum() == 3.0


def test_tiled_vector_roundtrip(engine):
    v = np.arange(11.0)
    t = TiledVector.from_numpy(engine, v, tile_size=4)
    assert t.grid_size == 3
    assert t.block_length(2) == 3
    np.testing.assert_allclose(t.to_numpy(), v)


def test_tiled_vector_from_items(engine):
    t = TiledVector.from_items(engine, 5, 2, [(0, 1.0), (4, 2.0)])
    np.testing.assert_allclose(t.to_numpy(), [1.0, 0.0, 0.0, 0.0, 2.0])


def test_tiled_rejects_bad_dims(engine):
    with pytest.raises(SacTypeError):
        TiledMatrix(0, 5, 2, engine.empty_rdd())
    with pytest.raises(SacTypeError):
        TiledMatrix.from_numpy(engine, np.ones(3), 2)


def test_tiled_materialize_cuts_lineage(engine):
    t = TiledMatrix.from_numpy(engine, np.ones((4, 4)), 2)
    chained = TiledMatrix(4, 4, 2, t.tiles.map_values(lambda x: x + 1))
    chained.materialize()
    np.testing.assert_allclose(chained.to_numpy(), 2 * np.ones((4, 4)))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_registry_knows_all_builtin_storages():
    for value in [
        DenseVector(np.zeros(2)),
        DenseMatrix.zeros(2, 2),
        CooMatrix(2, 2, {}),
        CooVector(2, {}),
        CsrMatrix.from_numpy(np.zeros((2, 2))),
        np.zeros(3),
    ]:
        assert REGISTRY.is_storage(value)


def test_registry_builders():
    ctx = BuildContext()
    v = REGISTRY.build("vector", (3,), [(0, 1.0)], ctx)
    assert isinstance(v, DenseVector)
    m = REGISTRY.build("matrix", (2, 2), [((1, 1), 4.0)], ctx)
    assert isinstance(m, DenseMatrix) and m.get(1, 1) == 4.0
    raw = REGISTRY.build("array", (4,), [(2, 7.0)], ctx)
    assert isinstance(raw, np.ndarray) and raw[2] == 7.0
    assert REGISTRY.build("list", (), [(0, 1)], ctx) == [(0, 1)]


def test_registry_unknown_builder_raises():
    with pytest.raises(SacTypeError):
        REGISTRY.build("nope", (), [], BuildContext())


def test_registry_unknown_sparsifier_raises():
    with pytest.raises(SacTypeError):
        list(REGISTRY.sparsify(object()))


def test_tiled_builder_requires_engine():
    with pytest.raises(SacTypeError):
        REGISTRY.build("tiled", (2, 2), [], BuildContext(engine=None))


def test_custom_storage_registration(engine):
    """The paper's extensibility claim: a new storage participates by
    registering a sparsifier and a builder — nothing else changes."""

    class DiagonalMatrix:
        def __init__(self, diag):
            self.diag = diag

    registry = StorageRegistry()
    registry.register_sparsifier(
        DiagonalMatrix,
        lambda m: (((i, i), v) for i, v in enumerate(m.diag)),
    )
    registry.register_builder(
        "diag",
        lambda ctx, args, items: DiagonalMatrix(
            [dict((k[0], v) for k, v in items if k[0] == k[1]).get(i, 0.0)
             for i in range(int(args[0]))]
        ),
    )
    d = DiagonalMatrix([1.0, 2.0])
    assert list(registry.sparsify(d)) == [((0, 0), 1.0), ((1, 1), 2.0)]
    built = registry.build("diag", (2,), [((0, 0), 5.0), ((0, 1), 9.0)])
    assert built.diag == [5.0, 0.0]


def test_sparsifier_inherited_by_subclass():
    class FancyVector(DenseVector):
        pass

    fancy = FancyVector(np.array([1.0]))
    assert REGISTRY.is_storage(fancy)
    assert list(REGISTRY.sparsify(fancy)) == [(0, 1.0)]


def test_tiled_save_load_roundtrip(engine, tmp_path):
    a = np.arange(77.0).reshape(7, 11)
    t = TiledMatrix.from_numpy(engine, a, tile_size=4)
    path = str(tmp_path / "matrix.npz")
    t.save(path)
    loaded = TiledMatrix.load(engine, path)
    assert (loaded.rows, loaded.cols, loaded.tile_size) == (7, 11, 4)
    np.testing.assert_allclose(loaded.to_numpy(), a)


def test_tiled_load_rejects_foreign_archive(engine, tmp_path):
    path = str(tmp_path / "other.npz")
    np.savez(path, data=np.ones(3))
    with pytest.raises(SacTypeError):
        TiledMatrix.load(engine, path)
