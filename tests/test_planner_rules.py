"""Planner tests: which rule fires, and that each rule computes correctly.

Every test asserts BOTH the selected translation rule (pinning the paper's
Section 5 behaviour) and numerical agreement with NumPy.
"""

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.engine import TINY_CLUSTER
from repro.planner import (
    RULE_COORDINATE, RULE_GROUP_BY_JOIN, RULE_LOCAL, RULE_PRESERVE_TILING,
    RULE_TILED_REDUCE, RULE_TILED_SHUFFLE,
)

RNG = np.random.default_rng(123)
N, M, K = 53, 47, 38  # deliberately not multiples of the tile size
TILE = 20

A_NP = RNG.uniform(0, 10, size=(N, M))
B_NP = RNG.uniform(0, 10, size=(N, M))
C_NP = RNG.uniform(0, 10, size=(M, K))


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=TILE)


def check(session, query, expected_rule, expected_value, **env):
    compiled = session.compile(query, **env)
    assert compiled.plan.rule == expected_rule, compiled.plan.explain()
    result = compiled.execute()
    np.testing.assert_allclose(result.to_numpy(), expected_value, rtol=1e-10)
    return compiled


# ----------------------------------------------------------------------
# 5.1 preserve tiling
# ----------------------------------------------------------------------


def test_addition_preserves_tiling(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]",
        RULE_PRESERVE_TILING, A_NP + B_NP, A=A, B=B, n=N, m=M,
    )


def test_scalar_map_preserves_tiling(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j), 2.0*a + 1.0) | ((i,j),a) <- A ]",
        RULE_PRESERVE_TILING, 2 * A_NP + 1, A=A, n=N, m=M,
    )


def test_transpose_preserves_tiling(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]",
        RULE_PRESERVE_TILING, A_NP.T, A=A, n=N, m=M,
    )


def test_diagonal_preserves_tiling(session):
    sq = A_NP[:M, :M]
    A = session.tiled(sq)
    compiled = session.compile(
        "tiled_vector(n)[ (i,v) | ((i,j),v) <- A, i == j ]",
        A=A, n=M,
    )
    assert compiled.plan.rule == RULE_PRESERVE_TILING
    np.testing.assert_allclose(compiled.execute().to_numpy(), np.diag(sq))


def test_index_dependent_value_preserves_tiling(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j), if (i == j) v else 0.0) | ((i,j),v) <- A ]",
        RULE_PRESERVE_TILING,
        np.where(np.eye(N, M, dtype=bool), A_NP, 0.0),
        A=A, n=N, m=M,
    )


def test_value_guard_zero_fills(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j),v) | ((i,j),v) <- A, v > 5.0 ]",
        RULE_PRESERVE_TILING,
        np.where(A_NP > 5.0, A_NP, 0.0),
        A=A, n=N, m=M,
    )


def test_vector_broadcast_joins_subset_of_dims(session):
    v_np = RNG.uniform(1, 2, size=M)
    A, V = session.tiled(A_NP), session.tiled_vector(v_np)
    check(
        session,
        "tiled(n,m)[ ((i,j), a*v) | ((i,j),a) <- A, (k,v) <- V, k == j ]",
        RULE_PRESERVE_TILING, A_NP * v_np[None, :], A=A, V=V, n=N, m=M,
    )


def test_outer_product_replicates(session):
    u_np = RNG.normal(size=N)
    v_np = RNG.normal(size=M)
    U, V = session.tiled_vector(u_np), session.tiled_vector(v_np)
    check(
        session,
        "tiled(n,m)[ ((i,j), x*y) | (i,x) <- U, (j,y) <- V ]",
        RULE_PRESERVE_TILING, np.outer(u_np, v_np), U=U, V=V, n=N, m=M,
    )


def test_three_way_elementwise(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    C = session.tiled(2 * A_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j), a + b - c) | ((i,j),a) <- A, ((i2,j2),b) <- B,"
        " i2 == i, j2 == j, ((i3,j3),c) <- C, i3 == i, j3 == j ]",
        RULE_PRESERVE_TILING, B_NP - A_NP, A=A, B=B, C=C, n=N, m=M,
    )


def test_preserve_tiling_does_not_shuffle_elements(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    snap = session.metrics_snapshot()
    session.run(
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
        " ii == i, jj == j ]",
        A=A, B=B, n=N, m=M,
    ).to_numpy()
    delta = session.metrics_delta(snap)
    # Only whole tiles move (for the join); far fewer records than elements.
    assert delta.shuffle_records <= 2 * A.grid_rows * A.grid_cols


# ----------------------------------------------------------------------
# 5.2 tiled shuffle
# ----------------------------------------------------------------------


def test_row_rotation_shuffles_tiles(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(n,m)[ (((i+1)%n, j), v) | ((i,j),v) <- A ]",
        RULE_TILED_SHUFFLE, np.roll(A_NP, 1, axis=0), A=A, n=N, m=M,
    )


def test_row_slice(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(n,m)[ ((i - 10, j), v) | ((i,j),v) <- A, i >= 10, i < 35 ]",
        RULE_TILED_SHUFFLE, A_NP[10:35], A=A, n=25, m=M,
    )


def test_column_shift_drops_out_of_range(session):
    A = session.tiled(A_NP)
    expected = np.zeros_like(A_NP)
    expected[:, 3:] = A_NP[:, :-3]
    check(
        session,
        "tiled(n,m)[ ((i, j + 3), v) | ((i,j),v) <- A ]",
        RULE_TILED_SHUFFLE, expected, A=A, n=N, m=M,
    )


def test_reversal(session):
    A = session.tiled(A_NP)
    check(
        session,
        "tiled(n,m)[ ((n - 1 - i, j), v) | ((i,j),v) <- A ]",
        RULE_TILED_SHUFFLE, A_NP[::-1], A=A, n=N, m=M,
    )


# ----------------------------------------------------------------------
# 5.3 tiled reduce
# ----------------------------------------------------------------------


def test_matmul_without_gbj_uses_tiled_reduce():
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=TILE,
        options=PlannerOptions(group_by_join=False),
    )
    A, C = session.tiled(A_NP), session.tiled(C_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        RULE_TILED_REDUCE, A_NP @ C_NP, A=A, C=C, n=N, m=K,
    )


def test_row_sums_tiled_reduce(session):
    A = session.tiled(A_NP)
    compiled = session.compile(
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        A=A, n=N,
    )
    assert compiled.plan.rule == RULE_TILED_REDUCE
    np.testing.assert_allclose(compiled.execute().to_numpy(), A_NP.sum(axis=1))


def test_col_max_tiled_reduce(session):
    A = session.tiled(A_NP)
    compiled = session.compile(
        "tiled_vector(m)[ (j, max/v) | ((i,j),v) <- A, group by j ]",
        A=A, m=M,
    )
    assert compiled.plan.rule == RULE_TILED_REDUCE
    np.testing.assert_allclose(compiled.execute().to_numpy(), A_NP.max(axis=0))


def test_row_average_two_slots(session):
    A = session.tiled(A_NP)
    compiled = session.compile(
        "tiled_vector(n)[ (i, avg/v) | ((i,j),v) <- A, group by i ]",
        A=A, n=N,
    )
    assert compiled.plan.rule == RULE_TILED_REDUCE
    np.testing.assert_allclose(compiled.execute().to_numpy(), A_NP.mean(axis=1))


def test_matvec_tiled_reduce(session):
    x_np = RNG.normal(size=M)
    A, X = session.tiled(A_NP), session.tiled_vector(x_np)
    compiled = session.compile(
        "tiled_vector(n)[ (i, +/p) | ((i,j),m) <- A, (jj,v) <- X, jj == j,"
        " let p = m*v, group by i ]",
        A=A, X=X, n=N,
    )
    assert compiled.plan.rule == RULE_TILED_REDUCE
    np.testing.assert_allclose(compiled.execute().to_numpy(), A_NP @ x_np)


# ----------------------------------------------------------------------
# 5.4 group-by-join
# ----------------------------------------------------------------------


def test_matmul_group_by_join(session):
    A, C = session.tiled(A_NP), session.tiled(C_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        RULE_GROUP_BY_JOIN, A_NP @ C_NP, A=A, C=C, n=N, m=K,
    )


def test_matmul_nt_group_by_join(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    check(
        session,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((j,kk),b) <- B,"
        " kk == k, let v = a*b, group by (i,j) ]",
        RULE_GROUP_BY_JOIN, A_NP @ B_NP.T, A=A, B=B, n=N, m=N,
    )


def test_matmul_tn_group_by_join(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    check(
        session,
        "tiled(n,m)[ ((j,k),+/v) | ((i,j),a) <- A, ((ii,k),b) <- B,"
        " ii == i, let v = a*b, group by (j,k) ]",
        RULE_GROUP_BY_JOIN, A_NP.T @ B_NP, A=A, B=B, n=M, m=M,
    )


def test_gbj_min_plus_semiring(session):
    """The rules are oblivious to linear algebra: a min-plus 'product'
    (shortest-path step) compiles through the same group-by-join."""
    d1 = RNG.uniform(0, 10, size=(30, 30))
    D = session.tiled(d1)
    compiled = session.compile(
        "tiled(n,n)[ ((i,j), min/c) | ((i,k),a) <- D, ((kk,j),b) <- D2,"
        " kk == k, let c = a + b, group by (i,j) ]",
        D=D, D2=D, n=30,
    )
    assert compiled.plan.rule == RULE_GROUP_BY_JOIN
    expected = np.min(d1[:, :, None] + d1[None, :, :], axis=1)
    np.testing.assert_allclose(compiled.execute().to_numpy(), expected)


def test_gbj_disabled_by_option():
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=TILE,
        options=PlannerOptions(group_by_join=False),
    )
    A, C = session.tiled(A_NP), session.tiled(C_NP)
    compiled = session.compile(
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        A=A, C=C, n=N, m=K,
    )
    assert compiled.plan.rule == RULE_TILED_REDUCE


# ----------------------------------------------------------------------
# Coordinate fallback and local plans
# ----------------------------------------------------------------------


def test_force_coordinate_option():
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=TILE,
        options=PlannerOptions(force_coordinate=True),
    )
    small_a, small_c = A_NP[:12, :10], C_NP[:10, :8]
    A, C = session.tiled(small_a), session.tiled(small_c)
    check(
        session,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        RULE_COORDINATE, small_a @ small_c, A=A, C=C, n=12, m=8,
    )


def test_rdd_builder_goes_coordinate(session):
    pairs = session.rdd([((i, j), float(i + j)) for i in range(4) for j in range(3)])
    compiled = session.compile(
        "rdd[ (i, +/v) | ((i,j),v) <- P, group by i ]", P=pairs
    )
    assert compiled.plan.rule == RULE_COORDINATE
    result = dict(compiled.execute().collect())
    assert result == {0: 3.0, 1: 6.0, 2: 9.0, 3: 12.0}


def test_smoothing_falls_back(session):
    a = RNG.uniform(0, 10, size=(7, 8))
    A = session.tiled(a)
    compiled = session.compile(
        "tiled(n,m)[ ((ii,jj), (+/v) / count/v) | ((i,j),v) <- A,"
        " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
        " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
        A=A, n=7, m=8,
    )
    assert compiled.plan.rule in (RULE_COORDINATE, RULE_LOCAL)
    result = compiled.execute().to_numpy()
    assert np.isclose(result[1, 1], a[0:3, 0:3].mean())
    assert np.isclose(result[0, 0], a[0:2, 0:2].mean())


def test_local_inputs_use_local_plan(session):
    from repro.planner import RULE_LOCAL_CODEGEN
    from repro.storage import DenseMatrix

    compiled = session.compile(
        "matrix(2,2)[ ((i,j), v+1.0) | ((i,j),v) <- D ]",
        D=DenseMatrix.zeros(2, 2),
    )
    assert compiled.plan.rule in (RULE_LOCAL, RULE_LOCAL_CODEGEN)
    np.testing.assert_allclose(compiled.execute().data, np.ones((2, 2)))


def test_total_reduction_distributed(session):
    A = session.tiled(A_NP)
    compiled = session.compile("+/[ v | ((i,j),v) <- A ]", A=A)
    assert compiled.plan.rule == RULE_COORDINATE
    assert np.isclose(compiled.execute(), A_NP.sum())


def test_bare_comprehension_collects(session):
    V = session.tiled_vector(np.array([1.0, 2.0, 3.0]))
    compiled = session.compile("[ (i, v*2.0) | (i,v) <- V ]", V=V)
    assert compiled.plan.rule == RULE_COORDINATE
    assert sorted(compiled.execute()) == [(0, 2.0), (1, 4.0), (2, 6.0)]


# ----------------------------------------------------------------------
# Plan structure / explain
# ----------------------------------------------------------------------


def test_explain_mentions_rule(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    report = session.explain(
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
        " ii == i, jj == j ]",
        A=A, B=B, n=N, m=M,
    )
    assert "preserve-tiling" in report
    assert "query:" in report


def test_plans_are_lazy_until_executed(session):
    A = session.tiled(A_NP)
    snap = session.metrics_snapshot()
    session.compile(
        "tiled(n,m)[ ((i,j), v*2.0) | ((i,j),v) <- A ]", A=A, n=N, m=M
    )
    delta = session.metrics_delta(snap)
    assert delta.tasks == 0  # compile alone runs nothing


def test_mixed_tile_sizes_rejected(session):
    from repro.comprehension.errors import SacPlanError
    from repro.storage import TiledMatrix

    A = session.tiled(A_NP)
    B = TiledMatrix.from_numpy(session.engine, B_NP, tile_size=TILE + 1)
    with pytest.raises(SacPlanError):
        session.compile(
            "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
            " ii == i, jj == j ]",
            A=A, B=B, n=N, m=M,
        )


def test_shuffle_with_same_generator_equality(session):
    """Regression: a residual ``i == j`` in a non-preserving query must
    mask per-element axes, not collapse them (the classes unify but the
    variables still read different axes)."""
    sq = A_NP[:40, :40]
    A = session.tiled(sq)
    compiled = session.compile(
        "tiled(n,m)[ ((i + 1, j), v) | ((i,j),v) <- A, i == j ]",
        A=A, n=41, m=40,
    )
    assert compiled.plan.rule == RULE_TILED_SHUFFLE
    expected = np.zeros((41, 40))
    for x in range(40):
        expected[x + 1, x] = sq[x, x]
    np.testing.assert_allclose(compiled.execute().to_numpy(), expected)


def test_builder_dims_clip_result(session):
    """The declared builder dimensions clip the result, like the paper's
    builders clip out-of-range indices — even when the traversed input
    is larger."""
    A = session.tiled(A_NP)  # 53 x 47
    small = session.run(
        "tiled(n,m)[ ((i,j), v) | ((i,j),v) <- A ]", A=A, n=30, m=25
    )
    assert (small.rows, small.cols) == (30, 25)
    np.testing.assert_allclose(small.to_numpy(), A_NP[:30, :25])


def test_builder_dims_clip_vector_result(session):
    A = session.tiled(A_NP)
    sums = session.run(
        "tiled_vector(n)[ (i, +/v) | ((i,j),v) <- A, group by i ]",
        A=A, n=15,
    )
    assert sums.length == 15
    np.testing.assert_allclose(sums.to_numpy(), A_NP.sum(axis=1)[:15])
