"""Tests for CSC matrices and sparse tiled matrices (paper Section 8)."""

import numpy as np
import pytest

from repro import SacSession
from repro.comprehension.errors import SacTypeError
from repro.engine import EngineContext, TINY_CLUSTER
from repro.planner import (
    RULE_COORDINATE, RULE_GROUP_BY_JOIN, RULE_PRESERVE_TILING,
    RULE_TILED_REDUCE,
)
from repro.storage import REGISTRY, CscMatrix, DensityStats, SparseTiledMatrix
from repro.workloads import rating_matrix

RNG = np.random.default_rng(99)
TILE = 16


def sparse_array(rows, cols, density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.uniform(1, 5, size=(rows, cols))
    return np.where(rng.random((rows, cols)) < density, values, 0.0)


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=TILE)


@pytest.fixture()
def engine():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


# ----------------------------------------------------------------------
# CscMatrix
# ----------------------------------------------------------------------


def test_csc_structure():
    a = np.array([[1.0, 0.0], [2.0, 3.0], [0.0, 0.0]])
    csc = CscMatrix.from_numpy(a)
    assert csc.nnz == 3
    assert list(csc.indptr) == [0, 2, 3]  # 2 entries in col 0, 1 in col 1
    rows, values = csc.column(0)
    assert list(rows) == [0, 1] and list(values) == [1.0, 2.0]


def test_csc_roundtrip():
    a = sparse_array(13, 9, seed=1)
    np.testing.assert_allclose(CscMatrix.from_numpy(a).to_numpy(), a)


def test_csc_get():
    a = np.array([[0.0, 5.0], [7.0, 0.0]])
    csc = CscMatrix.from_numpy(a)
    assert csc.get(0, 1) == 5.0
    assert csc.get(1, 1) == 0


def test_csc_sparsify_column_order():
    a = np.array([[0.0, 1.0], [2.0, 3.0]])
    keys = [k for k, _ in CscMatrix.from_numpy(a).sparsify()]
    assert keys == [(1, 0), (0, 1), (1, 1)]


def test_csc_density():
    csc = CscMatrix.from_items(4, 5, [((0, 0), 1.0), ((1, 1), 2.0)])
    assert csc.density() == 2 / 20


def test_csc_rejects_bad_indptr():
    with pytest.raises(SacTypeError):
        CscMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))


def test_csc_registered_as_storage():
    csc = CscMatrix.from_numpy(np.eye(3))
    assert REGISTRY.is_storage(csc)
    assert dict(REGISTRY.sparsify(csc)) == {(0, 0): 1.0, (1, 1): 1.0, (2, 2): 1.0}


def test_csc_builder():
    built = REGISTRY.build("csc", (2, 2), [((0, 1), 3.0)])
    assert isinstance(built, CscMatrix)
    assert built.get(0, 1) == 3.0


def test_csc_in_local_comprehension(session):
    a = sparse_array(10, 8, seed=2)
    result = session.run(
        "csc(n,m)[ ((i,j), 2.0*v) | ((i,j),v) <- M ]",
        M=CscMatrix.from_numpy(a), n=10, m=8,
    )
    np.testing.assert_allclose(result.to_numpy(), 2 * a)


# ----------------------------------------------------------------------
# SparseTiledMatrix structure
# ----------------------------------------------------------------------


def test_sparse_tiled_drops_empty_tiles(engine):
    a = np.zeros((40, 40))
    a[0, 0] = 1.0  # only the (0, 0) tile is non-empty
    t = SparseTiledMatrix.from_numpy(engine, a, TILE)
    assert t.num_tiles() == 1
    assert t.grid_rows == 3 and t.grid_cols == 3


def test_sparse_tiled_roundtrip(engine):
    a = sparse_array(37, 29, seed=3)
    t = SparseTiledMatrix.from_numpy(engine, a, TILE)
    np.testing.assert_allclose(t.to_numpy(), a)


def test_sparse_tiled_nnz_and_density(engine):
    a = sparse_array(32, 32, density=0.1, seed=4)
    t = SparseTiledMatrix.from_numpy(engine, a, TILE)
    assert t.nnz() == np.count_nonzero(a)
    assert np.isclose(t.density(), np.count_nonzero(a) / a.size)


def test_sparse_tiled_from_items(engine):
    items = [((0, 0), 1.0), ((20, 25), 2.0), ((5, 5), 0.0)]
    t = SparseTiledMatrix.from_items(engine, 30, 30, TILE, items)
    dense = t.to_numpy()
    assert dense[0, 0] == 1.0 and dense[20, 25] == 2.0
    assert t.nnz() == 2  # the explicit zero is dropped


def test_sparse_tiled_sparsify_only_nonzeros(engine):
    a = np.zeros((20, 20))
    a[3, 4], a[17, 2] = 5.0, 7.0
    t = SparseTiledMatrix.from_numpy(engine, a, TILE)
    assert dict(t.sparsify()) == {(3, 4): 5.0, (17, 2): 7.0}


def test_sparse_to_dense_tiled(engine):
    a = sparse_array(20, 20, seed=5)
    t = SparseTiledMatrix.from_numpy(engine, a, TILE)
    np.testing.assert_allclose(t.to_dense_tiled().to_numpy(), a)


# ----------------------------------------------------------------------
# Planner integration
# ----------------------------------------------------------------------

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def test_sparse_times_dense_uses_gbj(session):
    a = sparse_array(40, 35, density=0.15, seed=6)
    b = RNG.uniform(0, 1, size=(35, 25))
    A = session.sparse_tiled(a)
    B = session.tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=40, m=25)
    assert compiled.plan.rule == RULE_GROUP_BY_JOIN
    np.testing.assert_allclose(compiled.execute().to_numpy(), a @ b, rtol=1e-10)


def test_sparse_times_sparse(session):
    a = sparse_array(30, 30, density=0.1, seed=7)
    b = sparse_array(30, 30, density=0.1, seed=8)
    A, B = session.sparse_tiled(a), session.sparse_tiled(b)
    result = session.run(MULTIPLY, A=A, B=B, n=30, m=30)
    np.testing.assert_allclose(result.to_numpy(), a @ b, rtol=1e-10)


def test_sparse_row_sums_tiled_reduce(session):
    a = sparse_array(40, 30, seed=9)
    A = session.sparse_tiled(a)
    compiled = session.compile(
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        A=A, n=40,
    )
    assert compiled.plan.rule == RULE_TILED_REDUCE
    np.testing.assert_allclose(compiled.execute().to_numpy(), a.sum(axis=1))


def test_block_sparsity_skips_tiles(session):
    """A block-diagonal sparse matrix must shuffle far fewer tiles than
    its dense counterpart in the same multiplication."""
    n = 64
    a = np.zeros((n, n))
    for start in range(0, n, TILE):
        a[start:start + TILE, start:start + TILE] = RNG.uniform(
            1, 2, size=(TILE, TILE)
        )
    dense_session = SacSession(cluster=TINY_CLUSTER, tile_size=TILE)
    D = dense_session.tiled(a)
    D2 = dense_session.tiled(a)
    dense_session.run(MULTIPLY, A=D, B=D2, n=n, m=n).tiles.count()
    dense_shuffled = dense_session.engine.metrics.total.shuffle_records

    sparse_session = SacSession(cluster=TINY_CLUSTER, tile_size=TILE)
    S = sparse_session.sparse_tiled(a)
    S2 = sparse_session.sparse_tiled(a)
    result = sparse_session.run(MULTIPLY, A=S, B=S2, n=n, m=n)
    np.testing.assert_allclose(result.to_numpy(), a @ a, rtol=1e-10)
    sparse_shuffled = sparse_session.engine.metrics.total.shuffle_records

    assert sparse_shuffled < dense_shuffled / 2


def test_non_annihilating_query_falls_back(session):
    """``min/`` over a sparse source is unsound to densify: the planner
    must take the coordinate path, which sees only stored entries."""
    a = np.zeros((20, 20))
    a[0, 0], a[0, 5] = 5.0, 3.0
    A = session.sparse_tiled(a)
    compiled = session.compile(
        "tiled_vector(n)[ (i, min/v) | ((i,j),v) <- A, group by i ]",
        A=A, n=20,
    )
    assert compiled.plan.rule == RULE_COORDINATE
    result = compiled.execute().to_numpy()
    # min over *stored* values of row 0 is 3.0, not 0.0.
    assert result[0] == 3.0


def test_elementwise_on_sparse_falls_back(session):
    """``v + 1`` maps zero to one: dense-tile treatment would be wrong,
    so no tiled rule may fire."""
    a = np.zeros((20, 20))
    a[2, 3] = 5.0
    A = session.sparse_tiled(a)
    compiled = session.compile(
        "tiled(n,m)[ ((i,j), v + 1.0) | ((i,j),v) <- A ]",
        A=A, n=20, m=20,
    )
    assert compiled.plan.rule == RULE_COORDINATE
    result = compiled.execute().to_numpy()
    assert result[2, 3] == 6.0
    assert result[0, 0] == 0.0  # absent elements stay absent (builder zero)


def test_sparse_total_sum(session):
    a = sparse_array(25, 25, seed=10)
    A = session.sparse_tiled(a)
    assert np.isclose(session.run("+/[ v | ((i,j),v) <- A ]", A=A), a.sum())


def test_sparse_tiled_builder_in_query(session):
    a = sparse_array(20, 20, seed=11)
    A = session.tiled(a)
    result = session.run(
        "sparse_tiled(n,m)[ ((i,j), v) | ((i,j),v) <- A, v > 2.0 ]",
        A=A, n=20, m=20,
    )
    assert isinstance(result, SparseTiledMatrix)
    np.testing.assert_allclose(result.to_numpy(), np.where(a > 2.0, a, 0.0))


# ----------------------------------------------------------------------
# Recorded density statistics
# ----------------------------------------------------------------------


def test_density_is_free_of_jobs(session):
    """density()/block_density() must read the recorded statistic, not
    launch a count action."""
    a = sparse_array(40, 40, density=0.08, seed=20)
    A = session.sparse_tiled(a)
    before = session.metrics_snapshot()
    d = A.density()
    bd = A.block_density()
    _ = A.stats
    delta = session.metrics_delta(before)
    assert delta.stages == 0 and delta.tasks == 0
    assert d == np.count_nonzero(a) / a.size
    assert 0 < bd <= 1.0


def test_density_exact_path_runs_and_memoizes(session):
    a = sparse_array(40, 40, density=0.08, seed=21)
    # A raw wrapper has no recorded statistics: dense bound until exact.
    A = session.sparse_tiled(a)
    raw = SparseTiledMatrix(40, 40, TILE, A.tiles)
    assert raw.density() == 1.0
    assert raw.block_density() == 1.0
    assert raw.stats.is_dense
    exact = raw.density(exact=True)
    assert exact == np.count_nonzero(a) / a.size
    # The exact pass memoizes into the recorded statistic.
    assert raw.density() == exact
    assert not raw.stats.is_dense


def test_recorded_block_density_value(session):
    n = 64  # 4x4 grid at TILE=16, two stored tiles
    a = np.zeros((n, n))
    a[0, 0], a[40, 40] = 1.0, 2.0
    A = session.sparse_tiled(a)
    assert A.block_density() == 2 / 16
    assert A.stats == DensityStats(2 / (n * n), 2 / 16)


def test_transpose_on_sparse_preserves_tiling_and_stats(session):
    """An annihilating single-generator map over a sparse source is
    sound to run on dense tiles, and the stats carry through exactly."""
    a = sparse_array(40, 30, density=0.1, seed=22)
    A = session.sparse_tiled(a)
    compiled = session.compile(
        "tiled(m,n)[ ((j,i), 2.0*v) | ((i,j),v) <- A ]",
        A=A, n=40, m=30,
    )
    assert compiled.plan.rule == RULE_PRESERVE_TILING
    result = compiled.execute()
    np.testing.assert_allclose(result.to_numpy(), 2 * a.T)
    assert result.stats.density == pytest.approx(A.density())


def test_add_on_sparse_carries_union_bound(session):
    """Addition of two density-annotated tiled matrices (a sparse pair
    handed to the dense rules via to_dense_tiled) propagates the union
    bound onto the result storage."""
    a = sparse_array(32, 32, density=0.1, seed=23)
    b = sparse_array(32, 32, density=0.1, seed=24)
    A = session.sparse_tiled(a).to_dense_tiled()
    B = session.sparse_tiled(b).to_dense_tiled()
    result = session.run(
        "tiled(n,m)[ ((i,j), x + y) | ((i,j),x) <- A, ((i2,j2),y) <- B,"
        " i2 == i, j2 == j ]",
        A=A, B=B, n=32, m=32,
    )
    bound = result.stats
    assert bound.density <= min(1.0, A.stats.density + B.stats.density) + 1e-12
    true_density = np.count_nonzero(result.to_numpy()) / (32 * 32)
    assert bound.density >= true_density - 1e-12


def test_factorization_with_sparse_ratings(session):
    """The Figure 4.C workload with R held sparse end to end."""
    from repro.linalg import sac_factorization_step
    from repro.workloads import factor_matrix

    r_np = rating_matrix(32, density=0.10, seed=12)
    p_np = factor_matrix(32, 6, seed=13)
    q_np = factor_matrix(32, 6, seed=14)
    # E = R - P Qᵀ via ops works because subtraction joins at element
    # level on the coordinate path for sparse R; here we only check the
    # multiply steps, which are the sparse-relevant ones.
    R = session.sparse_tiled(r_np)
    Q = session.tiled(q_np)
    rq = session.run(MULTIPLY, A=R, B=Q, n=32, m=6)
    np.testing.assert_allclose(rq.to_numpy(), r_np @ q_np, rtol=1e-10)
