"""Peak-RSS proof that the spill tier actually bounds memory.

A subprocess runs a tiled multiply whose tiles are *generated inside
tasks* (the driver holds only ``(i, k)`` index pairs, so resident data
cannot hide in the driver's input list) and reports its own
``resource.getrusage`` peak RSS.  Three modes:

Peak RSS is read from ``/proc/self/status`` ``VmHWM`` rather than
``getrusage.ru_maxrss``: on Linux the latter survives ``execve`` from
the forking parent, so a child of a large pytest process would report
the *parent's* high-water mark and the bounds here would be vacuous
(``VmHWM`` is per-``mm`` and resets on exec).  Three modes:

* ``base`` — import the same modules, do no work: the interpreter and
  numpy overhead every mode pays;
* ``capped`` — an 8 MB ``memory_limit`` against a ~40 MB working set of
  partial-product tiles;
* ``uncapped`` — the same job with everything resident.

The capped run must stay within the cap plus a fixed slack over base
(transient per-task tiles, pickle buffers, allocator overhead), while
the uncapped run must exceed a floor that proves the working set is
genuinely larger than the capped bound — otherwise the capped assertion
would be vacuous.  Both engine modes must agree on the checksum.
"""

import os
import subprocess
import sys

import pytest

G = 8  # G x G grid of tiles; G**3 partial products flow through shuffle
TS = 100  # each tile is TS x TS float64 = 80 KB
CAP_BYTES = 8 * 1024 * 1024
#: Slack over base for the capped mode: the cap itself plus transient
#: per-task tiles, pickle/copy buffers, and allocator overhead.
CAPPED_SLACK_KB = 32 * 1024
#: The uncapped mode must exceed this floor over base (the ~40 MB
#: working set held resident), proving the capped bound is non-vacuous.
UNCAPPED_FLOOR_KB = 30 * 1024

WORKER = """
import sys

import numpy as np

from repro.engine import TINY_CLUSTER, EngineContext

G, TS = {g}, {ts}


def partials(ik):
    i, k = ik
    a = np.random.default_rng(1000 + i * G + k).uniform(size=(TS, TS))
    out = []
    for j in range(G):
        b = np.random.default_rng(2000 + k * G + j).uniform(size=(TS, TS))
        out.append(((i, j), a @ b))
    return out


mode = sys.argv[1]
if mode != "base":
    limit = {cap} if mode == "capped" else None
    ctx = EngineContext(cluster=TINY_CLUSTER, memory_limit=limit)
    keys = [(i, k) for i in range(G) for k in range(G)]
    product = (
        ctx.parallelize(keys, G * G)
        .flat_map(partials)
        .reduce_by_key(lambda x, y: x + y, num_partitions=G * G)
    )
    checksum = sum(float(tile.sum()) for _key, tile in product.collect())
    ctx.close()
    print("checksum", round(checksum, 6))
with open("/proc/self/status") as status:
    for line in status:
        if line.startswith("VmHWM:"):
            print("maxrss_kb", int(line.split()[1]))
            break
""".format(g=G, ts=TS, cap=CAP_BYTES)


def _run_mode(mode: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop("REPRO_MEMORY_LIMIT", None)
    proc = subprocess.run(
        [sys.executable, "-c", WORKER, mode],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    report = {}
    for line in proc.stdout.splitlines():
        name, _, value = line.partition(" ")
        report[name] = float(value)
    assert "maxrss_kb" in report, proc.stdout
    return report


@pytest.mark.skipif(sys.platform != "linux", reason="reads /proc/self/status VmHWM")
def test_capped_run_bounds_peak_rss():
    base = _run_mode("base")["maxrss_kb"]
    capped = _run_mode("capped")
    uncapped = _run_mode("uncapped")

    # Same engine, same job: the cap may not change the answer.
    assert capped["checksum"] == uncapped["checksum"]

    over_capped = capped["maxrss_kb"] - base
    over_uncapped = uncapped["maxrss_kb"] - base
    # Non-vacuous: the resident working set really is bigger than the
    # bound we hold the capped run to.
    assert over_uncapped >= UNCAPPED_FLOOR_KB, (
        f"uncapped run only used {over_uncapped:.0f} KB over base; "
        "workload too small to prove anything"
    )
    assert over_capped <= CAPPED_SLACK_KB, (
        f"capped run used {over_capped:.0f} KB over base, "
        f"exceeding the {CAPPED_SLACK_KB} KB budget+slack bound"
    )
