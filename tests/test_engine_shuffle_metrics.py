"""Tests for shuffle accounting, the cost model, and partitioners."""

import numpy as np
import pytest

from repro.engine import (
    EngineContext,
    GridPartitioner,
    HashPartitioner,
    TINY_CLUSTER,
    ClusterSpec,
    portable_hash,
)
from repro.engine.serialization import estimate_record_size, estimate_size


@pytest.fixture()
def ctx():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


# ----------------------------------------------------------------------
# Size estimation
# ----------------------------------------------------------------------


def test_estimate_size_numpy_dominated_by_buffer():
    arr = np.zeros((100, 100))
    assert abs(estimate_size(arr) - arr.nbytes) <= 64


def test_estimate_size_primitives():
    assert estimate_size(1) == 8
    assert estimate_size(1.5) == 8
    assert estimate_size(True) == 1
    assert estimate_size(None) == 1


def test_estimate_size_containers_sum_recursively():
    assert estimate_size((1, 2.0)) == 2 + 8 + 8
    assert estimate_size([1, 2, 3]) == 8 + 24
    assert estimate_size({"ab": 1}) == 8 + (2 + 4) + 8


def test_estimate_size_fallback_for_custom_class():
    class Point:
        def __init__(self):
            self.x = 1

    assert estimate_size(Point()) > 0


def test_record_size_adds_envelope():
    assert estimate_record_size(1) == 8 + 8


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------


def test_portable_hash_stable_for_strings():
    # FNV-1a of "abc" must not vary run to run.
    assert portable_hash("abc") == portable_hash("abc")
    assert portable_hash("abc") != portable_hash("abd")


def test_portable_hash_tuples_recursive():
    assert portable_hash((1, "a")) == portable_hash((1, "a"))
    assert portable_hash((1, "a")) != portable_hash(("a", 1))


def test_hash_partitioner_range():
    partitioner = HashPartitioner(7)
    for key in [0, 1, "x", (3, 4), -5]:
        assert 0 <= partitioner.partition(key) < 7


def test_hash_partitioner_rejects_nonpositive():
    with pytest.raises(ValueError):
        HashPartitioner(0)


def test_partitioner_equality():
    assert HashPartitioner(4) == HashPartitioner(4)
    assert HashPartitioner(4) != HashPartitioner(5)


def test_grid_partitioner_covers_grid():
    grid = GridPartitioner(10, 10, 8)
    seen = {grid.partition((i, j)) for i in range(10) for j in range(10)}
    assert seen <= set(range(grid.num_partitions))
    assert len(seen) > 1


def test_grid_partitioner_neighbours_colocate():
    grid = GridPartitioner(100, 100, 4)
    # Adjacent blocks in the same sub-grid square share a partition.
    assert grid.partition((0, 0)) == grid.partition((0, 1))


def test_grid_partitioner_out_of_range_key_hashes():
    grid = GridPartitioner(4, 4, 4)
    assert 0 <= grid.partition((100, 100)) < grid.num_partitions


def test_grid_partitioner_rejects_bad_dims():
    with pytest.raises(ValueError):
        GridPartitioner(0, 5, 2)


# ----------------------------------------------------------------------
# Shuffle metrics
# ----------------------------------------------------------------------


def test_reduce_by_key_shuffles_combiners_not_records(ctx):
    # 1000 records, 2 keys, 4 map partitions: map-side combining sends at
    # most keys*partitions combiners across the network.
    pairs = [(i % 2, 1) for i in range(1000)]
    ctx.parallelize(pairs, 4).reduce_by_key(lambda a, b: a + b).collect()
    assert ctx.metrics.total.shuffle_records <= 8


def test_group_by_key_shuffles_every_record(ctx):
    pairs = [(i % 2, 1) for i in range(1000)]
    ctx.parallelize(pairs, 4).group_by_key().collect()
    assert ctx.metrics.total.shuffle_records == 1000


def test_reduce_by_key_beats_group_by_key_on_bytes():
    pairs = [(i % 4, float(i)) for i in range(2000)]

    ctx_reduce = EngineContext(cluster=TINY_CLUSTER)
    ctx_reduce.parallelize(pairs, 8).reduce_by_key(lambda a, b: a + b).collect()

    ctx_group = EngineContext(cluster=TINY_CLUSTER)
    (
        ctx_group.parallelize(pairs, 8)
        .group_by_key()
        .map_values(sum)
        .collect()
    )

    assert ctx_reduce.metrics.total.shuffle_bytes < ctx_group.metrics.total.shuffle_bytes / 10


def test_narrow_ops_do_not_shuffle(ctx):
    ctx.parallelize(range(100), 4).map(lambda x: x + 1).filter(lambda x: x > 5).collect()
    assert ctx.metrics.total.shuffles == 0
    assert ctx.metrics.total.shuffle_bytes == 0


def test_pre_partitioned_reduce_avoids_shuffle(ctx):
    partitioner = HashPartitioner(4)
    base = ctx.parallelize([(i % 8, 1) for i in range(100)], 4).partition_by(partitioner)
    base.cache().collect()
    before = ctx.metrics.total.shuffle_bytes
    base.reduce_by_key(lambda a, b: a + b, partitioner=partitioner).collect()
    assert ctx.metrics.total.shuffle_bytes == before


def test_cogroup_skips_shuffle_for_copartitioned_side(ctx):
    partitioner = HashPartitioner(4)
    left = ctx.parallelize([(i, i) for i in range(50)], 4).partition_by(partitioner).cache()
    left.collect()
    right = ctx.parallelize([(i, -i) for i in range(50)], 4)
    before = ctx.metrics.total.shuffle_records
    left.cogroup(right, num_partitions=4).collect()
    moved = ctx.metrics.total.shuffle_records - before
    assert moved == 50  # only the right side moved


def test_shuffle_bytes_scale_with_payload(ctx):
    small = EngineContext(cluster=TINY_CLUSTER)
    big = EngineContext(cluster=TINY_CLUSTER)
    small.parallelize([(0, np.zeros(10))], 1).group_by_key().collect()
    big.parallelize([(0, np.zeros(10000))], 1).group_by_key().collect()
    assert big.metrics.total.shuffle_bytes > 100 * small.metrics.total.shuffle_bytes


def test_job_history_recorded(ctx):
    rdd = ctx.parallelize(range(10), 2)
    rdd.count()
    rdd.collect()
    assert len(ctx.metrics.jobs) == 2
    assert ctx.metrics.jobs[0].description == "count"
    assert all(j.wall_seconds >= 0 for j in ctx.metrics.jobs)


def test_metrics_snapshot_delta(ctx):
    rdd = ctx.parallelize([(1, 1), (2, 2)], 2)
    rdd.reduce_by_key(lambda a, b: a + b).collect()
    snap = ctx.metrics.snapshot()
    rdd.group_by_key().collect()
    delta = ctx.metrics.delta_since(snap)
    assert delta.shuffles == 1
    assert delta.shuffle_records == 2


def test_metrics_reset(ctx):
    ctx.parallelize(range(10), 2).count()
    ctx.metrics.reset()
    assert ctx.metrics.total.tasks == 0
    assert ctx.metrics.jobs == []


def test_simulated_time_monotone_in_shuffle_bytes():
    slow_net = ClusterSpec(network_bandwidth=1e6)
    ctx1 = EngineContext(cluster=slow_net)
    ctx1.parallelize([(0, np.zeros(100000))], 1).group_by_key().collect()
    with_shuffle = ctx1.simulated_time()

    ctx2 = EngineContext(cluster=slow_net)
    ctx2.parallelize([(0, np.zeros(100000))], 1).map_values(lambda v: v).collect()
    without_shuffle = ctx2.simulated_time()

    assert with_shuffle > without_shuffle


def test_simulated_time_charges_task_overhead():
    spec = ClusterSpec(num_nodes=1, executors_per_node=1, cores_per_executor=1,
                       task_launch_overhead=0.5)
    ctx = EngineContext(cluster=spec, default_parallelism=4)
    ctx.parallelize(range(8), 4).collect()
    assert ctx.simulated_time() >= 0.5 * 4


def test_cluster_spec_properties():
    spec = ClusterSpec(num_nodes=4, executors_per_node=2, cores_per_executor=11)
    assert spec.num_executors == 8
    assert spec.total_cores == 88
    assert spec.default_parallelism() == 88


def test_nested_job_merges_into_outer(ctx):
    # zip_with_index runs an inner job while building its offsets; the
    # whole thing must appear as one job in the history.
    ctx.parallelize(range(10), 2).zip_with_index().collect()
    descriptions = [j.description for j in ctx.metrics.jobs]
    assert len(descriptions) == 2  # sizes job + collect job
