"""Tests for the Figure-3 flatMap-form desugaring."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comprehension import (
    Interpreter, SacTypeError, desugar, normalize, parse,
)
from repro.comprehension.flatmap_form import (
    FlatMap, IfNil, LetIn, Singleton, evaluate, render, to_flatmap_form,
)
from repro.storage import DenseMatrix, DenseVector


def form_of(source, env=None):
    env = env or {}
    comp = normalize(desugar(parse(source), is_array=lambda n: n in env))
    return to_flatmap_form(comp)


# ----------------------------------------------------------------------
# Structure follows the rules
# ----------------------------------------------------------------------


def test_rule7_empty_qualifiers():
    term = to_flatmap_form(parse("[ 1 | ]"))
    assert isinstance(term, Singleton)


def test_rule4_generator_becomes_flatmap():
    term = form_of("[ v | (i,v) <- V ]")
    assert isinstance(term, FlatMap)
    assert isinstance(term.body, Singleton)


def test_rule5_let_becomes_let_in():
    term = to_flatmap_form(parse("[ w | (i,v) <- V, let w = v * v ]"))
    assert isinstance(term, FlatMap)
    assert isinstance(term.body, LetIn)


def test_rule6_guard_becomes_if_nil():
    term = to_flatmap_form(parse("[ v | (i,v) <- V, v > 0 ]"))
    assert isinstance(term, FlatMap)
    assert isinstance(term.body, IfNil)


def test_group_by_rejected():
    with pytest.raises(SacTypeError):
        to_flatmap_form(parse("[ (i, +/v) | (i,v) <- V, group by i ]"))


def test_render_matches_paper_notation():
    text = render(to_flatmap_form(parse("[ v | (i,v) <- V, v > 0 ]")))
    assert text == "V.flatMap(λ(i, v). if (v > 0) [ v ] else Nil)"


def test_nested_generators_render_as_nested_flatmaps():
    text = render(to_flatmap_form(parse("[ (x, y) | x <- A, y <- B ]")))
    assert text.count(".flatMap(") == 2


# ----------------------------------------------------------------------
# Evaluation agrees with the comprehension semantics
# ----------------------------------------------------------------------


def test_evaluate_simple():
    term = form_of("[ v * 2 | (i,v) <- V, v > 1 ]")
    assert evaluate(term, {"V": [(0, 1), (1, 2), (2, 3)]}) == [4, 6]


def test_evaluate_over_storage():
    v = DenseVector(np.array([1.0, 2.0]))
    term = form_of("[ (i, x + 1.0) | (i,x) <- V ]", {"V": v})
    assert evaluate(term, {"V": v}) == [(0, 2.0), (1, 3.0)]


def test_evaluate_join():
    env = {
        "A": [(0, "a"), (1, "b")],
        "B": [(0, "x"), (1, "y")],
    }
    term = form_of("[ (u, w) | (i,u) <- A, (j,w) <- B, j == i ]")
    assert evaluate(term, env) == [("a", "x"), ("b", "y")]


SETTINGS = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    n=st.integers(1, 6), m=st.integers(1, 6),
    seed=st.integers(0, 2**32 - 1),
)
def test_flatmap_form_matches_interpreter(n, m, seed):
    rng = np.random.default_rng(seed)
    a = DenseMatrix.from_numpy(rng.uniform(-9, 9, size=(n, m)))
    env = {"A": a, "t": 0.0}
    for source in [
        "[ ((i,j), v) | ((i,j),v) <- A ]",
        "[ v | ((i,j),v) <- A, v > t ]",
        "[ w | ((i,j),v) <- A, let w = v * v, i != j ]",
        "[ (i, j) | ((i,j),v) <- A, i == j ]",
    ]:
        comp = normalize(desugar(parse(source), is_array=lambda x: x in env))
        via_term = evaluate(to_flatmap_form(comp), env)
        via_interpreter = Interpreter(env).evaluate(comp)
        assert via_term == via_interpreter
