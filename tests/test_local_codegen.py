"""Tests for local loop-code generation (paper Sections 2-3)."""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SacSession
from repro.comprehension import Interpreter, desugar, normalize, parse
from repro.engine import TINY_CLUSTER
from repro.planner import RULE_LOCAL, RULE_LOCAL_CODEGEN
from repro.planner.local_codegen import CodegenUnsupported, compile_local
from repro.storage import (
    CooMatrix, CooVector, CscMatrix, CsrMatrix, DenseMatrix, DenseVector,
)

RNG = np.random.default_rng(321)


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=8)


def prepared(source, env):
    return normalize(
        desugar(parse(source), is_array=lambda n: n in env)
    )


def run_both(source, env):
    """Evaluate via generated code and via the interpreter."""
    expr = prepared(source, env)
    code, thunk = compile_local(expr, env)
    generated = thunk()
    interpreted = Interpreter(env).evaluate(expr)
    return code, generated, interpreted


# ----------------------------------------------------------------------
# Rule selection and generated-code shape
# ----------------------------------------------------------------------


def test_codegen_selected_for_dense_query(session):
    compiled = session.compile(
        "vector(n)[ (i, +/v) | ((i,j),v) <- A, group by i ]",
        A=DenseMatrix.from_numpy(np.ones((3, 4))), n=3,
    )
    assert compiled.plan.rule == RULE_LOCAL_CODEGEN
    assert "def _query" in compiled.plan.pseudocode


def test_matmul_generates_fused_triple_loop(session):
    a = DenseMatrix.from_numpy(RNG.uniform(0, 9, size=(5, 6)))
    b = DenseMatrix.from_numpy(RNG.uniform(0, 9, size=(6, 4)))
    compiled = session.compile(
        "matrix(n,m)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        A=a, B=b, n=5, m=4,
    )
    assert compiled.plan.rule == RULE_LOCAL_CODEGEN
    code = compiled.plan.pseudocode
    # The paper's Section 3 result: index kk merged with k, accumulation
    # into the output buffer, exactly three loops.
    assert "kk = k" in code
    assert "+=" in code
    assert code.count("for ") == 3
    np.testing.assert_allclose(
        compiled.execute().data, a.data @ b.data, rtol=1e-12
    )


def test_sortedness_generates_pinned_successor(session):
    v = DenseVector(np.array([1.0, 2.0, 3.0]))
    compiled = session.compile(
        "&&/[ x <= y | (i,x) <- V, (j,y) <- V, j == i + 1 ]", V=v
    )
    assert compiled.plan.rule == RULE_LOCAL_CODEGEN
    # The successor index is computed, not searched (paper Section 2).
    assert "j = (i + 1)" in compiled.plan.pseudocode
    assert compiled.execute() is True


def test_pattern_shadows_env_binding(session):
    # `v` is both an env binding and a pattern variable; inside the
    # comprehension the pattern wins (same scoping as the interpreter).
    compiled = session.compile(
        "[ v + w | (i,v) <- V ]",
        V=[(0, 1.0)], w=2.0, v=100.0,
    )
    assert compiled.execute() == [3.0]


def test_interpreter_fallback_on_use_before_shadow(session):
    # `t` is read from the environment by a guard and rebound by a later
    # pattern: the flat generated scope cannot express that, so the
    # planner must fall back to the interpreter.
    compiled = session.compile(
        "[ x + t | (i,x) <- W, t > 0.0, (j,t) <- V, j == i ]",
        W=[(0, 10.0)], V=[(0, 1.0)], t=5.0,
    )
    assert compiled.plan.rule == RULE_LOCAL
    assert compiled.execute() == [11.0]


def test_fallback_reason_recorded(session):
    compiled = session.compile(
        "[ (i, v) | (i,v) <- L, group by i ]",  # collect-the-group
        L=[(0, 1), (0, 2)],
    )
    assert compiled.plan.rule == RULE_LOCAL
    assert "codegen_fallback" in compiled.plan.details


def test_unsupported_raises_for_weird_sources():
    with pytest.raises(CodegenUnsupported):
        compile_local(
            prepared("[ x | (i,x) <- G ]", {"G": {"a": 1}}), {"G": {"a": 1}}
        )


# ----------------------------------------------------------------------
# Differential: generated code == interpreter
# ----------------------------------------------------------------------


def test_dense_matmul_differential():
    a = DenseMatrix.from_numpy(RNG.uniform(-5, 5, size=(4, 6)))
    b = DenseMatrix.from_numpy(RNG.uniform(-5, 5, size=(6, 3)))
    env = {"A": a, "B": b, "n": 4, "m": 3}
    _code, generated, interpreted = run_both(
        "matrix(n,m)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        env,
    )
    np.testing.assert_allclose(generated.data, interpreted.data, rtol=1e-12)


def test_sparse_sources_loop_only_stored_entries():
    coo = CooMatrix.from_items(50, 50, [((0, 0), 2.0), ((49, 49), 3.0)])
    env = {"S": coo}
    code, generated, interpreted = run_both("+/[ v | ((i,j),v) <- S ]", env)
    assert generated == interpreted == 5.0
    # COO loops over entries, not the index space.
    assert "entries.items()" in code


def test_csr_source():
    a = np.array([[0.0, 1.0, 0.0], [2.0, 0.0, 3.0]])
    env = {"S": CsrMatrix.from_numpy(a), "n": 2}
    code, generated, interpreted = run_both(
        "vector(n)[ (i, +/v) | ((i,j),v) <- S, group by i ]", env
    )
    np.testing.assert_allclose(generated.data, interpreted.data)
    np.testing.assert_allclose(generated.data, a.sum(axis=1))
    assert "indptr" in code


def test_csc_source():
    a = np.array([[0.0, 1.0], [2.0, 0.0], [0.0, 4.0]])
    env = {"S": CscMatrix.from_numpy(a), "m": 2}
    _code, generated, interpreted = run_both(
        "vector(m)[ (j, +/v) | ((i,j),v) <- S, group by j ]", env
    )
    np.testing.assert_allclose(generated.data, interpreted.data)
    np.testing.assert_allclose(generated.data, a.sum(axis=0))


def test_coo_vector_source():
    v = CooVector.from_items(10, [(2, 5.0), (7, 1.0)])
    _code, generated, interpreted = run_both(
        "[ (i, x * 2.0) | (i,x) <- V ]", {"V": v}
    )
    assert generated == interpreted == [(2, 10.0), (7, 2.0)]


def test_list_source_and_records():
    env = {"L": [((0, 1), 5.0), ((1, 0), 7.0)]}
    _code, generated, interpreted = run_both(
        "[ v | ((i,j),v) <- L, i < j ]", env
    )
    assert generated == interpreted == [5.0]


def test_min_max_group_by_uses_hash_table():
    a = DenseMatrix.from_numpy(RNG.uniform(-5, 5, size=(4, 5)))
    env = {"A": a, "n": 4}
    code, generated, interpreted = run_both(
        "vector(n)[ (i, max/v) | ((i,j),v) <- A, group by i ]", env
    )
    np.testing.assert_allclose(generated.data, interpreted.data)
    assert ".get(" in code  # Equation-12 hash grouping, not a buffer


def test_count_and_avg():
    a = DenseMatrix.from_numpy(RNG.uniform(1, 5, size=(3, 4)))
    env = {"A": a, "n": 3}
    _code, generated, interpreted = run_both(
        "[ (i, avg/v) | ((i,j),v) <- A, group by i ]", env
    )
    assert generated == interpreted
    for (_i, value), target in zip(generated, a.data.mean(axis=1)):
        assert np.isclose(value, target)


def test_guards_and_if_expressions():
    a = DenseMatrix.from_numpy(RNG.uniform(-5, 5, size=(6, 6)))
    env = {"A": a, "n": 6, "m": 6}
    _code, generated, interpreted = run_both(
        "matrix(n,m)[ ((i,j), if (v > 0.0) v else 0.0 - v) | ((i,j),v) <- A,"
        " i != j ]",
        env,
    )
    np.testing.assert_allclose(generated.data, interpreted.data)


SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SETTINGS
@given(
    n=st.integers(1, 7), m=st.integers(1, 7),
    seed=st.integers(0, 2**32 - 1),
)
def test_property_codegen_matches_interpreter(n, m, seed):
    rng = np.random.default_rng(seed)
    a = DenseMatrix.from_numpy(rng.uniform(-9, 9, size=(n, m)))
    queries = [
        ("vector(n)[ (i, +/v) | ((i,j),v) <- A, group by i ]",
         {"A": a, "n": n}),
        ("matrix(m,n)[ ((j,i), v) | ((i,j),v) <- A ]",
         {"A": a, "n": n, "m": m}),
        ("+/[ v * v | ((i,j),v) <- A ]", {"A": a}),
        ("matrix(n,m)[ ((i,j), 2.0*v) | ((i,j),v) <- A, v > 0.0 ]",
         {"A": a, "n": n, "m": m}),
    ]
    for source, env in queries:
        expr = prepared(source, env)
        _code, thunk = compile_local(expr, env)
        generated = thunk()
        interpreted = Interpreter(env).evaluate(expr)
        if isinstance(generated, (DenseMatrix, DenseVector)):
            np.testing.assert_allclose(
                np.asarray(generated.data, dtype=float),
                np.asarray(interpreted.data, dtype=float),
                rtol=1e-9, atol=1e-12,
            )
        else:
            assert np.isclose(float(generated), float(interpreted))


# ----------------------------------------------------------------------
# Performance: generated loops beat the interpreter
# ----------------------------------------------------------------------


def test_codegen_outperforms_interpreter():
    n = 26
    a = DenseMatrix.from_numpy(RNG.uniform(0, 9, size=(n, n)))
    b = DenseMatrix.from_numpy(RNG.uniform(0, 9, size=(n, n)))
    env = {"A": a, "B": b, "n": n, "m": n}
    source = (
        "matrix(n,m)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]"
    )
    expr = prepared(source, env)

    start = time.perf_counter()
    _code, thunk = compile_local(expr, env)
    generated = thunk()
    codegen_seconds = time.perf_counter() - start

    start = time.perf_counter()
    interpreted = Interpreter(env).evaluate(expr)
    interpreter_seconds = time.perf_counter() - start

    np.testing.assert_allclose(generated.data, interpreted.data, rtol=1e-10)
    # The interpreter scans the full cross product (n^2 x n^2 rows); the
    # generated code runs the fused triple loop.  The margin is enormous,
    # so this is safe to assert even on noisy machines.
    assert codegen_seconds < interpreter_seconds
