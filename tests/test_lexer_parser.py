"""Tests for the DSL lexer and parser."""

import pytest

from repro.comprehension import (
    BinOp, BuilderApp, Call, Comprehension, Field, Generator, GroupByQual,
    Guard, IfExpr, Index, LetQual, Lit, RangeExpr, Reduce, SacSyntaxError,
    TupleExpr, TuplePat, UnOp, Var, VarPat, WildPat, parse, parse_pattern,
    to_source, tokenize,
)


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------


def test_tokenize_kinds():
    tokens = tokenize("x12 <- 0 until 3.5")
    kinds = [t.kind for t in tokens]
    assert kinds == ["ident", "op", "int", "keyword", "float", "eof"]


def test_tokenize_operators_maximal_munch():
    tokens = tokenize("<-<= == !=&&")
    assert [t.text for t in tokens[:-1]] == ["<-", "<=", "==", "!=", "&&"]


def test_tokenize_comment_and_whitespace():
    tokens = tokenize("a # comment\n b")
    assert [t.text for t in tokens[:-1]] == ["a", "b"]


def test_tokenize_string_literal():
    tokens = tokenize('"hello world"')
    assert tokens[0].kind == "string"


def test_tokenize_rejects_bad_char():
    with pytest.raises(SacSyntaxError):
        tokenize("a @ b")


def test_tokenize_positions():
    tokens = tokenize("ab cd")
    assert tokens[0].position == 0
    assert tokens[1].position == 3


def test_tokenize_scientific_notation():
    tokens = tokenize("1.5e-3 2e10")
    assert [t.kind for t in tokens[:-1]] == ["float", "float"]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def test_parse_arithmetic_precedence():
    assert parse("1 + 2 * 3") == BinOp("+", Lit(1), BinOp("*", Lit(2), Lit(3)))


def test_parse_comparison_precedence():
    expr = parse("a + 1 < b * 2")
    assert isinstance(expr, BinOp) and expr.op == "<"


def test_parse_logical_precedence():
    expr = parse("a < b && c < d || e < f")
    assert isinstance(expr, BinOp) and expr.op == "||"
    assert isinstance(expr.left, BinOp) and expr.left.op == "&&"


def test_parse_unary():
    assert parse("-x") == UnOp("-", Var("x"))
    assert parse("!a") == UnOp("!", Var("a"))


def test_parse_tuple_and_parens():
    assert parse("(a)") == Var("a")
    assert parse("(a, b)") == TupleExpr((Var("a"), Var("b")))
    assert parse("((a, b), c)") == TupleExpr(
        (TupleExpr((Var("a"), Var("b"))), Var("c"))
    )


def test_parse_ranges():
    assert parse("0 until n") == RangeExpr(Lit(0), Var("n"), False)
    assert parse("(i-1) to (i+1)") == RangeExpr(
        BinOp("-", Var("i"), Lit(1)), BinOp("+", Var("i"), Lit(1)), True
    )


def test_parse_if_expression():
    expr = parse("if (a > 0) a else 0 - a")
    assert isinstance(expr, IfExpr)


def test_parse_field_access():
    assert parse("a.length") == Field(Var("a"), "length")
    assert parse("e.name") == Field(Var("e"), "name")


def test_parse_indexing():
    assert parse("V[i]") == Index(Var("V"), (Var("i"),))
    assert parse("M[i, j+1]") == Index(
        Var("M"), (Var("i"), BinOp("+", Var("j"), Lit(1)))
    )


def test_parse_call():
    assert parse("f(x, y)") == Call("f", (Var("x"), Var("y")))
    assert parse("g()") == Call("g", ())


def test_parse_reductions():
    assert parse("+/v") == Reduce("+", Var("v"))
    assert parse("*/v") == Reduce("*", Var("v"))
    assert parse("&&/v") == Reduce("&&", Var("v"))
    assert parse("min/v") == Reduce("min", Var("v"))
    assert parse("count/v") == Reduce("count", Var("v"))


def test_reduce_binds_tighter_than_division():
    # (+/a)/a.length: reduce first, then divide.
    expr = parse("(+/a) / a.length")
    assert isinstance(expr, BinOp) and expr.op == "/"
    assert isinstance(expr.left, Reduce)


def test_plain_division_still_works():
    assert parse("a / b") == BinOp("/", Var("a"), Var("b"))
    assert parse("i / N") == BinOp("/", Var("i"), Var("N"))


def test_booleans():
    assert parse("true") == Lit(True)
    assert parse("false") == Lit(False)


def test_numbers():
    assert parse("42") == Lit(42)
    assert parse("2.5") == Lit(2.5)


def test_wildcard_rejected_in_expression():
    with pytest.raises(SacSyntaxError):
        parse("_ + 1")


# ----------------------------------------------------------------------
# Comprehensions and qualifiers
# ----------------------------------------------------------------------


def test_parse_simple_comprehension():
    comp = parse("[ v | (i,v) <- V ]")
    assert isinstance(comp, Comprehension)
    assert comp.head == Var("v")
    assert comp.qualifiers == (
        Generator(TuplePat((VarPat("i"), VarPat("v"))), Var("V")),
    )


def test_parse_guard_vs_generator():
    comp = parse("[ v | (i,v) <- V, i > 2, (j,w) <- W ]")
    kinds = [type(q).__name__ for q in comp.qualifiers]
    assert kinds == ["Generator", "Guard", "Generator"]


def test_parse_let():
    comp = parse("[ v | (i,v0) <- V, let v = v0 * 2 ]")
    assert isinstance(comp.qualifiers[1], LetQual)


def test_parse_group_by_pattern():
    comp = parse("[ (i, +/m) | ((i,j),m) <- M, group by i ]")
    gb = comp.qualifiers[-1]
    assert gb == GroupByQual(VarPat("i"), None)


def test_parse_group_by_with_key_expr():
    comp = parse("[ (k, +/c) | ((i,j),a) <- A, group by k: (i, j) ]")
    gb = comp.qualifiers[-1]
    assert isinstance(gb, GroupByQual)
    assert gb.pattern == VarPat("k")
    assert gb.key == TupleExpr((Var("i"), Var("j")))


def test_parse_group_by_bare_expression():
    comp = parse("[ (i/N, v) | (i,v) <- L, group by i/N ]")
    gb = comp.qualifiers[-1]
    assert isinstance(gb, GroupByQual)
    assert gb.pattern is None
    assert gb.key == BinOp("/", Var("i"), Var("N"))


def test_parse_wildcard_pattern():
    comp = parse("[ 1 | (_, v) <- V ]")
    gen = comp.qualifiers[0]
    assert isinstance(gen.pattern, TuplePat)
    assert isinstance(gen.pattern.items[0], WildPat)


def test_parse_builder_with_comprehension():
    expr = parse("matrix(n, m)[ ((i,j), 0) | i <- 0 until n, j <- 0 until m ]")
    assert isinstance(expr, BuilderApp)
    assert expr.name == "matrix"
    assert len(expr.args) == 2
    assert isinstance(expr.source, Comprehension)


def test_parse_builder_without_args():
    expr = parse("rdd[ (i, v) | (i,v) <- L ]")
    assert isinstance(expr, BuilderApp)
    assert expr.name == "rdd"
    assert expr.args == ()


def test_parse_builder_second_arg_group():
    expr = parse("vector(N)(w)")
    assert expr == BuilderApp("vector", (Var("N"),), Var("w"))


def test_bracket_disambiguation():
    # index (no |) vs builder comprehension (with |)
    assert isinstance(parse("A[i, j]"), Index)
    assert isinstance(parse("A[ v | (i,v) <- V ]"), BuilderApp)


def test_parse_nested_comprehension():
    comp = parse("[ x | p <- [ y | (i,y) <- V ], let x = p ]")
    inner = comp.qualifiers[0].source
    assert isinstance(inner, Comprehension)


def test_parse_reduction_of_comprehension():
    expr = parse("&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]")
    assert isinstance(expr, Reduce)
    assert expr.monoid == "&&"


def test_parse_errors_carry_position():
    with pytest.raises(SacSyntaxError) as excinfo:
        parse("[ v | (i,v) <- ]")
    assert "line 1" in str(excinfo.value)


def test_parse_trailing_garbage():
    with pytest.raises(SacSyntaxError):
        parse("a + b extra")


def test_unterminated_bracket():
    with pytest.raises(SacSyntaxError):
        parse("[ v | (i,v) <- V")


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------


def test_parse_pattern_forms():
    assert parse_pattern("x") == VarPat("x")
    assert parse_pattern("_") == WildPat()
    assert parse_pattern("(a, b)") == TuplePat((VarPat("a"), VarPat("b")))
    assert parse_pattern("((i, j), v)") == TuplePat(
        (TuplePat((VarPat("i"), VarPat("j"))), VarPat("v"))
    )


def test_parse_pattern_rejects_expression():
    with pytest.raises(SacSyntaxError):
        parse_pattern("a + b")


# ----------------------------------------------------------------------
# Round-tripping: to_source(parse(s)) reparses to the same tree
# ----------------------------------------------------------------------

PAPER_QUERIES = [
    "[ (i, +/m) | ((i,j),m) <- M, group by i ]",
    "matrix(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N, ii == i, jj == j ]",
    "matrix(n,m)[ ((i,j),a+N[i,j]) | ((i,j),a) <- M ]",
    "matrix(n,m)[ ((i,j),+/v) | ((i,k),a) <- M, ((kk,j),b) <- N, kk == k,"
    " let v = a*b, group by (i,j) ]",
    "matrix(n,m)[ ((ii,jj),(+/a)/a.length) | ((i,j),a) <- M,"
    " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
    " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
    "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]",
    "tiled(n,m)[ ( ( (i+1)%m, j ), v ) | ((i,j),v) <- X ]",
    "tiled(n)[ (i,a) | ((i,j),a) <- A, i == j ]",
    "rdd[ ( i/N, vector(N)(w) ) | (i,v) <- L, let w = ( i%N, v ), group by i/N ]",
    "tiled(n,m)[ (k, +/c) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
    " kx(i,j) == ky(ii,jj), let c = h(a,b), group by k: ( gx(i,j), gy(ii,jj) ) ]",
]


@pytest.mark.parametrize("query", PAPER_QUERIES)
def test_round_trip(query):
    tree = parse(query)
    assert parse(to_source(tree)) == tree
