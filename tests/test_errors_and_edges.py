"""Error paths and edge cases across the stack."""

import numpy as np
import pytest

from repro import SacSession
from repro.comprehension import (
    SacNameError, SacPlanError, SacSyntaxError, SacTypeError,
)
from repro.engine import EngineContext, ThreadedTaskRunner, TINY_CLUSTER


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=8)


# ----------------------------------------------------------------------
# Session-level errors
# ----------------------------------------------------------------------


def test_syntax_error_propagates(session):
    with pytest.raises(SacSyntaxError):
        session.run("[ v | (i,v <- V ]", V=[])


def test_unknown_builder(session):
    with pytest.raises(SacTypeError):
        session.run("frobnicate(3)[ (i, v) | (i,v) <- V ]", V=[(0, 1.0)])


def test_unbound_variable(session):
    with pytest.raises(SacNameError):
        session.run("[ v + w | (i,v) <- V ]", V=[(0, 1.0)])


def test_unknown_monoid_in_reduction(session):
    with pytest.raises(SacSyntaxError):
        # 'weird/' is not a reduction; 'weird' then '/v' is division of an
        # unbound name -> but the parse of `weird/[..]` is division by a
        # comprehension, which fails at evaluation with a type error.
        session.run("weird/", V=[])


def test_empty_query_rejected(session):
    with pytest.raises(SacSyntaxError):
        session.run("", V=[])


def test_builder_wrong_arity(session):
    with pytest.raises(SacTypeError):
        session.run("matrix(3)[ ((i,j),v) | ((i,j),v) <- M ]", M=[((0, 0), 1.0)])


# ----------------------------------------------------------------------
# Empty and degenerate inputs
# ----------------------------------------------------------------------


def test_empty_tiled_query(session):
    A = session.tiled(np.zeros((4, 4)))
    result = session.run(
        "tiled(n,m)[ ((i,j), v * 2.0) | ((i,j),v) <- A ]", A=A, n=4, m=4
    )
    np.testing.assert_allclose(result.to_numpy(), np.zeros((4, 4)))


def test_one_by_one_matrix(session):
    A = session.tiled(np.array([[7.0]]))
    result = session.run(
        "tiled(n,m)[ ((i,j), v + 1.0) | ((i,j),v) <- A ]", A=A, n=1, m=1
    )
    assert result.to_numpy()[0, 0] == 8.0


def test_tile_size_larger_than_matrix(session):
    big_tile = SacSession(cluster=TINY_CLUSTER, tile_size=100)
    a = np.arange(6.0).reshape(2, 3)
    A = big_tile.tiled(a)
    assert A.grid_rows == 1 and A.grid_cols == 1
    result = big_tile.run(
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]", A=A, n=2, m=3
    )
    np.testing.assert_allclose(result.to_numpy(), a.T)


def test_guard_filters_everything(session):
    A = session.tiled(np.ones((4, 4)))
    result = session.run(
        "tiled(n,m)[ ((i,j),v) | ((i,j),v) <- A, v > 100.0 ]", A=A, n=4, m=4
    )
    np.testing.assert_allclose(result.to_numpy(), np.zeros((4, 4)))


def test_group_by_without_aggregation_collects(session):
    # Lifted variable used raw: the interpreter handles it (no
    # distributed plan exists for collect-the-group).
    result = session.interpret(
        "[ (i, v) | (i,v) <- L, group by i ]",
        L=[(0, "a"), (0, "b"), (1, "c")],
    )
    assert result == [(0, ["a", "b"]), (1, ["c"])]


def test_reduction_over_empty_comprehension(session):
    assert session.run("+/[ v | (i,v) <- V ]", V=[]) == 0
    assert session.run("&&/[ v | (i,v) <- V ]", V=[]) is True


def test_negative_indices_clipped_by_builder(session):
    result = session.run(
        "matrix(2,2)[ ((i - 1, j), v) | ((i,j),v) <- L ]",
        L=[((0, 0), 5.0), ((1, 1), 7.0)],
    )
    # (0,0) maps to (-1,0): clipped.  (1,1) maps to (0,1).
    assert result.get(0, 1) == 7.0
    assert np.count_nonzero(result.data) == 1


# ----------------------------------------------------------------------
# Engine edges
# ----------------------------------------------------------------------


def test_threaded_runner_matches_serial():
    serial = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    threaded = EngineContext(
        cluster=TINY_CLUSTER,
        runner=ThreadedTaskRunner(max_workers=4),
        default_parallelism=4,
    )
    data = [(i % 5, i) for i in range(200)]
    expected = sorted(
        serial.parallelize(data, 8).reduce_by_key(lambda a, b: a + b).collect()
    )
    actual = sorted(
        threaded.parallelize(data, 8).reduce_by_key(lambda a, b: a + b).collect()
    )
    assert actual == expected


def test_zero_partitions_rejected():
    from repro.engine.rdd import RDD

    ctx = EngineContext(cluster=TINY_CLUSTER)
    with pytest.raises(ValueError):
        RDD(ctx, 0)


def test_deeply_chained_narrow_ops():
    ctx = EngineContext(cluster=TINY_CLUSTER, default_parallelism=2)
    rdd = ctx.parallelize(range(10), 2)
    for _ in range(200):
        rdd = rdd.map(lambda x: x + 1)
    assert rdd.collect() == [x + 200 for x in range(10)]


def test_engine_union_of_empty():
    ctx = EngineContext(cluster=TINY_CLUSTER)
    left = ctx.parallelize([], 1)
    right = ctx.parallelize([1], 1)
    assert left.union(right).collect() == [1]


# ----------------------------------------------------------------------
# Planner edges
# ----------------------------------------------------------------------


def test_post_group_guard_runs_on_interpreter(session):
    A = session.tiled(np.arange(16.0).reshape(4, 4))
    # A guard after the group-by is not planned distributed; the session
    # falls back to the (correct) local plan.
    result = session.run(
        "[ (i, +/v) | ((i,j),v) <- A, group by i, +/v > 20.0 ]", A=A
    )
    expected = [
        (i, s) for i, s in enumerate(np.arange(16.0).reshape(4, 4).sum(axis=1))
        if s > 20.0
    ]
    assert [(i, v) for i, v in result] == expected


def test_dimension_mismatch_surfaces(session):
    A = session.tiled(np.ones((4, 4)))
    B = session.tiled(np.ones((5, 5)))
    with pytest.raises(SacPlanError):
        session.run(
            "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
            " ii == i, jj == j ]",
            A=A, B=B, n=4, m=4,
        )


def test_explain_before_any_execution(session):
    A = session.tiled(np.ones((4, 4)))
    report = session.explain(
        "tiled_vector(n)[ (i, +/v) | ((i,j),v) <- A, group by i ]",
        A=A, n=4,
    )
    assert "tiled-reduce" in report
    assert "reduceByKey" in report
