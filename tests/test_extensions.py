"""Tests for extensions beyond the paper: concat ops and broadcast joins."""

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.core import ops
from repro.engine import TINY_CLUSTER

RNG = np.random.default_rng(123)


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=10)


# ----------------------------------------------------------------------
# Concatenation
# ----------------------------------------------------------------------


def test_vstack_aligned(session):
    a = RNG.uniform(0, 9, size=(20, 10))
    b = RNG.uniform(0, 9, size=(30, 10))
    result = ops.vstack(session, session.tiled(a), session.tiled(b))
    np.testing.assert_allclose(result.to_numpy(), np.vstack([a, b]))


def test_vstack_ragged_seam(session):
    # a.rows not a multiple of the tile size: the seam tile receives
    # elements from both inputs.
    a = RNG.uniform(0, 9, size=(15, 13))
    b = RNG.uniform(0, 9, size=(22, 13))
    result = ops.vstack(session, session.tiled(a), session.tiled(b))
    np.testing.assert_allclose(result.to_numpy(), np.vstack([a, b]))


def test_hstack(session):
    a = RNG.uniform(0, 9, size=(15, 13))
    b = RNG.uniform(0, 9, size=(15, 8))
    result = ops.hstack(session, session.tiled(a), session.tiled(b))
    np.testing.assert_allclose(result.to_numpy(), np.hstack([a, b]))


def test_stack_shape_validation(session):
    a = session.tiled(np.ones((4, 4)))
    b = session.tiled(np.ones((4, 5)))
    with pytest.raises(ValueError):
        ops.vstack(session, a, b)
    c = session.tiled(np.ones((5, 4)))
    with pytest.raises(ValueError):
        ops.hstack(session, a, c)


def test_stacked_result_composes(session):
    """Concatenated matrices join like any other tiled matrix."""
    a = RNG.uniform(0, 9, size=(12, 9))
    b = RNG.uniform(0, 9, size=(13, 9))
    stacked = ops.vstack(session, session.tiled(a), session.tiled(b))
    sums = ops.row_sums(session, stacked)
    np.testing.assert_allclose(
        sums.to_numpy(), np.vstack([a, b]).sum(axis=1), rtol=1e-10
    )


# ----------------------------------------------------------------------
# Broadcast group-by-join
# ----------------------------------------------------------------------

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def broadcast_session():
    return SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(broadcast_threshold=16),
    )


def test_broadcast_join_small_right_side():
    session = broadcast_session()
    a = RNG.uniform(0, 9, size=(60, 40))
    b = RNG.uniform(0, 9, size=(40, 10))  # 4x1 grid: broadcastable
    A, B = session.tiled(a), session.tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=60, m=10)
    assert "broadcast" in compiled.plan.description
    np.testing.assert_allclose(compiled.execute().to_numpy(), a @ b, rtol=1e-10)


def test_broadcast_join_small_left_side():
    session = broadcast_session()
    a = RNG.uniform(0, 9, size=(10, 40))  # small side is the left one
    b = RNG.uniform(0, 9, size=(40, 120))
    A, B = session.tiled(a), session.tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=10, m=120)
    assert "broadcast" in compiled.plan.description
    assert compiled.plan.details.get("broadcast_side") == "left"
    np.testing.assert_allclose(compiled.execute().to_numpy(), a @ b, rtol=1e-10)


def test_broadcast_join_not_used_when_both_large():
    session = broadcast_session()
    a = RNG.uniform(0, 9, size=(60, 60))
    b = RNG.uniform(0, 9, size=(60, 60))
    A, B = session.tiled(a), session.tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=60, m=60)
    assert "SUMMA" in compiled.plan.description
    np.testing.assert_allclose(compiled.execute().to_numpy(), a @ b, rtol=1e-10)


def test_cost_model_may_broadcast_by_default(session):
    # With no broadcast_threshold set the planner is cost-based and free
    # to broadcast the tiny right side; the estimates must be attached.
    a = RNG.uniform(0, 9, size=(60, 40))
    b = RNG.uniform(0, 9, size=(40, 10))
    A, B = session.tiled(a), session.tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=60, m=10)
    assert compiled.plan.estimate is not None
    assert compiled.plan.details["strategy"] in compiled.plan.candidates
    np.testing.assert_allclose(compiled.execute().to_numpy(), a @ b, rtol=1e-10)


def test_broadcast_disabled_by_zero_threshold():
    # broadcast_threshold=0 vetoes the broadcast candidates outright.
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(broadcast_threshold=0),
    )
    a = RNG.uniform(0, 9, size=(60, 40))
    b = RNG.uniform(0, 9, size=(40, 10))
    A, B = session.tiled(a), session.tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=60, m=10)
    assert "broadcast" not in compiled.plan.details["strategy"]
    np.testing.assert_allclose(compiled.execute().to_numpy(), a @ b, rtol=1e-10)


def test_broadcast_join_transposed_form():
    session = broadcast_session()
    p = RNG.uniform(0, 9, size=(80, 10))
    q = RNG.uniform(0, 9, size=(60, 10))
    P, Q = session.tiled(p), session.tiled(q)
    compiled = session.compile(
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),x) <- P, ((j,kk),y) <- Q,"
        " kk == k, let v = x*y, group by (i,j) ]",
        P=P, Q=Q, n=80, m=60,
    )
    np.testing.assert_allclose(compiled.execute().to_numpy(), p @ q.T, rtol=1e-10)


def test_broadcast_join_shuffles_less_than_summa():
    a = RNG.uniform(0, 9, size=(60, 40))
    b = RNG.uniform(0, 9, size=(40, 10))

    # Pin the SUMMA strategy: by default the cost model would also
    # choose the broadcast here.
    summa = SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(group_by_join=True),
    )
    A1, B1 = summa.tiled(a), summa.tiled(b)
    summa.run(MULTIPLY, A=A1, B=B1, n=60, m=10).tiles.count()

    broadcast = broadcast_session()
    A2, B2 = broadcast.tiled(a), broadcast.tiled(b)
    broadcast.run(MULTIPLY, A=A2, B=B2, n=60, m=10).tiles.count()

    assert (
        broadcast.engine.metrics.total.shuffle_bytes
        < summa.engine.metrics.total.shuffle_bytes
    )


def test_sacmatrix_stack_methods(session):
    a = RNG.uniform(0, 9, size=(8, 6))
    b = RNG.uniform(0, 9, size=(5, 6))
    A = session.matrix(a)
    B = session.matrix(b)
    np.testing.assert_allclose(A.vstack(B).to_numpy(), np.vstack([a, b]))
    c = RNG.uniform(0, 9, size=(8, 3))
    np.testing.assert_allclose(
        A.hstack(session.matrix(c)).to_numpy(), np.hstack([a, c])
    )


def test_tiled_default_partitioner(session):
    A = session.tiled(RNG.uniform(0, 9, size=(40, 40)))
    partitioner = A.default_partitioner()
    assert partitioner.num_partitions >= 1
    for bi in range(A.grid_rows):
        for bj in range(A.grid_cols):
            assert 0 <= partitioner.partition((bi, bj)) < partitioner.num_partitions


def test_job_metrics_summary_text(session):
    A = session.tiled(RNG.uniform(0, 9, size=(20, 20)))
    session.run("+/[ v | ((i,j),v) <- A ]", A=A)
    text = session.engine.metrics.total.summary()
    assert "stages" in text and "shuffles" in text
