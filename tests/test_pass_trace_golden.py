"""Golden pass-trace snapshots for the paper's worked examples.

Every compile now records a :class:`~repro.planner.ir.PassTraceEntry`
per pass — name, note, and the physical IR rendered before/after.  These
tests pin the full trace (and the final physical DAG shape) for the
paper's flagship queries, so any change to the pipeline's decisions
shows up as a reviewable golden diff rather than a silent behavior
change.

Shapes and the cluster are fixed (TINY_CLUSTER, 10×10 tiles, dense
arange data), making every strategy choice deterministic.
"""

import numpy as np
import pytest

from repro import SacSession
from repro.engine import TINY_CLUSTER

TILE = 10


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=TILE)


def _mat(session, rows, cols):
    data = np.arange(float(rows * cols)).reshape(rows, cols) / (rows * cols)
    return session.tiled(data)


def trace_of(session, query, env):
    plan = session.compile(query, env).plan
    return [entry.summary() for entry in plan.trace], (
        plan.trace[-1].after if plan.trace else ""
    )


PASS_NAMES = [
    "normalize-bridge", "tiling-resolution", "strategy-selection",
    "adaptive-install", "cse", "fusion",
]

FUSION_OFF = (
    "fusion: disabled (enable with PlannerOptions(fusion=True) or"
    " REPRO_FUSION=1)"
)


def test_add_trace(session):
    """Query (8): matrix addition via an equality join -> preserve-tiling."""
    summaries, final = trace_of(
        session,
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N2,"
        " ii == i, jj == j ]",
        {"M": _mat(session, 30, 20), "N2": _mat(session, 30, 20),
         "n": 30, "m": 20},
    )
    assert summaries == [
        "normalize-bridge: builder 'tiled'; 2 generator(s) analyzed",
        "tiling-resolution: resolved 2 generator(s); index classes [0, 1],"
        " tile size 10",
        "strategy-selection: rule preserve-tiling [rewrote plan]",
        "adaptive-install: not a cost-chosen group-by-join candidate",
        "cse: disabled (enable with PlannerOptions(cse=True) or REPRO_CSE=1)",
        FUSION_OFF,
    ]
    assert final == (
        "Assemble[tiled](MapTiles[per-tile kernel]"
        "(Scan[i,j], Scan[ii,jj]))"
    )


def test_multiply_trace(session):
    """Query (9): group-by matrix multiply -> cost-chosen group-by-join."""
    summaries, final = trace_of(
        session,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- M, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        {"M": _mat(session, 30, 20), "C": _mat(session, 20, 30),
         "n": 30, "m": 30},
    )
    assert summaries == [
        "normalize-bridge: builder 'tiled'; 2 generator(s) analyzed",
        "tiling-resolution: resolved 2 generator(s); index classes"
        " [0, 1, 2], tile size 10",
        "strategy-selection: rule group-by-join (strategy"
        " gbj-broadcast-left) [rewrote plan]",
        "adaptive-install: not a cost-chosen group-by-join candidate",
        "cse: disabled (enable with PlannerOptions(cse=True) or REPRO_CSE=1)",
        FUSION_OFF,
    ]
    assert final == (
        "Assemble(GroupByJoin[broadcast]"
        "(Broadcast[left](Scan[i,k]), Scan[kk,j]))"
    )


def test_transpose_trace(session):
    """Section 5.1 transpose -> preserve-tiling over one scan."""
    summaries, final = trace_of(
        session,
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- M ]",
        {"M": _mat(session, 30, 20), "n": 30, "m": 20},
    )
    assert summaries == [
        "normalize-bridge: builder 'tiled'; 1 generator(s) analyzed",
        "tiling-resolution: resolved 1 generator(s); index classes [0, 1],"
        " tile size 10",
        "strategy-selection: rule preserve-tiling [rewrote plan]",
        "adaptive-install: not a cost-chosen group-by-join candidate",
        "cse: disabled (enable with PlannerOptions(cse=True) or REPRO_CSE=1)",
        FUSION_OFF,
    ]
    assert final == "Assemble[tiled](MapTiles[per-tile kernel](Scan[i,j]))"


def test_smoothing_trace(session):
    """Section 3 smoothing: range generators -> local interpreter fallback."""
    summaries, final = trace_of(
        session,
        "tiled(n,m)[ ((ii,jj),(+/a) / count/a) | ((i,j),a) <- M,"
        " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
        " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
        {"M": _mat(session, 9, 8), "n": 9, "m": 8},
    )
    assert summaries == [
        "normalize-bridge: builder 'tiled'; 1 generator(s) analyzed",
        "tiling-resolution: generators did not resolve to tiled storages",
        "strategy-selection: no distributed rule applies -> local fallback",
        "adaptive-install: skipped (local plan)",
        "cse: skipped (local plan)",
        "fusion: skipped (local plan)",
    ]
    assert final == ""


def test_factorization_step_trace(session):
    """Figure 4(c): the factorization step's X @ Y^T group-by multiply."""
    summaries, final = trace_of(
        session,
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),x) <- P, ((j,kk),y) <- Q,"
        " kk == k, let v = x*y, group by (i,j) ]",
        {"P": _mat(session, 30, 20), "Q": _mat(session, 30, 20),
         "n": 30, "m": 30},
    )
    assert summaries == [
        "normalize-bridge: builder 'tiled'; 2 generator(s) analyzed",
        "tiling-resolution: resolved 2 generator(s); index classes"
        " [0, 1, 2], tile size 10",
        "strategy-selection: rule group-by-join (strategy"
        " gbj-broadcast-left) [rewrote plan]",
        "adaptive-install: not a cost-chosen group-by-join candidate",
        "cse: disabled (enable with PlannerOptions(cse=True) or REPRO_CSE=1)",
        FUSION_OFF,
    ]
    assert final == (
        "Assemble(GroupByJoin[broadcast]"
        "(Broadcast[left](Scan[i,k]), Scan[j,kk]))"
    )


def test_trace_appears_in_explain(session):
    """``explain()`` lists the pass trace between candidates and pseudocode."""
    report = session.explain(
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- M ]",
        {"M": _mat(session, 30, 20), "n": 30, "m": 20},
    )
    assert "passes:" in report
    for name in PASS_NAMES:
        assert name in report


# ----------------------------------------------------------------------
# Fusion-pass goldens: the seven query shapes, fusion on
# ----------------------------------------------------------------------


@pytest.fixture()
def fusion_session():
    from repro.planner import PlannerOptions

    return SacSession(
        cluster=TINY_CLUSTER, tile_size=TILE,
        options=PlannerOptions(fusion=True),
    )


#: (shape, query, env builder, expected fusion note prefix).  Covers the
#: pass's full decision surface: single-generator chains collapse whole
#: ("tiles"), multi-generator chains fuse after the join ("joined"),
#: guard chains pick up the Filter node, and the group-by / local /
#: shuffle shapes report exactly why nothing fused.
FUSION_SHAPES = [
    ("add", (
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N2,"
        " ii == i, jj == j ]"
    ), "fused 1 tile operator(s)"),
    ("scale", "tiled(n,m)[ ((i,j),2.0*v) | ((i,j),v) <- M ]",
     "fused 1 tile operator(s)"),
    ("transpose", "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- M ]",
     "fused 1 tile operator(s)"),
    ("guarded", "tiled(n,m)[ ((i,j),v*v) | ((i,j),v) <- M, i != j ]",
     "fused 2 tile operator(s)"),
    ("multiply", (
        "tiled(n,n)[ ((i,j),+/v) | ((i,k),a) <- M, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]"
    ), "no fusible MapTiles/Filter chain (rule group-by-join)"),
    ("shift", "tiled(n,m)[ ((i+1,j),v) | ((i,j),v) <- M, i+1 < n ]",
     "no fusible MapTiles/Filter chain (rule tiled-shuffle)"),
    ("smoothing", (
        "tiled(n,m)[ ((ii,jj),(+/a) / count/a) | ((i,j),a) <- M,"
        " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
        " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]"
    ), "skipped (local plan)"),
]


@pytest.mark.parametrize(
    "shape,query,note", FUSION_SHAPES, ids=[s[0] for s in FUSION_SHAPES]
)
def test_fusion_note_per_shape(fusion_session, shape, query, note):
    """The fusion pass's note is pinned for every query shape."""
    session = fusion_session
    env = {"M": _mat(session, 30, 20), "N2": _mat(session, 30, 20),
           "C": _mat(session, 20, 30), "n": 30, "m": 20}
    summaries, _final = trace_of(session, query, env)
    fusion_lines = [s for s in summaries if s.startswith("fusion:")]
    assert len(fusion_lines) == 1
    assert fusion_lines[0].startswith(f"fusion: {note}"), fusion_lines[0]


def test_fused_render_golden(fusion_session):
    """Fusion rewrites the chain into a single FusedKernel node."""
    session = fusion_session
    env = {"M": _mat(session, 30, 20), "n": 30, "m": 20}
    _summaries, final = trace_of(
        session, "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- M ]", env
    )
    assert final == "Assemble[tiled](FusedKernel[fused kernel](Scan[i,j]))"
    _summaries, final = trace_of(
        session,
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N2,"
        " ii == i, jj == j ]",
        {**env, "N2": _mat(session, 30, 20)},
    )
    assert final == (
        "Assemble[tiled](FusedKernel[fused kernel]"
        "(Scan[i,j], Scan[ii,jj]))"
    )
