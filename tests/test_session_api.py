"""Tests for SacSession, SacMatrix/SacVector, and the named operations."""

import numpy as np
import pytest

from repro import SacSession
from repro.core import ops
from repro.engine import TINY_CLUSTER

RNG = np.random.default_rng(77)
A_NP = RNG.uniform(0, 10, size=(45, 37))
B_NP = RNG.uniform(0, 10, size=(45, 37))
C_NP = RNG.uniform(0, 10, size=(37, 26))


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=16)


@pytest.fixture()
def handles(session):
    return session.matrix(A_NP), session.matrix(B_NP), session.matrix(C_NP)


# ----------------------------------------------------------------------
# ops module
# ----------------------------------------------------------------------


def test_ops_add_subtract_hadamard(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    np.testing.assert_allclose(ops.add(session, A, B).to_numpy(), A_NP + B_NP)
    np.testing.assert_allclose(ops.subtract(session, A, B).to_numpy(), A_NP - B_NP)
    np.testing.assert_allclose(ops.hadamard(session, A, B).to_numpy(), A_NP * B_NP)


def test_ops_scale_shift_transpose(session):
    A = session.tiled(A_NP)
    np.testing.assert_allclose(ops.scale(session, A, 2.5).to_numpy(), 2.5 * A_NP)
    np.testing.assert_allclose(ops.shift(session, A, 1.0).to_numpy(), A_NP + 1.0)
    np.testing.assert_allclose(ops.transpose(session, A).to_numpy(), A_NP.T)


def test_ops_multiplies(session):
    A, C = session.tiled(A_NP), session.tiled(C_NP)
    B = session.tiled(B_NP)
    np.testing.assert_allclose(ops.multiply(session, A, C).to_numpy(), A_NP @ C_NP)
    np.testing.assert_allclose(ops.multiply_nt(session, A, B).to_numpy(), A_NP @ B_NP.T)
    np.testing.assert_allclose(ops.multiply_tn(session, A, B).to_numpy(), A_NP.T @ B_NP)


def test_ops_reductions(session):
    A = session.tiled(A_NP)
    np.testing.assert_allclose(ops.row_sums(session, A).to_numpy(), A_NP.sum(axis=1))
    np.testing.assert_allclose(ops.col_sums(session, A).to_numpy(), A_NP.sum(axis=0))
    np.testing.assert_allclose(ops.row_max(session, A).to_numpy(), A_NP.max(axis=1))
    assert np.isclose(ops.total_sum(session, A), A_NP.sum())
    assert np.isclose(ops.frobenius_norm_sq(session, A), (A_NP ** 2).sum())


def test_ops_diagonal_trace(session):
    sq = A_NP[:37, :37]
    A = session.tiled(sq)
    np.testing.assert_allclose(ops.diagonal(session, A).to_numpy(), np.diag(sq))
    assert np.isclose(ops.trace(session, A), np.trace(sq))


def test_ops_rotate_and_slice(session):
    A = session.tiled(A_NP)
    np.testing.assert_allclose(
        ops.rotate_rows(session, A).to_numpy(), np.roll(A_NP, 1, axis=0)
    )
    np.testing.assert_allclose(
        ops.slice_rows(session, A, 5, 20).to_numpy(), A_NP[5:20]
    )


def test_ops_vectors(session):
    u_np, v_np = RNG.normal(size=20), RNG.normal(size=20)
    u, v = session.tiled_vector(u_np), session.tiled_vector(v_np)
    assert np.isclose(ops.inner(session, u, v), u_np @ v_np)
    np.testing.assert_allclose(
        ops.outer(session, u, v).to_numpy(), np.outer(u_np, v_np)
    )
    A = session.tiled(A_NP)
    x = session.tiled_vector(RNG.normal(size=37))
    np.testing.assert_allclose(
        ops.matvec(session, A, x).to_numpy(), A_NP @ x.to_numpy()
    )


def test_ops_smooth_matches_definition(session):
    a = RNG.uniform(0, 10, size=(6, 7))
    A = session.tiled(a)
    result = ops.smooth(session, A).to_numpy()
    # Interior cell: mean of its 3x3 neighbourhood.
    assert np.isclose(result[2, 3], a[1:4, 2:5].mean())
    # Corner: mean of the available 2x2 neighbourhood.
    assert np.isclose(result[0, 0], a[0:2, 0:2].mean())


def test_ops_shape_validation(session):
    A = session.tiled(A_NP)
    C = session.tiled(C_NP)
    with pytest.raises(ValueError):
        ops.add(session, A, C)
    with pytest.raises(ValueError):
        ops.multiply(session, A, A)
    with pytest.raises(ValueError):
        ops.slice_rows(session, A, 30, 10)


# ----------------------------------------------------------------------
# SacMatrix / SacVector operators
# ----------------------------------------------------------------------


def test_operator_expressions(handles):
    A, B, C = handles
    np.testing.assert_allclose((A + B).to_numpy(), A_NP + B_NP)
    np.testing.assert_allclose((A - B).to_numpy(), A_NP - B_NP)
    np.testing.assert_allclose((A * B).to_numpy(), A_NP * B_NP)
    np.testing.assert_allclose((A * 3.0).to_numpy(), 3 * A_NP)
    np.testing.assert_allclose((2.0 * A).to_numpy(), 2 * A_NP)
    np.testing.assert_allclose((A + 1.0).to_numpy(), A_NP + 1)
    np.testing.assert_allclose((-A).to_numpy(), -A_NP)
    np.testing.assert_allclose((A @ C).to_numpy(), A_NP @ C_NP)
    np.testing.assert_allclose(A.T.to_numpy(), A_NP.T)


def test_composed_expression(handles):
    A, B, _ = handles
    result = ((A + B) * 0.5).T
    np.testing.assert_allclose(result.to_numpy(), ((A_NP + B_NP) * 0.5).T)


def test_matrix_methods(handles):
    A, B, _ = handles
    np.testing.assert_allclose(A.row_sums().to_numpy(), A_NP.sum(axis=1))
    np.testing.assert_allclose(A.col_sums().to_numpy(), A_NP.sum(axis=0))
    assert np.isclose(A.sum(), A_NP.sum())
    assert np.isclose(A.frobenius_norm(), np.linalg.norm(A_NP))
    np.testing.assert_allclose(
        A.matmul_nt(B).to_numpy(), A_NP @ B_NP.T
    )
    np.testing.assert_allclose(
        A.matmul_tn(B).to_numpy(), A_NP.T @ B_NP
    )
    assert A.shape == (45, 37)


def test_matvec_operator(session):
    A = session.matrix(A_NP)
    x_np = RNG.normal(size=37)
    x = session.vector(x_np)
    np.testing.assert_allclose((A @ x).to_numpy(), A_NP @ x_np)


def test_vector_methods(session):
    u = session.vector(np.array([1.0, 2.0, 3.0]))
    v = session.vector(np.array([2.0, 2.0, 2.0]))
    assert np.isclose(u.dot(v), 12.0)
    assert u.is_sorted()
    assert not session.vector(np.array([3.0, 1.0])).is_sorted()
    assert np.isclose(u.sum(), 6.0)
    np.testing.assert_allclose(
        u.outer(v).to_numpy(), np.outer([1, 2, 3], [2, 2, 2])
    )


def test_cache_returns_self(handles):
    A, _, _ = handles
    assert A.cache() is A


def test_repr(session, handles):
    A, _, _ = handles
    assert "SacMatrix" in repr(A)
    assert "SacVector" in repr(session.vector(np.zeros(3)))


# ----------------------------------------------------------------------
# Session plumbing
# ----------------------------------------------------------------------


def test_session_env_dict_and_kwargs(session):
    V = session.tiled_vector(np.array([1.0, 2.0]))
    assert session.run("+/[ v | (i,v) <- V ]", {"V": V}) == 3.0
    assert session.run("+/[ v | (i,v) <- V ]", V=V) == 3.0


def test_interpret_matches_run(session):
    A = session.tiled(A_NP[:10, :10])
    query = "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]"
    fast = session.run(query, A=A, n=10).to_numpy()
    slow = session.interpret(query, A=A, n=10).to_numpy()
    np.testing.assert_allclose(fast, slow)


def test_simulated_time_accumulates(session):
    A, B = session.tiled(A_NP), session.tiled(B_NP)
    before = session.simulated_time()
    ops.add(session, A, B).to_numpy()
    assert session.simulated_time() > before


def test_sessions_are_isolated():
    s1 = SacSession(cluster=TINY_CLUSTER, tile_size=8)
    s2 = SacSession(cluster=TINY_CLUSTER, tile_size=8)
    V = s1.tiled_vector(np.ones(4))
    s1.run("+/[ v | (i,v) <- V ]", V=V)
    assert s2.engine.metrics.total.tasks == 0


def test_parse_cache_reuses_ast(session):
    query = "+/[ v | (i,v) <- V ]"
    V = session.tiled_vector(np.ones(4))
    session.run(query, V=V)
    first = session._parse_cache[query]
    session.run(query, V=V)
    assert session._parse_cache[query] is first


def test_parse_cache_does_not_leak_between_queries(session):
    V = session.tiled_vector(np.arange(4.0))
    assert session.run("+/[ v | (i,v) <- V ]", V=V) == 6.0
    assert session.run("max/[ v | (i,v) <- V ]", V=V) == 3.0
