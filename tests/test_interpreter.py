"""Reference-interpreter tests: the paper's Sections 2–3 examples."""

import numpy as np
import pytest

from repro.comprehension import (
    Interpreter, SacNameError, SacPatternError, SacTypeError, desugar,
    normalize, parse,
)
from repro.storage import CooMatrix, CsrMatrix, DenseMatrix, DenseVector


def run(source, env, is_array=lambda _n: True):
    expr = normalize(desugar(parse(source), is_array=is_array))
    return Interpreter(env).evaluate(expr)


@pytest.fixture()
def matrices():
    rng = np.random.default_rng(11)
    m = DenseMatrix.from_numpy(rng.uniform(0, 10, size=(4, 5)))
    n = DenseMatrix.from_numpy(rng.uniform(0, 10, size=(4, 5)))
    return m, n


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def test_arithmetic_and_logic():
    assert run("1 + 2 * 3", {}) == 7
    assert run("(1 + 2) * 3", {}) == 9
    assert run("true && false || true", {})
    assert run("!false", {})
    assert run("-x", {"x": 4}) == -4


def test_integer_division_is_scala_style():
    assert run("7 / 2", {}) == 3
    assert run("7.0 / 2", {}) == 3.5
    assert run("7 % 3", {}) == 1


def test_if_expression():
    assert run("if (x > 0) x else 0 - x", {"x": -5}) == 5


def test_builtin_calls():
    assert run("min(3, 4)", {}) == 3
    assert run("max(3, 4)", {}) == 4
    assert run("abs(0 - 2)", {}) == 2
    assert run("sqrt(9.0)", {}) == 3.0


def test_env_function_call():
    assert run("double(21)", {"double": lambda x: x * 2}) == 42


def test_unknown_function_raises():
    with pytest.raises(SacNameError):
        run("mystery(1)", {})


def test_unbound_variable_raises():
    with pytest.raises(SacNameError):
        run("x + 1", {})


def test_field_access_on_record():
    env = {"e": {"name": "alice", "dno": 2}}
    assert run("e.name", env) == "alice"
    with pytest.raises(SacNameError):
        run("e.missing", env)


def test_length_field():
    assert run("v.length", {"v": [1, 2, 3]}) == 3


def test_range_values():
    assert run("[ i | i <- 0 until 4 ]", {}) == [0, 1, 2, 3]
    assert run("[ i | i <- 1 to 3 ]", {}) == [1, 2, 3]


# ----------------------------------------------------------------------
# Comprehension basics
# ----------------------------------------------------------------------


def test_generator_over_list_of_pairs():
    env = {"V": [(0, 10), (1, 20)]}
    assert run("[ v + i | (i,v) <- V ]", env) == [10, 21]


def test_guard_filters():
    env = {"V": [(0, 1), (1, 5), (2, 9)]}
    assert run("[ v | (i,v) <- V, v > 2 ]", env) == [5, 9]


def test_let_binding():
    env = {"V": [(0, 3)]}
    assert run("[ w | (i,v) <- V, let w = v * v ]", env) == [9]


def test_wildcard_pattern():
    env = {"V": [(0, 1), (1, 2)]}
    assert run("[ 1 | (_, _) <- V ]", env) == [1, 1]


def test_pattern_mismatch_raises():
    expr = normalize(desugar(parse("[ a | (a, b, c) <- V ]")))
    with pytest.raises(SacPatternError):
        Interpreter({"V": [(1, 2)]}).evaluate(expr)


def test_cross_product_of_generators():
    env = {"A": [(0, "a"), (1, "b")], "B": [(0, "x")]}
    assert run("[ (v, w) | (i,v) <- A, (j,w) <- B ]", env) == [
        ("a", "x"), ("b", "x"),
    ]


def test_dict_source_iterates_items():
    env = {"D": {1: "one"}}
    assert run("[ (k, v) | (k,v) <- D ]", env) == [(1, "one")]


def test_non_iterable_source_raises():
    with pytest.raises(SacTypeError):
        run("[ x | x <- n ]", {"n": 42})


# ----------------------------------------------------------------------
# Group-by semantics (Rule 11)
# ----------------------------------------------------------------------


def test_group_by_lifts_variables():
    env = {"V": [(0, 1), (0, 2), (1, 5)]}
    result = run("[ (i, +/v) | (i,v) <- V, group by i ]", env)
    assert result == [(0, 3), (1, 5)]


def test_group_by_count():
    env = {"V": [(0, 1), (0, 2), (1, 5)]}
    assert run("[ (i, count(v)) | (i,v) <- V, group by i ]", env) == [(0, 2), (1, 1)]
    assert run("[ (i, count/v) | (i,v) <- V, group by i ]", env) == [(0, 2), (1, 1)]


def test_group_by_avg():
    env = {"V": [(0, 2), (0, 4)]}
    assert run("[ (i, avg/v) | (i,v) <- V, group by i ]", env) == [(0, 3.0)]


def test_group_by_preserves_first_seen_order():
    env = {"V": [(2, 1), (0, 1), (2, 1)]}
    result = run("[ i | (i,v) <- V, group by i ]", env)
    assert result == [2, 0]


def test_employees_per_department():
    """The paper's introduction example."""
    env = {
        "Employees": [
            {"name": "ann", "dno": 1}, {"name": "bob", "dno": 1},
            {"name": "cy", "dno": 2},
        ],
        "Departments": [
            {"dnumber": 1, "name": "cs"}, {"dnumber": 2, "name": "ee"},
        ],
    }
    result = run(
        "[ (d.name, count(e)) | e <- Employees, d <- Departments,"
        " e.dno == d.dnumber, group by d.name ]",
        env, is_array=lambda _n: False,
    )
    assert sorted(result) == [("cs", 2), ("ee", 1)]


def test_group_by_key_expression_form():
    env = {"L": [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0)], "N": 2}
    result = run("[ (i/N, +/v) | (i,v) <- L, group by i/N ]", env)
    assert result == [(0, 3.0), (1, 7.0)]


def test_multiple_group_bys_lift_twice():
    env = {"V": [((0, 0), 1), ((0, 1), 2), ((1, 0), 3)]}
    # First group by (i, j), then by i: count(v) counts the (i, j)
    # groups within each i group (v is lifted twice, to a list of lists).
    result = run(
        "[ (i, count(v)) | ((i,j),v) <- V, group by (i, j), group by i ]",
        env,
    )
    assert result == [(0, 2), (1, 1)]


def test_post_group_guard():
    env = {"V": [(0, 1), (0, 2), (1, 10)]}
    result = run("[ (i, +/v) | (i,v) <- V, group by i, +/v > 5 ]", env)
    assert result == [(1, 10)]


# ----------------------------------------------------------------------
# Paper queries on dense storages
# ----------------------------------------------------------------------


def test_fig1_row_sums(matrices):
    m, _ = matrices
    result = run(
        "vector(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
        {"M": m, "n": m.rows},
    )
    assert isinstance(result, DenseVector)
    np.testing.assert_allclose(result.data, m.data.sum(axis=1))


def test_query8_matrix_addition(matrices):
    m, n = matrices
    result = run(
        "matrix(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N,"
        " ii == i, jj == j ]",
        {"M": m, "N": n, "n": m.rows, "m": m.cols},
    )
    np.testing.assert_allclose(result.data, m.data + n.data)


def test_addition_via_indexing(matrices):
    m, n = matrices
    result = run(
        "matrix(n,m)[ ((i,j),a+N[i,j]) | ((i,j),a) <- M ]",
        {"M": m, "N": n, "n": m.rows, "m": m.cols},
    )
    np.testing.assert_allclose(result.data, m.data + n.data)


def test_query9_matrix_multiplication():
    rng = np.random.default_rng(5)
    a = rng.normal(size=(3, 4))
    b = rng.normal(size=(4, 2))
    result = run(
        "matrix(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
        " kk == k, let v = a*b, group by (i,j) ]",
        {"A": DenseMatrix.from_numpy(a), "B": DenseMatrix.from_numpy(b),
         "n": 3, "m": 2},
    )
    np.testing.assert_allclose(result.data, a @ b)


def test_matrix_smoothing():
    a = np.arange(12, dtype=float).reshape(3, 4)
    result = run(
        "matrix(n,m)[ ((ii,jj),(+/a)/a.length) | ((i,j),a) <- M,"
        " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
        " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
        {"M": DenseMatrix.from_numpy(a), "n": 3, "m": 4},
    )
    # Check one interior and one corner cell against the definition.
    assert np.isclose(result.get(1, 1), a[0:3, 0:3].mean())
    assert np.isclose(result.get(0, 0), a[0:2, 0:2].mean())


def test_sortedness_check():
    sorted_v = DenseVector(np.array([1.0, 2.0, 3.0]))
    unsorted_v = DenseVector(np.array([2.0, 1.0, 3.0]))
    query = "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]"
    assert run(query, {"V": sorted_v})
    assert not run(query, {"V": unsorted_v})


def test_matrix_transpose(matrices):
    m, _ = matrices
    result = run(
        "matrix(m,n)[ ((j,i),v) | ((i,j),v) <- M ]",
        {"M": m, "n": m.rows, "m": m.cols},
    )
    np.testing.assert_allclose(result.data, m.data.T)


def test_vector_inner_product():
    u = DenseVector(np.array([1.0, 2.0, 3.0]))
    v = DenseVector(np.array([4.0, 5.0, 6.0]))
    result = run("+/[ x * y | (i,x) <- U, (j,y) <- V, j == i ]", {"U": u, "V": v})
    assert np.isclose(result, 32.0)


def test_vector_outer_product():
    u = DenseVector(np.array([1.0, 2.0]))
    v = DenseVector(np.array([3.0, 4.0, 5.0]))
    result = run(
        "matrix(n,m)[ ((i,j), x*y) | (i,x) <- U, (j,y) <- V ]",
        {"U": u, "V": v, "n": 2, "m": 3},
    )
    np.testing.assert_allclose(result.data, np.outer(u.data, v.data))


def test_diagonal_extraction(matrices):
    m, _ = matrices
    result = run(
        "vector(n)[ (i, v) | ((i,j),v) <- M, i == j ]",
        {"M": m, "n": min(m.rows, m.cols)},
    )
    np.testing.assert_allclose(result.data, np.diag(m.data))


# ----------------------------------------------------------------------
# Storage interoperability in the interpreter
# ----------------------------------------------------------------------


def test_sparse_coo_only_traverses_nonzero():
    coo = CooMatrix.from_items(3, 3, [((0, 0), 5.0), ((2, 1), 7.0)])
    result = run("[ ((i,j),v) | ((i,j),v) <- M ]", {"M": coo})
    assert result == [((0, 0), 5.0), ((2, 1), 7.0)]


def test_mixed_storage_join():
    dense = DenseMatrix.from_numpy(np.ones((2, 2)))
    coo = CooMatrix.from_items(2, 2, [((0, 1), 3.0)])
    result = run(
        "matrix(n,m)[ ((i,j),a+b) | ((i,j),a) <- D, ((ii,jj),b) <- S,"
        " ii == i, jj == j ]",
        {"D": dense, "S": coo, "n": 2, "m": 2},
    )
    # Only the position present in the sparse matrix joins.
    assert result.get(0, 1) == 4.0
    assert result.get(0, 0) == 0.0


def test_csr_roundtrip_through_comprehension():
    a = np.array([[1.0, 0.0], [0.0, 2.0]])
    csr = CsrMatrix.from_numpy(a)
    result = run(
        "csr(n,m)[ ((i,j), v * 2.0) | ((i,j),v) <- M ]",
        {"M": csr, "n": 2, "m": 2},
    )
    assert isinstance(result, CsrMatrix)
    np.testing.assert_allclose(result.to_numpy(), 2 * a)


def test_numpy_arrays_act_as_storages():
    a = np.arange(6.0).reshape(2, 3)
    total = run("+/[ v | ((i,j),v) <- A ]", {"A": a})
    assert total == a.sum()
