"""Focused tests for the coordinate translation (Rules 13/14)."""

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.engine import TINY_CLUSTER
from repro.planner import RULE_COORDINATE

RNG = np.random.default_rng(17)


@pytest.fixture()
def session():
    return SacSession(
        cluster=TINY_CLUSTER, tile_size=8,
        options=PlannerOptions(force_coordinate=True),
    )


def test_composite_join_keys(session):
    """Two equality conditions between the same pair of generators form
    one composite-key join (Rule 14)."""
    a = RNG.uniform(0, 9, size=(10, 8))
    b = RNG.uniform(0, 9, size=(10, 8))
    A, B = session.tiled(a), session.tiled(b)
    compiled = session.compile(
        "tiled(n,m)[ ((i,j), x + y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i, jj == j ]",
        A=A, B=B, n=10, m=8,
    )
    assert compiled.plan.rule == RULE_COORDINATE
    np.testing.assert_allclose(compiled.execute().to_numpy(), a + b, rtol=1e-10)


def test_computed_join_keys(session):
    """Join keys may be expressions, not just variables."""
    a = RNG.uniform(0, 9, size=(6, 6))
    A = session.tiled(a)
    B = session.tiled(a)
    # Pair each element with the one one column to its right.
    result = session.run(
        "rdd[ ((i,j), x + y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i, jj == j + 1 ]",
        A=A, B=B,
    ).collect()
    expected = {
        (i, j): a[i, j] + a[i, j + 1]
        for i in range(6) for j in range(5)
    }
    assert dict(result) == pytest.approx(expected)


def test_cartesian_when_no_join_condition(session):
    u = session.tiled_vector(np.array([1.0, 2.0]))
    v = session.tiled_vector(np.array([10.0, 20.0, 30.0]))
    compiled = session.compile(
        "tiled(n,m)[ ((i,j), x * y) | (i,x) <- U, (j,y) <- V ]",
        U=u, V=v, n=2, m=3,
    )
    assert compiled.plan.rule == RULE_COORDINATE
    np.testing.assert_allclose(
        compiled.execute().to_numpy(), np.outer([1, 2], [10, 20, 30])
    )


def test_three_way_join_chain(session):
    a = RNG.uniform(0, 9, size=(5, 5))
    A = session.tiled(a)
    result = session.run(
        "rdd[ (i, x + y + z) | ((i,j),x) <- A, ((i2,j2),y) <- A,"
        " i2 == i, j2 == j, ((i3,j3),z) <- A, i3 == i, j3 == j ]",
        A=A,
    ).collect_as_map()
    # Every element joined with itself twice: 3x per (i, j); keyed by i,
    # later duplicates win but all values for a given i come from row i.
    for i, value in result.items():
        assert any(np.isclose(value, 3 * a[i, j]) for j in range(5))


def test_mixed_coo_and_tiled_sources(session):
    from repro.storage import CooMatrix

    dense = RNG.uniform(1, 2, size=(6, 6))
    sparse = CooMatrix.from_items(6, 6, [((1, 2), 5.0), ((4, 0), 3.0)])
    D = session.tiled(dense)
    result = session.run(
        "rdd[ ((i,j), s * d) | ((i,j),s) <- S, ((ii,jj),d) <- D,"
        " ii == i, jj == j ]",
        S=sparse, D=D,
    ).collect()
    assert dict(result) == pytest.approx({
        (1, 2): 5.0 * dense[1, 2],
        (4, 0): 3.0 * dense[4, 0],
    })


def test_group_by_with_residual_function(session):
    """Rule 13's mapValues(f) stage: a non-identity residual."""
    a = RNG.uniform(1, 9, size=(8, 8))
    A = session.tiled(a)
    result = session.run(
        "tiled_vector(n)[ (i, (+/v) / count/v) | ((i,j),v) <- A, group by i ]",
        A=A, n=8,
    )
    np.testing.assert_allclose(result.to_numpy(), a.mean(axis=1), rtol=1e-10)


def test_coordinate_filters(session):
    a = RNG.uniform(0, 9, size=(7, 7))
    A = session.tiled(a)
    total = session.run(
        "+/[ v | ((i,j),v) <- A, v > 5.0, i != j ]", A=A
    )
    mask = (a > 5.0) & ~np.eye(7, dtype=bool)
    assert np.isclose(total, a[mask].sum())
