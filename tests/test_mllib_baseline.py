"""Tests for the MLlib-workalike BlockMatrix baseline."""

import numpy as np
import pytest

from repro.engine import EngineContext, TINY_CLUSTER
from repro.mllib import PURE_JVM_BREEZE, BlockMatrix, KernelProfile

RNG = np.random.default_rng(31)
A_NP = RNG.uniform(0, 10, size=(45, 37))
B_NP = RNG.uniform(0, 10, size=(45, 37))
C_NP = RNG.uniform(0, 10, size=(37, 26))


@pytest.fixture()
def engine():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


def block(engine, array, size=16, profile=PURE_JVM_BREEZE):
    return BlockMatrix.from_numpy(engine, array, size, profile=profile)


def test_from_numpy_roundtrip(engine):
    m = block(engine, A_NP)
    np.testing.assert_allclose(m.to_numpy(), A_NP)
    assert m.num_row_blocks == 3 and m.num_col_blocks == 3


def test_block_shape_ragged_edges(engine):
    m = block(engine, A_NP)
    assert m.block_shape(0, 0) == (16, 16)
    assert m.block_shape(2, 2) == (13, 5)


def test_validate_accepts_well_formed(engine):
    block(engine, A_NP).validate()


def test_validate_rejects_bad_blocks(engine):
    bad = BlockMatrix(
        engine.parallelize([((0, 0), np.zeros((3, 3)))]), 16, 16, 45, 37
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_add(engine):
    result = block(engine, A_NP).add(block(engine, B_NP))
    np.testing.assert_allclose(result.to_numpy(), A_NP + B_NP)


def test_subtract(engine):
    result = block(engine, A_NP).subtract(block(engine, B_NP))
    np.testing.assert_allclose(result.to_numpy(), A_NP - B_NP)


def test_add_dimension_mismatch(engine):
    with pytest.raises(ValueError):
        block(engine, A_NP).add(block(engine, C_NP))


def test_multiply(engine):
    result = block(engine, A_NP).multiply(block(engine, C_NP))
    np.testing.assert_allclose(result.to_numpy(), A_NP @ C_NP)


def test_multiply_dimension_mismatch(engine):
    with pytest.raises(ValueError):
        block(engine, A_NP).multiply(block(engine, B_NP))


def test_multiply_block_size_mismatch(engine):
    with pytest.raises(ValueError):
        block(engine, A_NP, 16).multiply(block(engine, C_NP, 10))


def test_multiply_chain(engine):
    d_np = RNG.uniform(0, 1, size=(26, 11))
    result = (
        block(engine, A_NP)
        .multiply(block(engine, C_NP))
        .multiply(block(engine, d_np))
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP @ C_NP @ d_np)


def test_transpose(engine):
    result = block(engine, A_NP).transpose()
    np.testing.assert_allclose(result.to_numpy(), A_NP.T)
    assert result.num_rows == A_NP.shape[1]


def test_transpose_multiply(engine):
    result = block(engine, A_NP).transpose().multiply(block(engine, B_NP))
    np.testing.assert_allclose(result.to_numpy(), A_NP.T @ B_NP)


def test_map_blocks_scaling(engine):
    result = block(engine, A_NP).map_blocks(lambda b: 0.5 * b)
    np.testing.assert_allclose(result.to_numpy(), 0.5 * A_NP)


def test_simulate_multiply_covers_all_blocks(engine):
    a = block(engine, A_NP)
    c = block(engine, C_NP)
    from repro.engine import GridPartitioner

    partitioner = GridPartitioner(a.num_row_blocks, c.num_col_blocks, 4)
    a_dest, b_dest = a._simulate_multiply(c, partitioner)
    assert set(a_dest) == {(i, k) for i in range(3) for k in range(3)}
    assert set(b_dest) == {(k, j) for k in range(3) for j in range(2)}
    # Every destination list is nonempty and within range.
    for dests in list(a_dest.values()) + list(b_dest.values()):
        assert dests
        assert all(0 <= p < partitioner.num_partitions for p in dests)


def test_jvm_profile_charges_simulated_compute_only(engine):
    """The kernel profile affects simulated time, never correctness."""
    fast_engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    slow_engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    a, c = A_NP, C_NP
    no_profile = BlockMatrix.from_numpy(fast_engine, a, 16, profile=None)
    with_profile = BlockMatrix.from_numpy(
        slow_engine, a, 16, profile=KernelProfile(gemm_slowdown=50.0)
    )
    r1 = no_profile.multiply(BlockMatrix.from_numpy(fast_engine, c, 16, profile=None))
    r2 = with_profile.multiply(
        BlockMatrix.from_numpy(slow_engine, c, 16, profile=KernelProfile(gemm_slowdown=50.0))
    )
    np.testing.assert_allclose(r1.to_numpy(), r2.to_numpy())
    assert (
        slow_engine.metrics.total.compute_seconds
        > fast_engine.metrics.total.compute_seconds
    )


def test_multiply_shuffles_replicated_inputs(engine):
    a = block(engine, A_NP)
    c = block(engine, C_NP)
    snapshot = engine.metrics.snapshot()
    a.multiply(c).to_numpy()
    delta = engine.metrics.delta_since(snapshot)
    assert delta.shuffles >= 2  # the two cogroup sides at least
    assert delta.shuffle_records > a.num_row_blocks * a.num_col_blocks


def test_cache(engine):
    m = block(engine, A_NP).cache()
    assert m.to_numpy() is not None
