"""Property tests for density-aware cost estimates.

Two contracts pin the density scaling in :mod:`repro.planner.cost`:

* estimates are **monotone non-decreasing in density** — for every
  candidate strategy, a sparser input is never priced above a denser
  one (bytes, records, broadcast volume, and total time);
* at density 1.0 every estimate is **byte-identical** to the estimate
  for an input carrying no density information at all — the scaling is
  purely multiplicative, so the dense fig4a/fig4b plan choices and
  counters are provably unchanged by this feature.

Densities are injected by setting the ``stats`` attribute on dense
tiled matrices; planning re-runs on every compile (the plan cache only
stores the parse→normalize front half), so each injection is honored.
"""

import numpy as np
import pytest

from repro import SacSession
from repro.engine import BENCH_CLUSTER
from repro.planner import STRATEGY_COORDINATE, STRATEGY_REPLICATE
from repro.storage import DensityStats
from repro.storage import stats as density
from repro.storage.stats import DENSE

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)
RNG = np.random.default_rng(21)
N, TILE = 180, 45

DENSITIES = [0.02, 0.1, 0.3, 0.6, 0.85, 1.0]


def _candidates(left_stats, right_stats):
    session = SacSession(cluster=BENCH_CLUSTER, tile_size=TILE)
    a = RNG.uniform(0, 1, size=(N, N))
    b = RNG.uniform(0, 1, size=(N, N))
    A = session.tiled(a)
    B = session.tiled(b)
    if left_stats is not None:
        A.stats = left_stats
    if right_stats is not None:
        B.stats = right_stats
    compiled = session.compile(MULTIPLY, A=A, B=B, n=N, m=N)
    assert compiled.plan.candidates
    return compiled.plan.candidates


# ----------------------------------------------------------------------
# Monotonicity
# ----------------------------------------------------------------------


def test_estimates_monotone_in_density_both_sides():
    previous = None
    for d in DENSITIES:
        stats = DensityStats(d, d)
        candidates = _candidates(stats, stats)
        if previous is not None:
            for name, est in candidates.items():
                before = previous[name]
                assert est.shuffle_bytes >= before.shuffle_bytes, name
                assert est.shuffle_records >= before.shuffle_records, name
                assert est.broadcast_bytes >= before.broadcast_bytes, name
                assert est.total_seconds >= before.total_seconds - 1e-12, name
        previous = candidates


def test_estimates_monotone_in_one_side():
    previous = None
    fixed = DensityStats(0.4, 0.4)
    for d in DENSITIES:
        candidates = _candidates(DensityStats(d, d), fixed)
        if previous is not None:
            for name, est in candidates.items():
                assert est.shuffle_bytes >= previous[name].shuffle_bytes, name
        previous = candidates


# ----------------------------------------------------------------------
# Byte-identity at density 1.0
# ----------------------------------------------------------------------


def test_density_one_byte_identical_to_unannotated():
    plain = _candidates(None, None)
    annotated = _candidates(DensityStats(1.0, 1.0), DensityStats(1.0, 1.0))
    for name in plain:
        p, a = plain[name], annotated[name]
        assert a.shuffle_bytes == p.shuffle_bytes, name
        assert a.shuffle_records == p.shuffle_records, name
        assert a.broadcast_bytes == p.broadcast_bytes, name
        assert a.tasks == p.tasks, name
        assert a.compute_seconds == p.compute_seconds, name
        assert a.network_seconds == p.network_seconds, name
        assert a.launch_seconds == p.launch_seconds, name
        assert a.densities == p.densities == "dense", name


# ----------------------------------------------------------------------
# Which density level governs which path
# ----------------------------------------------------------------------


def test_element_density_only_moves_the_coordinate_path():
    """Tiled strategies shuffle densified tiles, so their bytes track
    *block* density; only the coordinate path ships per-element records."""
    sparse_elems = _candidates(DensityStats(0.05, 0.5), DensityStats(0.05, 0.5))
    dense_elems = _candidates(DensityStats(0.95, 0.5), DensityStats(0.95, 0.5))
    for name in sparse_elems:
        if name == STRATEGY_COORDINATE:
            assert (
                sparse_elems[name].shuffle_bytes < dense_elems[name].shuffle_bytes
            )
        else:
            assert (
                sparse_elems[name].shuffle_bytes == dense_elems[name].shuffle_bytes
            ), name


def test_block_density_does_not_move_the_coordinate_path():
    a = _candidates(DensityStats(0.3, 0.1), DensityStats(0.3, 0.1))
    b = _candidates(DensityStats(0.3, 0.9), DensityStats(0.3, 0.9))
    assert (
        a[STRATEGY_COORDINATE].shuffle_bytes == b[STRATEGY_COORDINATE].shuffle_bytes
    )
    assert a[STRATEGY_REPLICATE].shuffle_bytes < b[STRATEGY_REPLICATE].shuffle_bytes


def test_explain_surfaces_priced_densities():
    session = SacSession(cluster=BENCH_CLUSTER, tile_size=TILE)
    A = session.tiled(RNG.uniform(size=(N, N)))
    B = session.tiled(RNG.uniform(size=(N, N)))
    A.stats = DensityStats(0.125, 0.25)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=N, m=N)
    text = compiled.explain()
    assert "priced at" in text
    assert "bd=0.25" in text
    assert compiled.plan.details["priced_densities"].startswith("left ")


# ----------------------------------------------------------------------
# DensityStats combinator properties
# ----------------------------------------------------------------------


def test_stats_clamped_to_unit_interval():
    assert DensityStats(2.0, -1.0).density == 1.0
    assert DensityStats(2.0, -1.0).block_density > 0.0
    assert DENSE.is_dense


def test_union_and_product_bounds():
    a = DensityStats(0.3, 0.2)
    b = DensityStats(0.4, 0.5)
    u = density.union(a, b)
    assert u.density == pytest.approx(0.7)
    assert u.block_density == pytest.approx(0.7)
    assert density.union(DENSE, a).is_dense
    p = density.product(a, b)
    assert p.density == pytest.approx(0.3)
    assert p.block_density == pytest.approx(0.2)


def test_contraction_estimate_properties():
    a = DensityStats(0.2, 0.2)
    b = DensityStats(0.3, 0.3)
    c = density.contraction(a, b, join_dim=64, grid_join=4)
    # Never below a single addend's probability, never above 1.
    assert a.density * b.density <= c.density <= 1.0
    assert a.block_density * b.block_density <= c.block_density <= 1.0
    # More addends fill more.
    wider = density.contraction(a, b, join_dim=256, grid_join=16)
    assert wider.density >= c.density
    assert wider.block_density >= c.block_density
    # Dense inputs stay dense through any contraction.
    assert density.contraction(DENSE, DENSE, 7, 3).is_dense
