"""Unit tests for the engine's RDD transformations and actions."""

import pytest

from repro.engine import EngineContext, HashPartitioner, TINY_CLUSTER


@pytest.fixture()
def ctx():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


def test_parallelize_collect_roundtrip(ctx):
    data = list(range(23))
    assert ctx.parallelize(data, 5).collect() == data


def test_parallelize_preserves_order_across_partitions(ctx):
    data = ["a", "b", "c", "d", "e"]
    assert ctx.parallelize(data, 3).collect() == data


def test_parallelize_empty(ctx):
    assert ctx.parallelize([], 4).collect() == []


def test_parallelize_caps_partitions_at_data_size(ctx):
    rdd = ctx.parallelize([1, 2], 100)
    assert rdd.num_partitions <= 2
    assert rdd.collect() == [1, 2]


def test_map(ctx):
    assert ctx.parallelize(range(5), 2).map(lambda x: x * x).collect() == [0, 1, 4, 9, 16]


def test_flat_map(ctx):
    result = ctx.parallelize([1, 2, 3], 2).flat_map(lambda x: [x] * x).collect()
    assert result == [1, 2, 2, 3, 3, 3]


def test_filter(ctx):
    result = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0).collect()
    assert result == [0, 2, 4, 6, 8]


def test_map_partitions(ctx):
    result = (
        ctx.parallelize(range(10), 2)
        .map_partitions(lambda it: iter([sum(it)]))
        .collect()
    )
    assert sum(result) == 45
    assert len(result) == 2


def test_map_partitions_with_index(ctx):
    result = (
        ctx.parallelize(range(4), 2)
        .map_partitions_with_index(lambda i, it: ((i, x) for x in it))
        .collect()
    )
    assert result == [(0, 0), (0, 1), (1, 2), (1, 3)]


def test_map_values_keeps_keys(ctx):
    pairs = [("a", 1), ("b", 2)]
    assert ctx.parallelize(pairs, 2).map_values(lambda v: v * 10).collect() == [
        ("a", 10),
        ("b", 20),
    ]


def test_flat_map_values(ctx):
    pairs = [("a", 2), ("b", 1)]
    result = ctx.parallelize(pairs, 1).flat_map_values(lambda v: range(v)).collect()
    assert result == [("a", 0), ("a", 1), ("b", 0)]


def test_keys_values_key_by(ctx):
    pairs = [(1, "x"), (2, "y")]
    rdd = ctx.parallelize(pairs, 2)
    assert rdd.keys().collect() == [1, 2]
    assert rdd.values().collect() == ["x", "y"]
    assert ctx.parallelize([3, 4], 1).key_by(lambda x: x % 2).collect() == [(1, 3), (0, 4)]


def test_glom(ctx):
    parts = ctx.parallelize(range(6), 3).glom().collect()
    assert parts == [[0, 1], [2, 3], [4, 5]]


def test_zip_with_index(ctx):
    result = ctx.parallelize(["a", "b", "c", "d"], 3).zip_with_index().collect()
    assert result == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]


def test_union(ctx):
    left = ctx.parallelize([1, 2], 2)
    right = ctx.parallelize([3, 4], 1)
    assert left.union(right).collect() == [1, 2, 3, 4]


def test_cartesian(ctx):
    left = ctx.parallelize([1, 2], 2)
    right = ctx.parallelize(["x", "y"], 2)
    assert sorted(left.cartesian(right).collect()) == [
        (1, "x"),
        (1, "y"),
        (2, "x"),
        (2, "y"),
    ]


def test_coalesce(ctx):
    rdd = ctx.parallelize(range(10), 5).coalesce(2)
    assert rdd.num_partitions == 2
    assert rdd.collect() == list(range(10))


def test_coalesce_to_more_partitions_is_noop(ctx):
    rdd = ctx.parallelize(range(4), 2)
    assert rdd.coalesce(8) is rdd


def test_repartition_preserves_multiset(ctx):
    rdd = ctx.parallelize(range(20), 2).repartition(5)
    assert rdd.num_partitions == 5
    assert sorted(rdd.collect()) == list(range(20))


def test_distinct(ctx):
    result = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct().collect()
    assert sorted(result) == [1, 2, 3]


def test_sample_deterministic(ctx):
    rdd = ctx.parallelize(range(1000), 4)
    first = rdd.sample(0.1, seed=7).collect()
    second = rdd.sample(0.1, seed=7).collect()
    assert first == second
    assert 40 < len(first) < 200


def test_sample_rejects_bad_fraction(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([1], 1).sample(1.5)


# ----------------------------------------------------------------------
# Keyed / wide transformations
# ----------------------------------------------------------------------


def test_reduce_by_key(ctx):
    pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4), ("c", 5)]
    result = dict(ctx.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b).collect())
    assert result == {"a": 4, "b": 6, "c": 5}


def test_fold_by_key(ctx):
    pairs = [("a", 1), ("a", 2), ("b", 3)]
    # Zero is applied once per key per map partition (Spark semantics):
    # with one partition each key sees the zero exactly once.
    result = dict(ctx.parallelize(pairs, 1).fold_by_key(10, lambda a, b: a + b).collect())
    assert result == {"a": 13, "b": 13}


def test_aggregate_by_key(ctx):
    pairs = [("a", 1), ("a", 2), ("b", 3)]
    result = dict(
        ctx.parallelize(pairs, 1)
        .aggregate_by_key((0, 0), lambda acc, v: (acc[0] + v, acc[1] + 1), lambda x, y: (x[0] + y[0], x[1] + y[1]))
        .collect()
    )
    assert result == {"a": (3, 2), "b": (3, 1)}


def test_group_by_key(ctx):
    pairs = [("a", 1), ("b", 2), ("a", 3)]
    result = {k: sorted(v) for k, v in ctx.parallelize(pairs, 3).group_by_key().collect()}
    assert result == {"a": [1, 3], "b": [2]}


def test_join(ctx):
    left = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
    right = ctx.parallelize([("a", "x"), ("c", "y")], 2)
    result = sorted(left.join(right).collect())
    assert result == [("a", (1, "x")), ("a", (3, "x"))]


def test_left_outer_join(ctx):
    left = ctx.parallelize([("a", 1), ("b", 2)], 2)
    right = ctx.parallelize([("a", "x")], 1)
    result = dict(left.left_outer_join(right).collect())
    assert result == {"a": (1, "x"), "b": (2, None)}


def test_right_outer_join(ctx):
    left = ctx.parallelize([("a", 1)], 1)
    right = ctx.parallelize([("a", "x"), ("b", "y")], 2)
    result = dict(left.right_outer_join(right).collect())
    assert result == {"a": (1, "x"), "b": (None, "y")}


def test_full_outer_join(ctx):
    left = ctx.parallelize([("a", 1)], 1)
    right = ctx.parallelize([("b", "y")], 1)
    result = dict(left.full_outer_join(right).collect())
    assert result == {"a": (1, None), "b": (None, "y")}


def test_cogroup(ctx):
    left = ctx.parallelize([("a", 1), ("a", 2)], 2)
    right = ctx.parallelize([("a", "x"), ("b", "y")], 2)
    result = {k: (sorted(l), sorted(r)) for k, (l, r) in left.cogroup(right).collect()}
    assert result == {"a": ([1, 2], ["x"]), "b": ([], ["y"])}


def test_partition_by_places_keys_deterministically(ctx):
    pairs = [(i, i) for i in range(20)]
    partitioner = HashPartitioner(4)
    rdd = ctx.parallelize(pairs, 3).partition_by(partitioner)
    parts = rdd.glom().collect()
    for split, part in enumerate(parts):
        for key, _value in part:
            assert partitioner.partition(key) == split


def test_partition_by_same_partitioner_is_noop(ctx):
    partitioner = HashPartitioner(4)
    rdd = ctx.parallelize([(1, 1)], 1).partition_by(partitioner)
    assert rdd.partition_by(HashPartitioner(4)) is rdd


def test_count_by_key(ctx):
    pairs = [("a", 1), ("a", 2), ("b", 1)]
    assert ctx.parallelize(pairs, 2).count_by_key() == {"a": 2, "b": 1}


def test_lookup_with_and_without_partitioner(ctx):
    pairs = [(i, i * i) for i in range(10)]
    plain = ctx.parallelize(pairs, 3)
    assert plain.lookup(4) == [16]
    partitioned = plain.partition_by(HashPartitioner(4))
    assert partitioned.lookup(4) == [16]
    assert partitioned.lookup(99) == []


# ----------------------------------------------------------------------
# Actions
# ----------------------------------------------------------------------


def test_count(ctx):
    assert ctx.parallelize(range(17), 4).count() == 17


def test_first_and_take(ctx):
    rdd = ctx.parallelize(range(10), 4)
    assert rdd.first() == 0
    assert rdd.take(3) == [0, 1, 2]
    assert rdd.take(0) == []
    assert rdd.take(100) == list(range(10))


def test_first_on_empty_raises(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([], 1).first()


def test_reduce(ctx):
    assert ctx.parallelize(range(1, 6), 3).reduce(lambda a, b: a * b) == 120


def test_reduce_empty_raises(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([], 1).reduce(lambda a, b: a + b)


def test_reduce_with_empty_partitions(ctx):
    # 2 elements across 4 partitions leaves empty splits; reduce must skip them.
    rdd = ctx.parallelize([5, 7], 2)
    assert rdd.reduce(lambda a, b: a + b) == 12


def test_fold_and_aggregate(ctx):
    rdd = ctx.parallelize(range(10), 4)
    assert rdd.fold(0, lambda a, b: a + b) == 45
    total, count = rdd.aggregate(
        (0, 0), lambda acc, x: (acc[0] + x, acc[1] + 1), lambda a, b: (a[0] + b[0], a[1] + b[1])
    )
    assert (total, count) == (45, 10)


def test_sum_max_min(ctx):
    rdd = ctx.parallelize([3, 1, 4, 1, 5], 2)
    assert rdd.sum() == 14
    assert rdd.max() == 5
    assert rdd.min() == 1


def test_is_empty(ctx):
    assert ctx.parallelize([], 1).is_empty()
    assert not ctx.parallelize([1], 1).is_empty()


def test_collect_as_map(ctx):
    assert ctx.parallelize([("a", 1), ("b", 2)], 2).collect_as_map() == {"a": 1, "b": 2}


def test_foreach_with_accumulator(ctx):
    acc = ctx.accumulator(0)
    ctx.parallelize(range(5), 2).foreach(lambda x: acc.add(x))
    assert acc.value == 10


def test_broadcast(ctx):
    table = ctx.broadcast({1: "one", 2: "two"})
    result = ctx.parallelize([1, 2, 1], 2).map(lambda x: table.value[x]).collect()
    assert result == ["one", "two", "one"]


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------


def test_cache_computes_once(ctx):
    calls = []

    def trace(x):
        calls.append(x)
        return x

    rdd = ctx.parallelize(range(5), 2).map(trace).cache()
    rdd.collect()
    rdd.collect()
    assert len(calls) == 5


def test_unpersist_recomputes(ctx):
    calls = []

    def trace(x):
        calls.append(x)
        return x

    rdd = ctx.parallelize(range(3), 1).map(trace).cache()
    rdd.collect()
    rdd.unpersist()
    rdd.collect()
    assert len(calls) == 6


def test_lazy_until_action(ctx):
    calls = []
    ctx.parallelize(range(3), 1).map(calls.append)  # no action
    assert calls == []


# ----------------------------------------------------------------------
# Partitioner preservation (no redundant shuffles on narrow lineages)
# ----------------------------------------------------------------------


def test_filter_shaped_narrow_ops_preserve_partitioner(ctx):
    partitioner = HashPartitioner(4)
    base = ctx.parallelize([(i % 8, i) for i in range(64)], 3).partition_by(
        partitioner
    )
    assert base.partitioner is partitioner
    # Record-dropping/value-rewriting ops keep keys intact, so placement
    # survives them; key-changing or index-dependent ops must not claim it.
    assert base.filter(lambda kv: kv[1] % 2 == 0).partitioner is partitioner
    assert base.map_values(lambda v: v + 1).partitioner is partitioner
    assert base.flat_map_values(lambda v: [v, v]).partitioner is partitioner
    assert base.sample(0.5, seed=3).partitioner is partitioner
    assert base.map(lambda kv: kv).partitioner is None
    assert base.keys().partitioner is None
    assert base.distinct().partitioner is not partitioner
    assert base.zip_with_index().partitioner is None


def test_sample_preserves_placement_correctly(ctx):
    partitioner = HashPartitioner(4)
    rdd = ctx.parallelize([(i % 8, i) for i in range(200)], 3).partition_by(
        partitioner
    )
    sampled = rdd.sample(0.5, seed=11)
    for split in range(sampled.num_partitions):
        for key, _value in sampled.iterator(split):
            assert partitioner.partition(key) == split


def test_partitioned_lineage_shuffles_exactly_once(ctx):
    """An RDD already hashed by an equal partitioner feeds reduce_by_key
    through narrow ops without a second shuffle: bytes move once."""
    partitioner = HashPartitioner(4)
    data = [(i % 8, i) for i in range(400)]
    snapshot = ctx.metrics.snapshot()
    placed = ctx.parallelize(data, 3).partition_by(partitioner)
    placed.count()
    first = ctx.metrics.delta_since(snapshot).shuffle_bytes
    assert first > 0
    narrowed = placed.sample(0.9, seed=5).map_values(lambda v: v * 2)
    reduced = narrowed.reduce_by_key(lambda a, b: a + b, num_partitions=4)
    result = dict(reduced.collect())
    delta = ctx.metrics.delta_since(snapshot)
    # Only the explicit partition_by shuffled; the reduce combined in place.
    assert delta.shuffle_bytes == first
    expected = {}
    sampled = [kv for split in range(narrowed.num_partitions)
               for kv in narrowed.iterator(split)]
    for key, value in sampled:
        expected[key] = expected.get(key, 0) + value
    assert result == expected
