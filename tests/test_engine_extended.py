"""Tests for the extended engine API: sort, top, zip, set ops, stats."""

import pytest

from repro.engine import EngineContext, TINY_CLUSTER
from repro.engine.partitioner import RangePartitioner
from repro.engine.rdd import StatCounter


@pytest.fixture()
def ctx():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


# ----------------------------------------------------------------------
# RangePartitioner
# ----------------------------------------------------------------------


def test_range_partitioner_ascending():
    part = RangePartitioner([10, 20])
    assert part.num_partitions == 3
    assert part.partition(5) == 0
    assert part.partition(10) == 0
    assert part.partition(15) == 1
    assert part.partition(25) == 2


def test_range_partitioner_descending():
    part = RangePartitioner([10, 20], ascending=False)
    assert part.partition(5) == 2
    assert part.partition(25) == 0


def test_range_partitioner_empty_bounds():
    part = RangePartitioner([])
    assert part.num_partitions == 1
    assert part.partition(42) == 0


# ----------------------------------------------------------------------
# sort_by
# ----------------------------------------------------------------------


def test_sort_by_identity(ctx):
    data = [5, 3, 8, 1, 9, 2, 7, 4, 6, 0]
    assert ctx.parallelize(data, 3).sort_by().collect() == sorted(data)


def test_sort_by_key_function(ctx):
    data = [(1, "b"), (3, "a"), (2, "c")]
    result = ctx.parallelize(data, 2).sort_by(lambda kv: kv[1]).collect()
    assert result == [(3, "a"), (1, "b"), (2, "c")]


def test_sort_by_descending(ctx):
    data = [5, 1, 4, 2, 3]
    result = ctx.parallelize(data, 2).sort_by(ascending=False).collect()
    assert result == [5, 4, 3, 2, 1]


def test_sort_by_with_duplicates(ctx):
    data = [3, 1, 3, 2, 1, 3]
    assert ctx.parallelize(data, 3).sort_by().collect() == sorted(data)


def test_sort_by_large_spread(ctx):
    import random

    rng = random.Random(0)
    data = [rng.randint(0, 10000) for _ in range(500)]
    result = ctx.parallelize(data, 8).sort_by(num_partitions=4)
    assert result.collect() == sorted(data)
    # Partitions hold contiguous, roughly balanced ranges.
    parts = result.glom().collect()
    non_empty = [p for p in parts if p]
    assert all(p == sorted(p) for p in non_empty)
    for earlier, later in zip(non_empty, non_empty[1:]):
        assert earlier[-1] <= later[0]


def test_sort_by_empty(ctx):
    assert ctx.parallelize([], 1).sort_by().collect() == []


# ----------------------------------------------------------------------
# top / take_ordered
# ----------------------------------------------------------------------


def test_top(ctx):
    data = [5, 1, 9, 3, 7]
    assert ctx.parallelize(data, 3).top(2) == [9, 7]


def test_top_with_key(ctx):
    data = ["aa", "b", "cccc", "ddd"]
    assert ctx.parallelize(data, 2).top(2, key=len) == ["cccc", "ddd"]


def test_take_ordered(ctx):
    data = [5, 1, 9, 3, 7]
    assert ctx.parallelize(data, 3).take_ordered(3) == [1, 3, 5]


def test_top_more_than_size(ctx):
    assert ctx.parallelize([2, 1], 1).top(10) == [2, 1]


# ----------------------------------------------------------------------
# zip
# ----------------------------------------------------------------------


def test_zip(ctx):
    left = ctx.parallelize([1, 2, 3, 4], 2)
    right = left.map(lambda x: x * 10)
    assert left.zip(right).collect() == [(1, 10), (2, 20), (3, 30), (4, 40)]


def test_zip_partition_count_mismatch(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([1, 2], 2).zip(ctx.parallelize([1, 2], 1))


def test_zip_length_mismatch(ctx):
    left = ctx.parallelize([1, 2, 3], 1)
    right = ctx.parallelize([1, 2], 1)
    with pytest.raises(ValueError):
        left.zip(right).collect()


# ----------------------------------------------------------------------
# Set operations
# ----------------------------------------------------------------------


def test_subtract_by_key(ctx):
    left = ctx.parallelize([("a", 1), ("b", 2), ("c", 3)], 2)
    right = ctx.parallelize([("b", 99)], 1)
    assert sorted(left.subtract_by_key(right).collect()) == [("a", 1), ("c", 3)]


def test_subtract(ctx):
    left = ctx.parallelize([1, 2, 2, 3, 4], 2)
    right = ctx.parallelize([2, 4], 1)
    assert sorted(left.subtract(right).collect()) == [1, 3]


def test_intersection_is_distinct(ctx):
    left = ctx.parallelize([1, 2, 2, 3], 2)
    right = ctx.parallelize([2, 2, 3, 5], 2)
    assert sorted(left.intersection(right).collect()) == [2, 3]


def test_intersection_empty(ctx):
    left = ctx.parallelize([1], 1)
    right = ctx.parallelize([2], 1)
    assert left.intersection(right).collect() == []


# ----------------------------------------------------------------------
# stats / histogram
# ----------------------------------------------------------------------


def test_stats(ctx):
    data = [1.0, 2.0, 3.0, 4.0]
    stats = ctx.parallelize(data, 3).stats()
    assert stats.count == 4
    assert stats.mean == 2.5
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert abs(stats.variance - 1.25) < 1e-12


def test_stats_partition_invariant(ctx):
    data = [float(x) for x in range(100)]
    one = ctx.parallelize(data, 1).stats()
    many = ctx.parallelize(data, 7).stats()
    assert one.count == many.count
    assert abs(one.mean - many.mean) < 1e-9
    assert abs(one.variance - many.variance) < 1e-9


def test_stat_counter_merge_empty():
    a = StatCounter()
    b = StatCounter().add(5.0)
    assert a.merge(b).count == 1
    assert StatCounter().add(3.0).merge(StatCounter()).count == 1


def test_histogram(ctx):
    data = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]
    boundaries, counts = ctx.parallelize(data, 3).histogram(2)
    assert boundaries == [0.0, 4.5, 9.0]
    assert counts == [5, 5]


def test_histogram_constant_values(ctx):
    boundaries, counts = ctx.parallelize([3.0, 3.0, 3.0], 2).histogram(4)
    assert boundaries == [3.0, 3.0]
    assert counts == [3]


def test_histogram_errors(ctx):
    with pytest.raises(ValueError):
        ctx.parallelize([1.0], 1).histogram(0)
    with pytest.raises(ValueError):
        ctx.parallelize([], 1).histogram(2)


# ----------------------------------------------------------------------
# checkpoint
# ----------------------------------------------------------------------


def test_checkpoint_materializes(ctx):
    calls = []
    rdd = ctx.parallelize(range(5), 2).map(lambda x: calls.append(x) or x)
    rdd.checkpoint()
    assert len(calls) == 5
    rdd.collect()
    assert len(calls) == 5  # cached, not recomputed
