"""Task-level pipelined scheduling: graph mechanics, parity, faults.

Three layers of coverage:

* :class:`~repro.engine.taskgraph.TaskGraph` mechanics — edges,
  starters/terminators, dynamic extension from completion hooks,
  virtual dependencies, deadlock detection.
* Parity — pipelined execution must return the same results *and*
  identical stage/task/shuffle counters as the staged scheduler across
  the paper's query shapes, under both serial and threaded runners; and
  ``pipeline=False`` must keep the staged path byte-identical whatever
  runner is installed.
* Fault injection and retries — deterministic delays/failures via
  :meth:`TaskRunner.inject_delay` / :meth:`inject_failure`, bounded
  retry accounting, and the threaded runner's cancel-on-failure
  behavior.
"""

import threading
import time

import numpy as np
import pytest

from repro import SacSession
from repro.engine import (
    TINY_CLUSTER,
    EngineContext,
    InjectedFatalTaskError,
    InjectedTaskFailure,
    PipelinedTaskRunner,
    SerialTaskRunner,
    TaskGraph,
    ThreadedTaskRunner,
)
from repro.linalg.factorization import sac_factorization_step
from repro.planner.planner import PlannerOptions

RNG = np.random.default_rng(20210831)

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)
ADD = (
    "tiled(n,m)[ ((i,j), a + b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
    " ii == i, jj == j ]"
)
TRANSPOSE = "tiled(m,n)[ ((j,i), a) | ((i,j),a) <- A ]"
SMOOTH = (
    "tiled(n,m)[ ((i,j), (a + b + c) / 3.0) | ((i,j),a) <- A,"
    " ((ii,jj),b) <- A, ((iii,jjj),c) <- A, ii == i-1, jj == j,"
    " iii == i+1, jjj == j ]"
)
ROW_SUMS = "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]"

A_30x20 = RNG.uniform(size=(30, 20))
B_20x30 = RNG.uniform(size=(20, 30))
R_30x30 = RNG.uniform(size=(30, 30))
P_30x10 = np.full((30, 10), 0.1)


def _counters(metrics):
    total = metrics.total
    return {
        "stages": total.stages,
        "tasks": total.tasks,
        "shuffles": total.shuffles,
        "shuffle_records": total.shuffle_records,
        "shuffle_bytes": total.shuffle_bytes,
    }


# ----------------------------------------------------------------------
# TaskGraph mechanics
# ----------------------------------------------------------------------


def test_task_graph_edges_and_execution_order():
    graph = TaskGraph()
    order = []
    a = graph.add_task(("a",), fn=lambda: order.append("a"))
    b = graph.add_task(("b",), fn=lambda: order.append("b"), deps=[a])
    c = graph.add_task(("c",), fn=lambda: order.append("c"), deps=[a])
    d = graph.add_task(("d",), fn=lambda: order.append("d"), deps=[b, c])
    assert graph.starters() == [("a",)]
    assert graph.terminators() == [("d",)]
    assert graph.find_children(("a",)) == [("b",), ("c",)]
    assert graph.find_parents(("d",)) == [("b",), ("c",)]
    SerialTaskRunner().run_graph(graph)
    assert order == ["a", "b", "c", "d"]
    assert all(task.done for task in (a, b, c, d))


def test_task_graph_on_complete_hook_extends_graph():
    graph = TaskGraph()
    ran = []

    def plan():
        # Dynamically add work behind the still-pending barrier.  The
        # hook runs while the barrier still holds its edge to the plan
        # task, so the new dependency is legal.
        t = graph.add_task(("late",), fn=lambda: ran.append("late"))
        graph.add_dependency(barrier, t)

    plan_task = graph.add_task(("plan",), on_complete=plan)
    barrier = graph.add_task(("barrier",), deps=[plan_task])
    SerialTaskRunner().run_graph(graph)
    assert ran == ["late"]
    assert graph.tasks[("barrier",)].done


def test_task_graph_virtual_dependency_release():
    graph = TaskGraph()
    ran = []
    out = graph.add_task(("out",), virtual_deps=1)
    graph.add_task(("reader",), fn=lambda: ran.append("reader"), deps=[out])
    producer = graph.add_task(
        ("producer",),
        fn=lambda: ran.append("producer"),
        on_complete=lambda: graph.release(out),
    )
    # ``out`` has no structural parents (its dependency is virtual) but
    # it is not runnable until released.
    assert ("out",) in graph.starters()
    assert [t.key for t in graph.drain_ready()] == [("producer",)]
    producer.fn()
    newly = graph.complete(producer)  # hook releases ``out``
    assert [t.key for t in newly] == [("out",)]
    newly = graph.complete(newly[0])  # synthetic: no fn to run
    assert [t.key for t in newly] == [("reader",)]
    newly[0].fn()
    graph.complete(newly[0])
    graph.check_done()
    assert ran == ["producer", "reader"]


def test_task_graph_detects_stuck_tasks():
    graph = TaskGraph()
    graph.add_task(("never",), virtual_deps=1)  # nobody releases it
    with pytest.raises(RuntimeError, match="unexecuted tasks"):
        SerialTaskRunner().run_graph(graph)


def test_pipelined_runner_rejects_bad_inflight():
    with pytest.raises(ValueError, match="max_inflight"):
        PipelinedTaskRunner(max_workers=2, max_inflight=0)


# ----------------------------------------------------------------------
# Parity: pipelined == staged, results and counters
# ----------------------------------------------------------------------


def _golden_shapes():
    def multiply(gbj):
        def run(session):
            return session.run(
                MULTIPLY, A=session.tiled(A_30x20), B=session.tiled(B_20x30),
                n=30, m=30,
            ).to_numpy()

        return run

    def simple(query, **dims):
        def run(session):
            return session.run(
                query, A=session.tiled(A_30x20), B=session.tiled(A_30x20),
                **dims,
            ).to_numpy()

        return run

    def factorization(session):
        state = sac_factorization_step(
            session, session.tiled(R_30x30), session.tiled(P_30x10),
            session.tiled(P_30x10),
        )
        return np.concatenate(
            [state.p.to_numpy().ravel(), state.q.to_numpy().ravel()]
        )

    return [
        ("multiply-gbj-on", multiply(True), {"group_by_join": True}),
        ("multiply-gbj-off", multiply(False), {"group_by_join": False}),
        ("add", simple(ADD, n=30, m=20), {}),
        ("transpose", simple(TRANSPOSE, n=30, m=20), {}),
        ("smoothing", simple(SMOOTH, n=30, m=20), {}),
        ("row-sums", simple(ROW_SUMS, n=30), {}),
        ("factorization", factorization, {}),
    ]


def _run_arm(run, options, adaptive, runner, pipeline):
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10, options=options,
        adaptive=adaptive, runner=runner, pipeline=pipeline,
    )
    try:
        result = np.asarray(run(session))
        return result, _counters(session.engine.metrics)
    finally:
        session.engine.close()


@pytest.mark.parametrize("adaptive", [False, True], ids=["static", "adaptive"])
@pytest.mark.parametrize(
    "name,run,opts",
    [(name, run, opts) for name, run, opts in _golden_shapes()],
    ids=[name for name, _run, _opts in _golden_shapes()],
)
def test_pipelined_parity_golden_shapes(name, run, opts, adaptive):
    """Pipelined results and counters match staged, serial and threaded."""
    options = PlannerOptions(**opts) if opts else None
    base_result, base_counters = _run_arm(
        run, options, adaptive, SerialTaskRunner(), pipeline=False
    )
    arms = [
        ("pipelined-serial", SerialTaskRunner(), True),
        ("staged-threaded", ThreadedTaskRunner(max_workers=4), False),
        ("pipelined-threaded", PipelinedTaskRunner(max_workers=4), True),
    ]
    for arm, runner, pipeline in arms:
        result, counters = _run_arm(run, options, adaptive, runner, pipeline)
        np.testing.assert_array_equal(result, base_result, err_msg=arm)
        assert counters == base_counters, f"{name}/{arm}"


def test_pipeline_off_counters_identical_with_pipelined_runner():
    """pipeline=False keeps the staged path whatever runner is installed."""

    def run(session):
        return session.run(
            MULTIPLY, A=session.tiled(A_30x20), B=session.tiled(B_20x30),
            n=30, m=30,
        ).to_numpy()

    base_result, base_counters = _run_arm(
        run, None, False, SerialTaskRunner(), pipeline=False
    )
    result, counters = _run_arm(
        run, None, False, PipelinedTaskRunner(max_workers=4), pipeline=False
    )
    np.testing.assert_array_equal(result, base_result)
    assert counters == base_counters


def _skewed_pipeline(ctx):
    """Two chained shuffles whose second sees the first's skewed histogram."""
    # 2000 distinct keys that all hash to reduce partition 0, carrying
    # ~350 KiB of values — past ``adaptive_skew_min_bytes``, so the
    # second shuffle's map over that partition is re-planned (split into
    # chunks) from the first shuffle's measured output histogram.
    pairs = [(8 * k, "v" * 120) for k in range(2000)]
    pairs += [(k, "w") for k in range(1, 8)]
    grouped = (
        ctx.parallelize(pairs, 8)
        .group_by_key()
        .flat_map(lambda kv: [(kv[0], len(v)) for v in kv[1]])
        .reduce_by_key(lambda a, b: a + b)
    )
    return sorted(grouped.collect())


@pytest.mark.parametrize(
    "runner_factory,pipeline",
    [
        (SerialTaskRunner, True),
        (lambda: PipelinedTaskRunner(max_workers=4), True),
    ],
    ids=["serial", "threaded"],
)
def test_pipelined_skew_split_parity(runner_factory, pipeline):
    """Deferred in-graph skew planning takes the same decisions as staged."""

    def run(pipeline, runner):
        ctx = EngineContext(
            cluster=TINY_CLUSTER, runner=runner, adaptive=True,
            pipeline=pipeline,
        )
        try:
            result = _skewed_pipeline(ctx)
            decisions = [d.kind for d in ctx.adaptive.decisions]
            return result, _counters(ctx.metrics), decisions
        finally:
            ctx.close()

    base = run(False, SerialTaskRunner())
    got = run(pipeline, runner_factory())
    assert got[0] == base[0]
    assert got[1] == base[1]
    assert got[2] == base[2]
    assert "skew-split" in base[2]


# ----------------------------------------------------------------------
# Fault injection and bounded retries
# ----------------------------------------------------------------------


def _count_job(ctx):
    return (
        ctx.parallelize(range(64), 4)
        .map(lambda x: (x % 4, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


@pytest.mark.parametrize("pipeline", [False, True], ids=["staged", "pipelined"])
def test_injected_delay_inflates_task_time(pipeline):
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=pipeline
    )
    ctx.runner.inject_delay("map", 0, 0.05)
    _count_job(ctx)
    snapshot = ctx.metrics.snapshot()
    histograms = snapshot.stage_histograms()
    assert max(h["max_seconds"] for h in histograms) >= 0.05
    assert snapshot.task_retries == 0


@pytest.mark.parametrize("pipeline", [False, True], ids=["staged", "pipelined"])
def test_transient_failure_is_retried_and_counted(pipeline):
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=pipeline
    )
    ctx.runner.inject_failure("map", 1, times=1)
    result = sorted(_count_job(ctx))
    assert result == [(0, 16), (1, 16), (2, 16), (3, 16)]
    assert ctx.metrics.snapshot().task_retries == 1


def test_retries_exhausted_raises(monkeypatch):
    monkeypatch.setenv("REPRO_TASK_RETRIES", "1")
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=True
    )
    ctx.runner.inject_failure("map", 1, times=3)
    with pytest.raises(InjectedTaskFailure):
        _count_job(ctx)


def test_fatal_injected_failure_is_not_retried():
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=True
    )
    ctx.runner.inject_failure("reduce", None, times=1, transient=False)
    with pytest.raises(InjectedFatalTaskError):
        _count_job(ctx)
    assert ctx.metrics.snapshot().task_retries == 0


def test_stage_scoped_injection_matches_full_label():
    """An injection keyed ``map:<rdd id>`` hits only that shuffle's maps."""
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=True
    )
    rdd = ctx.parallelize(range(16), 4).map(lambda x: (x % 2, 1))
    shuffled = rdd.reduce_by_key(lambda a, b: a + b)
    ctx.runner.inject_failure(f"map:{shuffled.id}", None, times=1)
    assert sorted(shuffled.collect()) == [(0, 8), (1, 8)]
    assert ctx.metrics.snapshot().task_retries == 1  # injection fired
    ctx.runner.clear_injections()
    ctx.runner.inject_failure("map:99999", None, times=1)
    fresh = (
        ctx.parallelize(range(16), 4)
        .map(lambda x: (x % 2, 1))
        .reduce_by_key(lambda a, b: a + b)
    )
    assert sorted(fresh.collect()) == [(0, 8), (1, 8)]
    assert ctx.metrics.snapshot().task_retries == 1  # no new retries


def test_pipelined_task_failure_propagates_deterministically():
    """The lowest-index failing task's error surfaces from run_graph."""
    runner = PipelinedTaskRunner(max_workers=4)
    ctx = EngineContext(cluster=TINY_CLUSTER, runner=runner, pipeline=True)
    ctx.runner.inject_failure(
        "result", None, times=None, transient=False,
        message="boom",
    )
    with pytest.raises(InjectedFatalTaskError, match=r"partition 0"):
        ctx.parallelize(range(64), 8).map(lambda x: x).collect()
    ctx.close()


def test_staged_run_after_failed_pipelined_job_recovers():
    """A failed graph drops partial slots; a staged re-run succeeds."""
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=True
    )
    rdd = (
        ctx.parallelize(range(64), 4)
        .map(lambda x: (x % 4, 1))
        .reduce_by_key(lambda a, b: a + b)
    )
    ctx.runner.inject_failure("reduce", None, times=1, transient=False)
    with pytest.raises(InjectedFatalTaskError):
        rdd.collect()
    ctx.runner.clear_injections()
    ctx.scheduler.pipeline = False
    assert sorted(rdd.collect()) == [(0, 16), (1, 16), (2, 16), (3, 16)]


# ----------------------------------------------------------------------
# Threaded runner error propagation (regression)
# ----------------------------------------------------------------------


def test_threaded_stage_failure_cancels_pending_and_is_deterministic():
    """A failing task cancels not-yet-started ones; first error wins."""
    runner = ThreadedTaskRunner(max_workers=2)
    started = []
    lock = threading.Lock()

    def make_task(index):
        def task():
            with lock:
                started.append(index)
            if index == 0:
                time.sleep(0.05)
                raise ValueError(f"task {index} failed")
            time.sleep(0.2)
            return index

        return task

    with pytest.raises(ValueError, match="task 0 failed"):
        runner.run_stage([make_task(i) for i in range(6)])
    # Two workers: tasks 0 and 1 start; once 0 fails, 2..5 are cancelled
    # (at most one more may have slipped in while the failure surfaced).
    assert 0 in started
    assert len(started) <= 3
    runner.close()


def test_threaded_stage_failure_reraises_lowest_index_error():
    runner = ThreadedTaskRunner(max_workers=4)

    def make_task(index):
        def task():
            time.sleep((4 - index) * 0.02)
            raise ValueError(f"task {index} failed")

        return task

    with pytest.raises(ValueError, match="task 0 failed"):
        runner.run_stage([make_task(i) for i in range(4)])
    runner.close()


# ----------------------------------------------------------------------
# Metrics: histograms, straggler ratio, critical path
# ----------------------------------------------------------------------


def test_stage_histograms_and_straggler_ratio():
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), pipeline=True
    )
    ctx.runner.inject_delay("result", 0, 0.06)
    ctx.runner.inject_delay("result", None, 0.01)
    ctx.parallelize(range(32), 8).map(lambda x: x).collect()
    snapshot = ctx.metrics.snapshot()
    histograms = snapshot.stage_histograms()
    assert len(histograms) == 1
    hist = histograms[0]
    assert hist["num_tasks"] == 8
    assert hist["max_seconds"] >= 0.07
    assert hist["p50_seconds"] >= 0.01
    assert hist["p50_seconds"] < 0.05
    assert snapshot.straggler_ratio() > 2.0
    assert snapshot.critical_path_seconds() >= hist["max_seconds"]
