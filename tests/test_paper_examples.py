"""End-to-end tests for every worked example in the paper, distributed.

Each test names the paper location it reproduces and runs the exact
query (modulo concrete dimensions) through the full pipeline on tiled
storage.
"""

import numpy as np
import pytest

from repro import SacSession
from repro.engine import TINY_CLUSTER

RNG = np.random.default_rng(2021)
N, M = 34, 27
TILE = 10
A_NP = RNG.uniform(0, 10, size=(N, M))
B_NP = RNG.uniform(0, 10, size=(N, M))


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=TILE)


def test_figure1_row_sum_vector(session):
    """Figure 1 / Query (1)-(2): V_i = Σ_j M_ij on a tiled matrix."""
    result = session.run(
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- M, group by i ]",
        M=session.tiled(A_NP), n=N,
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP.sum(axis=1))


def test_query8_matrix_addition(session):
    """Query (8): matrix addition via an equality join."""
    result = session.run(
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N2,"
        " ii == i, jj == j ]",
        M=session.tiled(A_NP), N2=session.tiled(B_NP), n=N, m=M,
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP + B_NP)


def test_section2_addition_with_indexing(session):
    """Section 2: M + N written with array indexing N[i, j]."""
    result = session.run(
        "tiled(n,m)[ ((i,j), a + N2[i, j]) | ((i,j),a) <- M ]",
        M=session.tiled(A_NP), N2=session.tiled(B_NP), n=N, m=M,
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP + B_NP)


def test_section2_sortedness(session):
    """Section 2: &&/ comprehension checking consecutive order."""
    query = "&&/[ v <= w | (i,v) <- V, (j,w) <- V, j == i+1 ]"
    assert session.run(query, V=session.tiled_vector(np.sort(A_NP[0])))
    assert not session.run(query, V=session.tiled_vector(A_NP[0] * np.array([1, -1] * 13 + [1])))


def test_query9_matrix_multiplication(session):
    """Query (9): matrix multiplication with group-by."""
    c_np = RNG.uniform(0, 10, size=(M, 19))
    result = session.run(
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- M, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        M=session.tiled(A_NP), C=session.tiled(c_np), n=N, m=19,
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP @ c_np)


def test_section3_smoothing(session):
    """Section 3: 3×3 matrix smoothing with boundary handling."""
    small = A_NP[:9, :8]
    result = session.run(
        "tiled(n,m)[ ((ii,jj),(+/a) / count/a) | ((i,j),a) <- M,"
        " ii <- (i-1) to (i+1), jj <- (j-1) to (j+1),"
        " ii >= 0, ii < n, jj >= 0, jj < m, group by (ii,jj) ]",
        M=session.tiled(small), n=9, m=8,
    ).to_numpy()
    expected = np.zeros_like(small)
    for i in range(9):
        for j in range(8):
            window = small[max(0, i - 1):i + 2, max(0, j - 1):j + 2]
            expected[i, j] = window.mean()
    np.testing.assert_allclose(result, expected)


def test_section51_diagonal(session):
    """Section 5.1: tiled(n)[ (i,a) | ((i,j),a) <- A, i == j ]."""
    sq = A_NP[:M, :M]
    result = session.run(
        "tiled_vector(n)[ (i,a) | ((i,j),a) <- A, i == j ]",
        A=session.tiled(sq), n=M,
    )
    np.testing.assert_allclose(result.to_numpy(), np.diag(sq))


def test_section52_row_rotation(session):
    """Section 5.2: first row to second, ..., last to first."""
    result = session.run(
        "tiled(n,m)[ (((i+1)%n, j), v) | ((i,j),v) <- X ]",
        X=session.tiled(A_NP), n=N, m=M,
    )
    np.testing.assert_allclose(result.to_numpy(), np.roll(A_NP, 1, axis=0))


def test_section54_group_by_join_form(session):
    """Section 5.4: the general group-by-join with explicit key."""
    c_np = RNG.uniform(0, 10, size=(M, 15))
    result = session.run(
        "tiled(n,m)[ (k, +/c) | ((i,j),a) <- A, ((jj,l),b) <- B,"
        " jj == j, let c = a*b, group by k: (i, l) ]",
        A=session.tiled(A_NP), B=session.tiled(c_np), n=N, m=15,
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP @ c_np)


def test_builders_section1_tiled_builder_roundtrip(session):
    """Section 1.1: the tiled builder groups elements by tile coordinate."""
    items = [((i, j), A_NP[i, j]) for i in range(N) for j in range(M)]
    result = session.run(
        "tiled(n,m)[ ((i,j),v) | ((i,j),v) <- L ]",
        L=session.rdd(items), n=N, m=M,
    )
    np.testing.assert_allclose(result.to_numpy(), A_NP)


def test_introduction_sql_like_group_by(session):
    """Section 1: the employees-per-department comprehension (SQL form)."""
    employees = [
        {"name": "ann", "dno": 1}, {"name": "bob", "dno": 1},
        {"name": "cy", "dno": 2}, {"name": "dee", "dno": 1},
    ]
    departments = [{"dnumber": 1, "name": "cs"}, {"dnumber": 2, "name": "ee"}]
    result = session.run(
        "[ (d.name, count(e)) | e <- Employees, d <- Departments,"
        " e.dno == d.dnumber, group by d.name ]",
        Employees=employees, Departments=departments,
    )
    assert sorted(result) == [("cs", 3), ("ee", 1)]
