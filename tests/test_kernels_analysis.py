"""Tests for comprehension analysis and the NumPy tile kernels."""

import numpy as np
import pytest

from repro.comprehension import Lit, Reduce, Var, desugar, normalize, parse
from repro.comprehension.monoids import MONOIDS, is_monoid, monoid
from repro.comprehension.errors import SacTypeError
from repro.planner import analyze, compile_vectorized, contract, gather
from repro.planner.kernels import KernelUnsupported


def analyzed(source):
    expr = normalize(desugar(parse(source)))
    # Strip a builder wrapper if present.
    from repro.comprehension import BuilderApp

    if isinstance(expr, BuilderApp):
        expr = expr.source
    return analyze(expr)


# ----------------------------------------------------------------------
# Monoids
# ----------------------------------------------------------------------


def test_monoid_identities():
    assert monoid("+").fold([]) == 0
    assert monoid("*").fold([]) == 1
    assert monoid("&&").fold([]) is True
    assert monoid("||").fold([]) is False
    assert monoid("min").fold([3, 1, 2]) == 1
    assert monoid("max").fold([3, 1, 2]) == 3
    assert monoid("++").fold([[1], [2, 3]]) == [1, 2, 3]


def test_monoid_associativity_spot_check():
    for name in ("+", "*", "min", "max"):
        m = monoid(name)
        assert m.combine(m.combine(2, 3), 4) == m.combine(2, m.combine(3, 4))


def test_unknown_monoid():
    assert not is_monoid("weird")
    with pytest.raises(SacTypeError):
        monoid("weird")


def test_all_numeric_monoids_have_ufuncs():
    for name in ("+", "*", "min", "max", "&&", "||"):
        assert MONOIDS[name].np_combine is not None


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------


def test_analyze_matmul_structure():
    info = analyzed(
        "[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B, kk == k,"
        " let v = a*b, group by (i,j) ]"
    )
    assert len(info.generators) == 2
    assert info.generators[0].index_vars == ["i", "k"]
    assert info.generators[0].value_var == "a"
    assert len(info.joins) == 1
    assert info.group_key_vars == ["i", "j"]
    assert len(info.slots) == 1
    slot = info.slots[0]
    assert slot.monoid == "+"
    # let v = a*b was inlined into the slot expression.
    assert str(slot.expr) == "a * b"
    assert info.residual_value == Var(slot.slot_var)


def test_analyze_classes_unify_join_vars():
    info = analyzed("[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]")
    classes = info.var_class()
    assert classes["i"] == classes["ii"]
    assert classes["j"] == classes["jj"]
    assert classes["i"] != classes["j"]


def test_analyze_residual_guard_kept():
    info = analyzed("[ (i, v) | ((i,j),v) <- A, v > 10 ]")
    assert len(info.joins) == 0
    assert len(info.residual_guards) == 1


def test_analyze_same_generator_equality_is_residual():
    # i == j within one generator is not a join, but it does unify the
    # two dimensions (the diagonal case of Section 5.1).
    info = analyzed("[ (i, v) | ((i,j),v) <- A, i == j ]")
    assert len(info.joins) == 0
    assert len(info.residual_guards) == 1
    classes = info.var_class()
    assert classes["i"] == classes["j"]


def test_analyze_count_becomes_plus_over_one():
    info = analyzed("[ (i, count/v) | ((i,j),v) <- A, group by i ]")
    assert info.slots[0].monoid == "+"
    assert info.slots[0].expr == Lit(1)


def test_analyze_avg_two_slots():
    info = analyzed("[ (i, avg/v) | ((i,j),v) <- A, group by i ]")
    assert len(info.slots) == 2
    assert {s.monoid for s in info.slots} == {"+"}


def test_analyze_range_generator():
    info = analyzed("[ (i, v) | (i,v) <- A, j <- 0 until 5 ]")
    assert len(info.ranges) == 1
    assert info.ranges[0].var == "j"


def test_analyze_expression_join_sides():
    info = analyzed(
        "[ (k, +/c) | ((i,j),a) <- A, ((ii,jj),b) <- B, i+j == ii*jj,"
        " let c = a*b, group by k: (i, jj) ]"
    )
    assert len(info.joins) == 1
    join = info.joins[0]
    assert {join.left_gen, join.right_gen} == {0, 1}


# ----------------------------------------------------------------------
# Vectorized expression compilation
# ----------------------------------------------------------------------


def compiled(source):
    return compile_vectorized(parse(source))


def test_compile_arithmetic():
    fn = compiled("a * 2 + b")
    env = {"a": np.array([1.0, 2.0]), "b": np.array([10.0, 20.0])}
    np.testing.assert_allclose(fn(env), [12.0, 24.0])


def test_compile_integer_division_on_int_arrays():
    fn = compiled("i / 3")
    np.testing.assert_array_equal(fn({"i": np.arange(6)}), [0, 0, 0, 1, 1, 1])


def test_compile_float_division():
    fn = compiled("a / 2")
    np.testing.assert_allclose(fn({"a": np.array([3.0])}), [1.5])


def test_compile_modulo_and_comparison():
    fn = compiled("i % 2 == 0")
    np.testing.assert_array_equal(
        fn({"i": np.arange(4)}), [True, False, True, False]
    )


def test_compile_if_becomes_where():
    fn = compiled("if (a > 0.0) a else 0.0 - a")
    np.testing.assert_allclose(fn({"a": np.array([-1.0, 2.0])}), [1.0, 2.0])


def test_compile_calls():
    fn = compiled("min(a, b) + abs(c)")
    env = {"a": 1.0, "b": 2.0, "c": -3.0}
    assert fn(env) == 4.0


def test_compile_logical_ops():
    fn = compiled("a > 0 && b > 0 || c > 0")
    assert fn({"a": 1, "b": 1, "c": -1})
    assert fn({"a": -1, "b": 1, "c": 1})


def test_compile_tuple():
    fn = compiled("(a + 1, a - 1)")
    assert fn({"a": 5}) == (6, 4)


def test_compile_unsupported_raises():
    with pytest.raises(KernelUnsupported):
        compile_vectorized(parse("[ v | (i,v) <- V ]"))
    with pytest.raises(KernelUnsupported):
        compile_vectorized(parse("mystery(a)"))


# ----------------------------------------------------------------------
# gather / contract
# ----------------------------------------------------------------------


def test_gather_identity_returns_same_object():
    tile = np.arange(6.0).reshape(2, 3)
    grids = np.indices((2, 3))
    assert gather(tile, [0, 1], grids) is tile


def test_gather_transpose():
    tile = np.arange(6.0).reshape(2, 3)
    grids = np.indices((3, 2))
    np.testing.assert_allclose(gather(tile, [1, 0], grids), tile.T)


def test_gather_diagonal():
    tile = np.arange(9.0).reshape(3, 3)
    grids = np.indices((3,))
    np.testing.assert_allclose(gather(tile, [0, 0], grids), np.diag(tile))


def test_contract_matmul_uses_einsum():
    a = np.random.default_rng(0).normal(size=(3, 4))
    b = np.random.default_rng(1).normal(size=(4, 2))
    out = contract(
        a, b, ("i", "k"), ("k", "j"), ("i", "j"),
        parse("x * y"), monoid("+"), ("x", "y"),
    )
    np.testing.assert_allclose(out, a @ b)


def test_contract_transposed_orientations():
    a = np.random.default_rng(2).normal(size=(3, 4))
    b = np.random.default_rng(3).normal(size=(5, 4))
    # A @ B.T: join both on their second axis.
    out = contract(
        a, b, ("i", "k"), ("j", "k"), ("i", "j"),
        None, monoid("+"), ("x", "y"),
    )
    np.testing.assert_allclose(out, a @ b.T)


def test_contract_general_monoid_broadcast():
    a = np.array([[1.0, 5.0], [2.0, 0.0]])
    b = np.array([[3.0, 1.0], [4.0, 2.0]])
    # max over k of (x + y): not multiply-add, uses the broadcast path.
    out = contract(
        a, b, ("i", "k"), ("k", "j"), ("i", "j"),
        parse("x + y"), monoid("max"), ("x", "y"),
    )
    expected = np.max(a[:, :, None] + b[None, :, :], axis=1)
    np.testing.assert_allclose(out, expected)


def test_contract_matvec():
    a = np.random.default_rng(4).normal(size=(3, 4))
    v = np.random.default_rng(5).normal(size=4)
    out = contract(
        a, v, ("i", "j"), ("j",), ("i",), None, monoid("+"), ("x", "y")
    )
    np.testing.assert_allclose(out, a @ v)
