"""Coverage for assorted corners: context, explain output, cost model."""

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.comprehension import Interpreter, parse
from repro.comprehension.interpreter import index_value
from repro.engine import (
    BENCH_CLUSTER, ClusterSpec, EngineContext, PAPER_CLUSTER, TINY_CLUSTER,
)
from repro.storage import DenseMatrix, DenseVector

RNG = np.random.default_rng(9)


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=10)


# ----------------------------------------------------------------------
# Engine context conveniences
# ----------------------------------------------------------------------


def test_context_range():
    ctx = EngineContext(cluster=TINY_CLUSTER)
    assert ctx.range(2, 7, 2).collect() == [2, 3, 4, 5, 6]


def test_empty_rdd():
    ctx = EngineContext(cluster=TINY_CLUSTER)
    empty = ctx.empty_rdd()
    assert empty.collect() == []
    assert empty.count() == 0


def test_broadcast_used_inside_shuffled_stage():
    ctx = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    lookup = ctx.broadcast({0: "even", 1: "odd"})
    result = dict(
        ctx.parallelize(range(10), 4)
        .map(lambda x: (lookup.value[x % 2], 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )
    assert result == {"even": 5, "odd": 5}


def test_default_parallelism_override():
    ctx = EngineContext(cluster=PAPER_CLUSTER, default_parallelism=3)
    assert ctx.default_parallelism == 3
    assert ctx.parallelize(range(100)).num_partitions == 3


# ----------------------------------------------------------------------
# Cost model properties
# ----------------------------------------------------------------------


def test_simulated_time_scales_with_compute_scale():
    ctx = EngineContext(cluster=TINY_CLUSTER)
    rdd = ctx.parallelize(range(20000), 4)
    rdd.map(lambda x: x * x).reduce(lambda a, b: a + b)
    base = ctx.metrics.total.simulated_time(ClusterSpec(compute_scale=1.0))
    scaled = ctx.metrics.total.simulated_time(ClusterSpec(compute_scale=10.0))
    assert scaled > base


def test_skewed_stage_dominated_by_longest_task():
    """The makespan term: one giant task bounds the stage regardless of
    how many cores the simulated cluster has."""
    ctx = EngineContext(cluster=PAPER_CLUSTER, default_parallelism=8)
    # All the work lands in one partition.
    data = [(0, i) for i in range(20000)]
    ctx.parallelize(data, 8).group_by_key().map_values(
        lambda vs: sum(v * v for v in vs)
    ).collect()
    total = ctx.metrics.total
    longest = max(s.longest_task_seconds for s in total.stage_costs)
    assert total.simulated_time(PAPER_CLUSTER) >= longest


def test_bench_cluster_documented_constants():
    assert BENCH_CLUSTER.compute_scale > 1.0
    assert BENCH_CLUSTER.network_bandwidth > PAPER_CLUSTER.network_bandwidth


# ----------------------------------------------------------------------
# Interpreter corners
# ----------------------------------------------------------------------


def test_interpreter_if_branches_lazily():
    def boom():
        raise RuntimeError("must not evaluate")

    interp = Interpreter({"x": 1, "boom": boom})
    assert interp.evaluate(parse("if (x > 0) x else boom()")) == 1


def test_interpreter_string_literals():
    assert Interpreter({}).evaluate(parse('"hello"')) == "hello"


def test_interpreter_reduce_over_ndarray():
    interp = Interpreter({"V": [1.0, 2.0, 3.0]})
    assert interp.evaluate(parse("+/V")) == 6.0


def test_index_value_paths():
    assert index_value([10, 20, 30], [1]) == 20
    assert index_value({"a": 1}, ["a"]) == 1
    assert index_value({(0, 1): 5}, [0, 1]) == 5
    assert index_value(np.arange(6).reshape(2, 3), [1, 2]) == 5
    matrix = DenseMatrix.from_numpy(np.eye(2))
    assert index_value(matrix, [0, 0]) == 1.0


def test_direct_indexing_query(session):
    m = DenseMatrix.from_numpy(np.arange(6.0).reshape(2, 3))
    assert session.run("M[1, 2]", M=m) == 5.0


def test_inclusive_vs_exclusive_ranges(session):
    assert session.run("[ i | i <- 0 until 3 ]") == [0, 1, 2]
    assert session.run("[ i | i <- 0 to 3 ]") == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Explain output per rule
# ----------------------------------------------------------------------


def test_explain_contains_pseudocode_per_rule(session):
    a = RNG.uniform(0, 9, size=(30, 30))
    A = session.tiled(a)
    B = session.tiled(a)
    cases = {
        "preserve-tiling": (
            "tiled(n,n)[ ((i,j), x+y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
            " ii == i, jj == j ]"
        ),
        "tiled-shuffle": "tiled(n,n)[ (((i+1)%n, j), v) | ((i,j),v) <- A ]",
        "tiled-reduce": None,  # asserted below with its own query
        "group-by-join": (
            "tiled(n,n)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
            " kk == k, let v = x*y, group by (i,j) ]"
        ),
    }
    for rule, query in cases.items():
        if query is None:
            continue
        report = session.explain(query, A=A, B=B, n=30)
        assert rule in report
        assert "generated program:" in report

    reduce_report = session.explain(
        "tiled_vector(n)[ (i, +/v) | ((i,j),v) <- A, group by i ]",
        A=A, n=30,
    )
    assert "tiled-reduce" in reduce_report
    assert "reduceByKey" in reduce_report


def test_gbj_shuffles_no_partial_products(session):
    """Mechanism check: GBJ ships only replicated inputs; the 5.3 plan
    also ships one partial product tile per joined pair."""
    a = RNG.uniform(0, 9, size=(40, 40))
    query = (
        "tiled(n,n)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]"
    )

    gbj = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    gbj.run(query, A=gbj.tiled(a), B=gbj.tiled(a), n=40).tiles.count()
    gbj_shuffles = gbj.engine.metrics.total.shuffles

    j53 = SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(group_by_join=False),
    )
    j53.run(query, A=j53.tiled(a), B=j53.tiled(a), n=40).tiles.count()
    j53_shuffles = j53.engine.metrics.total.shuffles

    # 5.3 runs the extra reduceByKey shuffle over partial products.
    assert j53_shuffles > gbj_shuffles


# ----------------------------------------------------------------------
# Dense storage dtype handling
# ----------------------------------------------------------------------


def test_dense_vector_integer_items():
    v = DenseVector.from_items(3, [(0, 1), (2, 5)])
    assert v.data.dtype == np.float64
    np.testing.assert_allclose(v.data, [1.0, 0.0, 5.0])


def test_session_num_partitions_hint():
    session = SacSession(cluster=TINY_CLUSTER, tile_size=5, num_partitions=2)
    tiled = session.run(
        "tiled(n,n)[ ((i,j), v) | ((i,j),v) <- L ]",
        L=session.rdd([((0, 0), 1.0)]), n=10,
    )
    assert tiled.to_numpy()[0, 0] == 1.0
