"""Tests for the desugaring and normalization rewrite rules."""

import pytest

from repro.comprehension import (
    BinOp, Call, Comprehension, Generator, GroupByQual, Guard, Index,
    LetQual, Lit, RangeExpr, Reduce, SacPlanError, TupleExpr, Var, VarPat,
    desugar, free_vars, normalize, parse, pattern_vars, to_source,
)


def pipeline(source: str, is_array=lambda _n: True):
    return normalize(desugar(parse(source), is_array=is_array))


def quals(expr):
    assert isinstance(expr, Comprehension)
    return expr.qualifiers


# ----------------------------------------------------------------------
# Desugaring
# ----------------------------------------------------------------------


def test_group_by_key_form_becomes_let_plus_group_by():
    expr = desugar(parse("[ (k, +/c) | ((i,j),c) <- A, group by k: (i, j) ]"))
    gb = [q for q in quals(expr) if isinstance(q, GroupByQual)]
    lets = [q for q in quals(expr) if isinstance(q, LetQual)]
    assert len(gb) == 1 and gb[0].key is None and gb[0].pattern == VarPat("k")
    assert any(q.pattern == VarPat("k") for q in lets)


def test_group_by_bare_expression_gets_fresh_key():
    expr = desugar(parse("[ (i/N, v) | (i,v) <- L, group by i/N ]"))
    gb = [q for q in quals(expr) if isinstance(q, GroupByQual)][0]
    assert gb.pattern is not None and gb.key is None
    # The head occurrence of i/N must now reference the key variable.
    key_name = gb.pattern.name
    assert isinstance(expr.head, TupleExpr)
    assert expr.head.items[0] == Var(key_name)


def test_avg_decomposes_into_sum_over_count():
    expr = desugar(parse("[ (i, avg/v) | (i,v) <- V, group by i ]"))
    value = expr.head.items[1]
    assert isinstance(value, BinOp) and value.op == "/"
    assert value.left == Reduce("+", Var("v"))
    assert value.right == Reduce("count", Var("v"))


def test_indexing_rule_adds_generator_and_guards():
    expr = desugar(
        parse("[ ((i,j), a + N[i, j]) | ((i,j),a) <- M ]"),
        is_array=lambda name: name in ("M", "N"),
    )
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    guards = [q for q in quals(expr) if isinstance(q, Guard)]
    assert len(generators) == 2
    assert generators[1].source == Var("N")
    assert len(guards) == 2  # one per index
    assert not any(isinstance(node, Index) for node in _walk_exprs(expr))


def test_indexing_rule_ignores_non_arrays():
    expr = desugar(
        parse("[ (i, a + N[i, i]) | (i,a) <- M ]"),
        is_array=lambda name: name == "M",
    )
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert len(generators) == 1  # N stays as direct indexing


def test_indexing_rule_ignores_locally_bound_names():
    # `a` is generator-bound: a[i] must not be rewritten even if the
    # predicate claims everything is an array.
    expr = desugar(
        parse("[ (i, a[0]) | (i,a) <- M ]"), is_array=lambda _n: True
    )
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert len(generators) == 1


def test_indexing_after_group_by_rejected():
    with pytest.raises(SacPlanError):
        desugar(
            parse("[ (i, W[i] + +/v) | (i,v) <- M, group by i ]"),
            is_array=lambda _n: True,
        )


def _walk_exprs(expr):
    from repro.comprehension.ast import walk

    return list(walk(expr))


# ----------------------------------------------------------------------
# Normalization: Rule (3) unnesting
# ----------------------------------------------------------------------


def test_unnest_inner_comprehension():
    expr = pipeline("[ x + 1 | x <- [ v * 2 | (i,v) <- V ] ]")
    inner = [
        q for q in quals(expr) if isinstance(q, Generator)
        and isinstance(q.source, Comprehension)
    ]
    assert not inner  # fully flattened
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert len(generators) == 1
    assert generators[0].source == Var("V")


def test_unnest_renames_to_avoid_capture():
    # Both levels use the name `v`; after unnesting they must differ.
    expr = pipeline("[ v | v <- [ v | (i,v) <- V ] ]")
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    bound = pattern_vars(generators[0].pattern)
    # The head variable must be resolvable to something bound.
    assert free_vars(expr) == {"V"}
    assert len(bound) == 2


def test_unnest_preserves_group_by_inner():
    # Inner comprehensions WITH group-by must not be flattened.
    source = "[ x | x <- [ (i, +/v) | (i,v) <- V, group by i ] ]"
    expr = normalize(desugar(parse(source)))
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert isinstance(generators[0].source, Comprehension)


def test_builder_sparsifier_fusion():
    # Traversing a freshly built matrix traverses its association list.
    expr = pipeline("[ v | ((i,j),v) <- matrix(n,m)[ ((i,j),x) | ((i,j),x) <- M ] ]")
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert len(generators) == 1
    assert generators[0].source == Var("M")


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------


def test_conjunction_splits_into_guards():
    expr = pipeline("[ v | (i,v) <- V, i > 1 && v < 5 ]")
    guards = [q for q in quals(expr) if isinstance(q, Guard)]
    assert len(guards) == 2


def test_guard_pushdown_moves_filter_before_second_generator():
    expr = pipeline("[ (v, w) | (i,v) <- V, (j,w) <- W, i > 1 ]")
    names = [type(q).__name__ for q in quals(expr)]
    assert names == ["Generator", "Guard", "Generator"]


def test_guard_on_both_generators_stays_after_both():
    expr = pipeline("[ (v, w) | (i,v) <- V, (j,w) <- W, i == j + 1 ]")
    names = [type(q).__name__ for q in quals(expr)]
    assert names == ["Generator", "Generator", "Guard"]


def test_guard_never_crosses_group_by():
    source = "[ (i, +/v) | (i,v) <- V, group by i, +/v > 10 ]"
    expr = normalize(desugar(parse(source)))
    kinds = [type(q).__name__ for q in quals(expr)]
    assert kinds.index("GroupByQual") < kinds.index("Guard")


# ----------------------------------------------------------------------
# Range handling
# ----------------------------------------------------------------------


def test_inclusive_range_normalizes_to_exclusive():
    expr = pipeline("[ i | i <- 1 to n ]")
    gen = quals(expr)[0]
    assert isinstance(gen.source, RangeExpr)
    assert not gen.source.inclusive
    assert gen.source.hi == BinOp("+", Var("n"), Lit(1))


def test_range_fusion_on_equality():
    # i <- 0 until n, j <- 0 until m, i == j  =>  one range + let.
    expr = pipeline("[ (i, j) | i <- 0 until n, j <- 0 until m, j == i ]")
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert len(generators) == 1
    fused = generators[0].source
    assert isinstance(fused, RangeExpr)
    assert fused.hi == Call("min", (Var("n"), Var("m")))
    assert not any(isinstance(q, Guard) for q in quals(expr))


def test_range_fusion_identical_bounds_no_min():
    expr = pipeline("[ i | i <- 0 until n, j <- 0 until n, i == j ]")
    generators = [q for q in quals(expr) if isinstance(q, Generator)]
    assert len(generators) == 1
    assert generators[0].source == RangeExpr(Lit(0), Var("n"), False)


# ----------------------------------------------------------------------
# Cleanup passes
# ----------------------------------------------------------------------


def test_trivial_let_inlined():
    expr = pipeline("[ x | (i,v) <- V, let x = v ]")
    assert not any(isinstance(q, LetQual) for q in quals(expr))
    assert expr.head == Var("v")


def test_literal_let_inlined():
    expr = pipeline("[ v * c | (i,v) <- V, let c = 2 ]")
    assert not any(isinstance(q, LetQual) for q in quals(expr))
    assert expr.head == BinOp("*", Var("v"), Lit(2))


def test_nontrivial_let_kept():
    expr = pipeline("[ x | (i,v) <- V, let x = v * v ]")
    assert any(isinstance(q, LetQual) for q in quals(expr))


def test_constant_folding():
    assert normalize(parse("1 + 2 * 3")) == Lit(7)
    assert normalize(parse("4 / 2")) == Lit(2)
    assert normalize(parse("1 < 2")) == Lit(True)
    assert normalize(parse("-(3)")) == Lit(-3)


def test_normalize_is_idempotent():
    source = (
        "matrix(n,m)[ ((i,j),a+b) | ((i,j),a) <- M, ((ii,jj),b) <- N,"
        " ii == i, jj == j ]"
    )
    once = pipeline(source)
    twice = normalize(once)
    assert to_source(once) == to_source(twice)
