"""Fused kernel codegen: differential fuzz and fallback parity.

The fusion pass replaces the preserve-tiling MapTiles/Filter interpreter
chain with one generated NumPy kernel per partition.  The contract is
*byte identity*: for every fusible chain, the fused run must produce
exactly the same array as the interpreter chain (``np.array_equal``, not
allclose — the kernel re-emits the same ufunc calls in the same order).
These tests fuzz that contract over random chains, pin it across the
serial/threaded × staged/pipelined runner matrix, and cover the
KernelUnsupported fallback, the kernel cache counters, the explain()
surfacing, and the vectorized ``partition_batch`` fast path.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SacSession
from repro.engine import TINY_CLUSTER
from repro.engine.partitioner import GridPartitioner, HashPartitioner
from repro.planner import PlannerOptions

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

dims = st.integers(min_value=1, max_value=23)
tile_sizes = st.integers(min_value=1, max_value=9)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_session(tile_size, fusion, runner=None, pipeline=None):
    return SacSession(
        cluster=TINY_CLUSTER, tile_size=tile_size,
        options=PlannerOptions(fusion=fusion),
        runner=runner, pipeline=pipeline,
    )


def random_matrix(rows, cols, seed):
    return np.random.default_rng(seed).uniform(-5, 5, size=(rows, cols))


def _run_both(query, env_of, tile, runner=None, pipeline=None):
    """Run ``query`` fused and interpreted; return both ndarrays."""
    results = []
    for fusion in (True, False):
        session = make_session(tile, fusion, runner=runner, pipeline=pipeline)
        results.append(session.run(query, env_of(session)).to_numpy())
    return results


def _assert_fused(session, query, env):
    """The compile must actually take the fused path (guards the fuzz
    against silently degrading into interpreter-vs-interpreter)."""
    plan = session.compile(query, env).plan
    notes = [e.summary() for e in plan.trace if e.name == "fusion"]
    assert notes and notes[0].startswith("fusion: fused"), notes


# ----------------------------------------------------------------------
# Differential fuzz: random chains, fused vs interpreted, byte-identical
# ----------------------------------------------------------------------

SINGLE_HEADS = [
    "2.0*v", "v+1.0", "v*v", "v-0.5", "0.5*v+2.0*v*v", "v/4.0", "0.0-v",
]
DOUBLE_HEADS = ["a+b", "a*b", "2.0*a-b", "a-b+1.0"]
# i == j would be a join *equality* (it unifies the index classes and
# changes the plan shape), so only order/inequality guards appear here.
GUARDS = ["", ", i != j", ", i < j", ", i > j"]


@SETTINGS
@given(
    n=dims, m=dims, tile=tile_sizes, seed=seeds,
    head=st.sampled_from(SINGLE_HEADS),
    guard=st.sampled_from(GUARDS),
    transpose=st.booleans(),
)
def test_single_generator_chain_byte_identical(
    n, m, tile, seed, head, guard, transpose
):
    data = random_matrix(n, m, seed)
    if transpose:
        query = f"tiled(m,n)[ ((j,i),{head}) | ((i,j),v) <- M{guard} ]"
    else:
        query = f"tiled(n,m)[ ((i,j),{head}) | ((i,j),v) <- M{guard} ]"

    def env_of(session):
        return dict(M=session.tiled(data), n=n, m=m)

    fused, interpreted = _run_both(query, env_of, tile)
    assert np.array_equal(fused, interpreted)
    session = make_session(tile, fusion=True)
    _assert_fused(session, query, env_of(session))


@SETTINGS
@given(
    n=dims, m=dims, tile=tile_sizes, seed=seeds,
    head=st.sampled_from(DOUBLE_HEADS),
    guard=st.sampled_from(GUARDS),
)
def test_two_generator_chain_byte_identical(n, m, tile, seed, head, guard):
    left = random_matrix(n, m, seed)
    right = random_matrix(n, m, seed + 1)
    query = (
        f"tiled(n,m)[ ((i,j),{head}) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
        f" ii == i, jj == j{guard} ]"
    )

    def env_of(session):
        return dict(A=session.tiled(left), B=session.tiled(right), n=n, m=m)

    fused, interpreted = _run_both(query, env_of, tile)
    assert np.array_equal(fused, interpreted)
    session = make_session(tile, fusion=True)
    _assert_fused(session, query, env_of(session))


@SETTINGS
@given(n=dims, tile=tile_sizes, seed=seeds, head=st.sampled_from(
    ["2.0*x+1.0", "x*x", "x/3.0"]
))
def test_vector_chain_byte_identical(n, tile, seed, head):
    data = np.random.default_rng(seed).uniform(-5, 5, size=n)
    query = f"tiled_vector(n)[ (i,{head}) | (i,x) <- V ]"

    def env_of(session):
        return dict(V=session.tiled_vector(data), n=n)

    fused, interpreted = _run_both(query, env_of, tile)
    assert np.array_equal(fused, interpreted)


# ----------------------------------------------------------------------
# Runner matrix: serial/threaded × staged/pipelined
# ----------------------------------------------------------------------

RUNNER_MATRIX = [
    ("serial-staged", None, None),
    ("threads-staged", "threads", None),
    ("threads-pipelined", "pipelined", True),
]

MATRIX_QUERIES = [
    "tiled(n,m)[ ((i,j),2.0*v+1.0) | ((i,j),v) <- M, i != j ]",
    "tiled(m,n)[ ((j,i),v*v) | ((i,j),v) <- M ]",
    (
        "tiled(n,m)[ ((i,j),a-2.0*b) | ((i,j),a) <- M, ((ii,jj),b) <- N2,"
        " ii == i, jj == j ]"
    ),
]


@pytest.mark.parametrize(
    "label,runner,pipeline", RUNNER_MATRIX, ids=[r[0] for r in RUNNER_MATRIX]
)
@pytest.mark.parametrize("query", MATRIX_QUERIES)
def test_runner_matrix_byte_identical(label, runner, pipeline, query):
    n, m, tile = 23, 17, 6
    left = random_matrix(n, m, 11)
    right = random_matrix(n, m, 12)

    def env_of(session):
        return dict(
            M=session.tiled(left), N2=session.tiled(right), n=n, m=m
        )

    fused, interpreted = _run_both(
        query, env_of, tile, runner=runner, pipeline=pipeline
    )
    assert np.array_equal(fused, interpreted)


# ----------------------------------------------------------------------
# KernelUnsupported fallback: interpreter chain kept, results unchanged
# ----------------------------------------------------------------------


def test_kernel_unsupported_falls_back_to_interpreter(monkeypatch):
    from repro.planner import passes
    from repro.planner.kernels import KernelUnsupported

    def refuse(*_args, **_kwargs):
        raise KernelUnsupported("forced by test")

    query = "tiled(n,m)[ ((i,j),2.0*v) | ((i,j),v) <- M ]"
    data = random_matrix(13, 9, 3)

    baseline_session = make_session(5, fusion=False)
    baseline = baseline_session.run(
        query, M=baseline_session.tiled(data), n=13, m=9
    ).to_numpy()

    monkeypatch.setattr(passes, "generate_fused_kernel", refuse)
    session = make_session(5, fusion=True)
    env = dict(M=session.tiled(data), n=13, m=9)
    plan = session.compile(query, env).plan
    notes = [e.summary() for e in plan.trace if e.name == "fusion"]
    assert notes == [
        "fusion: kernel codegen unsupported (forced by test);"
        " interpreter chain kept"
    ]
    assert np.array_equal(session.run(query, env).to_numpy(), baseline)


# ----------------------------------------------------------------------
# Kernel cache: compile-time hit/miss counters in JobMetrics
# ----------------------------------------------------------------------


def test_kernel_cache_counters():
    # A constant no other test uses keeps the process-wide cache cold
    # for the first session and warm for the second.
    query = "tiled(n,m)[ ((i,j),7.5309*v) | ((i,j),v) <- M ]"
    data = random_matrix(13, 11, 5)

    first = make_session(5, fusion=True)
    first.run(query, M=first.tiled(data), n=13, m=11)
    cold = first.engine.metrics.total
    assert cold.kernel_cache_misses == 1
    assert cold.kernel_cache_hits == 0

    second = make_session(5, fusion=True)
    second.run(query, M=second.tiled(data), n=13, m=11)
    warm = second.engine.metrics.total
    assert warm.kernel_cache_misses == 0
    assert warm.kernel_cache_hits >= 1


def test_kernel_cache_lru_eviction():
    from repro.planner.codegen import KernelCache

    cache = KernelCache(maxsize=2)
    src = "def _fused_partition(_part):\n    return _part\n"
    for fp in ("a", "b", "c"):
        cache.get(fp, src)
    stats = cache.stats()
    assert stats["misses"] == 3
    assert stats["evictions"] == 1
    cache.get("c", src)
    assert cache.stats()["hits"] == 1


# ----------------------------------------------------------------------
# Surfacing: explain(), to_dict(), and the --no-fusion CLI flag
# ----------------------------------------------------------------------


def test_explain_and_to_dict_surface_fused_source():
    session = make_session(5, fusion=True)
    query = "tiled(n,m)[ ((i,j),v*v) | ((i,j),v) <- M, i != j ]"
    env = dict(M=session.tiled(random_matrix(13, 9, 4)), n=13, m=9)

    report = session.explain(query, env)
    assert "fused kernel" in report
    assert "_fused_partition" in report

    out = session.compile(query, env).plan.to_dict()
    assert "fused_kernels" in out
    (entry,) = out["fused_kernels"]
    assert entry["mode"] == "tiles"
    assert entry["nodes"]
    assert len(entry["fingerprint"]) == 16
    assert "def _fused_partition(_part):" in entry["source"]


def test_to_dict_has_no_fused_section_when_off():
    session = make_session(5, fusion=False)
    query = "tiled(n,m)[ ((i,j),v*v) | ((i,j),v) <- M ]"
    env = dict(M=session.tiled(random_matrix(13, 9, 4)), n=13, m=9)
    out = session.compile(query, env).plan.to_dict()
    assert "fused_kernels" not in out


def test_cli_no_fusion_flag_parses():
    from repro.cli import build_parser

    args = build_parser().parse_args(["q", "--no-fusion"])
    assert args.no_fusion is True
    args = build_parser().parse_args(["q"])
    assert args.no_fusion is False


# ----------------------------------------------------------------------
# Vectorized partitioning: partition_batch must equal partition()
# ----------------------------------------------------------------------

coords = st.integers(min_value=0, max_value=2**60)


@SETTINGS
@given(
    keys=st.lists(
        st.tuples(coords, coords), min_size=1, max_size=200
    ),
    parts=st.integers(min_value=1, max_value=17),
)
def test_hash_partition_batch_matches_scalar_tuples(keys, parts):
    partitioner = HashPartitioner(parts)
    batch = partitioner.partition_batch(keys)
    assert batch is not None
    assert list(batch) == [partitioner.partition(k) for k in keys]


@SETTINGS
@given(
    keys=st.lists(coords, min_size=1, max_size=200),
    parts=st.integers(min_value=1, max_value=17),
)
def test_hash_partition_batch_matches_scalar_ints(keys, parts):
    partitioner = HashPartitioner(parts)
    batch = partitioner.partition_batch(keys)
    assert batch is not None
    assert list(batch) == [partitioner.partition(k) for k in keys]


@SETTINGS
@given(
    rows=st.integers(min_value=1, max_value=12),
    cols=st.integers(min_value=1, max_value=12),
    parts=st.integers(min_value=1, max_value=9),
    keys=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1, max_size=100,
    ),
)
def test_grid_partition_batch_matches_scalar(rows, cols, parts, keys):
    partitioner = GridPartitioner(rows, cols, parts)
    batch = partitioner.partition_batch(keys)
    assert batch is not None
    assert list(batch) == [partitioner.partition(k) for k in keys]


@pytest.mark.parametrize("keys", [
    [(0.5, 1)],                 # float component
    ["row"],                    # non-numeric
    [(1, 2), (3,)],             # ragged tuples
    [(-1, 2)],                  # negative breaks hash(v) == v identity
    [(2**61 - 1, 0)],           # at/above the CPython identity cap
    [],                         # empty batch
])
def test_partition_batch_rejects_unsafe_keys(keys):
    partitioner = HashPartitioner(4)
    assert partitioner.partition_batch(keys) is None
