"""The ``repro serve`` front door: service, HTTP server, replay harness.

End-to-end checks that many concurrent clients over one substrate get
byte-identical answers (digest-compared), per-tenant metrics, and the
shared-cache wins the front door exists for.
"""

import asyncio
import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.engine import TINY_CLUSTER
from repro.serve import (
    QueryService,
    ReplayReport,
    ServeServer,
    demo_workload,
    http_submit,
    render_result,
    replay,
    serve_main,
)

ROW_SUMS = "tiled_vector(n)[ (i, +/a) | ((i,j),a) <- A, group by i ]"


@pytest.fixture
def service():
    svc = QueryService(cluster=TINY_CLUSTER, tile_size=8)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# render_result
# ----------------------------------------------------------------------


def test_render_result_array_digest_is_content_addressed():
    a = np.arange(12.0).reshape(3, 4)
    first = render_result(a)
    second = render_result(a.copy())
    different = render_result(a + 1)
    assert first["kind"] == "array"
    assert first["shape"] == [3, 4]
    assert first["digest"] == second["digest"]
    assert first["digest"] != different["digest"]


def test_render_result_distinguishes_dtype_and_shape():
    a = np.zeros(4)
    assert render_result(a)["digest"] != render_result(
        a.astype(np.float32)
    )["digest"]
    assert render_result(a)["digest"] != render_result(
        a.reshape(2, 2)
    )["digest"]


def test_render_result_scalar_and_values():
    scalar = render_result(3.5)
    assert scalar == {
        "kind": "scalar", "value": 3.5, "digest": scalar["digest"]
    }
    small = render_result(np.ones(3), include_values=True)
    assert small["values"] == [1.0, 1.0, 1.0]


# ----------------------------------------------------------------------
# QueryService
# ----------------------------------------------------------------------


def test_submit_runs_against_hosted_datasets(service):
    rng = np.random.default_rng(2)
    a = rng.uniform(size=(16, 16))
    service.host("A", a)
    rendered = service.submit(
        "alice", ROW_SUMS, {"n": 16}, include_values=True
    )
    assert rendered["tenant"] == "alice"
    assert rendered["shape"] == [16]
    # Numerically the row sums (bitwise may differ from NumPy's
    # summation order; the digest is for cross-run identity, not this).
    np.testing.assert_allclose(rendered["values"], a.sum(axis=1), rtol=1e-10)


def test_submit_env_shadows_hosted_dataset(service):
    service.host("A", np.ones((8, 8)))
    via_env = service.submit("bob", "+/[ v | (i,v) <- V ]", {
        "V": service.host("V", np.arange(8.0)), "n": 8,
    })
    assert via_env["kind"] == "scalar"
    assert via_env["value"] == pytest.approx(28.0)


def test_sessions_are_lazy_and_cached_per_tenant(service):
    service.host("A", np.ones((8, 8)))
    assert service.session("alice") is service.session("alice")
    assert service.session("alice") is not service.session("bob")
    assert service.session("alice").tenant == "alice"


def test_tenant_metrics_attributed_per_tenant(service):
    service.host("A", np.ones((16, 16)))
    service.submit("alice", ROW_SUMS, {"n": 16})
    service.submit("alice", ROW_SUMS, {"n": 16})
    service.submit("bob", ROW_SUMS, {"n": 16})
    report = service.metrics_report()
    assert report["tenants"]["alice"]["queries"] == 2
    assert report["tenants"]["bob"]["queries"] == 1
    # bob compiled nothing: every tier was primed by alice.
    assert report["tenants"]["bob"]["plan_cache_hit_rate"] == 1.0
    assert report["admission"]["running"] == 0


def test_submit_error_counts_against_tenant(service):
    service.host("A", np.ones((8, 8)))
    with pytest.raises(Exception):
        service.submit("alice", "this is not a query", {})
    report = service.metrics_report()
    assert report["tenants"]["alice"]["errors"] == 1


# ----------------------------------------------------------------------
# Replay harness
# ----------------------------------------------------------------------


def test_replay_concurrent_clients_identical_digests(service):
    workloads = demo_workload(service, num_tenants=3, size=16)
    report = replay(service.submit, workloads, rounds=2)
    assert not report.errors
    assert len(report.digests) == 3
    per_tenant = {tuple(d) for d in report.digests.values()}
    assert len(per_tenant) == 1  # every tenant saw identical bytes
    assert all(len(d) == 6 for d in report.digests.values())
    summary = report.summary()
    assert summary["queries"] == 18
    assert summary["latency_p95_seconds"] >= summary["latency_p50_seconds"]


def test_replay_serial_matches_concurrent(service):
    workloads = demo_workload(service, num_tenants=2, size=16)
    concurrent = replay(service.submit, workloads, rounds=1)
    serial_service = QueryService(cluster=TINY_CLUSTER, tile_size=8)
    serial_workloads = demo_workload(serial_service, num_tenants=2, size=16)
    serial = replay(
        serial_service.submit, serial_workloads, rounds=1, concurrent=False
    )
    assert concurrent.digests == serial.digests
    serial_service.close()


def test_replay_shared_substrate_shows_cache_wins():
    # Default (paper) cluster: its cost model picks the shuffle-bearing
    # plans whose retained outputs later tenants reuse.
    service = QueryService(tile_size=8)
    workloads = demo_workload(service, num_tenants=3, size=16)
    replay(service.submit, workloads, rounds=2)
    report = service.metrics_report()
    total_hits = sum(
        s["plan_cache_hits"] for s in report["tenants"].values()
    )
    total_misses = sum(
        s["plan_cache_misses"] for s in report["tenants"].values()
    )
    # 3 tenants x 2 rounds x 3 queries; only the very first execution of
    # each distinct query can miss.
    assert total_hits + total_misses == 18
    assert total_misses <= 3
    # Retained shuffle outputs answered later tenants' equal shuffles.
    assert service.substrate.metrics.total.shuffle_reuses > 0
    tenant_reuses = sum(
        s["shuffle_reuses"] for s in report["tenants"].values()
    )
    assert tenant_reuses == service.substrate.metrics.total.shuffle_reuses
    service.close()


def test_replay_collects_errors_without_stopping():
    report = ReplayReport(digests={"a": []}, latencies={"a": []})

    def failing_submit(tenant, query, env=None, include_values=False):
        raise RuntimeError("boom")

    report = replay(failing_submit, {"a": [("q", {})]}, rounds=2)
    assert len(report.errors) == 2
    assert report.digests["a"] == []


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------


def _boot(service):
    """Run a ServeServer on an ephemeral port in a daemon thread."""
    server = ServeServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    async def main():
        await server.start()
        started.set()
        await server.serve_forever()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(main()), daemon=True
    )
    thread.start()
    assert started.wait(timeout=10)
    return server, loop


def _shutdown(server, loop):
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)


def test_http_query_metrics_health(service):
    rng = np.random.default_rng(9)
    a = rng.uniform(size=(16, 16))
    service.host("A", a)
    server, loop = _boot(service)
    try:
        base = f"http://127.0.0.1:{server.port}"
        with urllib.request.urlopen(f"{base}/health", timeout=10) as resp:
            assert json.loads(resp.read()) == {"ok": True}

        submit = http_submit("127.0.0.1", server.port)
        rendered = submit("alice", ROW_SUMS, {"n": 16})
        assert rendered["tenant"] == "alice"
        assert rendered["shape"] == [16]
        # Same query in-process produces the same bytes.
        assert rendered["digest"] == service.submit(
            "check", ROW_SUMS, {"n": 16}
        )["digest"]

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
            metrics = json.loads(resp.read())
        assert metrics["ok"] is True
        assert metrics["tenants"]["alice"]["queries"] == 1
        assert "plan_caches" in metrics and "admission" in metrics
    finally:
        _shutdown(server, loop)


def test_http_bad_query_is_a_client_error_not_a_crash(service):
    service.host("A", np.ones((8, 8)))
    server, loop = _boot(service)
    try:
        submit = http_submit("127.0.0.1", server.port)
        with pytest.raises(RuntimeError):
            submit("alice", "syntax garbage ((", {})
        # The server survived and still answers.
        rendered = submit("alice", ROW_SUMS, {"n": 8})
        assert rendered["kind"] == "array"
    finally:
        _shutdown(server, loop)


def test_http_unknown_route_404(service):
    server, loop = _boot(service)
    try:
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/nope"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 404
    finally:
        _shutdown(server, loop)


def test_concurrent_http_clients_share_the_substrate(service):
    workloads = demo_workload(service, num_tenants=3, size=16)
    server, loop = _boot(service)
    try:
        submit = http_submit("127.0.0.1", server.port)
        report = replay(submit, workloads, rounds=1)
        assert not report.errors
        assert len({tuple(d) for d in report.digests.values()}) == 1
    finally:
        _shutdown(server, loop)


# ----------------------------------------------------------------------
# CLI entry
# ----------------------------------------------------------------------


def test_serve_main_replay_smoke(capsys):
    exit_code = serve_main([
        "--replay", "2", "--rounds", "1", "--tile-size", "8",
        "--demo", "16", "--json",
    ])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["replay"]["errors"] == 0
    assert payload["replay"]["queries"] == 6
    assert payload["tenants"]["tenant-1"]["queries"] == 3


def test_cli_dispatches_serve_subcommand(capsys):
    from repro.cli import main

    exit_code = main([
        "serve", "--replay", "2", "--rounds", "1", "--tile-size", "8",
        "--demo", "16", "--json",
    ])
    assert exit_code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["replay"]["errors"] == 0
