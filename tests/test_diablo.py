"""Tests for the DIABLO-style loop front end (paper Section 1.1)."""

import numpy as np
import pytest

from repro import SacSession
from repro.comprehension.errors import SacPlanError, SacSyntaxError
from repro.diablo import (
    Assign, ForLoop, IfStmt, VarDecl, parse_program, run, translate,
)
from repro.engine import TINY_CLUSTER
from repro.planner import (
    RULE_GROUP_BY_JOIN, RULE_PRESERVE_TILING, RULE_TILED_REDUCE,
)

RNG = np.random.default_rng(55)


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=10)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def test_parse_var_decl():
    program = parse_program("var C: matrix(n, m)")
    assert program.statements == (VarDecl("C", "matrix", program.statements[0].args),)
    assert len(program.statements[0].args) == 2


def test_parse_for_loop_structure():
    program = parse_program("""
        for i = 0, n-1 do
          V[i] += 1.0
        end
    """)
    loop = program.statements[0]
    assert isinstance(loop, ForLoop)
    assert loop.var == "i"
    assert isinstance(loop.body[0], Assign)
    assert loop.body[0].op == "+="


def test_parse_nested_loops_and_if():
    program = parse_program("""
        for i = 0, 9 do
          for j = 0, 9 do
            if (i != j) C[i, j] += 1.0
          end
        end
    """)
    outer = program.statements[0]
    inner = outer.body[0]
    assert isinstance(inner, ForLoop)
    assert isinstance(inner.body[0], IfStmt)


def test_parse_assignment_operators():
    program = parse_program("a = 1; b += 2; c *= 3; d := 4")
    ops = [s.op for s in program.statements]
    assert ops == ["=", "+=", "*=", "="]


def test_parse_unterminated_loop():
    with pytest.raises(SacSyntaxError):
        parse_program("for i = 0, 9 do V[i] += 1.0")


def test_parse_bad_statement():
    with pytest.raises(SacSyntaxError):
        parse_program("42")


# ----------------------------------------------------------------------
# Translation
# ----------------------------------------------------------------------


def test_translate_accumulation_to_group_by():
    [stmt] = translate("""
        var V: vector(n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            V[i] += M[i, j]
          end
        end
    """)
    assert stmt.target == "V"
    assert "group by i" in stmt.source
    assert "+/" in stmt.source


def test_translate_plain_assignment_no_group_by():
    [stmt] = translate("""
        var T: matrix(m, n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            T[j, i] = M[i, j]
          end
        end
    """)
    assert "group by" not in stmt.source


def test_translate_if_becomes_guard():
    [stmt] = translate("""
        var D: vector(n)
        for i = 0, n-1 do
          for j = 0, n-1 do
            if (i == j) D[i] += M[i, j]
          end
        end
    """)
    assert "i == j" in stmt.source


def test_translate_scalar_accumulation():
    [stmt] = translate("""
        for i = 0, n-1 do
          total += V[i]
        end
    """)
    assert stmt.target == "total"
    assert stmt.source.startswith("+/")


def test_translate_requires_declaration():
    with pytest.raises(SacPlanError):
        translate("for i = 0, 9 do V[i] += 1.0 end")


def test_translate_rejects_nondeterministic_assignment():
    with pytest.raises(SacPlanError):
        translate("""
            var V: vector(n)
            for i = 0, n-1 do
              for j = 0, m-1 do
                V[i] = M[i, j]
              end
            end
        """)


def test_translate_rejects_scalar_overwrite_in_loop():
    with pytest.raises(SacPlanError):
        translate("for i = 0, 9 do s = i end")


def test_translate_rejects_decl_inside_loop():
    with pytest.raises(SacPlanError):
        translate("for i = 0, 9 do var V: vector(n); V[i] += 1.0 end")


def test_translated_queries_reparse():
    from repro.comprehension import parse

    for stmt in translate("""
        var C: tiled(n, m)
        for i = 0, n-1 do
          for k = 0, l-1 do
            for j = 0, m-1 do
              C[i, j] += A[i, k] * B[k, j]
            end
          end
        end
    """):
        parse(stmt.source)  # must be valid SAC text


# ----------------------------------------------------------------------
# End-to-end execution and plan selection
# ----------------------------------------------------------------------


def test_row_sum_loop_compiles_to_tiled_reduce(session):
    a = RNG.uniform(0, 9, size=(12, 17))
    program = """
        var V: tiled_vector(n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            V[i] += M[i, j]
          end
        end
    """
    env = {"M": session.tiled(a), "n": 12, "m": 17}
    [stmt] = translate(program)
    compiled = session.compile(stmt.source, env)
    assert compiled.plan.rule == RULE_TILED_REDUCE
    result = run(session, program, env)
    np.testing.assert_allclose(result["V"].to_numpy(), a.sum(axis=1))


def test_matmul_loop_compiles_to_group_by_join(session):
    a = RNG.uniform(0, 9, size=(12, 15))
    b = RNG.uniform(0, 9, size=(15, 9))
    program = """
        var C: tiled(n, m)
        for i = 0, n-1 do
          for k = 0, l-1 do
            for j = 0, m-1 do
              C[i, j] += A[i, k] * B[k, j]
            end
          end
        end
    """
    env = {"A": session.tiled(a), "B": session.tiled(b), "n": 12, "l": 15, "m": 9}
    [stmt] = translate(program)
    compiled = session.compile(stmt.source, env)
    assert compiled.plan.rule == RULE_GROUP_BY_JOIN
    result = run(session, program, env)
    np.testing.assert_allclose(result["C"].to_numpy(), a @ b, rtol=1e-10)


def test_transpose_loop_compiles_to_preserve_tiling(session):
    a = RNG.uniform(0, 9, size=(12, 17))
    program = """
        var T: tiled(m, n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            T[j, i] = M[i, j]
          end
        end
    """
    env = {"M": session.tiled(a), "n": 12, "m": 17}
    [stmt] = translate(program)
    compiled = session.compile(stmt.source, env)
    assert compiled.plan.rule == RULE_PRESERVE_TILING
    result = run(session, program, env)
    np.testing.assert_allclose(result["T"].to_numpy(), a.T)


def test_scalar_total(session):
    a = RNG.uniform(0, 9, size=(8, 8))
    result = run(session, """
        for i = 0, n-1 do
          for j = 0, n-1 do
            total += M[i, j]
          end
        end
    """, {"M": session.tiled(a), "n": 8})
    assert np.isclose(result["total"], a.sum())


def test_conditional_trace(session):
    a = RNG.uniform(0, 9, size=(10, 10))
    result = run(session, """
        for i = 0, n-1 do
          for j = 0, n-1 do
            if (i == j) trace += M[i, j]
          end
        end
    """, {"M": session.tiled(a), "n": 10})
    assert np.isclose(result["trace"], np.trace(a))


def test_sequential_statements_see_earlier_results(session):
    a = RNG.uniform(0, 9, size=(6, 6))
    result = run(session, """
        var S: tiled(n, n)
        for i = 0, n-1 do
          for j = 0, n-1 do
            S[i, j] = M[i, j] + M[j, i]
          end
        end
        for i = 0, n-1 do
          for j = 0, n-1 do
            total += S[i, j]
          end
        end
    """, {"M": session.tiled(a), "n": 6})
    np.testing.assert_allclose(result["S"].to_numpy(), a + a.T)
    assert np.isclose(result["total"], (a + a.T).sum())


def test_product_accumulation(session):
    v = np.array([1.0, 2.0, 3.0, 4.0])
    result = run(session, """
        for i = 0, n-1 do
          product *= V[i]
        end
    """, {"V": session.tiled_vector(v), "n": 4})
    assert np.isclose(result["product"], 24.0)


def test_reads_old_array_not_in_place(session):
    """`V[i] = V[i+1]` shifts using the *old* vector (DIABLO semantics),
    unlike an in-place sequential loop which would propagate."""
    v = np.array([1.0, 2.0, 3.0, 4.0])
    result = run(session, """
        var W: tiled_vector(n)
        for i = 0, n-2 do
          W[i] = V[i + 1]
        end
    """, {"V": session.tiled_vector(v), "n": 4})
    np.testing.assert_allclose(result["W"].to_numpy(), [2.0, 3.0, 4.0, 0.0])
