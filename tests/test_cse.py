"""Common-subplan (shuffle) reuse: the CSE pass end to end.

With ``PlannerOptions(cse=True)`` (or ``REPRO_CSE=1``) the planner
fingerprints reusable plans, the session hands an identical recompile
the *same* Plan object, lowering marks the plan's replicated shuffle
inputs, and the :class:`~repro.engine.block_manager.BlockManager`
serves their retained map outputs to later executions.  These tests
pin the acceptance bar (>= 1.5x less measured shuffle on a repeated
workload), result parity, the off-by-default gate, and the dedup
machinery itself.
"""

import numpy as np
import pytest

from repro import SacSession
from repro.engine import TINY_CLUSTER
from repro.planner import PlannerOptions
from repro.planner.ir import IRNode, dedupe_dag

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)
STEPS = 4


def _run_steps(cse: bool, steps: int = STEPS):
    """Re-run the same multiply ``steps`` times (an iterative workload).

    Replication is forced so the plan is the SUMMA group-by-join whose
    shuffle inputs the CSE pass marks; the cost model's choice is
    shape-dependent and beside the point here.
    """
    rng = np.random.default_rng(7)
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(group_by_join=True, cse=cse),
    )
    A = session.tiled(rng.uniform(size=(40, 30)))
    B = session.tiled(rng.uniform(size=(30, 40)))
    result = None
    for _ in range(steps):
        result = session.run(MULTIPLY, A=A, B=B, n=40, m=40).to_numpy()
    total = session.engine.metrics.total
    return result, total


def test_cse_preserves_results():
    off_result, _ = _run_steps(cse=False)
    on_result, _ = _run_steps(cse=True)
    np.testing.assert_allclose(on_result, off_result, rtol=1e-10)


def test_cse_reduces_measured_shuffle_1_5x():
    """Acceptance bar: >= 1.5x less measured shuffle with CSE on."""
    _, off = _run_steps(cse=False)
    _, on = _run_steps(cse=True)
    assert off.shuffle_bytes >= 1.5 * on.shuffle_bytes, (
        f"CSE shuffle reduction only "
        f"{off.shuffle_bytes / max(on.shuffle_bytes, 1):.2f}x "
        f"({off.shuffle_bytes} vs {on.shuffle_bytes} bytes)"
    )
    assert off.shuffle_records >= 1.5 * on.shuffle_records
    assert on.shuffle_reuses > 0
    assert off.shuffle_reuses == 0


def test_cse_off_keeps_engine_reuse_off():
    """Without CSE nothing opts in: every step re-shuffles in full."""
    _, off = _run_steps(cse=False, steps=2)
    assert off.shuffle_reuses == 0
    assert off.shuffles == 2 * (off.shuffles // 2)  # all real, none reused


def test_cse_annotations_and_trace():
    rng = np.random.default_rng(3)
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10,
        options=PlannerOptions(group_by_join=True, cse=True),
    )
    A = session.tiled(rng.uniform(size=(30, 20)))
    B = session.tiled(rng.uniform(size=(20, 30)))
    plan = session.compile(MULTIPLY, A=A, B=B, n=30, m=30).plan
    assert plan.physical.attrs["cse"] is True
    assert plan.fingerprint  # only fingerprinted when CSE is on
    cse_entry = next(e for e in plan.trace if e.name == "cse")
    assert "marked for cross-query reuse" in cse_entry.note


def test_cse_disabled_by_default():
    rng = np.random.default_rng(3)
    session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    A = session.tiled(rng.uniform(size=(30, 20)))
    B = session.tiled(rng.uniform(size=(20, 30)))
    plan = session.compile(MULTIPLY, A=A, B=B, n=30, m=30).plan
    assert "cse" not in plan.physical.attrs
    assert plan.fingerprint is None
    cse_entry = next(e for e in plan.trace if e.name == "cse")
    assert "disabled" in cse_entry.note


def test_cse_env_flag(monkeypatch):
    """``REPRO_CSE=1`` enables the pass when options leave it unset."""
    monkeypatch.setenv("REPRO_CSE", "1")
    rng = np.random.default_rng(3)
    session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    A = session.tiled(rng.uniform(size=(30, 20)))
    B = session.tiled(rng.uniform(size=(20, 30)))
    plan = session.compile(MULTIPLY, A=A, B=B, n=30, m=30).plan
    assert plan.fingerprint
    # An explicit option always wins over the environment.
    session.options = PlannerOptions(cse=False)
    plan = session.compile(MULTIPLY, A=A, B=B, n=30, m=30).plan
    assert plan.fingerprint is None


def test_dedupe_dag_merges_identical_subtrees():
    storage = object()
    shared_sig = (("rows", 10),)

    def leaf():
        return IRNode("Scan", sig=shared_sig, identity=(id(storage),))

    root = IRNode("Join", children=(leaf(), leaf()))
    deduped, merged = dedupe_dag(root)
    assert merged == 1
    assert deduped.children[0] is deduped.children[1]


def test_dedupe_dag_keeps_distinct_identities_apart():
    """Equal shape over *different* storages must not merge."""
    a, b = object(), object()
    root = IRNode("Join", children=(
        IRNode("Scan", sig=(("rows", 10),), identity=(id(a),)),
        IRNode("Scan", sig=(("rows", 10),), identity=(id(b),)),
    ))
    deduped, merged = dedupe_dag(root)
    assert merged == 0
    assert deduped.children[0] is not deduped.children[1]
