"""BlockManager: byte-accounted caching, eviction, and shuffle reuse.

Also covers the ``ShuffledRDD._local_combine`` path (shuffle-avoiding
combining over a co-partitioned parent) and the fast-path size
accountant's agreement with the reference estimator.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BlockManager,
    EngineContext,
    HashPartitioner,
    MetricsRegistry,
    RecordSizeAccountant,
    TINY_CLUSTER,
    ThreadedTaskRunner,
)
from repro.engine.block_manager import SHUFFLE_REGISTRY_LIMIT
from repro.engine.rdd import ShuffledRDD
from repro.engine.serialization import estimate_record_size


@pytest.fixture()
def ctx():
    return EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)


def _tile_records(split, nbytes_per_record=800, records=2):
    return [
        ((split, j), np.zeros(nbytes_per_record // 8)) for j in range(records)
    ]


# ----------------------------------------------------------------------
# Partition caching through RDD.cache()
# ----------------------------------------------------------------------


def test_cached_rdd_hits_after_first_materialization(ctx):
    rdd = ctx.parallelize(range(100), 4).map(lambda x: x * 2).cache()
    assert rdd.sum() == 2 * sum(range(100))
    assert ctx.metrics.total.cache_misses == 4
    assert ctx.metrics.total.cache_hits == 0
    assert rdd.sum() == 2 * sum(range(100))
    assert ctx.metrics.total.cache_hits == 4
    assert ctx.metrics.total.cache_misses == 4
    assert ctx.block_manager.num_blocks == 4
    assert ctx.block_manager.cached_bytes > 0


def test_unpersist_drops_blocks_without_counting_eviction(ctx):
    rdd = ctx.parallelize(range(40), 4).cache()
    rdd.count()
    assert ctx.block_manager.num_blocks == 4
    rdd.unpersist()
    assert ctx.block_manager.num_blocks == 0
    assert ctx.block_manager.cached_bytes == 0
    assert ctx.metrics.total.cache_evicted_bytes == 0
    # Unpersisted: next action recomputes (a fresh round of misses after
    # re-enabling the cache).
    rdd.cache()
    assert rdd.count() == 40
    assert ctx.metrics.total.cache_misses == 8


def test_lru_eviction_under_memory_budget():
    per_split = 2 + (2 + 8 + 8) + 16 + 8 + 800  # one tile record per split
    ctx = EngineContext(
        cluster=TINY_CLUSTER, memory_budget=2 * per_split + 10
    )
    rdd = ctx.parallelize(
        [((i, 0), np.zeros(100)) for i in range(4)], 4
    ).cache()
    assert rdd.count() == 4
    # Budget holds two of the four partition blocks.
    assert ctx.block_manager.num_blocks == 2
    assert ctx.block_manager.cached_bytes <= 2 * per_split + 10
    assert ctx.metrics.total.cache_evicted_bytes == 2 * per_split
    # Evicted partitions recompute transparently.  (A sequential scan
    # over a cache that holds half the partitions thrashes LRU, so these
    # are all misses — correctness is the point here.)
    assert rdd.count() == 4
    assert ctx.metrics.total.cache_misses == 8
    assert ctx.metrics.total.cache_evicted_bytes >= 2 * per_split


def test_block_larger_than_budget_is_not_stored():
    metrics = MetricsRegistry()
    blocks = BlockManager(metrics, memory_budget=100)
    assert blocks.put(1, 0, _tile_records(0, nbytes_per_record=800)) is False
    assert blocks.num_blocks == 0
    assert metrics.total.cache_evicted_bytes == 0


def test_negative_budget_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        BlockManager(MetricsRegistry(), memory_budget=-1)


def test_contains_and_remove():
    blocks = BlockManager(MetricsRegistry())
    blocks.put(7, 0, [1, 2])
    blocks.put(7, 1, [3])
    blocks.put(8, 0, [4])
    assert blocks.contains(7, 0)
    assert blocks.contains_all(7, 2)
    assert not blocks.contains_all(7, 3)
    freed = blocks.remove_rdd(7)
    assert freed > 0
    assert not blocks.contains(7, 0)
    assert blocks.contains(8, 0)
    blocks.clear()
    assert blocks.num_blocks == 0


def test_racing_put_keeps_first_copy():
    blocks = BlockManager(MetricsRegistry())
    first = [1, 2, 3]
    blocks.put(1, 0, first)
    blocks.put(1, 0, [4, 5, 6])
    assert blocks.get(1, 0) is first


def test_cached_rdd_under_threaded_runner():
    with EngineContext(
        cluster=TINY_CLUSTER, runner=ThreadedTaskRunner(max_workers=4)
    ) as ctx:
        rdd = ctx.parallelize(range(1000), 8).map(lambda x: x + 1).cache()
        assert rdd.sum() == sum(range(1000)) + 1000
        assert rdd.sum() == sum(range(1000)) + 1000
        # Every partition was stored exactly once despite concurrency.
        assert ctx.block_manager.num_blocks == 8
        assert ctx.metrics.total.cache_misses == 8
        assert ctx.metrics.total.cache_hits == 8


# ----------------------------------------------------------------------
# ShuffledRDD._local_combine (shuffle-avoiding path)
# ----------------------------------------------------------------------


def _partitioned_pairs(ctx, partitioner):
    data = [(i % 8, i) for i in range(64)]
    return ctx.parallelize(data, 4).partition_by(partitioner)


@pytest.mark.parametrize("threaded", [False, True])
def test_local_combine_with_aggregator(threaded):
    runner = ThreadedTaskRunner(max_workers=4) if threaded else None
    with EngineContext(cluster=TINY_CLUSTER, runner=runner or "serial") as ctx:
        partitioner = HashPartitioner(4)
        pairs = _partitioned_pairs(ctx, partitioner)
        pairs.collect()
        before = ctx.metrics.snapshot()
        # Same partitioner: reduce_by_key combines in place, no shuffle.
        reduced = pairs.reduce_by_key(lambda a, b: a + b, partitioner=partitioner)
        result = dict(reduced.collect())
        delta = ctx.metrics.delta_since(before)
        assert result == {
            k: sum(i for i in range(64) if i % 8 == k) for k in range(8)
        }
        assert delta.shuffles == 0
        assert delta.shuffle_bytes == 0
        assert delta.stages > 0


@pytest.mark.parametrize("threaded", [False, True])
def test_local_combine_without_aggregator(threaded):
    runner = ThreadedTaskRunner(max_workers=4) if threaded else None
    with EngineContext(cluster=TINY_CLUSTER, runner=runner or "serial") as ctx:
        partitioner = HashPartitioner(4)
        pairs = _partitioned_pairs(ctx, partitioner)
        pairs.collect()
        before = ctx.metrics.snapshot()
        # Equal partitioner + no aggregator: records pass through split
        # by split, in order, with nothing shuffled.
        passthrough = ShuffledRDD(pairs, HashPartitioner(4), None)
        assert sorted(passthrough.collect()) == sorted(pairs.collect())
        delta = ctx.metrics.delta_since(before)
        assert delta.shuffles == 0
        assert delta.shuffle_bytes == 0


# ----------------------------------------------------------------------
# Shuffle output reuse
# ----------------------------------------------------------------------


def test_shuffle_reuse_disabled_by_default(ctx):
    source = ctx.parallelize([(i % 5, i) for i in range(50)], 4)
    ShuffledRDD(source, HashPartitioner(3), None).collect()
    ShuffledRDD(source, HashPartitioner(3), None).collect()
    assert ctx.metrics.total.shuffles == 2
    assert ctx.metrics.total.shuffle_reuses == 0


def test_shuffle_reuse_serves_equal_repartition():
    ctx = EngineContext(cluster=TINY_CLUSTER, reuse_shuffles=True)
    source = ctx.parallelize([(i % 5, i) for i in range(50)], 4)
    first = ShuffledRDD(source, HashPartitioner(3), None)
    second = ShuffledRDD(source, HashPartitioner(3), None)
    out_first = first.collect()
    bytes_after_first = ctx.metrics.total.shuffle_bytes
    out_second = second.collect()
    assert out_second == out_first
    # The second shuffle moved nothing: same byte count, one reuse.
    assert ctx.metrics.total.shuffle_bytes == bytes_after_first
    assert ctx.metrics.total.shuffles == 1
    assert ctx.metrics.total.shuffle_reuses == 1


def test_shuffle_reuse_requires_equal_partitioner():
    ctx = EngineContext(cluster=TINY_CLUSTER, reuse_shuffles=True)
    source = ctx.parallelize([(i % 5, i) for i in range(50)], 4)
    ShuffledRDD(source, HashPartitioner(3), None).collect()
    ShuffledRDD(source, HashPartitioner(4), None).collect()
    assert ctx.metrics.total.shuffles == 2
    assert ctx.metrics.total.shuffle_reuses == 0


def test_shuffle_reuse_distinguishes_aggregators():
    ctx = EngineContext(cluster=TINY_CLUSTER, reuse_shuffles=True)
    source = ctx.parallelize([(i % 5, i) for i in range(50)], 4)
    partitioner = HashPartitioner(3)
    reduced = source.reduce_by_key(lambda a, b: a + b, partitioner=partitioner)
    reduced.collect()
    # A plain re-partition must NOT reuse the combined output.
    plain = ShuffledRDD(source, HashPartitioner(3), None)
    assert len(plain.collect()) == 50
    assert ctx.metrics.total.shuffle_reuses == 0


def test_shuffle_registry_is_bounded():
    metrics = MetricsRegistry()
    blocks = BlockManager(metrics, reuse_shuffles=True)
    for i in range(SHUFFLE_REGISTRY_LIMIT + 5):
        blocks.register_shuffle(i, HashPartitioner(2), None, [[("k", i)]])
    # The oldest entries were trimmed.
    assert blocks.lookup_shuffle(0, HashPartitioner(2), None) is None
    newest = SHUFFLE_REGISTRY_LIMIT + 4
    assert blocks.lookup_shuffle(newest, HashPartitioner(2), None) == [[("k", newest)]]


def test_cogroup_reuses_repartition_when_enabled():
    ctx = EngineContext(cluster=TINY_CLUSTER, reuse_shuffles=True)
    left = ctx.parallelize([(i % 3, i) for i in range(30)], 4)
    right = ctx.parallelize([(i % 3, -i) for i in range(30)], 4)
    partitioner = HashPartitioner(3)
    first = left.cogroup(right, partitioner=partitioner)
    second = left.cogroup(right, partitioner=partitioner)
    out_first = sorted(first.collect())
    shuffles_after_first = ctx.metrics.total.shuffles
    out_second = sorted(second.collect())
    assert [(k, (sorted(a), sorted(b))) for k, (a, b) in out_first] == [
        (k, (sorted(a), sorted(b))) for k, (a, b) in out_second
    ]
    assert ctx.metrics.total.shuffles == shuffles_after_first
    assert ctx.metrics.total.shuffle_reuses == 2


# ----------------------------------------------------------------------
# Fast-path accountant == reference estimator
# ----------------------------------------------------------------------

SAMPLE_RECORDS = [
    ((0, 0), np.zeros((3, 3))),
    ((2, 5), np.ones((7, 2), dtype=np.float32)),
    ((0, 0), np.zeros(0)),
    ((1, 2, 3), np.arange(4)),
    ((0, 1), 2.5),
    (0, 1),
    ("key", [1, 2, 3]),
    (np.int64(3), np.float64(1.5)),
    ((0, ("a", 1)), {"x": 2}),
    [1, 2, 3],
    "bare string",
    ((0.5, 1), True),
    (None, None),
]


@pytest.mark.parametrize("record", SAMPLE_RECORDS, ids=repr)
def test_accountant_matches_reference_estimator(record):
    accountant = RecordSizeAccountant()
    expected = estimate_record_size(record)
    assert accountant.record_size(record) == expected
    # Memoized second call agrees too.
    assert accountant.record_size(record) == expected


def test_accountant_batch_matches_sum():
    accountant = RecordSizeAccountant()
    assert accountant.batch_size(SAMPLE_RECORDS) == sum(
        estimate_record_size(r) for r in SAMPLE_RECORDS
    )


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(
                st.tuples(st.integers(), st.integers()),
                st.integers(0, 12).map(lambda n: np.zeros(n)),
            ),
            st.tuples(
                st.tuples(st.integers(), st.integers()), st.floats(allow_nan=False)
            ),
            st.tuples(st.integers(), st.integers()),
            st.tuples(st.text(max_size=5), st.booleans()),
            st.integers(),
            st.text(max_size=8),
        ),
        max_size=20,
    )
)
def test_accountant_property_identical_to_estimator(records):
    accountant = RecordSizeAccountant()
    assert accountant.batch_size(records) == sum(
        estimate_record_size(r) for r in records
    )
