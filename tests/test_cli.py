"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def data_file(tmp_path):
    path = tmp_path / "matrix.npy"
    np.save(path, np.arange(12, dtype=float).reshape(3, 4))
    return str(path)


@pytest.fixture()
def vector_file(tmp_path):
    path = tmp_path / "vector.npy"
    np.save(path, np.array([3.0, 1.0, 2.0]))
    return str(path)


def test_cli_runs_query_and_saves(data_file, tmp_path, capsys):
    out = str(tmp_path / "out.npy")
    code = main([
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        "--bind", f"A={data_file}",
        "--define", "n=3",
        "--tile-size", "2",
        "--output", out,
    ])
    assert code == 0
    result = np.load(out)
    np.testing.assert_allclose(result, [6.0, 22.0, 38.0])
    assert "saved result" in capsys.readouterr().out


def test_cli_prints_result_without_output(data_file, capsys):
    code = main([
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]",
        "--bind", f"A={data_file}",
        "--define", "n=3", "--define", "m=4",
        "--tile-size", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "TiledMatrix" in out and "(4, 3)" in out


def test_cli_explain(data_file, capsys):
    code = main([
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]",
        "--bind", f"A={data_file}",
        "--define", "n=3", "--define", "m=4",
        "--explain",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "rule: preserve-tiling" in out


def test_cli_explain_json(data_file, capsys):
    import json

    code = main([
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]",
        "--bind", f"A={data_file}",
        "--define", "n=3", "--define", "m=4",
        "--explain", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rule"] == "preserve-tiling"
    assert payload["physical"]["op"] == "Assemble"
    pass_names = [entry["name"] for entry in payload["passes"]]
    assert pass_names == [
        "normalize-bridge", "tiling-resolution", "strategy-selection",
        "adaptive-install", "cse", "fusion",
    ]


def test_cli_json_requires_explain(data_file):
    with pytest.raises(SystemExit, match="--json requires --explain"):
        main([
            "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]",
            "--bind", f"A={data_file}",
            "--define", "n=3", "--define", "m=4",
            "--json",
        ])


def test_cli_scalar_result(vector_file, capsys):
    code = main([
        "+/[ v | (i,v) <- V ]",
        "--bind", f"V={vector_file}",
    ])
    assert code == 0
    assert "6.0" in capsys.readouterr().out


def test_cli_sparse_binding(tmp_path, capsys):
    a = np.zeros((8, 8))
    a[0, 0] = 5.0
    path = tmp_path / "sparse.npy"
    np.save(path, a)
    code = main([
        "+/[ v | ((i,j),v) <- A ]",
        "--sparse", f"A={path}",
        "--tile-size", "4",
    ])
    assert code == 0
    assert "5.0" in capsys.readouterr().out


def test_cli_metrics_flag(vector_file, capsys):
    main([
        "+/[ v | (i,v) <- V ]",
        "--bind", f"V={vector_file}",
        "--metrics",
    ])
    out = capsys.readouterr().out
    assert "simulated cluster time" in out
    assert "critical path" in out
    assert "straggler ratio" in out


def test_cli_metrics_json(data_file, capsys):
    import json

    code = main([
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        "--bind", f"A={data_file}",
        "--define", "n=3",
        "--tile-size", "2",
        "--metrics", "--json",
    ])
    assert code == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert payload["tasks"] > 0
    assert payload["task_retries"] == 0
    assert payload["straggler_ratio"] >= 1.0
    assert payload["critical_path_seconds"] > 0.0
    assert len(payload["stage_histograms"]) == payload["stages"]
    for hist in payload["stage_histograms"]:
        assert hist["p50_seconds"] <= hist["p95_seconds"] <= hist["max_seconds"]


def test_cli_pipeline_flag_matches_staged(data_file, tmp_path, capsys):
    import json

    query = "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]"
    args = [
        query,
        "--bind", f"A={data_file}",
        "--define", "n=3",
        "--tile-size", "2",
        "--metrics", "--json",
    ]
    base_out = str(tmp_path / "staged.npy")
    assert main(args + ["--output", base_out]) == 0
    staged = json.loads(_json_tail(capsys.readouterr().out))
    pipe_out = str(tmp_path / "pipelined.npy")
    assert main(args + ["--output", pipe_out, "--pipeline"]) == 0
    pipelined = json.loads(_json_tail(capsys.readouterr().out))
    np.testing.assert_array_equal(np.load(base_out), np.load(pipe_out))
    assert staged["pipeline"] is False
    assert pipelined["pipeline"] is True
    for key in ("stages", "tasks", "shuffles", "shuffle_records",
                "shuffle_bytes"):
        assert staged[key] == pipelined[key], key


def _json_tail(out: str) -> str:
    return out[out.index("{"):]


def test_cli_rejects_bad_binding(vector_file):
    with pytest.raises(SystemExit):
        main(["1 + 1", "--bind", "novalue"])


def test_cli_rejects_3d_array(tmp_path):
    path = tmp_path / "cube.npy"
    np.save(path, np.zeros((2, 2, 2)))
    with pytest.raises(SystemExit):
        main(["1 + 1", "--bind", f"A={path}"])


def test_cli_loops_mode(data_file, capsys):
    code = main([
        """
        var V: tiled_vector(n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            V[i] += A[i, j]
          end
        end
        """,
        "--loops",
        "--bind", f"A={data_file}",
        "--define", "n=3", "--define", "m=4",
        "--tile-size", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "V: shape (3,)" in out


def test_cli_loops_explain(data_file, capsys):
    code = main([
        """
        var V: tiled_vector(n)
        for i = 0, n-1 do
          for j = 0, m-1 do
            V[i] += A[i, j]
          end
        end
        """,
        "--loops", "--explain",
        "--bind", f"A={data_file}",
        "--define", "n=3", "--define", "m=4",
        "--tile-size", "2",
    ])
    assert code == 0
    assert "tiled-reduce" in capsys.readouterr().out


def test_cli_npz_archive_binds_members(tmp_path, capsys):
    path = tmp_path / "data.npz"
    np.savez(path, m=np.ones((4, 4)), v=np.arange(4.0))
    code = main([
        "+/[ x | ((i,j),x) <- D_m ]",
        "--bind", f"D={path}",
        "--tile-size", "2",
    ])
    assert code == 0
    assert "16.0" in capsys.readouterr().out
    code = main([
        "+/[ x | (i,x) <- D_v ]",
        "--bind", f"D={path}",
        "--tile-size", "2",
    ])
    assert code == 0
    assert "6.0" in capsys.readouterr().out
