"""Property test: to_source(ast) re-parses to the identical AST.

Hypothesis builds random expression trees from the AST constructors and
checks the pretty-printer and parser are exact inverses.  This pins the
printer's precedence/parenthesization logic against the parser's
precedence climbing for the whole expression grammar.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comprehension import (
    BinOp, Call, Comprehension, Expr, Generator, GroupByQual, Guard, IfExpr,
    Index, LetQual, Lit, RangeExpr, Reduce, TupleExpr, TuplePat, UnOp, Var,
    VarPat, WildPat, parse, to_source,
)
from repro.comprehension.lexer import KEYWORDS

SETTINGS = settings(
    max_examples=150, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Identifiers that cannot collide with keywords or reduction names.
_NAMES = ["x", "y", "z", "alpha", "beta", "M", "V2", "foo_bar"]
assert not set(_NAMES) & KEYWORDS

names = st.sampled_from(_NAMES)

literals = st.one_of(
    st.integers(min_value=0, max_value=999).map(Lit),
    st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda f: Lit(float(f))),
    st.booleans().map(Lit),
)

_ARITH_OPS = ["+", "-", "*", "/", "%"]
_CMP_OPS = ["==", "!=", "<", "<=", ">", ">="]
_BOOL_OPS = ["&&", "||"]
_MONOIDS = ["+", "*", "min", "max", "&&", "||", "count", "avg"]


def expressions(max_depth: int = 4):
    base = st.one_of(literals, names.map(Var))

    def extend(children):
        return st.one_of(
            st.tuples(
                st.sampled_from(_ARITH_OPS + _CMP_OPS + _BOOL_OPS),
                children, children,
            ).map(lambda t: BinOp(*t)),
            children.map(lambda e: UnOp("-", e)),
            children.map(lambda e: UnOp("!", e)),
            st.tuples(children, children, children).map(
                lambda t: IfExpr(*t)
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda items: TupleExpr(tuple(items))
            ),
            st.tuples(names, st.lists(children, min_size=0, max_size=2)).map(
                lambda t: Call(t[0], tuple(t[1]))
            ),
            st.tuples(names.map(Var), st.lists(children, min_size=1, max_size=2)).map(
                lambda t: Index(t[0], tuple(t[1]))
            ),
            st.tuples(children, children, st.booleans()).map(
                lambda t: RangeExpr(*t)
            ),
            st.tuples(st.sampled_from(_MONOIDS), children).map(
                lambda t: Reduce(*t)
            ),
        )

    return st.recursive(base, extend, max_leaves=12)


patterns = st.one_of(
    names.map(VarPat),
    st.just(WildPat()),
    st.lists(names.map(VarPat), min_size=2, max_size=3).map(
        lambda items: TuplePat(tuple(items))
    ),
)


def qualifiers():
    expr = expressions(3)
    return st.one_of(
        st.tuples(patterns, expr).map(lambda t: Generator(*t)),
        st.tuples(patterns, expr).map(lambda t: LetQual(*t)),
        expr.map(Guard),
        st.one_of(
            names.map(lambda n: GroupByQual(VarPat(n), None)),
            st.tuples(names, expr).map(
                lambda t: GroupByQual(VarPat(t[0]), t[1])
            ),
        ),
    )


comprehensions = st.tuples(
    expressions(3), st.lists(qualifiers(), min_size=0, max_size=4)
).map(lambda t: Comprehension(t[0], tuple(t[1])))


@SETTINGS
@given(expr=expressions())
def test_expression_round_trip(expr):
    assert parse(to_source(expr)) == expr


@SETTINGS
@given(comp=comprehensions)
def test_comprehension_round_trip(comp):
    assert parse(to_source(comp)) == comp


@SETTINGS
@given(expr=expressions())
def test_to_source_is_deterministic(expr):
    assert to_source(expr) == to_source(expr)
