"""Fuzz: random well-scoped comprehensions, three evaluators, one answer.

Hypothesis generates small closed comprehensions over random association
lists and checks that the reference interpreter, the Figure-3 flatMap
form, and (when the query fits its fragment) the Sections 2–3 generated
loop code all agree.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comprehension import (
    BinOp, Comprehension, Generator, Guard, Interpreter, LetQual, Lit,
    Reduce, TupleExpr, TuplePat, Var, VarPat, to_source, parse,
)
from repro.comprehension.flatmap_form import evaluate as eval_flatmap
from repro.comprehension.flatmap_form import to_flatmap_form
from repro.planner.local_codegen import CodegenUnsupported, compile_local

SETTINGS = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CMP = ["==", "!=", "<", "<=", ">", ">="]
_ARITH = ["+", "-", "*"]


@st.composite
def closed_queries(draw):
    """A comprehension over 1–2 list-valued env names, fully scoped."""
    env: dict = {}
    bound: list[str] = []
    qualifiers = []

    num_gens = draw(st.integers(1, 2))
    for g in range(num_gens):
        source_name = f"SRC{g}"
        length = draw(st.integers(0, 5))
        env[source_name] = [
            (i, draw(st.integers(-9, 9))) for i in range(length)
        ]
        idx, val = f"i{g}", f"v{g}"
        qualifiers.append(
            Generator(TuplePat((VarPat(idx), VarPat(val))), Var(source_name))
        )
        bound += [idx, val]

        if draw(st.booleans()):
            left = Var(draw(st.sampled_from(bound)))
            right_choice = draw(st.integers(0, 1))
            right = (
                Lit(draw(st.integers(-9, 9)))
                if right_choice == 0
                else Var(draw(st.sampled_from(bound)))
            )
            qualifiers.append(Guard(BinOp(draw(st.sampled_from(_CMP)), left, right)))

        if draw(st.booleans()):
            name = f"w{g}"
            expr = BinOp(
                draw(st.sampled_from(_ARITH)),
                Var(draw(st.sampled_from(bound))),
                Lit(draw(st.integers(-3, 3))),
            )
            qualifiers.append(LetQual(VarPat(name), expr))
            bound.append(name)

    head = BinOp(
        draw(st.sampled_from(_ARITH)),
        Var(draw(st.sampled_from(bound))),
        Var(draw(st.sampled_from(bound))),
    )
    return Comprehension(head, tuple(qualifiers)), env


@SETTINGS
@given(data=closed_queries())
def test_three_evaluators_agree(data):
    comp, env = data
    reference = Interpreter(env).evaluate(comp)

    via_flatmap = eval_flatmap(to_flatmap_form(comp), env)
    assert via_flatmap == reference, to_source(comp)

    try:
        _code, thunk = compile_local(comp, env)
    except CodegenUnsupported:
        return
    assert list(thunk()) == reference, to_source(comp)


@SETTINGS
@given(data=closed_queries())
def test_query_survives_source_round_trip(data):
    comp, env = data
    reference = Interpreter(env).evaluate(comp)
    reparsed = parse(to_source(comp))
    assert Interpreter(env).evaluate(reparsed) == reference


@SETTINGS
@given(data=closed_queries(), mon=st.sampled_from(["+", "*", "min", "max"]))
def test_reduction_of_fuzzed_query(data, mon):
    comp, env = data
    values = Interpreter(env).evaluate(comp)
    if mon == "*" and len(values) > 8:
        return  # avoid giant products
    reduced = Interpreter(env).evaluate(Reduce(mon, comp))
    from repro.comprehension.monoids import monoid

    assert reduced == monoid(mon).fold(values)
