"""Property-based tests (hypothesis): invariants and differential checks.

The key property: for every query family, the distributed planner, the
reference interpreter, and NumPy agree — over random shapes, tile sizes,
and data.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SacSession
from repro.comprehension.monoids import MONOIDS
from repro.engine import EngineContext, TINY_CLUSTER
from repro.storage import CooMatrix, CsrMatrix, DenseMatrix, TiledMatrix

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

dims = st.integers(min_value=1, max_value=23)
tile_sizes = st.integers(min_value=1, max_value=9)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_session(tile_size):
    return SacSession(cluster=TINY_CLUSTER, tile_size=tile_size)


def random_matrix(rows, cols, seed):
    return np.random.default_rng(seed).uniform(-5, 5, size=(rows, cols))


# ----------------------------------------------------------------------
# Planner vs NumPy vs interpreter
# ----------------------------------------------------------------------


@SETTINGS
@given(n=dims, m=dims, tile=tile_sizes, seed=seeds)
def test_addition_differential(n, m, tile, seed):
    a, b = random_matrix(n, m, seed), random_matrix(n, m, seed + 1)
    session = make_session(tile)
    query = (
        "tiled(n,m)[ ((i,j),x+y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i, jj == j ]"
    )
    env = dict(A=session.tiled(a), B=session.tiled(b), n=n, m=m)
    planned = session.run(query, env).to_numpy()
    interpreted = session.interpret(query, env).to_numpy()
    np.testing.assert_allclose(planned, a + b, rtol=1e-9)
    np.testing.assert_allclose(interpreted, a + b, rtol=1e-9)


@SETTINGS
@given(n=dims, k=dims, m=dims, tile=tile_sizes, seed=seeds)
def test_multiplication_differential(n, k, m, tile, seed):
    a, b = random_matrix(n, k, seed), random_matrix(k, m, seed + 1)
    session = make_session(tile)
    query = (
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]"
    )
    result = session.run(
        query, A=session.tiled(a), B=session.tiled(b), n=n, m=m
    ).to_numpy()
    np.testing.assert_allclose(result, a @ b, rtol=1e-8, atol=1e-10)


@SETTINGS
@given(n=dims, m=dims, tile=tile_sizes, seed=seeds)
def test_transpose_differential(n, m, tile, seed):
    a = random_matrix(n, m, seed)
    session = make_session(tile)
    result = session.run(
        "tiled(m,n)[ ((j,i),v) | ((i,j),v) <- A ]",
        A=session.tiled(a), n=n, m=m,
    ).to_numpy()
    np.testing.assert_allclose(result, a.T)


@SETTINGS
@given(n=dims, m=dims, tile=tile_sizes, seed=seeds)
def test_row_sums_differential(n, m, tile, seed):
    a = random_matrix(n, m, seed)
    session = make_session(tile)
    result = session.run(
        "tiled_vector(n)[ (i,+/v) | ((i,j),v) <- A, group by i ]",
        A=session.tiled(a), n=n,
    ).to_numpy()
    np.testing.assert_allclose(result, a.sum(axis=1), rtol=1e-9)


@SETTINGS
@given(n=dims, m=dims, tile=tile_sizes, seed=seeds)
def test_rotation_differential(n, m, tile, seed):
    a = random_matrix(n, m, seed)
    session = make_session(tile)
    result = session.run(
        "tiled(n,m)[ (((i+1)%n, j), v) | ((i,j),v) <- A ]",
        A=session.tiled(a), n=n, m=m,
    ).to_numpy()
    np.testing.assert_allclose(result, np.roll(a, 1, axis=0))


@SETTINGS
@given(n=dims, m=dims, tile=tile_sizes, seed=seeds, threshold=st.floats(-5, 5))
def test_filter_differential(n, m, tile, seed, threshold):
    a = random_matrix(n, m, seed)
    session = make_session(tile)
    result = session.run(
        "tiled(n,m)[ ((i,j),v) | ((i,j),v) <- A, v > t ]",
        A=session.tiled(a), n=n, m=m, t=threshold,
    ).to_numpy()
    np.testing.assert_allclose(result, np.where(a > threshold, a, 0.0))


@SETTINGS
@given(n=dims, tile=tile_sizes, seed=seeds)
def test_total_sum_differential(n, tile, seed):
    a = random_matrix(n, n, seed)
    session = make_session(tile)
    total = session.run("+/[ v | ((i,j),v) <- A ]", A=session.tiled(a))
    assert np.isclose(total, a.sum(), rtol=1e-9)


@SETTINGS
@given(n=dims, m=dims, seed=seeds)
def test_local_matrix_query_matches_numpy(n, m, seed):
    a = random_matrix(n, m, seed)
    session = make_session(4)
    result = session.run(
        "matrix(n,m)[ ((i,j), 2.0*v) | ((i,j),v) <- A ]",
        A=DenseMatrix.from_numpy(a), n=n, m=m,
    )
    np.testing.assert_allclose(result.data, 2 * a)


# ----------------------------------------------------------------------
# Storage invariants
# ----------------------------------------------------------------------


@SETTINGS
@given(n=dims, m=dims, tile=tile_sizes, seed=seeds)
def test_tiled_roundtrip(n, m, tile, seed):
    a = random_matrix(n, m, seed)
    engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    t = TiledMatrix.from_numpy(engine, a, tile)
    np.testing.assert_allclose(t.to_numpy(), a)
    # Sparsify covers exactly the full index space.
    items = dict(t.sparsify())
    assert len(items) == n * m


@SETTINGS
@given(n=dims, m=dims, seed=seeds)
def test_sparsify_builder_inverse(n, m, seed):
    """builder(sparsify(x)) == x for every registered matrix storage."""
    a = np.round(random_matrix(n, m, seed), 3)
    dense = DenseMatrix.from_numpy(a)
    np.testing.assert_allclose(
        DenseMatrix.from_items(n, m, dense.sparsify()).data, a
    )
    coo = CooMatrix.from_numpy(a)
    np.testing.assert_allclose(
        CooMatrix.from_items(n, m, coo.sparsify()).to_numpy(), coo.to_numpy()
    )
    csr = CsrMatrix.from_numpy(a)
    np.testing.assert_allclose(
        CsrMatrix.from_items(n, m, csr.sparsify()).to_numpy(), csr.to_numpy()
    )


# ----------------------------------------------------------------------
# Engine invariants
# ----------------------------------------------------------------------


@SETTINGS
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(-100, 100)), max_size=60
    ),
    partitions=st.integers(1, 7),
)
def test_reduce_by_key_matches_group_by_key(pairs, partitions):
    engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    rdd = engine.parallelize(pairs, partitions)
    reduced = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
    grouped = {k: sum(vs) for k, vs in rdd.group_by_key().collect()}
    assert reduced == grouped


@SETTINGS
@given(
    items=st.lists(st.integers(-1000, 1000), max_size=80),
    partitions=st.integers(1, 9),
)
def test_collect_is_partition_invariant(items, partitions):
    engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    assert engine.parallelize(items, partitions).collect() == items


@SETTINGS
@given(
    left=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 9)), max_size=30),
    right=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 9)), max_size=30),
)
def test_join_matches_nested_loop(left, right):
    engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    joined = sorted(
        engine.parallelize(left, 3).join(engine.parallelize(right, 2)).collect()
    )
    expected = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
    )
    assert joined == expected


# ----------------------------------------------------------------------
# Monoid laws
# ----------------------------------------------------------------------


@SETTINGS
@given(
    name=st.sampled_from(["+", "*", "min", "max", "&&", "||"]),
    values=st.lists(st.integers(-50, 50), min_size=0, max_size=20),
)
def test_monoid_identity_and_fold(name, values):
    mon = MONOIDS[name]
    typed = [bool(v > 0) for v in values] if name in ("&&", "||") else values
    folded = mon.fold(typed)
    # Folding with an extra identity on either side changes nothing.
    assert mon.combine(mon.zero, folded) == folded
    assert mon.combine(folded, mon.zero) == folded


@SETTINGS
@given(
    name=st.sampled_from(["+", "min", "max", "&&", "||"]),
    a=st.integers(-50, 50), b=st.integers(-50, 50), c=st.integers(-50, 50),
)
def test_monoid_associativity(name, a, b, c):
    mon = MONOIDS[name]
    if name in ("&&", "||"):
        a, b, c = a > 0, b > 0, c > 0
    assert mon.combine(mon.combine(a, b), c) == mon.combine(a, mon.combine(b, c))


# ----------------------------------------------------------------------
# DSL semantics invariants
# ----------------------------------------------------------------------


@SETTINGS
@given(i=st.integers(-100, 100), n=st.integers(1, 50))
def test_dsl_integer_division_matches_tile_arithmetic(i, n):
    """``i/N`` and ``i%N`` must agree with Python's // and % — tile
    placement depends on it."""
    session = make_session(4)
    assert session.run("i / n", i=i, n=n) == i // n
    assert session.run("i % n", i=i, n=n) == i % n


@SETTINGS
@given(values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=20))
def test_sortedness_query_matches_python(values):
    session = make_session(3)
    v = session.tiled_vector(np.array(values))
    result = session.run(
        "&&/[ x <= y | (i,x) <- V, (j,y) <- V, j == i+1 ]", V=v
    )
    assert result == (sorted(values) == values)
