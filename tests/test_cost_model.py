"""Validation of the planner's cost model against measured execution.

The acceptance bar for the model: its shuffle-byte predictions for the
Figure 4.B plans (SUMMA group-by-join and the naive join+group-by) land
within 2x of the engine's measured ``JobMetrics.shuffle_bytes``, and the
strategy it picks by default is the one that measures faster on the
benchmark cluster.
"""

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.planner import (
    RULE_GROUP_BY_JOIN, STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT,
    STRATEGY_REPLICATE, STRATEGY_TILED_REDUCE, CostEstimate, choose_strategy,
)
from repro.engine import BENCH_CLUSTER, TINY_CLUSTER

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)
RNG = np.random.default_rng(11)

#: Figure 4.B shapes (scaled down; same grid shapes as the benchmark).
FIG4B = [(180, 90), (360, 90)]

GBJ_FAMILY = {
    STRATEGY_REPLICATE, STRATEGY_BROADCAST_LEFT, STRATEGY_BROADCAST_RIGHT
}


def _measured_run(n, tile, group_by_join):
    session = SacSession(
        cluster=BENCH_CLUSTER, tile_size=tile,
        options=PlannerOptions(group_by_join=group_by_join),
    )
    a = RNG.uniform(0, 9, size=(n, n))
    b = RNG.uniform(0, 9, size=(n, n))
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()
    compiled = session.compile(MULTIPLY, A=A, B=B, n=n, m=n)
    snapshot = session.metrics_snapshot()
    compiled.execute().tiles.count()
    delta = session.metrics_delta(snapshot)
    return compiled, delta


@pytest.mark.parametrize("n,tile", FIG4B)
@pytest.mark.parametrize("group_by_join", [True, False])
def test_estimates_within_2x_of_measured(n, tile, group_by_join):
    compiled, delta = _measured_run(n, tile, group_by_join)
    estimate = compiled.plan.estimate
    assert estimate is not None
    assert delta.shuffle_bytes > 0
    ratio = estimate.shuffle_bytes / delta.shuffle_bytes
    assert 0.5 <= ratio <= 2.0, (
        f"{estimate.strategy}: estimated {estimate.shuffle_bytes} vs "
        f"measured {delta.shuffle_bytes} ({ratio:.2f}x)"
    )


@pytest.mark.parametrize("n,tile", FIG4B)
def test_default_choice_matches_faster_measured_plan(n, tile):
    _, gbj_delta = _measured_run(n, tile, True)
    _, naive_delta = _measured_run(n, tile, False)
    gbj_time = gbj_delta.simulated_time(BENCH_CLUSTER)
    naive_time = naive_delta.simulated_time(BENCH_CLUSTER)

    chosen, _ = _measured_run(n, tile, None)
    strategy = chosen.plan.details["strategy"]
    if gbj_time <= naive_time:
        assert strategy in GBJ_FAMILY
    else:
        assert strategy == STRATEGY_TILED_REDUCE


def test_estimated_shuffle_counter_recorded():
    compiled, delta = _measured_run(180, 90, None)
    assert delta.estimated_shuffle_bytes == compiled.plan.estimate.shuffle_bytes


def test_candidates_attached_even_under_override():
    """Forced strategies still report what the model would have said."""
    compiled, _ = _measured_run(180, 90, False)
    assert compiled.plan.rule != RULE_GROUP_BY_JOIN
    assert set(GBJ_FAMILY) <= set(compiled.plan.candidates)
    assert compiled.plan.estimate.strategy == STRATEGY_TILED_REDUCE


def test_explain_reports_candidates():
    session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
    A = session.tiled(RNG.uniform(size=(30, 20)))
    B = session.tiled(RNG.uniform(size=(20, 30)))
    compiled = session.compile(MULTIPLY, A=A, B=B, n=30, m=30)
    text = compiled.explain()
    assert "cost estimates (chosen first):" in text
    assert "* " in text  # the chosen strategy is starred
    for name in GBJ_FAMILY | {STRATEGY_TILED_REDUCE}:
        assert name in text


# ----------------------------------------------------------------------
# Differential: every strategy, dense and block-band sparse inputs
# ----------------------------------------------------------------------

FORCINGS = [
    ("replicate", PlannerOptions(group_by_join=True), STRATEGY_REPLICATE),
    ("tiled-reduce", PlannerOptions(group_by_join=False), STRATEGY_TILED_REDUCE),
    (
        "broadcast",
        PlannerOptions(broadcast_threshold=10**6),
        STRATEGY_BROADCAST_RIGHT,
    ),
]


def _block_band(n, tile, seed=0):
    """Block-diagonal band: one dense tile per grid row (fig4b shapes)."""
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n))
    for bi in range(n // tile):
        a[bi * tile : (bi + 1) * tile, bi * tile : (bi + 1) * tile] = rng.uniform(
            1, 2, size=(tile, tile)
        )
    return a


def _forced_run(n, tile, options, sparse):
    session = SacSession(cluster=BENCH_CLUSTER, tile_size=tile, options=options)
    if sparse:
        A = session.sparse_tiled(_block_band(n, tile, seed=1)).materialize()
        B = session.sparse_tiled(_block_band(n, tile, seed=2)).materialize()
    else:
        A = session.tiled(RNG.uniform(0, 9, size=(n, n))).materialize()
        B = session.tiled(RNG.uniform(0, 9, size=(n, n))).materialize()
    compiled = session.compile(MULTIPLY, A=A, B=B, n=n, m=n)
    snapshot = session.metrics_snapshot()
    compiled.execute().tiles.count()
    return compiled, session.metrics_delta(snapshot)


@pytest.mark.parametrize("n,tile", FIG4B)
@pytest.mark.parametrize("sparse", [False, True], ids=["dense", "block-band"])
@pytest.mark.parametrize("label,options,expected", FORCINGS, ids=[f[0] for f in FORCINGS])
def test_every_forced_strategy_estimates_within_2x(
    n, tile, sparse, label, options, expected
):
    """Each strategy, forced on dense AND block-band sparse inputs, must
    predict its measured shuffle bytes within 2x — the sparse cases only
    hold because the model scales by the recorded block density."""
    compiled, delta = _forced_run(n, tile, options, sparse)
    assert compiled.plan.details["strategy"] == expected
    estimate = compiled.plan.estimate
    assert estimate is not None and delta.shuffle_bytes > 0
    ratio = estimate.shuffle_bytes / delta.shuffle_bytes
    assert 0.5 <= ratio <= 2.0, (
        f"{label} on {'sparse' if sparse else 'dense'} {n}: estimated "
        f"{estimate.shuffle_bytes} vs measured {delta.shuffle_bytes} "
        f"({ratio:.2f}x)"
    )
    if sparse:
        assert "bd=" in estimate.densities
    else:
        assert estimate.densities == "dense"


def test_block_sparse_default_flips_away_from_replicate():
    """The acceptance experiment: on a block-diagonal multiply with a
    16x16 grid, density-aware pricing must flip the default plan away
    from SUMMA replication, cut measured shuffle bytes at least 2x
    against forced replication, and stay within 2x of its estimate."""
    n, tile = 720, 45
    chosen, chosen_delta = _forced_run(n, tile, PlannerOptions(), sparse=True)
    strategy = chosen.plan.details["strategy"]
    assert strategy != STRATEGY_REPLICATE
    estimate = chosen.plan.estimate
    ratio = estimate.shuffle_bytes / chosen_delta.shuffle_bytes
    assert 0.5 <= ratio <= 2.0

    _, replicate_delta = _forced_run(
        n, tile, PlannerOptions(group_by_join=True), sparse=True
    )
    assert chosen_delta.shuffle_bytes * 2 <= replicate_delta.shuffle_bytes

    # Without the recorded statistic the same inputs price densely and
    # the planner stays with replication — the flip is the statistic's.
    session = SacSession(cluster=BENCH_CLUSTER, tile_size=tile)
    from repro.storage import SparseTiledMatrix

    A = session.sparse_tiled(_block_band(n, tile, seed=1))
    B = session.sparse_tiled(_block_band(n, tile, seed=2))
    blind = session.compile(
        MULTIPLY,
        A=SparseTiledMatrix(n, n, tile, A.tiles),
        B=SparseTiledMatrix(n, n, tile, B.tiles),
        n=n, m=n,
    )
    assert blind.plan.details["strategy"] == STRATEGY_REPLICATE
    assert blind.plan.estimate.densities == "dense"


def test_sparse_estimated_shuffle_counter_stays_honest():
    """JobMetrics.estimated_shuffle_bytes must carry the density-scaled
    estimate, not the dense bound."""
    compiled, delta = _forced_run(360, 90, PlannerOptions(), sparse=True)
    assert delta.estimated_shuffle_bytes == compiled.plan.estimate.shuffle_bytes
    assert 0.5 <= delta.estimated_shuffle_bytes / delta.shuffle_bytes <= 2.0


def test_choose_strategy_stable_tie_prefers_replicate():
    def est(strategy, seconds):
        return CostEstimate(
            strategy=strategy, shuffle_bytes=0, shuffle_records=0,
            broadcast_bytes=0, tasks=1, effective_parallelism=1,
            reduce_partitions=1, compute_seconds=seconds,
            network_seconds=0.0, launch_seconds=0.0,
        )

    candidates = {
        STRATEGY_REPLICATE: est(STRATEGY_REPLICATE, 1.0),
        STRATEGY_TILED_REDUCE: est(STRATEGY_TILED_REDUCE, 1.0),
        STRATEGY_BROADCAST_LEFT: est(STRATEGY_BROADCAST_LEFT, 2.0),
    }
    assert choose_strategy(candidates) == STRATEGY_REPLICATE
    assert choose_strategy(
        candidates, [STRATEGY_TILED_REDUCE, STRATEGY_BROADCAST_LEFT]
    ) == STRATEGY_TILED_REDUCE
