"""Tests for comprehension-based k-means (ad-hoc expressiveness demo)."""

import numpy as np
import pytest

from repro import SacSession
from repro.engine import TINY_CLUSTER
from repro.linalg import kmeans, kmeans_assign


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=16)


def clustered_points(seed=0, per_cluster=25, scale=0.4):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    points = np.vstack(
        [c + rng.normal(scale=scale, size=(per_cluster, 2)) for c in centers]
    )
    labels = np.repeat(np.arange(3), per_cluster)
    perm = rng.permutation(len(points))
    return points[perm], labels[perm], centers


def test_assign_picks_nearest_centroid(session):
    points_np = np.array([[0.0, 0.0], [9.9, 9.9], [0.1, 0.2]])
    centroids_np = np.array([[0.0, 0.0], [10.0, 10.0]])
    pairs = dict(
        kmeans_assign(
            session, session.tiled(points_np), session.tiled(centroids_np)
        )
    )
    assert pairs == {0: 0, 1: 1, 2: 0}


def test_assign_breaks_ties_to_lowest_index(session):
    points_np = np.array([[0.0, 5.0]])  # equidistant to both centroids
    centroids_np = np.array([[0.0, 0.0], [0.0, 10.0]])
    pairs = kmeans_assign(
        session, session.tiled(points_np), session.tiled(centroids_np)
    )
    assert pairs == [(0, 0)]


def test_kmeans_recovers_separated_clusters(session):
    points_np, labels, centers = clustered_points(seed=1)
    result = kmeans(
        session, session.tiled(points_np), points_np[:3].copy(), iterations=20
    )
    # Every true cluster maps to exactly one predicted cluster.
    for true_label in range(3):
        members = np.where(labels == true_label)[0]
        assert len(set(result.assignments[members])) == 1
    # Recovered centroids are near the true centers (order-insensitive).
    found = sorted(map(tuple, np.round(result.centroids, 0)))
    expected = sorted(map(tuple, centers))
    for f, e in zip(found, expected):
        assert abs(f[0] - e[0]) <= 1 and abs(f[1] - e[1]) <= 1


def test_kmeans_converges_and_reports_iterations(session):
    points_np, _, _ = clustered_points(seed=2)
    result = kmeans(
        session, session.tiled(points_np), points_np[:3].copy(), iterations=30
    )
    assert result.iterations < 30  # converged before the cap
    assert result.inertia > 0


def test_kmeans_inertia_decreases_with_more_iterations(session):
    points_np, _, _ = clustered_points(seed=3, scale=1.5)
    init = points_np[:3].copy()
    one = kmeans(session, session.tiled(points_np), init, iterations=1)
    many = kmeans(session, session.tiled(points_np), init, iterations=12)
    assert many.inertia <= one.inertia + 1e-9


def test_kmeans_single_cluster(session):
    rng = np.random.default_rng(4)
    points_np = rng.normal(size=(20, 3))
    result = kmeans(
        session, session.tiled(points_np), points_np[:1].copy(), iterations=10
    )
    assert set(result.assignments) == {0}
    np.testing.assert_allclose(
        result.centroids[0], points_np.mean(axis=0), rtol=1e-8
    )
