"""End-to-end integration scenarios combining several subsystems."""

import numpy as np
import pytest

from repro import SacSession
from repro.core import ops
from repro.diablo import run as run_loops
from repro.engine import TINY_CLUSTER
from repro.linalg import (
    kmeans, reconstruction_error, sac_factorization_step, sac_factorize,
)
from repro.workloads import dense_uniform, factor_matrix, rating_matrix


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=12)


def test_recommender_pipeline(session):
    """Ratings → factorize → predict → rank users by predicted affinity,
    every step through the compiler, cross-checked with NumPy."""
    n, rank = 36, 6
    r_np = rating_matrix(n, density=0.15, seed=1)
    p_np = factor_matrix(n, rank, seed=2)
    q_np = factor_matrix(n, rank, seed=3)

    ratings = session.tiled(r_np).cache()
    state = sac_factorize(
        session, ratings, session.tiled(p_np), session.tiled(q_np),
        iterations=3, gamma=0.0005,
    )

    # NumPy reference of the same three gradient steps.
    p_ref, q_ref = p_np.copy(), q_np.copy()
    for _ in range(3):
        e = r_np - p_ref @ q_ref.T
        p_new = p_ref + 0.0005 * (2 * (e @ q_ref) - 0.02 * p_ref)
        q_ref = q_ref + 0.0005 * (2 * (e.T @ p_new) - 0.02 * q_ref)
        p_ref = p_new
    np.testing.assert_allclose(state.p.to_numpy(), p_ref, rtol=1e-8)
    np.testing.assert_allclose(state.q.to_numpy(), q_ref, rtol=1e-8)

    # Predicted ratings and per-user totals, as comprehensions.
    predictions = ops.multiply_nt(session, state.p, state.q)
    np.testing.assert_allclose(
        predictions.to_numpy(), p_ref @ q_ref.T, rtol=1e-8
    )
    user_totals = ops.row_sums(session, predictions).to_numpy()
    np.testing.assert_allclose(
        user_totals, (p_ref @ q_ref.T).sum(axis=1), rtol=1e-8
    )

    # Objective value agrees too.
    measured = reconstruction_error(session, ratings, state.p, state.q)
    expected = float(((r_np - p_ref @ q_ref.T) ** 2).sum())
    assert np.isclose(measured, expected, rtol=1e-8)


def test_loops_feed_query_feed_kmeans(session):
    """A loop program standardizes features, a comprehension projects
    them, and k-means clusters the result."""
    rng = np.random.default_rng(4)
    group_a = rng.normal(loc=(0, 0), scale=0.3, size=(20, 2))
    group_b = rng.normal(loc=(6, 6), scale=0.3, size=(20, 2))
    raw = np.vstack([group_a, group_b]) * 10.0 + 5.0
    X = session.tiled(raw)

    # Column means via a loop program (DIABLO front end).
    env = run_loops(session, """
        var S: tiled_vector(m)
        for i = 0, n-1 do
          for j = 0, m-1 do
            S[j] += X[i, j]
          end
        end
    """, {"X": X, "n": 40, "m": 2})
    means = env["S"].to_numpy() / 40
    np.testing.assert_allclose(means, raw.mean(axis=0), rtol=1e-10)

    # Center the data with a comprehension.
    centered = session.run(
        "tiled(n,m)[ ((i,j), x - mu) | ((i,j),x) <- X, (jj,mu) <- MU, jj == j ]",
        X=X, MU=session.tiled_vector(means), n=40, m=2,
    )
    np.testing.assert_allclose(
        centered.to_numpy(), raw - raw.mean(axis=0), rtol=1e-9
    )

    # Cluster; the two groups must separate.
    result = kmeans(
        session, centered, centered.to_numpy()[:2].copy(), iterations=15
    )
    labels = result.assignments
    assert len(set(labels[:20])) == 1
    assert len(set(labels[20:])) == 1
    assert labels[0] != labels[20]


def test_mixed_dense_sparse_analytics(session):
    """Sparse interactions joined against dense embeddings."""
    n, d = 30, 5
    interactions_np = rating_matrix(n, density=0.12, seed=7)
    embeddings_np = dense_uniform(n, d, seed=8) / 10

    interactions = session.sparse_tiled(interactions_np)
    embeddings = session.tiled(embeddings_np)

    # Weighted embedding sums per user: a sparse x dense GBJ.
    profile = session.run(
        "tiled(n,d)[ ((u,f), +/w) | ((u,i),r) <- R, ((ii,f),e) <- E,"
        " ii == i, let w = r*e, group by (u,f) ]",
        R=interactions, E=embeddings, n=n, d=d,
    )
    np.testing.assert_allclose(
        profile.to_numpy(), interactions_np @ embeddings_np, rtol=1e-9
    )

    # Activity counts per user straight off the sparse storage.
    activity = dict(session.run(
        "[ (u, count/r) | ((u,i),r) <- R, group by u ]", R=interactions
    ))
    for user, count in activity.items():
        assert count == np.count_nonzero(interactions_np[user])
