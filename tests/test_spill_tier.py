"""Out-of-core spill tier: differential memory-pressure correctness.

The contract under test: a session given a ``memory_limit`` far smaller
than its working set must produce *byte-identical* results and
shuffle counters to an uncapped run — the spill tier may only change
where bytes live, never what the engine computes or how much data it
shuffles.  Layers of coverage:

* Golden query shapes (the same seven the pipelined-scheduler parity
  suite uses) under a cap the working set exceeds several times over,
  across serial/threaded runners and staged/pipelined scheduling.
* No-cap identity: with no limit configured, no spill machinery exists
  and every spill counter is zero.
* Fault injection: a corrupt/missing spill object degrades to lineage
  recomputation (a cache miss, not a crash); a full spill store raises
  an actionable error.
* Concurrency: multi-threaded put/get/evict never exceeds the cap
  beyond the single protected partition and never double-counts
  eviction bytes.
* Prefetch: spilled blocks restored ahead of demand register prefetch
  hits instead of demand-restore stalls.
"""

import threading
import time

import numpy as np
import pytest

from repro import SacSession
from repro.engine import (
    TINY_CLUSTER,
    EngineContext,
    MetricsRegistry,
    RecordSizeAccountant,
    SerialTaskRunner,
    ThreadedTaskRunner,
    PipelinedTaskRunner,
    parse_memory_limit,
)
from repro.engine.block_manager import BlockManager, SpillLostError
from repro.linalg.factorization import sac_factorization_step
from repro.planner.planner import PlannerOptions
from repro.storage.objectstore import (
    InMemoryStore,
    LocalDiskStore,
    ObjectNotFoundError,
    SpillStoreFullError,
)

RNG = np.random.default_rng(20210831)

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)
ADD = (
    "tiled(n,m)[ ((i,j), a + b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
    " ii == i, jj == j ]"
)
TRANSPOSE = "tiled(m,n)[ ((j,i), a) | ((i,j),a) <- A ]"
SMOOTH = (
    "tiled(n,m)[ ((i,j), (a + b + c) / 3.0) | ((i,j),a) <- A,"
    " ((ii,jj),b) <- A, ((iii,jjj),c) <- A, ii == i-1, jj == j,"
    " iii == i+1, jjj == j ]"
)
ROW_SUMS = "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]"

A_30x20 = RNG.uniform(size=(30, 20))
B_20x30 = RNG.uniform(size=(20, 30))
R_30x30 = RNG.uniform(size=(30, 30))
P_30x10 = np.full((30, 10), 0.1)

#: The memory cap for the differential arms.  The golden shapes' working
#: sets (inputs + shuffle buckets + outputs at tile_size=10) run several
#: times past this, so eviction and restore genuinely exercise the tier.
CAP = 4096


def _counters(metrics):
    """The counters capped and uncapped runs must agree on exactly.

    Cache/spill counters are intentionally excluded: a capped run evicts
    and restores; an uncapped run does neither.
    """
    total = metrics.total
    return {
        "stages": total.stages,
        "tasks": total.tasks,
        "shuffles": total.shuffles,
        "shuffle_records": total.shuffle_records,
        "shuffle_bytes": total.shuffle_bytes,
    }


def _golden_shapes():
    def multiply(gbj):
        def run(session):
            return session.run(
                MULTIPLY, A=session.tiled(A_30x20), B=session.tiled(B_20x30),
                n=30, m=30,
            ).to_numpy()

        return run

    def simple(query, **dims):
        def run(session):
            return session.run(
                query, A=session.tiled(A_30x20), B=session.tiled(A_30x20),
                **dims,
            ).to_numpy()

        return run

    def factorization(session):
        state = sac_factorization_step(
            session, session.tiled(R_30x30), session.tiled(P_30x10),
            session.tiled(P_30x10),
        )
        return np.concatenate(
            [state.p.to_numpy().ravel(), state.q.to_numpy().ravel()]
        )

    return [
        ("multiply-gbj-on", multiply(True), {"group_by_join": True}),
        ("multiply-gbj-off", multiply(False), {"group_by_join": False}),
        ("add", simple(ADD, n=30, m=20), {}),
        ("transpose", simple(TRANSPOSE, n=30, m=20), {}),
        ("smoothing", simple(SMOOTH, n=30, m=20), {}),
        ("row-sums", simple(ROW_SUMS, n=30), {}),
        ("factorization", factorization, {}),
    ]


def _run_arm(run, options, runner, pipeline, memory_limit):
    session = SacSession(
        cluster=TINY_CLUSTER, tile_size=10, options=options,
        adaptive=False, runner=runner, pipeline=pipeline,
        memory_limit=memory_limit,
    )
    try:
        result = np.asarray(run(session))
        return result, _counters(session.engine.metrics), session.engine
    finally:
        session.engine.close()


# ----------------------------------------------------------------------
# Differential golden shapes: capped == uncapped, all runner modes
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,run,opts",
    [(name, run, opts) for name, run, opts in _golden_shapes()],
    ids=[name for name, _run, _opts in _golden_shapes()],
)
def test_capped_golden_shapes_match_uncapped(name, run, opts):
    """Results and shuffle counters under memory pressure are identical
    to the uncapped run, for every runner/scheduler combination."""
    options = PlannerOptions(**opts) if opts else None
    base_result, base_counters, _ = _run_arm(
        run, options, SerialTaskRunner(), pipeline=False, memory_limit=None
    )
    arms = [
        ("capped-serial-staged", SerialTaskRunner(), False),
        ("capped-serial-pipelined", SerialTaskRunner(), True),
        ("capped-threaded-staged", ThreadedTaskRunner(max_workers=4), False),
        (
            "capped-threaded-pipelined",
            PipelinedTaskRunner(max_workers=4),
            True,
        ),
    ]
    for arm, runner, pipeline in arms:
        result, counters, engine = _run_arm(
            run, options, runner, pipeline, memory_limit=CAP
        )
        np.testing.assert_array_equal(result, base_result, err_msg=arm)
        assert counters == base_counters, f"{name}/{arm}"
        total = engine.metrics.total
        assert total.restored_bytes <= total.spilled_bytes, f"{name}/{arm}"


def test_capped_multiply_actually_spills():
    """The differential suite is not vacuous: the multiply's working set
    overflows the cap, so bytes really move through the spill tier."""
    def run(session):
        return session.run(
            MULTIPLY, A=session.tiled(A_30x20), B=session.tiled(B_20x30),
            n=30, m=30,
        ).to_numpy()

    _result, _counters_, engine = _run_arm(
        run, None, SerialTaskRunner(), pipeline=False, memory_limit=CAP
    )
    total = engine.metrics.total
    assert total.spilled_bytes > 0
    assert total.restored_bytes > 0
    assert total.spill_restores > 0
    assert 0.0 <= total.spill_hit_rate() <= 1.0


def test_no_limit_means_no_spill_machinery():
    """Default sessions carry zero spill state: counters stay zero and
    no store exists, keeping behavior byte-identical to the seed."""
    session = SacSession(cluster=TINY_CLUSTER, tile_size=10, adaptive=False)
    try:
        session.run(
            MULTIPLY, A=session.tiled(A_30x20), B=session.tiled(B_20x30),
            n=30, m=30,
        ).to_numpy()
        assert not session.engine.block_manager.spill_enabled
        assert session.engine.block_manager.spill_store is None
        total = session.engine.metrics.total
        assert total.spilled_bytes == 0
        assert total.restored_bytes == 0
        assert total.spill_restores == 0
        assert total.prefetch_hits == 0
        assert total.restore_stall_seconds == 0.0
    finally:
        session.engine.close()


# ----------------------------------------------------------------------
# parse_memory_limit
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expected",
    [
        (None, None),
        ("", None),
        (4096, 4096),
        ("4096", 4096),
        ("4k", 4096),
        ("4K", 4096),
        ("64M", 64 * 1024**2),
        ("2g", 2 * 1024**3),
        ("1.5kb", 1536),
        ("100b", 100),
    ],
)
def test_parse_memory_limit(text, expected):
    assert parse_memory_limit(text) == expected


def test_parse_memory_limit_rejects_garbage():
    with pytest.raises(ValueError, match="memory limit"):
        parse_memory_limit("lots")


# ----------------------------------------------------------------------
# Object store backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "make_store",
    [InMemoryStore, lambda: LocalDiskStore()],
    ids=["memory", "disk"],
)
def test_objectstore_roundtrip(make_store):
    store = make_store()
    try:
        store.put("spill/a/0", b"alpha")
        store.put("spill/a/1", b"beta")
        store.put("spill/b/0", b"gamma")
        assert store.get("spill/a/0") == b"alpha"
        assert store.exists("spill/a/1")
        assert store.size("spill/b/0") == 5
        assert sorted(store.list("spill/a/")) == ["spill/a/0", "spill/a/1"]
        assert store.delete("spill/a/0")
        assert not store.delete("spill/a/0")  # already gone
        assert not store.exists("spill/a/0")
        with pytest.raises(ObjectNotFoundError):
            store.get("spill/a/0")
    finally:
        store.close()


def test_local_disk_store_full_raises_actionable_error(tmp_path):
    store = LocalDiskStore(str(tmp_path), capacity_bytes=10)
    try:
        store.put("k1", b"12345")
        with pytest.raises(SpillStoreFullError) as excinfo:
            store.put("k2", b"123456789")
        message = str(excinfo.value)
        assert "REPRO_SPILL_DIR" in message
        assert "memory" in message.lower()
        # The failed put must not leak partial objects into the store.
        assert not store.exists("k2")
    finally:
        store.close()


def test_local_disk_store_close_removes_private_tempdir():
    import os

    store = LocalDiskStore()
    store.put("x", b"payload")
    root = store.root
    assert os.path.isdir(root)
    store.close()
    assert not os.path.exists(root)


# ----------------------------------------------------------------------
# Fault injection: lost spill objects degrade, full stores fail loudly
# ----------------------------------------------------------------------


def test_injected_restore_failure_falls_back_to_recompute():
    """A spill object that cannot be read back (corrupt/deleted) is a
    cache miss answered by lineage recomputation — never a crash."""
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), memory_limit=4096
    )
    try:
        rdd = ctx.parallelize(range(600), 16).map(lambda x: x * 3).cache()
        first = rdd.collect()
        assert ctx.metrics.total.spilled_bytes > 0
        misses_before = ctx.metrics.total.cache_misses
        ctx.runner.inject_failure(
            "restore", None, times=None, message="corrupt spill object"
        )
        second = rdd.collect()
        assert second == first
        assert ctx.metrics.total.cache_misses > misses_before
    finally:
        ctx.runner.clear_injections()
        ctx.close()


def test_deleted_spill_object_falls_back_to_recompute():
    """Deleting spill files out from under the engine mid-job (a crashed
    disk, an over-eager tmp cleaner) degrades identically."""
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), memory_limit=4096
    )
    try:
        rdd = ctx.parallelize(range(600), 16).map(lambda x: x * 3).cache()
        first = rdd.collect()
        store = ctx.block_manager.spill_store
        victims = store.list("spill/")
        assert victims, "expected spilled partitions"
        for key in victims:
            store.delete(key)
        misses_before = ctx.metrics.total.cache_misses
        second = rdd.collect()
        assert second == first
        assert ctx.metrics.total.cache_misses > misses_before
    finally:
        ctx.close()


def test_shuffle_output_restore_failure_recomputes_lineage():
    """A lost *managed* (shuffle output) partition triggers the owning
    RDD's lineage fallback: the shuffle re-runs and the read succeeds."""
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(), memory_limit=1024
    )
    try:
        rdd = (
            ctx.parallelize(range(800), 8)
            .map(lambda x: (x % 16, x))
            .reduce_by_key(lambda a, b: a + b)
        )
        expected = sorted(rdd.collect())
        # Second read path: fail every restore once; the owner recomputes.
        ctx.runner.inject_failure(
            "restore", None, times=1, message="spill tier hiccup"
        )
        assert sorted(rdd.collect()) == expected
    finally:
        ctx.runner.clear_injections()
        ctx.close()


def test_full_spill_store_raises_spill_store_full(tmp_path):
    """When the spill store runs out of space mid-eviction the job fails
    with the actionable error, not silent corruption."""
    store = LocalDiskStore(str(tmp_path), capacity_bytes=256)
    ctx = EngineContext(
        cluster=TINY_CLUSTER, runner=SerialTaskRunner(),
        memory_limit=4096, spill_store=store,
    )
    try:
        # The working set overflows the cap by far more than the store's
        # 256 bytes can absorb, so the first spilled block already trips
        # the capacity check.
        rdd = ctx.parallelize(range(4000), 32).map(lambda x: x * 1.5).cache()
        with pytest.raises(SpillStoreFullError, match="REPRO_SPILL_DIR"):
            rdd.collect()
    finally:
        ctx.close()
        store.close()


# ----------------------------------------------------------------------
# Concurrency: the cap holds and accounting balances under threads
# ----------------------------------------------------------------------


def test_concurrent_put_get_evict_holds_cap_and_accounting():
    metrics = MetricsRegistry()
    accountant = RecordSizeAccountant()
    records = [float(i) for i in range(64)]
    block_bytes = accountant.batch_size(records)
    budget = 4 * block_bytes
    manager = BlockManager(
        metrics, memory_budget=budget, spill_store=InMemoryStore(),
        prefetch=False,
    )
    num_threads, per_thread = 8, 12
    overshoot = []
    stop = threading.Event()

    def monitor():
        while not stop.is_set():
            held = manager.cached_bytes
            if held > budget + block_bytes:
                overshoot.append(held)
            time.sleep(0.0005)

    def worker(thread_index):
        rng = np.random.default_rng(thread_index)
        for split in range(per_thread):
            manager.put(thread_index, split, records)
            # Random reads force concurrent restores alongside evictions.
            manager.get(
                int(rng.integers(num_threads)), int(rng.integers(per_thread))
            )

    watcher = threading.Thread(target=monitor)
    watcher.start()
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop.set()
    watcher.join()
    manager.close()

    total = metrics.total
    assert not overshoot, f"cap exceeded: {overshoot} > {budget}"
    # Conservation: every byte ever admitted is either still resident,
    # parked in the spill tier, or was never kept — and each eviction
    # was counted exactly once, as both an eviction and a spill.
    assert total.cache_evicted_bytes == total.spilled_bytes
    assert total.restored_bytes <= total.spilled_bytes
    admitted = total.restored_bytes + num_threads * per_thread * block_bytes
    departed = total.cache_evicted_bytes
    assert admitted - departed == manager.cached_bytes
    assert manager.cached_bytes >= 0
    assert manager.cached_bytes <= budget


def test_managed_oversize_partition_is_admitted_then_spilled():
    """put_managed admits an over-budget partition (it is the only copy)
    as the single protected resident; the next admission spills it."""
    metrics = MetricsRegistry()
    manager = BlockManager(
        metrics, memory_budget=64, spill_store=InMemoryStore(),
        prefetch=False,
    )
    big = [float(i) for i in range(512)]
    manager.put_managed("out/test", 0, big)
    assert manager.cached_bytes > 64  # protected overshoot: the one copy
    manager.put_managed("out/test", 1, [1.0])
    # The oversize block was evicted to the store; both remain readable.
    assert manager.get_managed("out/test", 0) == big
    assert manager.get_managed("out/test", 1) == [1.0]
    manager.close()


def test_get_managed_lost_partition_raises_spill_lost():
    metrics = MetricsRegistry()
    manager = BlockManager(metrics, memory_budget=None, spill_store=None)
    manager.managed_output("out/none", 2)
    with pytest.raises(SpillLostError):
        manager.get_managed("out/none", 0)
    assert metrics.total.cache_misses == 1
    manager.close()


# ----------------------------------------------------------------------
# Prefetch
# ----------------------------------------------------------------------


def test_prefetch_restores_ahead_of_demand():
    metrics = MetricsRegistry()
    accountant = RecordSizeAccountant()
    records = [float(i) for i in range(64)]
    block_bytes = accountant.batch_size(records)
    manager = BlockManager(
        metrics, memory_budget=3 * block_bytes, spill_store=InMemoryStore(),
    )
    for split in range(6):
        manager.put(1, split, records)
    # Fill memory with a second RDD, pushing rdd 1 fully to the tier...
    for split in range(3):
        manager.put(2, split, records)
    assert manager.spilled_bytes_held >= 3 * block_bytes
    # ...then free that memory and prefetch rdd 1 back into the headroom.
    manager.remove_rdd(2)
    manager.prefetch_rdd_blocks(1)
    deadline = time.time() + 5.0
    while manager.cached_bytes < 3 * block_bytes and time.time() < deadline:
        time.sleep(0.005)
    assert manager.cached_bytes >= 3 * block_bytes, "prefetch never landed"
    hits_before = metrics.total.prefetch_hits
    restored = sum(
        1 for split in range(6) if manager.get(1, split) is not None
    )
    assert restored >= 3
    assert metrics.total.prefetch_hits > hits_before
    manager.close()


def test_prefetch_window_bounded_by_unread_blocks():
    """A prefetch restore may evict LRU residents — like a demand
    restore — but never a block that was itself prefetched and not yet
    read: the budget bounds the window instead of letting it thrash."""
    metrics = MetricsRegistry()
    accountant = RecordSizeAccountant()
    records = [float(i) for i in range(64)]
    block_bytes = accountant.batch_size(records)
    manager = BlockManager(
        metrics, memory_budget=2 * block_bytes, spill_store=InMemoryStore(),
    )
    for split in range(4):
        manager.put(1, split, records)
    assert manager.spilled_bytes_held == 2 * block_bytes  # splits 0, 1

    def _wait_restores(count: int) -> None:
        deadline = time.time() + 5.0
        while metrics.total.spill_restores < count and time.time() < deadline:
            time.sleep(0.005)
        assert metrics.total.spill_restores == count

    # First sweep: splits 0 and 1 come back in, evicting the (unread,
    # never-prefetched) LRU residents 2 and 3 out to the tier.
    manager.prefetch_rdd_blocks(1)
    _wait_restores(2)
    assert manager.cached_bytes <= 2 * block_bytes
    assert manager.spilled_bytes_held == 2 * block_bytes  # now 2 and 3

    # Second sweep: every resident is prefetched-but-unread, so nothing
    # may be evicted for more prefetch — the window is full.
    manager.prefetch_rdd_blocks(1)
    time.sleep(0.2)
    assert metrics.total.spill_restores == 2

    # Reading the window drains it; the next sweep proceeds again.
    assert manager.get(1, 0) is not None
    assert manager.get(1, 1) is not None
    assert metrics.total.prefetch_hits == 2
    manager.prefetch_rdd_blocks(1)
    _wait_restores(4)
    assert manager.cached_bytes <= 2 * block_bytes
