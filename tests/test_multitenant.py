"""Multi-tenant substrate: views, isolation, quotas, fair admission.

The substrate split (:mod:`repro.engine.substrate`) makes
:class:`~repro.engine.EngineContext` a cheap per-tenant view over one
shared :class:`~repro.engine.EngineSubstrate`.  These tests pin the
contract:

* per-view flags never leak (the S1 regression: attaching a session to
  an engine used to mutate that engine's adaptive/pipeline in place),
* N sessions on one substrate compute byte-identical results to N
  isolated sessions (the differential isolation bar),
* a tenant at its quota evicts its *own* blocks and cannot push another
  tenant below its reservation,
* the fair scheduler bounds concurrency and grants round-robin across
  tenants.
"""

import threading
import time

import numpy as np
import pytest

from repro import SacSession
from repro.engine import (
    BlockManager,
    EngineContext,
    EngineSubstrate,
    FairJobScheduler,
    MetricsRegistry,
    TINY_CLUSTER,
    env_flag,
)
from repro.engine.serialization import RecordSizeAccountant

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


# ----------------------------------------------------------------------
# S1 regression: per-session flags must not mutate a shared engine
# ----------------------------------------------------------------------


def test_sessions_do_not_mutate_shared_engine_flags():
    engine = EngineContext(cluster=TINY_CLUSTER, adaptive=True, pipeline=False)
    s_off = SacSession(engine=engine, adaptive=False, pipeline=True)
    s_on = SacSession(engine=engine, adaptive=True, pipeline=False)
    # Each session got its own view with its own flags...
    assert s_off.engine.adaptive.enabled is False
    assert s_off.engine.pipeline is True
    assert s_on.engine.adaptive.enabled is True
    assert s_on.engine.pipeline is False
    # ...and the original engine is untouched (the old code flipped it).
    assert engine.adaptive.enabled is True
    assert engine.pipeline is False
    assert engine.scheduler.pipeline is False
    engine.close()


def test_opposite_flag_sessions_both_honored_at_run_time():
    rng = np.random.default_rng(5)
    engine = EngineContext(cluster=TINY_CLUSTER)
    s_adaptive = SacSession(engine=engine, tile_size=10, adaptive=True)
    s_static = SacSession(engine=engine, tile_size=10, adaptive=False)
    data = rng.uniform(size=(20, 20))
    A1, B1 = s_adaptive.tiled(data), s_adaptive.tiled(data.T)
    A2, B2 = s_static.tiled(data), s_static.tiled(data.T)
    r1 = s_adaptive.run(MULTIPLY, A=A1, B=B1, n=20, m=20).to_numpy()
    r2 = s_static.run(MULTIPLY, A=A2, B=B2, n=20, m=20).to_numpy()
    np.testing.assert_allclose(r1, data @ data.T, rtol=1e-10)
    np.testing.assert_allclose(r2, data @ data.T, rtol=1e-10)
    # Flags still where each session put them.
    assert s_adaptive.engine.adaptive.enabled is True
    assert s_static.engine.adaptive.enabled is False
    engine.close()


# ----------------------------------------------------------------------
# Differential isolation: shared substrate == isolated sessions
# ----------------------------------------------------------------------


def _tenant_inputs(num_tenants, size=20):
    rng = np.random.default_rng(42)
    return [
        (rng.uniform(size=(size, size)), rng.uniform(size=(size, size)))
        for _ in range(num_tenants)
    ]


def _run_isolated(inputs):
    results = []
    for a, b in inputs:
        session = SacSession(cluster=TINY_CLUSTER, tile_size=10)
        A, B = session.tiled(a), session.tiled(b)
        n = a.shape[0]
        out = session.run(MULTIPLY, A=A, B=B, n=n, m=n).to_numpy()
        results.append(out.tobytes())
        session.engine.close()
    return results


def _run_shared(inputs, concurrent):
    substrate = EngineSubstrate(cluster=TINY_CLUSTER)
    sessions = [
        SacSession(
            engine=substrate.view(f"tenant-{i}"), tile_size=10
        )
        for i in range(len(inputs))
    ]
    results = [None] * len(inputs)

    def client(index):
        session = sessions[index]
        a, b = inputs[index]
        A, B = session.tiled(a), session.tiled(b)
        n = a.shape[0]
        out = session.run(MULTIPLY, A=A, B=B, n=n, m=n).to_numpy()
        results[index] = out.tobytes()

    if concurrent:
        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(inputs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        for i in range(len(inputs)):
            client(i)
    report = substrate.tenant_report()
    substrate.close()
    return results, report


def test_shared_substrate_matches_isolated_sessions_serial():
    inputs = _tenant_inputs(3)
    isolated = _run_isolated(inputs)
    shared, report = _run_shared(inputs, concurrent=False)
    assert shared == isolated  # byte-identical, tenant for tenant
    # Every tenant's query was counted against its own label.
    assert all(report[f"tenant-{i}"]["queries"] == 1 for i in range(3))


def test_shared_substrate_matches_isolated_sessions_concurrent():
    inputs = _tenant_inputs(3)
    isolated = _run_isolated(inputs)
    shared, _ = _run_shared(inputs, concurrent=True)
    assert shared == isolated


def test_rdd_ids_unique_across_views():
    """Views must draw RDD ids from one substrate-global counter —
    per-view counters would collide in the shared ``rdd/<id>`` block
    namespace."""
    substrate = EngineSubstrate(cluster=TINY_CLUSTER)
    view_a = substrate.view("a")
    view_b = substrate.view("b")
    ids = set()
    for view in (view_a, view_b, view_a, view_b):
        rdd = view.parallelize(range(10), num_partitions=2)
        assert rdd.id not in ids
        ids.add(rdd.id)
    substrate.close()


def test_plan_caches_shared_across_same_shaped_sessions():
    substrate = EngineSubstrate(cluster=TINY_CLUSTER)
    rng = np.random.default_rng(0)
    a, b = rng.uniform(size=(20, 20)), rng.uniform(size=(20, 20))
    first = SacSession(engine=substrate.view("one"), tile_size=10)
    A, B = first.tiled(a), first.tiled(b)
    first.compile(MULTIPLY, A=A, B=B, n=20, m=20)
    hits_before = substrate.plan_caches.plan.hits
    second = SacSession(engine=substrate.view("two"), tile_size=10)
    A2, B2 = second.tiled(a), second.tiled(b)
    second.compile(MULTIPLY, A=A2, B=B2, n=20, m=20)
    assert substrate.plan_caches.plan.hits > hits_before
    report = substrate.tenant_report()
    assert report["two"]["plan_cache_hits"] >= 1
    substrate.close()


def test_profile_keyed_plan_cache_keeps_tile_sizes_apart():
    """Sessions with different build profiles share the cache object but
    must never share entries (a tile-size-10 plan is wrong at 5)."""
    substrate = EngineSubstrate(cluster=TINY_CLUSTER)
    rng = np.random.default_rng(1)
    a, b = rng.uniform(size=(20, 20)), rng.uniform(size=(20, 20))
    coarse = SacSession(engine=substrate.view("c"), tile_size=10)
    fine = SacSession(engine=substrate.view("f"), tile_size=5)
    rc = coarse.run(
        MULTIPLY, A=coarse.tiled(a), B=coarse.tiled(b), n=20, m=20
    ).to_numpy()
    rf = fine.run(
        MULTIPLY, A=fine.tiled(a), B=fine.tiled(b), n=20, m=20
    ).to_numpy()
    np.testing.assert_allclose(rc, a @ b, rtol=1e-10)
    np.testing.assert_allclose(rf, a @ b, rtol=1e-10)
    substrate.close()


# ----------------------------------------------------------------------
# Quotas and reservations in the block store
# ----------------------------------------------------------------------


def _sized_records(nbytes_hint=1):
    """A record batch and its accounted size."""
    records = [(i, float(i)) for i in range(64 * nbytes_hint)]
    return records, RecordSizeAccountant().batch_size(records)


def test_quota_evicts_tenants_own_lru_blocks():
    metrics = MetricsRegistry()
    manager = BlockManager(metrics)
    records, block_bytes = _sized_records()
    manager.configure_tenant("a", quota=2 * block_bytes)
    view_a = manager.view("a")
    view_b = manager.view("b")
    assert view_b.put(100, 0, list(records))
    for split in range(3):  # third block pushes "a" over quota
        assert view_a.put(split, 0, list(records))
    usage = manager.tenant_usage()
    assert usage["a"]["resident_bytes"] <= 2 * block_bytes
    # The victim was a's own oldest block; b is untouched.
    assert manager.get(0, 0) is None
    assert manager.get(2, 0) is not None
    assert manager.get(100, 0) is not None
    report = metrics.tenant_report()
    assert report["a"]["quota_evictions"] == 1
    assert report["a"]["quota_evicted_bytes"] == block_bytes


def test_oversized_block_rejected_by_quota():
    manager = BlockManager(MetricsRegistry())
    records, block_bytes = _sized_records()
    manager.configure_tenant("a", quota=block_bytes - 1)
    assert manager.view("a").put(1, 0, records) is False
    assert manager.tenant_usage()["a"]["resident_bytes"] == 0


def test_reservation_protects_tenant_from_neighbors_pressure():
    metrics = MetricsRegistry()
    records, block_bytes = _sized_records()
    manager = BlockManager(metrics, memory_budget=3 * block_bytes)
    manager.configure_tenant("b", reservation=2 * block_bytes)
    view_a = manager.view("a")
    view_b = manager.view("b")
    for split in range(2):
        assert view_b.put(200 + split, 0, list(records))
    for split in range(3):  # a's writes create the pressure
        view_a.put(split, 0, list(records))
    # b holds exactly its reservation; a's own blocks paid for a's spree.
    usage = manager.tenant_usage()
    assert usage["b"]["resident_bytes"] == 2 * block_bytes
    assert manager.get(200, 0) is not None
    assert manager.get(201, 0) is not None
    assert usage["a"]["resident_bytes"] <= block_bytes


def test_reservation_cannot_exceed_quota():
    manager = BlockManager(MetricsRegistry())
    with pytest.raises(ValueError):
        manager.configure_tenant("a", quota=10, reservation=20)


def test_untenanted_paths_keep_historical_eviction_order():
    """With no tenants configured the two-pass eviction reduces to the
    plain LRU sweep — same victims, same order."""
    records, block_bytes = _sized_records()
    plain = BlockManager(MetricsRegistry(), memory_budget=2 * block_bytes)
    for split in range(3):
        assert plain.put(split, 0, list(records))
    assert plain.get(0, 0) is None      # LRU victim
    assert plain.get(1, 0) is not None
    assert plain.get(2, 0) is not None


# ----------------------------------------------------------------------
# Fair admission
# ----------------------------------------------------------------------


def test_fair_scheduler_bounds_concurrency():
    scheduler = FairJobScheduler(max_concurrent=2)
    running = []
    lock = threading.Lock()

    def job(tenant):
        with scheduler.admit(tenant):
            with lock:
                running.append(tenant)
            time.sleep(0.01)

    threads = [
        threading.Thread(target=job, args=(f"t{i % 3}",)) for i in range(9)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(running) == 9
    assert scheduler.peak_running <= 2
    assert scheduler.stats()["running"] == 0


def test_fair_scheduler_round_robin_across_tenants():
    scheduler = FairJobScheduler(max_concurrent=1)
    order = []
    release = threading.Event()

    def holder():
        with scheduler.admit("holder"):
            release.wait(timeout=5)

    def job(tenant):
        with scheduler.admit(tenant):
            order.append(tenant)

    hold = threading.Thread(target=holder)
    hold.start()
    while scheduler.stats()["running"] == 0:
        time.sleep(0.001)
    threads = []
    # Enqueue deterministically: a, a, then b — round-robin must grant
    # a, b, a, not FIFO's a, a, b.
    for tenant in ("a", "a", "b"):
        thread = threading.Thread(target=job, args=(tenant,))
        thread.start()
        threads.append(thread)
        while scheduler.stats()["waiting"] < len(threads):
            time.sleep(0.001)
    release.set()
    hold.join()
    for thread in threads:
        thread.join()
    assert order == ["a", "b", "a"]


def test_fair_scheduler_reentrant_admission():
    """A job that runs nested jobs (loop programs) must not self-deadlock
    at the gate."""
    scheduler = FairJobScheduler(max_concurrent=1)
    with scheduler.admit("a"):
        with scheduler.admit("a"):
            assert scheduler.stats()["running"] == 1
    assert scheduler.stats()["running"] == 0


def test_fair_scheduler_unbounded_is_noop():
    scheduler = FairJobScheduler()
    with scheduler.admit("a"):
        assert scheduler.stats()["running"] == 0  # fast path: untracked
    assert scheduler.peak_running == 0


def test_fair_scheduler_rejects_zero_cap():
    with pytest.raises(ValueError):
        FairJobScheduler(max_concurrent=0)


def test_admission_wait_lands_in_tenant_metrics():
    metrics = MetricsRegistry()
    scheduler = FairJobScheduler(max_concurrent=1, metrics=metrics)
    started = threading.Event()
    release = threading.Event()

    def holder():
        with scheduler.admit("x"):
            started.set()
            release.wait(timeout=5)

    hold = threading.Thread(target=holder)
    hold.start()
    started.wait(timeout=5)

    def waiter():
        with scheduler.admit("y"):
            pass

    wait_thread = threading.Thread(target=waiter)
    wait_thread.start()
    while scheduler.stats()["waiting"] == 0:
        time.sleep(0.001)
    release.set()
    hold.join()
    wait_thread.join()
    report = metrics.tenant_report()
    assert report["y"]["admission_waits"] == 1
    assert report["y"]["admission_wait_seconds"] > 0


def test_substrate_admission_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_MAX_CONCURRENT", "3")
    substrate = EngineSubstrate(cluster=TINY_CLUSTER)
    assert substrate.admission.max_concurrent == 3
    substrate.close()


# ----------------------------------------------------------------------
# env_flag (S2): one parser for every boolean knob
# ----------------------------------------------------------------------


@pytest.mark.parametrize("raw", ["1", "true", "TRUE", "yes", "on", "On"])
def test_env_flag_truthy_spellings(monkeypatch, raw):
    monkeypatch.setenv("REPRO_TEST_FLAG", raw)
    assert env_flag("REPRO_TEST_FLAG") is True


@pytest.mark.parametrize("raw", ["0", "false", "no", "off", ""])
def test_env_flag_falsy_spellings(monkeypatch, raw):
    monkeypatch.setenv("REPRO_TEST_FLAG", raw)
    assert env_flag("REPRO_TEST_FLAG") is False


def test_env_flag_default_when_unset(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
    assert env_flag("REPRO_TEST_FLAG") is None
    assert env_flag("REPRO_TEST_FLAG", True) is True
    assert env_flag("REPRO_TEST_FLAG", False) is False
