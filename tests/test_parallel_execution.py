"""Parallel stage execution: runner resolution, metric parity, safety.

The engine's headline invariant for the threaded runner is that it is a
pure wall-clock optimization: every measured counter — stages, tasks,
shuffles, shuffle records, shuffle bytes — and every computed result is
identical to the serial runner's.  These tests pin that down on the
paper's two benchmark shapes (tile addition and both multiplication
plans) plus the MLlib workalike, and cover the execution machinery
itself: the persistent pool, nested-stage inlining, accumulator
atomicity, and context shutdown.
"""

import os
import threading
from unittest import mock

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.engine import (
    EngineContext,
    SerialTaskRunner,
    TINY_CLUSTER,
    ThreadedTaskRunner,
    resolve_runner,
)
from repro.mllib import BlockMatrix
from repro.workloads import dense_uniform

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)

ADD = "tiled(n,m)[ ((i,j), a + b) | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]"


def _counters(metrics):
    total = metrics.total
    return {
        "stages": total.stages,
        "tasks": total.tasks,
        "shuffles": total.shuffles,
        "shuffle_records": total.shuffle_records,
        "shuffle_bytes": total.shuffle_bytes,
    }


# ----------------------------------------------------------------------
# Runner resolution
# ----------------------------------------------------------------------


def test_resolve_runner_strings():
    assert isinstance(resolve_runner("serial", TINY_CLUSTER), SerialTaskRunner)
    threaded = resolve_runner("threads", TINY_CLUSTER)
    assert isinstance(threaded, ThreadedTaskRunner)
    assert threaded.max_workers == TINY_CLUSTER.local_parallelism()
    assert isinstance(resolve_runner("threaded", TINY_CLUSTER), ThreadedTaskRunner)
    threaded.close()


def test_resolve_runner_passthrough_instance():
    runner = ThreadedTaskRunner(max_workers=2)
    assert resolve_runner(runner, TINY_CLUSTER) is runner
    runner.close()


def test_resolve_runner_env_default():
    with mock.patch.dict(os.environ, {"REPRO_RUNNER": "threads"}):
        runner = resolve_runner(None, TINY_CLUSTER)
    assert isinstance(runner, ThreadedTaskRunner)
    runner.close()
    with mock.patch.dict(os.environ, {}, clear=True):
        assert isinstance(resolve_runner(None, TINY_CLUSTER), SerialTaskRunner)


def test_resolve_runner_rejects_unknown():
    with pytest.raises(ValueError, match="unknown runner"):
        resolve_runner("fibers", TINY_CLUSTER)


def test_threaded_runner_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        ThreadedTaskRunner(max_workers=0)


# ----------------------------------------------------------------------
# Runner machinery
# ----------------------------------------------------------------------


def test_threaded_pool_is_persistent_across_stages():
    runner = ThreadedTaskRunner(max_workers=2)
    try:
        runner.run_stage([lambda: 1, lambda: 2])
        first_pool = runner._pool
        assert first_pool is not None
        runner.run_stage([lambda: 3, lambda: 4])
        assert runner._pool is first_pool
    finally:
        runner.close()
    assert runner._pool is None


def test_threaded_runner_close_is_idempotent():
    runner = ThreadedTaskRunner(max_workers=2)
    runner.run_stage([lambda: 1, lambda: 2])
    runner.close()
    runner.close()
    # The runner stays usable: a new pool is spawned lazily.
    assert runner.run_stage([lambda: 5, lambda: 6]) == [5, 6]
    runner.close()


def test_threaded_runner_preserves_task_order():
    runner = ThreadedTaskRunner(max_workers=4)
    try:
        tasks = [lambda i=i: i * i for i in range(50)]
        assert runner.run_stage(tasks) == [i * i for i in range(50)]
    finally:
        runner.close()


def test_nested_stage_from_worker_runs_inline_without_deadlock():
    """A stage submitted from inside a pool worker must not re-enter the
    pool: with more nested stages than workers that would deadlock."""
    runner = ThreadedTaskRunner(max_workers=2)

    def outer(i):
        inner = runner.run_stage([lambda j=j: (i, j) for j in range(3)])
        assert threading.current_thread().name.startswith("repro-executor")
        return inner

    try:
        results = runner.run_stage([lambda i=i: outer(i) for i in range(8)])
        assert results == [[(i, j) for j in range(3)] for i in range(8)]
    finally:
        runner.close()


def test_single_task_stage_runs_on_calling_thread():
    runner = ThreadedTaskRunner(max_workers=4)
    try:
        names = runner.run_stage([lambda: threading.current_thread().name])
        assert names == [threading.current_thread().name]
    finally:
        runner.close()


def test_engine_context_manager_closes_runner():
    runner = ThreadedTaskRunner(max_workers=2)
    with EngineContext(cluster=TINY_CLUSTER, runner=runner) as ctx:
        assert ctx.runner is runner
        assert ctx.parallelize(range(100), 8).sum() == sum(range(100))
        assert runner._pool is not None
    assert runner._pool is None


def test_session_context_manager_closes_runner():
    with SacSession(tile_size=4, runner=ThreadedTaskRunner(max_workers=2)) as session:
        runner = session.engine.runner
        a = session.tiled(np.arange(64.0).reshape(8, 8))
        assert a.materialize().tiles.count() == 4
    assert runner._pool is None


def test_accumulator_add_is_atomic_under_threaded_runner():
    ctx = EngineContext(cluster=TINY_CLUSTER, runner=ThreadedTaskRunner(max_workers=4))
    acc = ctx.accumulator(0)
    rdd = ctx.parallelize(range(20_000), 16)
    rdd.foreach(lambda _x: acc.add(1))
    assert acc.value == 20_000
    ctx.close()


# ----------------------------------------------------------------------
# Metric and result parity: serial vs threaded
# ----------------------------------------------------------------------


def _session(runner, group_by_join):
    return SacSession(
        tile_size=25,
        runner=runner,
        options=PlannerOptions(group_by_join=group_by_join),
    )


@pytest.mark.parametrize("group_by_join", [False, True])
def test_multiplication_parity_serial_vs_threaded(group_by_join):
    """fig4b shape: both SAC plans give identical bytes and results."""
    n = 75
    a = dense_uniform(n, n, seed=1)
    b = dense_uniform(n, n, seed=2)
    outputs, counters = [], []
    for runner in [SerialTaskRunner(), ThreadedTaskRunner(max_workers=4)]:
        with _session(runner, group_by_join) as session:
            A = session.tiled(a).materialize()
            B = session.tiled(b).materialize()
            snapshot = session.metrics_snapshot()
            result = session.run(MULTIPLY, A=A, B=B, n=n, m=n).to_numpy()
            delta = session.metrics_delta(snapshot)
        outputs.append(result)
        counters.append(
            (delta.stages, delta.tasks, delta.shuffles,
             delta.shuffle_records, delta.shuffle_bytes)
        )
    np.testing.assert_array_equal(outputs[0], outputs[1])
    np.testing.assert_allclose(outputs[0], a @ b)
    assert counters[0] == counters[1]
    assert counters[0][4] > 0  # the plans really shuffled


def test_addition_parity_serial_vs_threaded():
    """fig4a shape: element-wise addition of co-tiled matrices."""
    n = 60
    a = dense_uniform(n, n, seed=3)
    b = dense_uniform(n, n, seed=4)
    outputs, counters = [], []
    for runner in [SerialTaskRunner(), ThreadedTaskRunner(max_workers=4)]:
        with _session(runner, True) as session:
            A = session.tiled(a).materialize()
            B = session.tiled(b).materialize()
            snapshot = session.metrics_snapshot()
            result = session.run(ADD, A=A, B=B, n=n, m=n).to_numpy()
            delta = session.metrics_delta(snapshot)
        outputs.append(result)
        counters.append(
            (delta.stages, delta.tasks, delta.shuffles,
             delta.shuffle_records, delta.shuffle_bytes)
        )
    np.testing.assert_array_equal(outputs[0], outputs[1])
    np.testing.assert_allclose(outputs[0], a + b)
    assert counters[0] == counters[1]


def test_mllib_multiply_parity_serial_vs_threaded():
    n = 75
    a = dense_uniform(n, n, seed=5)
    b = dense_uniform(n, n, seed=6)
    outputs, counters = [], []
    for runner in [SerialTaskRunner(), ThreadedTaskRunner(max_workers=4)]:
        with EngineContext(runner=runner) as engine:
            A = BlockMatrix.from_numpy(engine, a, 25)
            B = BlockMatrix.from_numpy(engine, b, 25)
            result = A.multiply(B).to_numpy()
            outputs.append(result)
            counters.append(_counters(engine.metrics))
    np.testing.assert_array_equal(outputs[0], outputs[1])
    np.testing.assert_allclose(outputs[0], a @ b)
    assert counters[0] == counters[1]
    assert counters[0]["shuffle_bytes"] > 0


def test_rdd_pipeline_parity_serial_vs_threaded():
    """Raw engine pipeline (reduce_by_key + join + cache) parity."""
    results, counters = [], []
    for runner in [SerialTaskRunner(), ThreadedTaskRunner(max_workers=4)]:
        with EngineContext(cluster=TINY_CLUSTER, runner=runner) as ctx:
            left = ctx.parallelize([(i % 7, i) for i in range(500)], 8)
            right = ctx.parallelize([(i % 7, i * i) for i in range(100)], 4)
            summed = left.reduce_by_key(lambda x, y: x + y).cache()
            joined = summed.join(right)
            results.append(sorted(joined.collect()))
            counters.append(_counters(ctx.metrics))
    assert results[0] == results[1]
    assert counters[0] == counters[1]


def test_serial_runner_is_default_and_not_parallel():
    with mock.patch.dict(os.environ, {}, clear=True):
        ctx = EngineContext()
    assert isinstance(ctx.runner, SerialTaskRunner)
    assert ctx.runner.parallel is False
    assert ThreadedTaskRunner.parallel is True


# ----------------------------------------------------------------------
# Map-output statistics (the adaptive layer's measurement substrate)
# ----------------------------------------------------------------------


def _histogram_run(runner):
    """One partition_by shuffle with known keys; returns the pieces the
    histogram assertions need."""
    from repro.engine import HashPartitioner

    with EngineContext(cluster=TINY_CLUSTER, runner=runner) as ctx:
        data = [(i % 5, "x" * (8 * (i % 5 + 1))) for i in range(200)]
        rdd = ctx.parallelize(data, 8)
        snapshot = ctx.metrics.snapshot()
        shuffled = rdd.partition_by(HashPartitioner(6))
        output = [shuffled.iterator(p) for p in range(6)]
        buckets = [list(part) for part in output]
        delta = ctx.metrics.delta_since(snapshot)
        stats = shuffled.output_statistics()
    return buckets, delta, stats


@pytest.mark.parametrize(
    "runner_factory",
    [SerialTaskRunner, lambda: ThreadedTaskRunner(max_workers=4)],
    ids=["serial", "threads"],
)
def test_map_output_statistics_histogram(runner_factory):
    """The per-partition histogram is exact: records per bucket match the
    actual reduce output, and the byte/record totals match the engine's
    (fast-path) shuffle counters — the histogram costs nothing extra."""
    buckets, delta, stats = _histogram_run(runner_factory())
    assert stats is not None
    assert stats.num_partitions == 6
    assert list(stats.records_per_partition) == [len(b) for b in buckets]
    assert stats.total_records == delta.shuffle_records == 200
    assert stats.total_bytes == delta.shuffle_bytes > 0
    # Each key's 40 records share one bucket; larger-valued keys weigh more.
    nonzero = [b for b in stats.bytes_per_partition if b]
    assert len(nonzero) == 5  # 5 distinct keys over 6 buckets
    assert len(set(nonzero)) == 5  # distinct value sizes -> distinct weights


def test_map_output_statistics_identical_serial_vs_threaded():
    results = [
        _histogram_run(factory())
        for factory in (SerialTaskRunner, lambda: ThreadedTaskRunner(max_workers=4))
    ]
    (_, _, serial_stats), (_, _, threaded_stats) = results
    assert serial_stats == threaded_stats


def test_adaptive_flag_counter_parity():
    """On a workload with no skew and well-sized partitions, the adaptive
    engine takes no action: every counter matches the adaptive-off run
    (which is the seed engine's exact code path), and the off run records
    no decisions."""
    n = 75
    a = dense_uniform(n, n, seed=11)
    b = dense_uniform(n, n, seed=12)
    outputs, counters, decisions = [], [], []
    for adaptive in (False, True):
        with SacSession(
            tile_size=25, runner=SerialTaskRunner(),
            options=PlannerOptions(group_by_join=False), adaptive=adaptive,
        ) as session:
            A = session.tiled(a).materialize()
            B = session.tiled(b).materialize()
            snapshot = session.metrics_snapshot()
            result = session.run(MULTIPLY, A=A, B=B, n=n, m=n).to_numpy()
            delta = session.metrics_delta(snapshot)
        outputs.append(result)
        counters.append((delta.stages, delta.tasks, delta.shuffles,
                         delta.shuffle_records, delta.shuffle_bytes))
        decisions.append(delta.adaptive_decisions)
    np.testing.assert_array_equal(outputs[0], outputs[1])
    np.testing.assert_allclose(outputs[0], a @ b)
    assert counters[0] == counters[1]
    assert decisions == [[], []]
