"""Property tests: desugaring/normalization preserve interpreter semantics.

For a family of query templates, evaluate (a) the raw desugared tree
with all normalization passes disabled and (b) the fully normalized
tree, both on the reference interpreter, over hypothesis-generated data.
Any rewrite that changes results is a compiler bug.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comprehension import Interpreter, desugar, normalize, parse
from repro.storage import DenseMatrix, DenseVector

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_dims = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def both_ways(source, env):
    """Evaluate the query with and without normalization."""
    desugared = desugar(parse(source), is_array=lambda n: n in env)
    raw = Interpreter(env).evaluate(desugared)
    normalized = normalize(desugared)
    cooked = Interpreter(env).evaluate(normalized)
    return raw, cooked


def assert_same(raw, cooked):
    if isinstance(raw, (DenseMatrix, DenseVector)):
        np.testing.assert_allclose(raw.data, cooked.data)
    elif isinstance(raw, list):
        assert raw == cooked
    else:
        assert raw == cooked or np.isclose(raw, cooked)


@SETTINGS
@given(n=small_dims, m=small_dims, seed=seeds)
def test_join_query_normalization(n, m, seed):
    rng = np.random.default_rng(seed)
    a = DenseMatrix.from_numpy(rng.uniform(0, 9, size=(n, m)))
    b = DenseMatrix.from_numpy(rng.uniform(0, 9, size=(n, m)))
    raw, cooked = both_ways(
        "matrix(n,m)[ ((i,j), x + y) | ((i,j),x) <- A, ((ii,jj),y) <- B,"
        " ii == i && jj == j ]",
        {"A": a, "B": b, "n": n, "m": m},
    )
    assert_same(raw, cooked)


@SETTINGS
@given(n=small_dims, seed=seeds)
def test_nested_comprehension_normalization(n, seed):
    rng = np.random.default_rng(seed)
    v = DenseVector(rng.uniform(0, 9, size=n))
    raw, cooked = both_ways(
        "[ x + 1 | x <- [ v * 2 | (i,v) <- V, v > 3 ] ]",
        {"V": v},
    )
    assert_same(raw, cooked)


@SETTINGS
@given(n=small_dims, m=small_dims, seed=seeds)
def test_range_fusion_normalization(n, m, seed):
    rng = np.random.default_rng(seed)
    a = DenseMatrix.from_numpy(rng.uniform(0, 9, size=(n, m)))
    raw, cooked = both_ways(
        "[ A[i, j] | i <- 0 until n, j <- 0 until m, i == j ]",
        {"A": a, "n": n, "m": m},
    )
    assert_same(raw, cooked)


@SETTINGS
@given(n=small_dims, seed=seeds, c=st.integers(0, 9))
def test_guard_pushdown_normalization(n, seed, c):
    rng = np.random.default_rng(seed)
    v = DenseVector(rng.integers(0, 10, size=n).astype(float))
    w = DenseVector(rng.integers(0, 10, size=n).astype(float))
    raw, cooked = both_ways(
        "[ (x, y) | (i,x) <- V, (j,y) <- W, x > c ]",
        {"V": v, "W": w, "c": c},
    )
    assert_same(raw, cooked)


@SETTINGS
@given(n=small_dims, m=small_dims, seed=seeds)
def test_group_by_query_normalization(n, m, seed):
    rng = np.random.default_rng(seed)
    a = DenseMatrix.from_numpy(rng.uniform(0, 9, size=(n, m)))
    raw, cooked = both_ways(
        "vector(n)[ (i, +/x) | ((i,j),v) <- A, let x = v * v, group by i ]",
        {"A": a, "n": n},
    )
    assert_same(raw, cooked)


@SETTINGS
@given(n=small_dims, seed=seeds)
def test_builder_fusion_normalization(n, seed):
    rng = np.random.default_rng(seed)
    v = DenseVector(rng.uniform(0, 9, size=n))
    raw, cooked = both_ways(
        "[ y | (k,y) <- vector(n)[ (i, v + 1) | (i,v) <- V ] ]",
        {"V": v, "n": n},
    )
    # Fusion bypasses the vector builder, which is sound here because
    # keys are unique and in range.
    assert_same(raw, cooked)


@SETTINGS
@given(n=small_dims, seed=seeds)
def test_avg_decomposition(n, seed):
    rng = np.random.default_rng(seed)
    m = DenseMatrix.from_numpy(rng.uniform(1, 9, size=(n, 3)))
    raw, cooked = both_ways(
        "[ (i, avg/v) | ((i,j),v) <- M, group by i ]",
        {"M": m},
    )
    assert raw == cooked
    expected = m.data.mean(axis=1)
    for (i, value), target in zip(cooked, expected):
        assert np.isclose(value, target)
