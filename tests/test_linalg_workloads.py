"""Tests for the ML workloads: factorization and iterative routines."""

import numpy as np
import pytest

from repro import SacSession
from repro.engine import EngineContext, TINY_CLUSTER
from repro.linalg import (
    GAMMA, LAMBDA, mllib_factorization_step, power_iteration,
    reconstruction_error, sac_factorization_step, sac_factorize,
)
from repro.linalg.routines import (
    gradient_descent_linear_regression, pagerank,
)
from repro.mllib import BlockMatrix
from repro.workloads import (
    adjacency_matrix, dense_uniform, factor_matrix, rating_matrix,
    regression_data,
)

N, RANK, TILE = 48, 8, 16


@pytest.fixture()
def session():
    return SacSession(cluster=TINY_CLUSTER, tile_size=TILE)


@pytest.fixture()
def factorization_inputs():
    r = rating_matrix(N, density=0.10, seed=1)
    p = factor_matrix(N, RANK, seed=2)
    q = factor_matrix(N, RANK, seed=3)
    return r, p, q


def reference_step(r, p, q, gamma=GAMMA, lam=LAMBDA):
    e = r - p @ q.T
    p_new = p + gamma * (2 * (e @ q) - lam * p)
    q_new = q + gamma * (2 * (e.T @ p_new) - lam * q)
    return p_new, q_new, e


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------


def test_rating_matrix_density_and_values():
    r = rating_matrix(100, density=0.10, seed=5)
    nonzero = np.count_nonzero(r)
    assert 0.07 < nonzero / r.size < 0.13
    values = r[r != 0]
    assert values.min() >= 1 and values.max() <= 5
    assert np.all(values == np.round(values))


def test_dense_uniform_range():
    a = dense_uniform(50, 60, seed=9)
    assert a.shape == (50, 60)
    assert a.min() >= 0.0 and a.max() < 10.0


def test_generators_are_seeded():
    np.testing.assert_array_equal(
        rating_matrix(20, seed=4), rating_matrix(20, seed=4)
    )
    assert not np.array_equal(rating_matrix(20, seed=4), rating_matrix(20, seed=5))


def test_adjacency_has_empty_diagonal():
    adj = adjacency_matrix(30, seed=0)
    assert np.all(np.diag(adj) == 0)


# ----------------------------------------------------------------------
# Factorization: SAC vs the closed-form recurrence
# ----------------------------------------------------------------------


def test_sac_step_matches_reference(session, factorization_inputs):
    r, p, q = factorization_inputs
    state = sac_factorization_step(
        session, session.tiled(r), session.tiled(p), session.tiled(q)
    )
    p_ref, q_ref, e_ref = reference_step(r, p, q)
    np.testing.assert_allclose(state.error.to_numpy(), e_ref, rtol=1e-10)
    np.testing.assert_allclose(state.p.to_numpy(), p_ref, rtol=1e-10)
    np.testing.assert_allclose(state.q.to_numpy(), q_ref, rtol=1e-10)


def test_mllib_step_matches_reference(factorization_inputs):
    r, p, q = factorization_inputs
    engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    p_new, q_new, error = mllib_factorization_step(
        BlockMatrix.from_numpy(engine, r, TILE),
        BlockMatrix.from_numpy(engine, p, TILE),
        BlockMatrix.from_numpy(engine, q, TILE),
    )
    p_ref, q_ref, e_ref = reference_step(r, p, q)
    np.testing.assert_allclose(error.to_numpy(), e_ref, rtol=1e-10)
    np.testing.assert_allclose(p_new.to_numpy(), p_ref, rtol=1e-10)
    np.testing.assert_allclose(q_new.to_numpy(), q_ref, rtol=1e-10)


def test_sac_and_mllib_agree(session, factorization_inputs):
    r, p, q = factorization_inputs
    sac_state = sac_factorization_step(
        session, session.tiled(r), session.tiled(p), session.tiled(q)
    )
    engine = EngineContext(cluster=TINY_CLUSTER, default_parallelism=4)
    p_m, q_m, _ = mllib_factorization_step(
        BlockMatrix.from_numpy(engine, r, TILE),
        BlockMatrix.from_numpy(engine, p, TILE),
        BlockMatrix.from_numpy(engine, q, TILE),
    )
    np.testing.assert_allclose(sac_state.p.to_numpy(), p_m.to_numpy(), rtol=1e-10)
    np.testing.assert_allclose(sac_state.q.to_numpy(), q_m.to_numpy(), rtol=1e-10)


def test_factorization_objective_decreases(session, factorization_inputs):
    r, p, q = factorization_inputs
    r_tiled = session.tiled(r).cache()
    initial = reconstruction_error(
        session, r_tiled, session.tiled(p), session.tiled(q)
    )
    state = sac_factorize(
        session, r_tiled, session.tiled(p), session.tiled(q), iterations=3
    )
    final = reconstruction_error(session, r_tiled, state.p, state.q)
    assert final < initial


def test_custom_hyperparameters(session, factorization_inputs):
    r, p, q = factorization_inputs
    state = sac_factorization_step(
        session, session.tiled(r), session.tiled(p), session.tiled(q),
        gamma=0.01, lam=0.1,
    )
    p_ref, _, _ = reference_step(r, p, q, gamma=0.01, lam=0.1)
    np.testing.assert_allclose(state.p.to_numpy(), p_ref, rtol=1e-10)


# ----------------------------------------------------------------------
# Iterative routines
# ----------------------------------------------------------------------


def test_power_iteration_finds_dominant_eigenvalue(session):
    a = dense_uniform(40, 40, seed=8)
    sym = (a + a.T) / 2
    result = power_iteration(session, session.tiled(sym), max_iterations=200)
    expected = np.max(np.abs(np.linalg.eigvalsh(sym)))
    assert np.isclose(result.eigenvalue, expected, rtol=1e-5)
    # The eigenvector satisfies A x ≈ λ x.
    x = result.eigenvector.to_numpy()
    np.testing.assert_allclose(sym @ x, result.eigenvalue * x, rtol=1e-3)


def test_power_iteration_requires_square(session):
    with pytest.raises(ValueError):
        power_iteration(session, session.tiled(np.ones((3, 4))))


def test_pagerank_is_a_distribution(session):
    adj = adjacency_matrix(25, edge_probability=0.3, seed=10)
    ranks = pagerank(session, session.tiled(adj), iterations=25).to_numpy()
    assert np.isclose(ranks.sum(), 1.0, atol=1e-8)
    assert np.all(ranks > 0)


def test_pagerank_matches_dense_reference(session):
    adj = adjacency_matrix(20, edge_probability=0.3, seed=11)
    out_deg = adj.sum(axis=0)
    n = 20
    transition = np.where(out_deg > 0, adj / np.where(out_deg == 0, 1, out_deg), 1.0 / n)
    rank = np.full(n, 1.0 / n)
    for _ in range(25):
        rank = (1 - 0.85) / n + 0.85 * transition @ rank
    result = pagerank(session, session.tiled(adj), iterations=25).to_numpy()
    np.testing.assert_allclose(result, rank, rtol=1e-8)


def test_linear_regression_recovers_weights(session):
    x, y, w = regression_data(120, 4, noise=0.01, seed=12)
    estimate = gradient_descent_linear_regression(
        session, session.tiled(x), session.tiled_vector(y),
        learning_rate=0.05, iterations=300,
    ).to_numpy()
    np.testing.assert_allclose(estimate, w, atol=0.05)


def test_logistic_regression_separates_classes(session):
    from repro.linalg import logistic_regression

    rng = np.random.default_rng(21)
    positives = rng.normal(loc=(2.0, 2.0), scale=0.6, size=(40, 2))
    negatives = rng.normal(loc=(-2.0, -2.0), scale=0.6, size=(40, 2))
    x = np.vstack([positives, negatives])
    y = np.array([1.0] * 40 + [0.0] * 40)
    perm = rng.permutation(80)
    x, y = x[perm], y[perm]

    w = logistic_regression(
        session, session.tiled(x), session.tiled_vector(y),
        learning_rate=0.5, iterations=120,
    ).to_numpy()

    scores = x @ w
    predictions = (1 / (1 + np.exp(-scores)) > 0.5).astype(float)
    accuracy = (predictions == y).mean()
    assert accuracy >= 0.95


def test_logistic_regression_matches_numpy_steps(session):
    from repro.linalg import logistic_regression

    rng = np.random.default_rng(22)
    x = rng.normal(size=(20, 3))
    y = (rng.random(20) > 0.5).astype(float)
    w = logistic_regression(
        session, session.tiled(x), session.tiled_vector(y),
        learning_rate=0.3, iterations=5,
    ).to_numpy()

    w_ref = np.zeros(3)
    for _ in range(5):
        p = 1 / (1 + np.exp(-(x @ w_ref)))
        w_ref = w_ref + 0.3 / 20 * (x.T @ (y - p))
    np.testing.assert_allclose(w, w_ref, rtol=1e-8)
