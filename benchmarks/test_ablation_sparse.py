"""Ablation E7 — CSC-tiled sparse storage vs dense tiles (paper §8).

The paper's future-work extension, built in ``repro.storage.sparse_tiled``:
tiles in compressed sparse column format, with all-zero tiles absent from
the distributed collection.  This ablation multiplies a block-sparse
matrix (10 % of tiles non-empty) by a dense one, comparing dense-tiled
and CSC-tiled representations of the same input.  Block sparsity should
cut shuffled tiles and per-tile kernels roughly by the block density.
"""

import numpy as np
import pytest

from repro import SacSession
from repro.workloads import dense_uniform

TILE = 40
SIZES = [160, 320, 480]
ROUNDS = 2
BLOCK_DENSITY = 0.12

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def block_sparse_array(n, seed):
    """A matrix where ~12 % of the tiles carry data and the rest are zero."""
    rng = np.random.default_rng(seed)
    out = np.zeros((n, n))
    grid = n // TILE
    for bi in range(grid):
        for bj in range(grid):
            if rng.random() < BLOCK_DENSITY:
                out[
                    bi * TILE : (bi + 1) * TILE, bj * TILE : (bj + 1) * TILE
                ] = rng.uniform(1, 2, size=(TILE, TILE))
    if not out.any():
        out[:TILE, :TILE] = 1.0
    return out


@pytest.mark.parametrize("n", SIZES)
def test_multiply_dense_tiles(benchmark, measure, n):
    record, run_measured = measure
    a = block_sparse_array(n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(tile_size=TILE)
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-sparse", "dense tiles", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_multiply_sparse_tiles(benchmark, measure, n):
    record, run_measured = measure
    a = block_sparse_array(n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(tile_size=TILE)
    A = session.sparse_tiled(a).materialize()
    B = session.tiled(b).materialize()

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-sparse", "CSC tiles (block-sparse)", n, wall, sim, shuffled, counters)


def test_sparse_and_dense_agree():
    n = SIZES[0]
    a = block_sparse_array(n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(tile_size=TILE)
    dense = session.run(
        MULTIPLY, A=session.tiled(a), B=session.tiled(b), n=n, m=n
    ).to_numpy()
    sparse = session.run(
        MULTIPLY, A=session.sparse_tiled(a), B=session.tiled(b), n=n, m=n
    ).to_numpy()
    np.testing.assert_allclose(dense, sparse, rtol=1e-10)
    np.testing.assert_allclose(dense, a @ b, rtol=1e-10)
