"""Ablation E7 — CSC-tiled sparse storage vs dense tiles (paper §8).

The paper's future-work extension, built in ``repro.storage.sparse_tiled``:
tiles in compressed sparse column format, with all-zero tiles absent from
the distributed collection.  This ablation multiplies a block-sparse
matrix (10 % of tiles non-empty) by a dense one, comparing dense-tiled
and CSC-tiled representations of the same input.  Block sparsity should
cut shuffled tiles and per-tile kernels roughly by the block density.

The **density sweep** at the bottom varies the block density of a banded
multiply and records which strategy the cost-based planner picks at each
point: with the recorded density statistic the default flips away from
SUMMA replication on sparse bands and returns to it as the band widens
to dense, with a forced-replication arm alongside for the byte cost of
not flipping.
"""

import numpy as np
import pytest

from conftest import plan_report, run_measured

from repro import PlannerOptions, SacSession
from repro.engine import BENCH_CLUSTER
from repro.planner import STRATEGY_REPLICATE
from repro.workloads import dense_uniform

TILE = 40
SIZES = [160, 320, 480]
ROUNDS = 2
BLOCK_DENSITY = 0.12

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def block_sparse_array(n, seed):
    """A matrix where ~12 % of the tiles carry data and the rest are zero."""
    rng = np.random.default_rng(seed)
    out = np.zeros((n, n))
    grid = n // TILE
    for bi in range(grid):
        for bj in range(grid):
            if rng.random() < BLOCK_DENSITY:
                out[
                    bi * TILE : (bi + 1) * TILE, bj * TILE : (bj + 1) * TILE
                ] = rng.uniform(1, 2, size=(TILE, TILE))
    if not out.any():
        out[:TILE, :TILE] = 1.0
    return out


@pytest.mark.parametrize("n", SIZES)
def test_multiply_dense_tiles(benchmark, measure, n):
    record, run_measured = measure
    a = block_sparse_array(n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(tile_size=TILE)
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-sparse", "dense tiles", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_multiply_sparse_tiles(benchmark, measure, n):
    record, run_measured = measure
    a = block_sparse_array(n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(tile_size=TILE)
    A = session.sparse_tiled(a).materialize()
    B = session.tiled(b).materialize()

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-sparse", "CSC tiles (block-sparse)", n, wall, sim, shuffled, counters)


def test_sparse_and_dense_agree():
    n = SIZES[0]
    a = block_sparse_array(n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(tile_size=TILE)
    dense = session.run(
        MULTIPLY, A=session.tiled(a), B=session.tiled(b), n=n, m=n
    ).to_numpy()
    sparse = session.run(
        MULTIPLY, A=session.sparse_tiled(a), B=session.tiled(b), n=n, m=n
    ).to_numpy()
    np.testing.assert_allclose(dense, sparse, rtol=1e-10)
    np.testing.assert_allclose(dense, a @ b, rtol=1e-10)


# ----------------------------------------------------------------------
# Density sweep: where does the planner flip away from replication?
# ----------------------------------------------------------------------

SWEEP_N = 720
SWEEP_TILE = 45
SWEEP_GRID = SWEEP_N // SWEEP_TILE
#: Stored tiles per grid row: 1 = block diagonal (6 % block density),
#: widening to fully dense.  The flip happens at the sparse end.
SWEEP_BANDS = [1, 4, 16]
SWEEP_ROUNDS = 2


def banded_array(n, tile, band, seed):
    """``band`` dense tiles per grid row, wrapping cyclically."""
    rng = np.random.default_rng(seed)
    out = np.zeros((n, n))
    grid = n // tile
    for bi in range(grid):
        for k in range(band):
            bj = (bi + k) % grid
            out[bi * tile : (bi + 1) * tile, bj * tile : (bj + 1) * tile] = (
                rng.uniform(1, 2, size=(tile, tile))
            )
    return out


def _sweep_run(band, options):
    session = SacSession(
        cluster=BENCH_CLUSTER, tile_size=SWEEP_TILE, options=options
    )
    A = session.sparse_tiled(banded_array(SWEEP_N, SWEEP_TILE, band, seed=1))
    B = session.sparse_tiled(banded_array(SWEEP_N, SWEEP_TILE, band, seed=2))
    A.materialize(), B.materialize()
    compiled = session.compile(MULTIPLY, A=A, B=B, n=SWEEP_N, m=SWEEP_N)

    def run():
        compiled.execute().tiles.count()

    wall, sim, shuffled, counters = run_measured(
        session.engine, run, repeats=SWEEP_ROUNDS
    )
    counters.update(plan_report(compiled))
    return compiled, wall, sim, shuffled, counters


@pytest.mark.parametrize("band", SWEEP_BANDS)
def test_density_sweep_cost_based_default(measure, band):
    record, _ = measure
    compiled, wall, sim, shuffled, counters = _sweep_run(band, None)
    block_density_pct = round(100 * band / SWEEP_GRID)
    record(
        "ablation-sparse-density", "cost-based default",
        block_density_pct, wall, sim, shuffled, counters,
    )
    # The smoke contract: sparse bands flip off replication, dense stays.
    strategy = compiled.plan.details["strategy"]
    if band == 1:
        assert strategy != STRATEGY_REPLICATE
    assert "priced_densities" in compiled.plan.details


@pytest.mark.parametrize("band", SWEEP_BANDS)
def test_density_sweep_forced_replicate(measure, band):
    record, _ = measure
    compiled, wall, sim, shuffled, counters = _sweep_run(
        band, PlannerOptions(group_by_join=True)
    )
    assert compiled.plan.details["strategy"] == STRATEGY_REPLICATE
    record(
        "ablation-sparse-density", "forced replicate",
        round(100 * band / SWEEP_GRID), wall, sim, shuffled, counters,
    )
