"""Ablation E13 — the out-of-core spill tier under memory pressure.

A Fig 4.C-style tiled multiply runs with its working set several times
larger than the configured ``memory_limit``: evicted partitions and
retained shuffle outputs are serialized to the local-disk object store
and restored on demand (or ahead of demand by the async prefetcher).
Three arms:

* **uncapped** — the baseline: everything stays resident;
* **capped + prefetch** — the spill tier with stage-dispatch prefetch
  restoring soon-to-be-read partitions into budget headroom;
* **capped, no prefetch** — every restore happens on the demand path,
  so its latency lands in ``restore_stall_seconds``.

The capped arms must reproduce the uncapped results and shuffle
counters byte-for-byte — the cap may only move bytes between tiers —
and the report records spilled/restored bytes, prefetch hits, and
demand-restore stalls so the prefetch win is visible next to the
figures.
"""

import numpy as np
import pytest

from repro import PlannerOptions, SacSession
from repro.engine import PAPER_CLUSTER, EngineContext
from repro.workloads import dense_uniform

TILE = 30
N = 240
#: Memory cap for the capped arms; the multiply's working set (inputs,
#: shuffle buckets, partial products, output) runs well past 4x this.
CAP = 128 * 1024

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)

ARMS = {
    "uncapped": (None, True),
    "capped-prefetch": (CAP, True),
    "capped-no-prefetch": (CAP, False),
}


def _run_arm(limit, prefetch):
    engine = EngineContext(
        cluster=PAPER_CLUSTER, memory_limit=limit, spill_prefetch=prefetch,
    )
    session = SacSession(
        engine=engine, tile_size=TILE,
        options=PlannerOptions(group_by_join=True), adaptive=False,
    )
    try:
        a = dense_uniform(N, N, seed=N)
        b = dense_uniform(N, N, seed=N + 1)
        import time

        start = time.perf_counter()
        result = session.run(
            MULTIPLY, A=session.tiled(a), B=session.tiled(b), n=N, m=N
        ).to_numpy()
        wall = time.perf_counter() - start
        total = session.engine.metrics.total
        counters = {
            "stages": total.stages,
            "tasks": total.tasks,
            "shuffles": total.shuffles,
            "shuffle_records": total.shuffle_records,
            "shuffle_bytes": total.shuffle_bytes,
            "spilled_bytes": total.spilled_bytes,
            "restored_bytes": total.restored_bytes,
            "spill_restores": total.spill_restores,
            "prefetch_hits": total.prefetch_hits,
            "restore_stall_seconds": round(total.restore_stall_seconds, 4),
        }
        sim = total.simulated_time(engine.cluster)
        return result, wall, sim, total.shuffle_bytes, counters
    finally:
        session.engine.close()


@pytest.mark.parametrize("arm", list(ARMS), ids=list(ARMS))
def test_spill_arms(measure, arm):
    """E13: record each arm's counters for the report."""
    record, _run_measured = measure
    limit, prefetch = ARMS[arm]
    _result, wall, sim, shuffled, counters = _run_arm(limit, prefetch)
    record("ablation-spill", arm, N, wall, sim, shuffled, counters)


def test_capped_arms_match_uncapped_and_prefetch_hides_restores(measure):
    """Byte-identity under the cap, and prefetch absorbing demand work."""
    record, _run_measured = measure
    base_result, base_wall, base_sim, base_shuffled, base = _run_arm(
        None, True
    )
    pf_result, pf_wall, pf_sim, pf_shuffled, with_pf = _run_arm(CAP, True)
    np_result, np_wall, np_sim, np_shuffled, without_pf = _run_arm(CAP, False)
    record("ablation-spill", "uncapped (A/B)", N, base_wall, base_sim,
           base_shuffled, base)
    record("ablation-spill", "capped-prefetch (A/B)", N, pf_wall, pf_sim,
           pf_shuffled, with_pf)
    record("ablation-spill", "capped-no-prefetch (A/B)", N, np_wall, np_sim,
           np_shuffled, without_pf)

    np.testing.assert_array_equal(pf_result, base_result)
    np.testing.assert_array_equal(np_result, base_result)
    exact = ("stages", "tasks", "shuffles", "shuffle_records",
             "shuffle_bytes")
    assert {k: with_pf[k] for k in exact} == {k: base[k] for k in exact}
    assert {k: without_pf[k] for k in exact} == {k: base[k] for k in exact}

    # The uncapped arm never touches the tier; the capped arms must.
    assert base["spilled_bytes"] == 0
    assert with_pf["spilled_bytes"] > 0
    assert without_pf["spilled_bytes"] > 0
    assert with_pf["restored_bytes"] <= with_pf["spilled_bytes"]
    assert without_pf["restored_bytes"] <= without_pf["spilled_bytes"]

    # Prefetch moves restores off the demand path: with it on, some
    # reads land on already-restored blocks; with it off, none can.
    assert with_pf["prefetch_hits"] > 0
    assert without_pf["prefetch_hits"] == 0
    demand_with = with_pf["spill_restores"] - with_pf["prefetch_hits"]
    demand_without = without_pf["spill_restores"]
    print(
        f"\nspill: {with_pf['spilled_bytes'] / 1e6:.2f}MB spilled; "
        f"demand restores {demand_with} (prefetch on, "
        f"{with_pf['restore_stall_seconds']}s stall) vs {demand_without} "
        f"(prefetch off, {without_pf['restore_stall_seconds']}s stall)"
    )
    assert demand_with < demand_without
