"""Ablation — cost-based strategy selection across matrix shapes.

The planner's cost model (``repro.planner.cost``) chooses among SUMMA
replication (5.4), broadcasting one side, and the naive join+group-by
(5.3) per query.  This ablation sweeps shape regimes where the best
strategy differs:

* **square** — both sides large: replicating row/column bands (SUMMA)
  beats broadcasting a whole side and the skew-bound naive join;
* **tall-skinny** — a one-tile-wide right side: shipping the small side
  to every executor halves the shuffle volume, so the model flips to
  the broadcast join;
* **tiny-x-large** — the mirrored case flips to broadcasting the left.

Each cost-based choice is benchmarked against the forced alternatives,
so the report shows the measured shuffle volume the model's decision
saved; per-arm estimated-vs-measured bytes validate the model itself.
"""

import pytest

from conftest import plan_report
from repro import PlannerOptions, SacSession
from repro.engine import BENCH_CLUSTER
from repro.workloads import dense_uniform

TILE = 90
ROUNDS = 2

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)

#: (case, A shape, B shape, strategy the cost model must choose)
CASES = [
    ("square", (540, 540), (540, 540), "gbj-replicate"),
    ("tall-skinny", (720, 720), (720, 90), "gbj-broadcast-right"),
    ("tiny-x-large", (90, 720), (720, 720), "gbj-broadcast-left"),
]

#: Forced-strategy arms the chosen plan is compared against.
ARMS = {
    "cost-based": None,
    "forced replicate": PlannerOptions(group_by_join=True),
    "forced join+group-by": PlannerOptions(group_by_join=False),
}


def _setup(shape_a, shape_b, options):
    session = SacSession(cluster=BENCH_CLUSTER, tile_size=TILE, options=options)
    env = {
        "A": session.tiled(dense_uniform(*shape_a, seed=3)).materialize(),
        "B": session.tiled(dense_uniform(*shape_b, seed=4)).materialize(),
        "n": shape_a[0],
        "m": shape_b[1],
    }
    compiled = session.compile(MULTIPLY, env)
    return session, compiled, env


@pytest.mark.parametrize("case,shape_a,shape_b,expected", CASES)
@pytest.mark.parametrize("arm", sorted(ARMS))
def test_costmodel_strategies(benchmark, measure, case, shape_a, shape_b,
                              expected, arm):
    record, run_measured = measure
    session, compiled, env = _setup(shape_a, shape_b, ARMS[arm])
    if arm == "cost-based":
        assert compiled.plan.details["strategy"] == expected

    def run():
        session.run(MULTIPLY, env).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    counters.update(plan_report(compiled, session))
    size = max(*shape_a, *shape_b)
    record(f"ablation-costmodel-{case}", f"SAC {arm}", size, wall, sim,
           shuffled, counters)

    estimate = compiled.plan.estimate
    if estimate is not None and shuffled:
        # The model's shuffle-byte prediction must land within 2x of the
        # measured volume for every strategy it can choose between.
        assert 0.5 <= estimate.shuffle_bytes / shuffled <= 2.0


@pytest.mark.parametrize("case,shape_a,shape_b,expected", CASES)
def test_costmodel_flip_saves_shuffle(measure, case, shape_a, shape_b,
                                      expected):
    """Where the model flips away from SUMMA, the flip must pay off."""
    _, run_measured = measure
    session, compiled, _env = _setup(shape_a, shape_b, None)
    forced_session, forced, _fenv = _setup(
        shape_a, shape_b, PlannerOptions(group_by_join=True)
    )

    def measure_bytes(sess, plan):
        return run_measured(
            sess.engine, lambda: plan.execute().tiles.count(), repeats=1
        )[2]

    chosen_bytes = measure_bytes(session, compiled)
    forced_bytes = measure_bytes(forced_session, forced)
    if expected.startswith("gbj-broadcast"):
        assert chosen_bytes < forced_bytes
    else:
        assert compiled.plan.details["strategy"] == "gbj-replicate"
        assert chosen_bytes == forced_bytes
