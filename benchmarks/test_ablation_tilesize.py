"""Ablation E6 — tile size sweep for multiplication.

The block is the unit of distribution (Section 5): tiny tiles multiply
the number of shuffled records and per-task overheads; one giant tile
serializes the whole computation onto one task.  The paper fixes
1000×1000 tiles at cluster scale; this sweep shows the tradeoff on the
simulated cluster at a fixed matrix size.
"""

import pytest

from repro import SacSession
from repro.workloads import dense_uniform

N = 240
TILE_SIZES = [12, 24, 48, 120, 240]
ROUNDS = 2

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


@pytest.mark.parametrize("tile", TILE_SIZES)
def test_multiply_tile_size(benchmark, measure, tile):
    record, run_measured = measure
    a = dense_uniform(N, N, seed=7)
    b = dense_uniform(N, N, seed=8)
    session = SacSession(tile_size=tile)
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()

    def run():
        session.run(MULTIPLY, A=A, B=B, n=N, m=N).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-tilesize", f"GBJ multiply {N}x{N}", tile, wall, sim, shuffled, counters)


def test_all_tile_sizes_agree():
    import numpy as np

    a = dense_uniform(N, N, seed=7)
    b = dense_uniform(N, N, seed=8)
    expected = a @ b
    for tile in (12, 240):
        session = SacSession(tile_size=tile)
        result = session.run(
            MULTIPLY, A=session.tiled(a), B=session.tiled(b), n=N, m=N
        ).to_numpy()
        np.testing.assert_allclose(result, expected, rtol=1e-9)
