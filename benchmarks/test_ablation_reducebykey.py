"""Ablation E5 — reduceByKey vs groupByKey (Section 5.3's justification).

The paper insists group-bys followed by aggregation translate to
``reduceByKey`` because it combines values map-side before the shuffle,
while ``groupByKey`` ships every record.  This ablation computes row
sums over the element records of a matrix both ways on the engine and
measures shuffle volume directly.
"""

import pytest

from repro.engine import EngineContext
from repro.workloads import dense_uniform

SIZES = [100, 200, 300]
ROUNDS = 2


def _element_rdd(engine, n):
    a = dense_uniform(n, n, seed=n)
    elements = [
        ((i, j), a[i, j]) for i in range(n) for j in range(n)
    ]
    return engine.parallelize(elements, 16).cache()


@pytest.mark.parametrize("n", SIZES)
def test_rowsum_reduce_by_key(benchmark, measure, n):
    record, run_measured = measure
    engine = EngineContext()
    rdd = _element_rdd(engine, n)
    rdd.count()

    def run():
        rdd.map(lambda kv: (kv[0][0], kv[1])).reduce_by_key(
            lambda x, y: x + y
        ).count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(engine, run)
    record("ablation-reducebykey", "reduceByKey (Rule 13)", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_rowsum_group_by_key(benchmark, measure, n):
    record, run_measured = measure
    engine = EngineContext()
    rdd = _element_rdd(engine, n)
    rdd.count()

    def run():
        rdd.map(lambda kv: (kv[0][0], kv[1])).group_by_key().map_values(
            sum
        ).count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(engine, run)
    record("ablation-reducebykey", "groupByKey", n, wall, sim, shuffled, counters)


def test_both_strategies_agree():
    engine = EngineContext()
    rdd = _element_rdd(engine, SIZES[0])
    reduced = dict(
        rdd.map(lambda kv: (kv[0][0], kv[1])).reduce_by_key(lambda x, y: x + y).collect()
    )
    grouped = dict(
        rdd.map(lambda kv: (kv[0][0], kv[1])).group_by_key().map_values(sum).collect()
    )
    assert set(reduced) == set(grouped)
    for key in reduced:
        assert abs(reduced[key] - grouped[key]) < 1e-9
