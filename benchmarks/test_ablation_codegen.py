"""Ablation E8 — generated loop code vs reference interpretation (§§2–3).

The paper's first translation target is local: comprehensions become
imperative loop programs "as efficient as a program hand-coded in an
imperative language".  This ablation runs the matrix-multiplication
comprehension on in-memory dense matrices through (a) the generated
loop code and (b) the reference interpreter, at a few sizes.  The
generated code fuses the join index (``kk = k``), so its asymptotics
drop from O(n²·m²) scanned pairs to the O(n·l·m) triple loop.
"""

import pytest

from repro import SacSession
from repro.engine import TINY_CLUSTER
from repro.planner import RULE_LOCAL_CODEGEN
from repro.storage import DenseMatrix
from repro.workloads import dense_uniform

SIZES = [10, 16, 22]
ROUNDS = 2

MULTIPLY = (
    "matrix(n,m)[ ((i,j),+/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
    " kk == k, let v = x*y, group by (i,j) ]"
)


def _inputs(n):
    return (
        DenseMatrix.from_numpy(dense_uniform(n, n, seed=n)),
        DenseMatrix.from_numpy(dense_uniform(n, n, seed=n + 1)),
    )


@pytest.mark.parametrize("n", SIZES)
def test_local_codegen(benchmark, measure, n):
    record, run_measured = measure
    a, b = _inputs(n)
    session = SacSession(cluster=TINY_CLUSTER)
    compiled = session.compile(MULTIPLY, A=a, B=b, n=n, m=n)
    assert compiled.plan.rule == RULE_LOCAL_CODEGEN

    def run():
        compiled.execute()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-codegen", "generated loop code", n, wall, wall, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_local_interpreter(benchmark, measure, n):
    record, run_measured = measure
    a, b = _inputs(n)
    session = SacSession(cluster=TINY_CLUSTER)

    def run():
        session.interpret(MULTIPLY, A=a, B=b, n=n, m=n)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-codegen", "reference interpreter", n, wall, wall, shuffled, counters)


def test_codegen_and_interpreter_agree():
    import numpy as np

    n = SIZES[0]
    a, b = _inputs(n)
    session = SacSession(cluster=TINY_CLUSTER)
    generated = session.run(MULTIPLY, A=a, B=b, n=n, m=n)
    interpreted = session.interpret(MULTIPLY, A=a, B=b, n=n, m=n)
    np.testing.assert_allclose(generated.data, interpreted.data, rtol=1e-12)
    np.testing.assert_allclose(generated.data, a.data @ b.data, rtol=1e-12)
