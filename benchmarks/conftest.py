"""Shared benchmark harness: result collection and paper-style tables.

Each benchmark records one :class:`Row` per (experiment, system, size):
wall-clock seconds (median of the timed rounds), *simulated* cluster
seconds from the engine's cost model, and measured shuffle volume.  At
the end of the session the rows are printed as one table per experiment,
with the speedup ratios the paper reports alongside the paper's expected
shape, so the output can be compared to Figure 4 directly.

Setting ``REPRO_BENCH_DUMP=<path>`` additionally writes every recorded
measurement (including the exact shuffle/stage/task counters) as JSON,
so counter regressions across engine changes can be diffed exactly.

On a multi-core host the benchmarks default to the threaded task runner
(``REPRO_RUNNER=threads``) so stages genuinely overlap; on one core
threads only add overhead, so the serial runner stays the default.
Either way the recorded counters and simulated times are identical —
only wall-clock changes.  Export ``REPRO_RUNNER`` explicitly to
override.
"""

from __future__ import annotations

import json
import os
import time
from collections import defaultdict
from dataclasses import asdict, dataclass, field

import pytest

from repro.engine import BENCH_CLUSTER

if (os.cpu_count() or 1) > 1:
    os.environ.setdefault("REPRO_RUNNER", "threads")


@dataclass
class Row:
    experiment: str
    system: str
    size: int
    wall_seconds: float
    sim_seconds: float
    shuffle_mb: float
    counters: dict = field(default_factory=dict)


_ROWS: list[Row] = []

#: What the paper's Figure 4 shows, printed under each table.
PAPER_EXPECTATIONS = {
    "fig4a-addition": (
        "Paper (Fig 4.A): SAC slightly faster than MLlib for addition; "
        "both scale linearly."
    ),
    "fig4b-multiplication": (
        "Paper (Fig 4.B): SAC join+group-by up to 3x SLOWER than MLlib; "
        "SAC GBJ up to 6x FASTER than MLlib."
    ),
    "fig4b-multiplication-skewed": (
        "Extension (E10): zipfian tile skew concentrates one join key; "
        "adaptive skew splitting should cut the simulated critical path "
        ">=2x at identical shuffle volume."
    ),
    "fig4c-factorization": (
        "Paper (Fig 4.C): SAC (GBJ) up to 3x faster than MLlib for one "
        "gradient-descent iteration."
    ),
    "ablation-pipeline": (
        "Extension (E12): with a deterministic map straggler, task-level "
        "pipelining overlaps sibling shuffle branches the staged "
        "scheduler serializes — expect >=1.5x lower wall-clock makespan "
        "at byte-identical counters and simulated time."
    ),
    "ablation-coordinate": (
        "Section 4/5 discussion: coordinate format shuffles every element; "
        "tiled arrays shuffle whole blocks — expect orders of magnitude "
        "less data and time for tiled."
    ),
    "ablation-reducebykey": (
        "Section 5.3 discussion: reduceByKey combines map-side; groupByKey "
        "shuffles every record — expect far less shuffle volume for "
        "reduceByKey."
    ),
    "ablation-codegen": (
        "Sections 2-3: generated loop code fuses the join index; the "
        "reference interpreter scans the cross product — expect orders "
        "of magnitude between them, growing with size."
    ),
    "ablation-sparse": (
        "Section 8 extension: CSC tiles with absent zero-tiles should "
        "shuffle and compute proportionally to the block density, "
        "beating dense tiles on block-sparse inputs."
    ),
    "ablation-sparse-density": (
        "Density-aware costing: on sparse bands the recorded statistic "
        "prices replication's tile fan-out at its true (small) volume "
        "and the default flips to a plan that ships only stored tiles — "
        "the forced-replicate arm shows the shuffle bytes the flip "
        "saves, widest at the sparse end and converging to plain dense "
        "costing as the band fills in."
    ),
    "ablation-costmodel-square": (
        "Cost model: both sides large, so SUMMA replication wins; the "
        "broadcast would ship a whole matrix to every executor."
    ),
    "ablation-costmodel-tall-skinny": (
        "Cost model: the one-tile-wide right side broadcasts for less "
        "than replicating column bands — expect the flip to roughly "
        "halve the shuffled volume."
    ),
    "ablation-costmodel-tiny-x-large": (
        "Cost model: mirrored case — the tiny left side broadcasts; "
        "same shuffle saving as tall-skinny."
    ),
    "ablation-tilesize": (
        "Design choice: tiny tiles pay task/shuffle overhead per tile, "
        "huge tiles lose parallelism; throughput should peak at a "
        "moderate tile size."
    ),
    "ablation-fusion": (
        "Extension (E14): per-tile kernel codegen collapses the "
        "MapTiles/Filter interpreter chain into one generated NumPy "
        "kernel per partition — expect >=2x lower wall clock on the "
        "map-heavy smoothing chain at byte-identical results and "
        "identical engine counters."
    ),
    "ablation-serve": (
        "Extension (E15): N concurrent replay clients on one shared "
        "substrate vs N isolated per-client engines — expect a higher "
        "plan-cache hit rate (the fleet compiles each distinct query "
        "once, not once per client), strictly more retained-shuffle "
        "reuse (cross-tenant, not just cross-round), and a lower p95 "
        "query latency, at byte-identical per-query results."
    ),
    "ablation-spill": (
        "Extension (E13): a fig4c-style multiply with its working set "
        "several times the memory cap must produce byte-identical "
        "results and shuffle counters to the uncapped run, with all "
        "overflow routed through the disk spill tier; async prefetch "
        "should cut demand-restore stalls versus prefetch-off."
    ),
}


def record(experiment: str, system: str, size: int, wall: float,
           sim: float, shuffle_bytes: int, counters: dict | None = None) -> None:
    """Record one benchmark measurement for the final report."""
    _ROWS.append(
        Row(experiment, system, size, wall, sim, shuffle_bytes / 1e6,
            counters or {})
    )


def run_measured(engine, fn, repeats: int = 5):
    """Run ``fn`` ``repeats`` times; report the best run's deltas.

    Taking the minimum filters out interference from the host machine
    (GC pauses, other processes) — the same reason the paper averages
    four repetitions per data point.
    """
    best = None
    for _ in range(repeats):
        snapshot = engine.metrics.snapshot()
        start = time.perf_counter()
        fn()
        wall = time.perf_counter() - start
        delta = engine.metrics.delta_since(snapshot)
        sim = delta.simulated_time(BENCH_CLUSTER)
        if best is None or sim < best[1]:
            counters = {
                "stages": delta.stages,
                "tasks": delta.tasks,
                "shuffles": delta.shuffles,
                "shuffle_records": delta.shuffle_records,
                "shuffle_bytes": delta.shuffle_bytes,
                "estimated_shuffle_bytes": delta.estimated_shuffle_bytes,
                "cache_hits": delta.cache_hits,
                "cache_misses": delta.cache_misses,
                "cache_evicted_bytes": delta.cache_evicted_bytes,
                "shuffle_reuses": delta.shuffle_reuses,
                "spilled_bytes": delta.spilled_bytes,
                "restored_bytes": delta.restored_bytes,
                "spill_restores": delta.spill_restores,
                "prefetch_hits": delta.prefetch_hits,
                "restore_stall_seconds": delta.restore_stall_seconds,
                # Critical path through the stages: each stage is at least
                # as long as its slowest task, whatever the core count.
                "makespan_seconds": sum(
                    sc.longest_task_seconds for sc in delta.stage_costs
                ),
                "adaptive_decisions": len(delta.adaptive_decisions),
                "adaptive_kinds": sorted(
                    {d.kind for d in delta.adaptive_decisions}
                ),
            }
            best = (wall, sim, delta.shuffle_bytes, counters)
    return best


def plan_report(compiled, session=None) -> dict:
    """Planner-side counters to merge into ``record``'s ``counters``.

    Reports the strategy the cost-based planner chose, its estimates,
    every candidate's predicted time, and (when a session is given) the
    session's parse/plan cache hit counters.
    """
    plan = compiled.plan
    info: dict = {}
    strategy = plan.details.get("strategy")
    if strategy:
        info["strategy"] = strategy
    if plan.estimate is not None:
        info["plan_estimated_shuffle_bytes"] = plan.estimate.shuffle_bytes
        info["plan_estimated_seconds"] = round(plan.estimate.total_seconds, 6)
    if plan.candidates:
        info["candidate_seconds"] = {
            name: round(est.total_seconds, 6)
            for name, est in plan.candidates.items()
        }
    if session is not None:
        info["compile_caches"] = session.compile_stats()
    return info


def pytest_sessionfinish(session, exitstatus):
    if not _ROWS:
        return
    dump_path = os.environ.get("REPRO_BENCH_DUMP")
    if dump_path:
        with open(dump_path, "w") as fh:
            json.dump([asdict(row) for row in _ROWS], fh, indent=1, sort_keys=True)
    by_experiment: dict[str, list[Row]] = defaultdict(list)
    for row in _ROWS:
        by_experiment[row.experiment].append(row)

    print("\n")
    print("#" * 78)
    print("# Paper-shape report (compare against Figure 4 of the paper)")
    print("#" * 78)
    for experiment in sorted(by_experiment):
        rows = by_experiment[experiment]
        systems = sorted({r.system for r in rows})
        sizes = sorted({r.size for r in rows})
        print(f"\n== {experiment} ==")
        header = f"{'size':>8} |" + "".join(
            f" {s:>26} |" for s in systems
        )
        print(header)
        print("-" * len(header))
        cell = {(r.system, r.size): r for r in rows}
        for size in sizes:
            line = f"{size:>8} |"
            for system in systems:
                row = cell.get((system, size))
                if row is None:
                    line += f" {'-':>26} |"
                else:
                    line += (
                        f" {row.wall_seconds:>7.3f}s"
                        f" sim {row.sim_seconds:>6.3f}s"
                        f" {row.shuffle_mb:>6.1f}MB |"
                    )
            print(line)
        _print_ratios(rows, systems, sizes)
        _print_cache_counters(rows)
        _print_planner_counters(rows)
        _print_adaptive_counters(rows)
        expectation = PAPER_EXPECTATIONS.get(experiment)
        if expectation:
            print(f"  paper: {expectation}")


def _print_ratios(rows, systems, sizes):
    if len(systems) < 2:
        return
    cell = {(r.system, r.size): r for r in rows}
    baseline = None
    for candidate in systems:
        if "mllib" in candidate.lower():
            baseline = candidate
            break
    if baseline is None:
        baseline = systems[0]
    others = [s for s in systems if s != baseline]
    for other in others:
        ratios = []
        for size in sizes:
            base_row, other_row = cell.get((baseline, size)), cell.get((other, size))
            if base_row and other_row and other_row.sim_seconds > 0:
                ratios.append(base_row.sim_seconds / other_row.sim_seconds)
        if ratios:
            print(
                f"  simulated speedup of {other} over {baseline}: "
                f"min {min(ratios):.2f}x, max {max(ratios):.2f}x"
            )


def _print_cache_counters(rows):
    """Block-manager activity for one experiment, when there was any."""
    hits = sum(r.counters.get("cache_hits", 0) for r in rows)
    misses = sum(r.counters.get("cache_misses", 0) for r in rows)
    evicted = sum(r.counters.get("cache_evicted_bytes", 0) for r in rows)
    reuses = sum(r.counters.get("shuffle_reuses", 0) for r in rows)
    if hits or misses or evicted or reuses:
        print(
            f"  block manager: {hits} cache hits, {misses} misses, "
            f"{evicted / 1e6:.1f}MB evicted, {reuses} shuffle reuses"
        )
    spilled = sum(r.counters.get("spilled_bytes", 0) for r in rows)
    restored = sum(r.counters.get("restored_bytes", 0) for r in rows)
    if spilled or restored:
        prefetch = sum(r.counters.get("prefetch_hits", 0) for r in rows)
        stall = sum(
            r.counters.get("restore_stall_seconds", 0.0) for r in rows
        )
        print(
            f"  spill tier: {spilled / 1e6:.1f}MB spilled, "
            f"{restored / 1e6:.1f}MB restored, {prefetch} prefetch hits, "
            f"{stall:.3f}s restore stall"
        )


def _print_planner_counters(rows):
    """Cost-model activity for one experiment, when there was any."""
    strategies = sorted({
        f"{r.system}={r.counters['strategy']}"
        for r in rows if r.counters.get("strategy")
    })
    if strategies:
        print(f"  planner strategy: {', '.join(strategies)}")
    estimated = sum(r.counters.get("estimated_shuffle_bytes", 0) for r in rows)
    if estimated:
        measured = sum(
            r.counters.get("shuffle_bytes", 0)
            for r in rows if r.counters.get("estimated_shuffle_bytes")
        )
        ratio = estimated / measured if measured else float("inf")
        print(
            f"  cost model: estimated {estimated / 1e6:.1f}MB shuffle vs "
            f"measured {measured / 1e6:.1f}MB (x{ratio:.2f})"
        )
    # Per-row audit: estimates that were off by more than 2x in either
    # direction mark where the model's statistics failed (and where the
    # adaptive layer has room to correct at runtime).
    for row in rows:
        est = row.counters.get("estimated_shuffle_bytes", 0)
        act = row.counters.get("shuffle_bytes", 0)
        if est and act:
            ratio = est / act
            if ratio > 2.0 or ratio < 0.5:
                print(
                    f"  !! cost model off {ratio:.2f}x for "
                    f"{row.system} @ {row.size}: estimated "
                    f"{est / 1e6:.1f}MB, measured {act / 1e6:.1f}MB"
                )
    hits = misses = 0
    for row in rows:
        stats = row.counters.get("compile_caches", {}).get("plan_cache")
        if stats:
            hits = max(hits, stats["hits"])
            misses = max(misses, stats["misses"])
    if hits or misses:
        rate = hits / (hits + misses) if hits + misses else 0.0
        print(
            f"  plan cache: {hits} hits / {misses} misses "
            f"({100 * rate:.0f}% hit rate)"
        )


def _print_adaptive_counters(rows):
    """Adaptive (AQE) activity for one experiment, when there was any."""
    active = [r for r in rows if r.counters.get("adaptive_decisions")]
    if not active:
        return
    total = sum(r.counters["adaptive_decisions"] for r in active)
    kinds = sorted({k for r in active for k in r.counters.get("adaptive_kinds", [])})
    print(f"  adaptive: {total} decisions ({', '.join(kinds)})")
    for row in active:
        makespan = row.counters.get("makespan_seconds")
        if makespan:
            print(
                f"    {row.system} @ {row.size}: "
                f"{row.counters['adaptive_decisions']} decisions, "
                f"critical path {makespan:.3f}s"
            )


@pytest.fixture()
def measure():
    """Fixture exposing (record, run_measured) to benchmark modules."""
    return record, run_measured
