"""Experiment E2 — Figure 4.B: matrix multiplication, three ways.

The paper's headline result.  Square random matrices are multiplied by:

* **MLlib BlockMatrix** — ``simulateMultiply`` replication + cogroup +
  per-pair products + reduceByKey (pure-JVM Breeze kernels);
* **SAC (join + group-by)** — the Section 5.3 translation: tile join on
  the shared index, one partial product tile per (i, k, j) triple pushed
  through ``reduceByKey(⊗′)``;
* **SAC GBJ** — the Section 5.4 group-by-join: SUMMA-style row/column
  band replication, contraction accumulated reducer-side.

Paper shape: SAC join+group-by up to ~3× slower than MLlib; SAC GBJ up
to ~6× faster than MLlib.
"""

import pytest

from conftest import plan_report
from repro import PlannerOptions, SacSession
from repro.core import ops
from repro.engine import BENCH_CLUSTER, PAPER_CLUSTER, EngineContext
from repro.mllib import BlockMatrix
from repro.planner import RULE_GROUP_BY_JOIN, RULE_TILED_REDUCE
from repro.workloads import dense_uniform, zipf_block_rows

TILE = 90
SIZES = [180, 360, 540, 720]
ROUNDS = 2
SKEW_N = 1080
SKEW_ALPHA = 2.5

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def _arrays(n):
    return dense_uniform(n, n, seed=n), dense_uniform(n, n, seed=n + 1)


def _sac_setup(n, group_by_join):
    a, b = _arrays(n)
    # The cost-based arm decides against the same cluster spec the
    # harness simulates, so its choices can be validated by measurement.
    cluster = BENCH_CLUSTER if group_by_join is None else PAPER_CLUSTER
    session = SacSession(
        cluster=cluster, tile_size=TILE,
        options=PlannerOptions(group_by_join=group_by_join),
    )
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()
    compiled = session.compile(MULTIPLY, A=A, B=B, n=n, m=n)
    if group_by_join is not None:
        expected = RULE_GROUP_BY_JOIN if group_by_join else RULE_TILED_REDUCE
        assert compiled.plan.rule == expected
    return session, A, B, compiled


@pytest.mark.parametrize("n", SIZES)
def test_multiplication_sac_gbj(benchmark, measure, n):
    record, run_measured = measure
    session, A, B, compiled = _sac_setup(n, group_by_join=True)

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    counters.update(plan_report(compiled, session))
    record("fig4b-multiplication", "SAC GBJ (5.4)", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_multiplication_sac_join_groupby(benchmark, measure, n):
    record, run_measured = measure
    session, A, B, compiled = _sac_setup(n, group_by_join=False)

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    counters.update(plan_report(compiled, session))
    record("fig4b-multiplication", "SAC join+group-by (5.3)", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_multiplication_sac_costbased(benchmark, measure, n):
    """The cost-based default: the planner picks the strategy itself."""
    record, run_measured = measure
    session, A, B, compiled = _sac_setup(n, group_by_join=None)

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    counters.update(plan_report(compiled, session))
    record("fig4b-multiplication", "SAC cost-based", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_multiplication_mllib(benchmark, measure, n):
    record, run_measured = measure
    a, b = _arrays(n)
    engine = EngineContext()
    A = BlockMatrix.from_numpy(engine, a, TILE).cache()
    B = BlockMatrix.from_numpy(engine, b, TILE).cache()
    A.blocks.count()
    B.blocks.count()

    def run():
        A.multiply(B).blocks.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(engine, run)
    record("fig4b-multiplication", "MLlib BlockMatrix", n, wall, sim, shuffled, counters)


def _skewed_setup(adaptive):
    """Zipfian tile skew: block row 0 of B (and block column 0 of A) is
    fully dense, so join key k=0 carries most of the work — the Section
    5.3 hot-key pathology the adaptive skew splitter attacks."""
    skewed = zipf_block_rows(SKEW_N, SKEW_N, TILE, alpha=SKEW_ALPHA, seed=7)
    a, b = skewed.T.copy(), skewed
    session = SacSession(
        cluster=PAPER_CLUSTER, tile_size=TILE,
        options=PlannerOptions(group_by_join=False),
        runner="serial", adaptive=adaptive,
    )
    A = session.sparse_tiled(a)
    B = session.sparse_tiled(b)
    compiled = session.compile(MULTIPLY, A=A, B=B, n=SKEW_N, m=SKEW_N)
    return session, A, B, compiled


@pytest.mark.parametrize("adaptive", [False, True], ids=["static", "adaptive"])
def test_multiplication_skewed(benchmark, measure, adaptive):
    """E10: skewed multiply with and without adaptive skew splitting."""
    record, run_measured = measure
    session, A, B, compiled = _skewed_setup(adaptive)

    def run():
        session.run(MULTIPLY, A=A, B=B, n=SKEW_N, m=SKEW_N).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    counters.update(plan_report(compiled, session))
    label = "SAC 5.3 adaptive" if adaptive else "SAC 5.3 static"
    record("fig4b-multiplication-skewed", label, SKEW_N, wall, sim, shuffled, counters)
    if adaptive:
        assert counters["adaptive_decisions"] > 0
        assert "skew-split" in counters["adaptive_kinds"]


def test_skewed_adaptive_improves_makespan(measure):
    """The acceptance bar: splitting the hot partition cuts the simulated
    critical path >=2x while moving exactly the same shuffle bytes."""
    _, run_measured = measure
    makespans, volumes, outputs = {}, {}, {}
    for adaptive in (False, True):
        session, A, B, _ = _skewed_setup(adaptive)
        with session:
            out = {}

            def run():
                out["array"] = session.run(
                    MULTIPLY, A=A, B=B, n=SKEW_N, m=SKEW_N
                ).to_numpy()

            _, _, _, counters = run_measured(session.engine, run, repeats=1)
            makespans[adaptive] = counters["makespan_seconds"]
            volumes[adaptive] = counters["shuffle_bytes"]
            outputs[adaptive] = out["array"]
    import numpy as np

    np.testing.assert_allclose(outputs[True], outputs[False], rtol=1e-12)
    assert volumes[True] == volumes[False]
    assert makespans[False] / makespans[True] >= 2.0, (
        f"adaptive makespan {makespans[True]:.3f}s vs "
        f"static {makespans[False]:.3f}s: improvement under 2x"
    )


def test_multiplication_results_agree():
    """Sanity: the three plans compute the same product (not timed)."""
    import numpy as np

    n = SIZES[0]
    a, b = _arrays(n)
    gbj_session, A1, B1, _ = _sac_setup(n, True)
    jg_session, A2, B2, _ = _sac_setup(n, False)
    engine = EngineContext()
    expected = a @ b
    np.testing.assert_allclose(
        gbj_session.run(MULTIPLY, A=A1, B=B1, n=n, m=n).to_numpy(), expected
    )
    np.testing.assert_allclose(
        jg_session.run(MULTIPLY, A=A2, B=B2, n=n, m=n).to_numpy(), expected
    )
    np.testing.assert_allclose(
        BlockMatrix.from_numpy(engine, a, TILE)
        .multiply(BlockMatrix.from_numpy(engine, b, TILE))
        .to_numpy(),
        expected,
    )
