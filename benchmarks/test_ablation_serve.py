"""Ablation E15 — shared-substrate serving vs isolated per-client engines.

The multi-tenant front door's reason to exist: N concurrent clients
replaying the same dashboard-style workload (tiled multiply, scaled
add, row sums over shared hosted matrices) either share one
:class:`~repro.engine.EngineSubstrate` — one runner pool, one block
store, one plan-cache group, one retained-shuffle store — or each get
the pre-refactor deal, a fully private engine per client.

Shared must win three ways at byte-identical per-query results:

* **plan-cache hit rate** — only the first execution of each distinct
  query in the whole fleet compiles; isolated arms compile per client;
* **shuffle reuse** — retained shuffle outputs answer later *tenants'*
  equal shuffles, not just later rounds of the same client;
* **p95 latency** — the compile and shuffle savings land in the tail.

The identity and counter invariants are exact and asserted on every
attempt; the latency bar re-measures up to ``ATTEMPTS`` times (both
arms fully re-run) because a loaded host can compress any single
measurement.
"""

import time

from repro.engine import BENCH_CLUSTER
from repro.serve import QueryService, demo_workload, replay

TENANTS = 4
ROUNDS = 3
N = 24
TILE = 8
ATTEMPTS = 3

#: 3 distinct queries per tenant per round (see ``demo_workload``).
QUERIES_PER_TENANT = 3


def _arm_metrics(report, tenants, reuses, wall):
    hits = sum(s["plan_cache_hits"] for s in tenants.values())
    misses = sum(s["plan_cache_misses"] for s in tenants.values())
    return {
        "wall_seconds": wall,
        "plan_cache_hits": hits,
        "plan_cache_misses": misses,
        "plan_cache_hit_rate": hits / max(hits + misses, 1),
        "shuffle_reuses": reuses,
        "latency_p50_ms": report.latency_percentile(0.50) * 1e3,
        "latency_p95_ms": report.latency_percentile(0.95) * 1e3,
        "errors": len(report.errors),
    }


def _run_shared():
    service = QueryService(cluster=BENCH_CLUSTER, tile_size=TILE)
    workloads = demo_workload(service, num_tenants=TENANTS, size=N)
    start = time.perf_counter()
    report = replay(service.submit, workloads, rounds=ROUNDS)
    wall = time.perf_counter() - start
    stats = service.metrics_report()
    metrics = _arm_metrics(
        report, stats["tenants"],
        service.substrate.metrics.total.shuffle_reuses, wall,
    )
    sim = service.substrate.metrics.total.simulated_time(BENCH_CLUSTER)
    shuffle_bytes = service.substrate.metrics.total.shuffle_bytes
    digests = dict(report.digests)
    service.close()
    return metrics, sim, shuffle_bytes, digests


def _run_isolated():
    """The pre-substrate world: one private engine per client, same
    workload, same data (hosted per client from the same seed)."""
    services: dict[str, QueryService] = {}
    workloads = {}
    for index in range(TENANTS):
        name = f"tenant-{index + 1}"
        service = QueryService(cluster=BENCH_CLUSTER, tile_size=TILE)
        workloads[name] = demo_workload(
            service, num_tenants=1, size=N
        )["tenant-1"]
        services[name] = service

    def submit(tenant, query, env=None, include_values=False):
        return services[tenant].submit(tenant, query, env, include_values)

    start = time.perf_counter()
    report = replay(submit, workloads, rounds=ROUNDS)
    wall = time.perf_counter() - start
    tenants = {}
    reuses = 0
    sim = 0.0
    shuffle_bytes = 0
    for name, service in services.items():
        tenants[name] = service.metrics_report()["tenants"][name]
        total = service.substrate.metrics.total
        reuses += total.shuffle_reuses
        sim += total.simulated_time(BENCH_CLUSTER)
        shuffle_bytes += total.shuffle_bytes
        service.close()
    metrics = _arm_metrics(report, tenants, reuses, wall)
    return metrics, sim, shuffle_bytes, dict(report.digests)


def _measure_once():
    shared, shared_sim, shared_bytes, shared_digests = _run_shared()
    isolated, isolated_sim, isolated_bytes, isolated_digests = (
        _run_isolated()
    )

    # Exact invariants, every attempt:
    assert shared["errors"] == 0 and isolated["errors"] == 0
    # Byte-identical answers, tenant for tenant, query for query.
    assert shared_digests == isolated_digests
    # The whole fleet compiles each distinct query at most a couple of
    # times (a racing first round can double-compile); isolated clients
    # compile it once *each*.
    assert isolated["plan_cache_misses"] == TENANTS * QUERIES_PER_TENANT
    assert shared["plan_cache_misses"] < isolated["plan_cache_misses"]
    assert shared["plan_cache_hit_rate"] > isolated["plan_cache_hit_rate"]
    # Cross-tenant reuse: retained shuffles answer other tenants' first
    # rounds too, so the shared store strictly beats per-client stores.
    assert shared["shuffle_reuses"] > isolated["shuffle_reuses"]

    return (shared, shared_sim, shared_bytes), (
        isolated, isolated_sim, isolated_bytes,
    )


def test_shared_substrate_beats_isolated_sessions(measure):
    """E15: higher hit rate, more reuse, lower p95, identical bytes."""
    record, _run_measured = measure
    shared_pack = isolated_pack = None
    for _attempt in range(ATTEMPTS):
        shared_pack, isolated_pack = _measure_once()
        if (
            shared_pack[0]["latency_p95_ms"]
            < isolated_pack[0]["latency_p95_ms"]
        ):
            break

    for system, (metrics, sim, shuffle_bytes) in (
        ("shared substrate", shared_pack),
        ("isolated sessions", isolated_pack),
    ):
        record(
            "ablation-serve", system, N, metrics["wall_seconds"], sim,
            shuffle_bytes, metrics,
        )
    shared, isolated = shared_pack[0], isolated_pack[0]
    print(
        f"\nserve: shared hit rate {shared['plan_cache_hit_rate']:.2f} "
        f"({shared['shuffle_reuses']} reuses, "
        f"p95 {shared['latency_p95_ms']:.2f}ms) vs isolated "
        f"{isolated['plan_cache_hit_rate']:.2f} "
        f"({isolated['shuffle_reuses']} reuses, "
        f"p95 {isolated['latency_p95_ms']:.2f}ms)"
    )
    assert shared["latency_p95_ms"] < isolated["latency_p95_ms"], (
        f"shared p95 {shared['latency_p95_ms']:.2f}ms not below isolated "
        f"{isolated['latency_p95_ms']:.2f}ms"
    )
