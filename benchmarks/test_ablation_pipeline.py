"""Ablation E12 — task-level pipelining vs stage barriers (Fig 4.C chain).

The staged scheduler runs one stage at a time: every task in a stage
must finish before any task of the next stage starts, and the two
shuffle sides of a cogroup (the paper's join/GBJ plans) are drained one
parent after the other.  The pipelined scheduler compiles the same job
to a (stage, partition) task graph and fires each task as soon as the
outputs it actually reads have landed, so sibling branches — the two
map sides of every join, the independent shuffles of the factorization
chain — overlap.

This experiment makes the difference measurable on wall-clock by
injecting a deterministic straggler: partition 0 of every shuffle-map
stage sleeps far past the (also injected) median task time, mimicking
the slow-node tail the paper's cluster runs absorb.  Both arms run the
same one-iteration matrix-factorization step (Fig 4.C) on 8 worker
threads and record byte-identical shuffle/stage counters; only the
schedule differs.  The report prints per-stage task-time histograms,
the straggler ratio, and the critical-path length so the makespan win
is attributable to overlapped stragglers rather than measurement noise.
"""

import time

import pytest

from repro import SacSession
from repro.engine import PipelinedTaskRunner, ThreadedTaskRunner
from repro.linalg import sac_factorization_step
from repro.workloads import factor_matrix, rating_matrix

TILE = 25
N = 100
RANK = 25
ROUNDS = 3
#: Injected per-task floor — the "median" task time.
BASE_DELAY = 0.01
#: Extra sleep for partition 0 of every shuffle-map stage (~25x the
#: measured median task — a hard straggler).
STRAGGLER_EXTRA = 0.25

ARMS = {
    False: "stage barriers",
    True: "pipelined tasks",
}


def _session(pipeline):
    runner = (
        PipelinedTaskRunner(max_workers=8)
        if pipeline
        else ThreadedTaskRunner(max_workers=8)
    )
    session = SacSession(
        tile_size=TILE, runner=runner, adaptive=False, pipeline=pipeline
    )
    r = session.tiled(rating_matrix(N, density=0.10, seed=N)).materialize()
    p = session.tiled(factor_matrix(N, RANK, seed=N + 1)).materialize()
    q = session.tiled(factor_matrix(N, RANK, seed=N + 2)).materialize()
    # Inject after materializing the inputs so setup is not delayed:
    # a uniform floor on every task kind, plus the map straggler.
    for kind in ("map", "reduce", "combine", "merge", "drain", "result"):
        session.engine.runner.inject_delay(kind, None, BASE_DELAY)
    session.engine.runner.inject_delay("map", 0, STRAGGLER_EXTRA)
    return session, r, p, q


def _run_arm(pipeline):
    """Best-of-ROUNDS wall clock plus counters for one scheduler arm."""
    session, r, p, q = _session(pipeline)
    try:
        best_wall = None
        best_counters = None
        for _ in range(ROUNDS):
            snapshot = session.engine.metrics.snapshot()
            start = time.perf_counter()
            sac_factorization_step(session, r, p, q)
            wall = time.perf_counter() - start
            delta = session.engine.metrics.delta_since(snapshot)
            if best_wall is None or wall < best_wall:
                best_wall = wall
                histograms = delta.stage_histograms()
                best_counters = {
                    "stages": delta.stages,
                    "tasks": delta.tasks,
                    "shuffles": delta.shuffles,
                    "shuffle_records": delta.shuffle_records,
                    "shuffle_bytes": delta.shuffle_bytes,
                    "task_retries": delta.task_retries,
                    "critical_path_seconds": round(
                        delta.critical_path_seconds(), 3
                    ),
                    "straggler_ratio": round(delta.straggler_ratio(), 2),
                    "max_task_seconds": round(
                        max(h["max_seconds"] for h in histograms), 3
                    ),
                    "p50_task_seconds": round(
                        max(h["p50_seconds"] for h in histograms), 3
                    ),
                }
                sim = delta.simulated_time(session.engine.cluster)
                shuffle_bytes = delta.shuffle_bytes
        return best_wall, sim, shuffle_bytes, best_counters
    finally:
        session.engine.close()


@pytest.mark.parametrize("pipeline", [False, True], ids=ARMS.get)
def test_factorization_with_straggler(measure, pipeline):
    """E12: one Fig 4.C step under an injected straggler, both schedulers."""
    record, _run_measured = measure
    wall, sim, shuffled, counters = _run_arm(pipeline)
    record("ablation-pipeline", ARMS[pipeline], N, wall, sim, shuffled, counters)


def test_pipelining_cuts_straggler_makespan(measure):
    """Pipelining must cut measured makespan >=1.5x at identical counters."""
    record, _run_measured = measure
    staged_wall, sim, shuffled, staged = _run_arm(False)
    pipe_wall, _sim, _shuffled, pipelined = _run_arm(True)
    record(
        "ablation-pipeline", "stage barriers (A/B)", N,
        staged_wall, sim, shuffled, staged,
    )
    record(
        "ablation-pipeline", "pipelined tasks (A/B)", N,
        pipe_wall, _sim, _shuffled, pipelined,
    )
    # Same work, byte for byte: only the schedule (and hence the
    # measured timings) may differ.
    exact = ("stages", "tasks", "shuffles", "shuffle_records",
             "shuffle_bytes", "task_retries")
    assert {k: staged[k] for k in exact} == {k: pipelined[k] for k in exact}
    # The injected straggler is visible in the histograms of both arms.
    assert staged["straggler_ratio"] >= 3.0
    assert pipelined["straggler_ratio"] >= 3.0
    assert staged["max_task_seconds"] >= BASE_DELAY + STRAGGLER_EXTRA
    # ... and pipelining hides it: >=1.5x faster end to end.
    speedup = staged_wall / pipe_wall
    print(
        f"\nstraggler makespan: staged {staged_wall:.3f}s, "
        f"pipelined {pipe_wall:.3f}s ({speedup:.2f}x)"
    )
    assert speedup >= 1.5, (
        f"pipelining speedup {speedup:.2f}x under injected straggler "
        f"(staged {staged_wall:.3f}s vs pipelined {pipe_wall:.3f}s)"
    )
