"""Ablation E4 — coordinate format vs tiled blocks (Section 4 vs 5).

The paper (and its DIABLO predecessor) motivates block arrays by the
cost of the coordinate format: every element is a keyed record, so joins
and group-bys shuffle every element individually, while tiled arrays
move whole dense blocks with indices computed, not stored.  This ablation
runs the same multiplication comprehension with ``force_coordinate``
(Rules 13/14 over element pairs) against the tiled GBJ plan.

Sizes are small: the coordinate plan is quadratically heavier by design.
"""

import pytest

from repro import PlannerOptions, SacSession
from repro.workloads import dense_uniform

TILE = 16
SIZES = [16, 32, 48]
ROUNDS = 2

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)


def _setup(n, force_coordinate):
    a = dense_uniform(n, n, seed=n)
    b = dense_uniform(n, n, seed=n + 1)
    session = SacSession(
        tile_size=TILE,
        options=PlannerOptions(force_coordinate=force_coordinate),
    )
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()
    return session, A, B


@pytest.mark.parametrize("n", SIZES)
def test_multiply_tiled(benchmark, measure, n):
    record, run_measured = measure
    session, A, B = _setup(n, force_coordinate=False)

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-coordinate", "tiled (block arrays)", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_multiply_coordinate(benchmark, measure, n):
    record, run_measured = measure
    session, A, B = _setup(n, force_coordinate=True)

    def run():
        session.run(MULTIPLY, A=A, B=B, n=n, m=n).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-coordinate", "coordinate (Rules 13/14)", n, wall, sim, shuffled, counters)


def test_coordinate_and_tiled_agree():
    import numpy as np

    n = SIZES[0]
    s1, A1, B1 = _setup(n, False)
    s2, A2, B2 = _setup(n, True)
    r1 = s1.run(MULTIPLY, A=A1, B=B1, n=n, m=n).to_numpy()
    r2 = s2.run(MULTIPLY, A=A2, B=B2, n=n, m=n).to_numpy()
    np.testing.assert_allclose(r1, r2, rtol=1e-10)
