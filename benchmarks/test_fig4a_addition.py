"""Experiment E1 — Figure 4.A: matrix addition, SAC vs MLlib.

The paper adds pairs of square matrices of uniform random values (tiled,
1000×1000 tiles, up to 40000² elements) and finds SAC slightly faster
than MLlib.  SAC compiles Query (8) through the preserve-tiling rule
(one tile join, no re-tiling); the MLlib baseline cogroups blocks and
pays the Breeze conversion copy per block.
"""

import pytest

from repro import SacSession
from repro.core import ops
from repro.mllib import BlockMatrix
from repro.engine import EngineContext
from repro.workloads import dense_uniform

TILE = 80
SIZES = [160, 320, 480, 640, 800]
ROUNDS = 3


def _arrays(n):
    return dense_uniform(n, n, seed=n), dense_uniform(n, n, seed=n + 1)


@pytest.mark.parametrize("n", SIZES)
def test_addition_sac(benchmark, measure, n):
    record, run_measured = measure
    a, b = _arrays(n)
    session = SacSession(tile_size=TILE)
    A = session.tiled(a).materialize()
    B = session.tiled(b).materialize()

    def run():
        ops.add(session, A, B).tiles.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("fig4a-addition", "SAC (preserve-tiling)", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_addition_mllib(benchmark, measure, n):
    record, run_measured = measure
    a, b = _arrays(n)
    engine = EngineContext()
    A = BlockMatrix.from_numpy(engine, a, TILE).cache()
    B = BlockMatrix.from_numpy(engine, b, TILE).cache()
    A.blocks.count()
    B.blocks.count()

    def run():
        A.add(B).blocks.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(engine, run)
    record("fig4a-addition", "MLlib BlockMatrix", n, wall, sim, shuffled, counters)


def test_addition_results_agree():
    """Sanity: both systems compute the same sum (not timed)."""
    import numpy as np

    a, b = _arrays(SIZES[0])
    session = SacSession(tile_size=TILE)
    engine = EngineContext()
    sac = ops.add(session, session.tiled(a), session.tiled(b)).to_numpy()
    mllib = (
        BlockMatrix.from_numpy(engine, a, TILE)
        .add(BlockMatrix.from_numpy(engine, b, TILE))
        .to_numpy()
    )
    np.testing.assert_allclose(sac, mllib)
    np.testing.assert_allclose(sac, a + b)
