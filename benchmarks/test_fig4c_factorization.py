"""Experiment E3 — Figure 4.C: one matrix-factorization iteration.

The paper runs one gradient-descent iteration of

    E ← R − P·Qᵀ;  P ← P + γ(2E·Q − λP);  Q ← Q + γ(2Eᵀ·P − λQ)

on a square 10 %-dense rating matrix (γ = 0.002, λ = 0.02, rank 1000 at
paper scale) and reports SAC (with GBJ) up to 3× faster than MLlib.  The
SAC implementation fuses the transposes into the multiply comprehensions
(``multiply_nt``/``multiply_tn``); the baseline materializes ``Qᵀ`` and
``Eᵀ`` and maps over blocks to scale, as an MLlib user must.
"""

import pytest

from repro import SacSession
from repro.engine import EngineContext
from repro.linalg import mllib_factorization_step, sac_factorization_step
from repro.mllib import BlockMatrix
from repro.workloads import factor_matrix, rating_matrix

TILE = 50
RANK = 40
SIZES = [100, 200, 300, 400]
ROUNDS = 2


def _inputs(n):
    return (
        rating_matrix(n, density=0.10, seed=n),
        factor_matrix(n, RANK, seed=n + 1),
        factor_matrix(n, RANK, seed=n + 2),
    )


@pytest.mark.parametrize("n", SIZES)
def test_factorization_sac(benchmark, measure, n):
    record, run_measured = measure
    r_np, p_np, q_np = _inputs(n)
    session = SacSession(tile_size=TILE)
    r = session.tiled(r_np).materialize()
    p = session.tiled(p_np).materialize()
    q = session.tiled(q_np).materialize()

    def run():
        sac_factorization_step(session, r, p, q)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    # Iterative workload: every round after the first compiles each step
    # comprehension from the session's plan cache.
    counters["compile_caches"] = session.compile_stats()
    record("fig4c-factorization", "SAC (GBJ)", n, wall, sim, shuffled, counters)


@pytest.mark.parametrize("n", SIZES)
def test_factorization_mllib(benchmark, measure, n):
    record, run_measured = measure
    r_np, p_np, q_np = _inputs(n)
    engine = EngineContext()
    r = BlockMatrix.from_numpy(engine, r_np, TILE).cache()
    p = BlockMatrix.from_numpy(engine, p_np, TILE).cache()
    q = BlockMatrix.from_numpy(engine, q_np, TILE).cache()
    for m in (r, p, q):
        m.blocks.count()

    def run():
        p_new, q_new, _ = mllib_factorization_step(r, p, q)
        p_new.blocks.count()
        q_new.blocks.count()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(engine, run)
    record("fig4c-factorization", "MLlib BlockMatrix", n, wall, sim, shuffled, counters)


def test_factorization_results_agree():
    """Sanity: SAC and the baseline take the same gradient step."""
    import numpy as np

    n = SIZES[0]
    r_np, p_np, q_np = _inputs(n)
    session = SacSession(tile_size=TILE)
    state = sac_factorization_step(
        session, session.tiled(r_np), session.tiled(p_np), session.tiled(q_np)
    )
    engine = EngineContext()
    p_m, q_m, _ = mllib_factorization_step(
        BlockMatrix.from_numpy(engine, r_np, TILE),
        BlockMatrix.from_numpy(engine, p_np, TILE),
        BlockMatrix.from_numpy(engine, q_np, TILE),
    )
    np.testing.assert_allclose(state.p.to_numpy(), p_m.to_numpy(), rtol=1e-10)
    np.testing.assert_allclose(state.q.to_numpy(), q_m.to_numpy(), rtol=1e-10)
