"""Ablation E11 — common-subplan (shuffle) reuse on iterative workloads.

Iterative algorithms (gradient descent, power iteration) re-submit the
same comprehension every step over the *same* operands.  Without reuse
every step replicates and shuffles the operand tiles from scratch; with
``PlannerOptions(cse=True)`` the planner fingerprints the plan, the
session hands each step the same lowered Plan, and the engine's
BlockManager serves the retained replicate map outputs — so only the
first step pays the shuffle.

Both arms run the identical ``STEPS``-iteration loop and report the
cumulative measured shuffle volume; the CSE arm's counters also show
the ``shuffle_reuses`` the BlockManager answered.
"""

import pytest

from repro import PlannerOptions, SacSession
from repro.engine import BENCH_CLUSTER
from repro.workloads import dense_uniform

TILE = 90
ROUNDS = 2
STEPS = 4
SIZES = [360, 540]

MULTIPLY = (
    "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
    " kk == k, let v = a*b, group by (i,j) ]"
)

ARMS = {"cse off": False, "cse on": True}


def _setup(n, cse):
    session = SacSession(
        cluster=BENCH_CLUSTER, tile_size=TILE,
        options=PlannerOptions(group_by_join=True, cse=cse),
    )
    env = {
        "A": session.tiled(dense_uniform(n, n, seed=5)).materialize(),
        "B": session.tiled(dense_uniform(n, n, seed=6)).materialize(),
        "n": n, "m": n,
    }
    return session, env


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("arm", sorted(ARMS))
def test_repeated_multiply_steps(benchmark, measure, n, arm):
    record, run_measured = measure
    session, env = _setup(n, ARMS[arm])

    def run():
        for _ in range(STEPS):
            session.run(MULTIPLY, env).materialize()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    wall, sim, shuffled, counters = run_measured(session.engine, run)
    record("ablation-cse", arm, n, wall, sim, shuffled, counters)
