"""Ablation E14 — fused per-tile kernel codegen on a map-heavy pipeline.

An iterative elementwise smoothing-style chain (``x' = 0.5x + 0.1x^2``,
re-run for ``STEPS`` steps) over deliberately tiny tiles: with many
tiles per partition, the interpreter chain pays its per-tile Python
overhead — expression-tree walking, coordinate expansion, per-hop
record plumbing, clip — thousands of times per step, while the fused
arm runs one generated NumPy kernel per partition.  Both arms must
produce byte-identical result arrays and identical engine counters
(fusion only collapses Python hops; it moves no data), and the fused
arm must be at least 2x faster on wall clock.

The two arms are measured *interleaved* (off, on, off, on, ...) taking
each arm's best round, so host-level interference (GC, other
processes, CPU frequency drift) lands on both arms instead of biasing
whichever ran second.  The wall-clock bar re-measures up to
``ATTEMPTS`` times before failing: the identity invariants are exact
and checked every attempt, but a loaded host can compress the timing
gap in any single measurement.
"""

import gc
import time

import pytest

from repro import PlannerOptions, SacSession
from repro.engine import BENCH_CLUSTER
from repro.workloads import dense_uniform

#: Tiny tiles on a mid-size matrix: 80x80 = 6400 tiles per step, the
#: regime where per-tile interpreter overhead dominates the ufunc work.
TILE = 3
N = 240
PARTS = 2
STEPS = 4
ROUNDS = 8
ATTEMPTS = 3

#: A contraction map, so iterating it keeps values bounded (no drift
#: into overflow, which would change ufunc timing mid-benchmark).
SMOOTH = "tiled(n,m)[ ((i,j),0.5*v+0.1*v*v) | ((i,j),v) <- X ]"

ARMS = {"fusion off": False, "fusion on": True}

ENGINE_KEYS = ("stages", "tasks", "shuffles", "shuffle_records",
               "shuffle_bytes")


def _make_arm(fusion):
    session = SacSession(
        cluster=BENCH_CLUSTER, tile_size=TILE,
        options=PlannerOptions(fusion=fusion), num_partitions=PARTS,
    )
    x0 = session.tiled(dense_uniform(N, N, seed=14)).materialize()
    return session, x0


def _one_round(session, x0):
    start = time.perf_counter()
    x = x0
    for _ in range(STEPS):
        x = session.run(SMOOTH, X=x, n=N, m=N).materialize()
    return time.perf_counter() - start, x


def _counters(session):
    total = session.engine.metrics.total
    return {
        "stages": total.stages,
        "tasks": total.tasks,
        "shuffles": total.shuffles,
        "shuffle_records": total.shuffle_records,
        "shuffle_bytes": total.shuffle_bytes,
        "kernel_cache_hits": total.kernel_cache_hits,
        "kernel_cache_misses": total.kernel_cache_misses,
    }


def _measure():
    """One interleaved measurement; returns per-arm best wall, results,
    counters, and simulated seconds.  Asserts the exact invariants."""
    arms = {fusion: _make_arm(fusion) for fusion in (False, True)}
    best = {False: None, True: None}
    results = {}
    gc.collect()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            for fusion in (False, True):
                session, x0 = arms[fusion]
                wall, x = _one_round(session, x0)
                if best[fusion] is None or wall < best[fusion]:
                    best[fusion] = wall
                results[fusion] = x.to_numpy()
    finally:
        gc.enable()

    counters = {f: _counters(arms[f][0]) for f in (False, True)}
    sims = {
        f: arms[f][0].engine.metrics.total.simulated_time(BENCH_CLUSTER)
        for f in (False, True)
    }

    # Fusion collapses Python hops; the data movement must not change.
    assert results[True].tobytes() == results[False].tobytes()
    assert {k: counters[False][k] for k in ENGINE_KEYS} == (
        {k: counters[True][k] for k in ENGINE_KEYS}
    )
    # The chain compiles once per step; past the first lowering every
    # step is a kernel-cache hit, and the interpreter arm never
    # touches the cache.
    assert counters[True]["kernel_cache_misses"] <= 1
    assert counters[True]["kernel_cache_hits"] >= 1
    assert counters[False]["kernel_cache_misses"] == 0
    assert counters[False]["kernel_cache_hits"] == 0
    return best, counters, sims


def test_fused_smoothing_2x_at_identical_counters(measure):
    """E14: >=2x wall clock, byte-identical bytes, identical counters."""
    record, _run_measured = measure
    best = counters = sims = speedup = None
    for _attempt in range(ATTEMPTS):
        best, counters, sims = _measure()
        speedup = best[False] / best[True]
        if speedup >= 2.0:
            break

    for name, fusion in ARMS.items():
        record(
            "ablation-fusion", name, N, best[fusion], sims[fusion],
            counters[fusion]["shuffle_bytes"], counters[fusion],
        )
    print(
        f"\nfused kernels: interpreter {best[False]:.3f}s, "
        f"fused {best[True]:.3f}s ({speedup:.2f}x)"
    )
    assert speedup >= 2.0, (
        f"fused kernel speedup {speedup:.2f}x < 2.0x "
        f"(interpreter {best[False]:.3f}s vs fused {best[True]:.3f}s)"
    )
