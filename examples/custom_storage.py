"""Extending SAC with a user-defined storage (the paper's Section 1 claim).

The library approach hard-codes one implementation per (operation,
storage) pair; SAC only needs a *sparsifier* and a *builder* per storage.
This example adds a banded-matrix storage — values kept only within a
diagonal band — and immediately uses it in joins with dense tiled
matrices, with no operation-specific code.

Run with::

    python examples/custom_storage.py
"""

import numpy as np

from repro import SacSession
from repro.storage import REGISTRY


class BandMatrix:
    """Square matrix storing only diagonals -band..+band.

    ``bands[d]`` holds diagonal ``d`` (offset from the main diagonal),
    each as a 1-D array.
    """

    def __init__(self, n: int, band: int, bands: dict[int, np.ndarray]):
        self.n = n
        self.band = band
        self.bands = bands

    @classmethod
    def from_numpy(cls, array: np.ndarray, band: int) -> "BandMatrix":
        n = array.shape[0]
        bands = {
            d: np.diagonal(array, offset=d).copy()
            for d in range(-band, band + 1)
        }
        return cls(n, band, bands)

    def to_numpy(self) -> np.ndarray:
        out = np.zeros((self.n, self.n))
        for d, values in self.bands.items():
            idx = np.arange(len(values))
            rows = idx - min(d, 0) * 0 + (0 if d >= 0 else -d)
            rows = idx + (0 if d >= 0 else -d)
            cols = idx + (d if d >= 0 else 0)
            out[rows, cols] = values
        return out


def band_sparsify(m: BandMatrix):
    """Storage → association list: only in-band entries exist."""
    for d, values in m.bands.items():
        for k, value in enumerate(values):
            i = k if d >= 0 else k - d
            j = k + d if d >= 0 else k
            if value != 0:
                yield (i, j), float(value)


def band_builder(ctx, args, items):
    """Association list → storage, dropping out-of-band entries."""
    n, band = int(args[0]), int(args[1])
    bands = {d: np.zeros(n - abs(d)) for d in range(-band, band + 1)}
    for (i, j), value in items:
        d = j - i
        if abs(d) <= band and 0 <= i < n and 0 <= j < n:
            bands[d][min(i, j)] = value
    return BandMatrix(n, band, bands)


def main() -> None:
    # Two registrations are ALL a new storage needs.
    REGISTRY.register_sparsifier(BandMatrix, band_sparsify)
    REGISTRY.register_builder("band", band_builder)

    session = SacSession(tile_size=16)
    rng = np.random.default_rng(3)

    n, band = 48, 2
    tridiagonal = BandMatrix.from_numpy(rng.uniform(1, 2, size=(n, n)), band)
    dense = rng.uniform(0, 1, size=(n, n))

    # 1. Ad-hoc query on the custom storage alone: scale the band.
    doubled = session.run(
        "band(n, b)[ ((i,j), 2.0 * v) | ((i,j),v) <- T ]",
        T=tridiagonal, n=n, b=band,
    )
    print("band scale correct:",
          np.allclose(doubled.to_numpy(), 2 * tridiagonal.to_numpy()))

    # 2. Mixed-storage join: band matrix times a distributed tiled matrix.
    D = session.tiled(dense)
    product = session.run(
        "matrix(n, n)[ ((i,j), +/v) | ((i,k),a) <- T, ((kk,j),b) <- D,"
        " kk == k, let v = a*b, group by (i,j) ]",
        T=tridiagonal, D=D, n=n,
    )
    print("band @ tiled correct:",
          np.allclose(product.to_numpy(), tridiagonal.to_numpy() @ dense))

    # 3. Reductions see only stored entries — the sparsifier defines the
    #    array's contents, not a library implementation.
    total = session.run("+/[ v | ((i,j),v) <- T ]", T=tridiagonal)
    print("band total correct:",
          np.isclose(total, tridiagonal.to_numpy().sum()))


if __name__ == "__main__":
    main()
