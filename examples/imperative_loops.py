"""Imperative array loops compiled to distributed plans (DIABLO front end).

The paper's companion system DIABLO translates loop-based array programs
to comprehensions and uses SAC as its back end (Section 1.1).  This
example writes matrix multiplication and row statistics as plain loops
and shows they compile to the *same* optimal plans as the hand-written
comprehensions — including the SUMMA-style group-by-join for the triple
loop.

Run with::

    python examples/imperative_loops.py
"""

import numpy as np

from repro import SacSession
from repro.diablo import run, translate
from repro.workloads import dense_uniform

N, L, M = 300, 250, 200
TILE = 60

PROGRAM = """
# One gradient of classic imperative array code:
var C: tiled(n, m)
for i = 0, n-1 do
  for k = 0, l-1 do
    for j = 0, m-1 do
      C[i, j] += A[i, k] * B[k, j]
    end
  end
end

var R: tiled_vector(n)
for i = 0, n-1 do
  for j = 0, m-1 do
    R[i] += C[i, j]
  end
end

for i = 0, n-1 do
  for j = 0, m-1 do
    if (i == j) trace += C[i, j]
  end
end
"""


def main() -> None:
    a = dense_uniform(N, L, seed=1)
    b = dense_uniform(L, M, seed=2)
    session = SacSession(tile_size=TILE)
    env = {
        "A": session.tiled(a), "B": session.tiled(b),
        "n": N, "l": L, "m": M,
    }

    print("translated statements:")
    for statement in translate(PROGRAM):
        print(f"  {statement.target} = {statement.source[:88]}...")

    print("\nplans chosen for each statement:")
    scratch = dict(env)
    for statement in translate(PROGRAM):
        compiled = session.compile(statement.source, scratch)
        print(f"  {statement.target}: {compiled.plan.rule}")
        scratch[statement.target] = compiled.execute()

    result = run(session, PROGRAM, env)
    c = result["C"].to_numpy()
    print("\nresults vs NumPy:")
    print("  C == A @ B:", np.allclose(c, a @ b))
    print("  R == row sums:", np.allclose(result["R"].to_numpy(), (a @ b).sum(axis=1)))
    print("  trace:", np.isclose(result["trace"], np.trace(a @ b)))


if __name__ == "__main__":
    main()
