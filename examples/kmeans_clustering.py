"""K-means clustering: ad-hoc array programming beyond any library API.

No fixed linear-algebra library exposes "argmin over a computed
distance matrix" — but it is three comprehensions in SAC (distance
expansion, row-min reduce, equality join).  This example clusters
synthetic 2-D data and prints the recovered centroids.

Run with::

    python examples/kmeans_clustering.py
"""

import numpy as np

from repro import SacSession
from repro.linalg import kmeans

K = 4
PER_CLUSTER = 60


def main() -> None:
    rng = np.random.default_rng(11)
    true_centers = np.array(
        [[0.0, 0.0], [12.0, 2.0], [-4.0, 11.0], [8.0, -9.0]]
    )
    points = np.vstack(
        [c + rng.normal(scale=0.8, size=(PER_CLUSTER, 2)) for c in true_centers]
    )
    points = points[rng.permutation(len(points))]

    session = SacSession(tile_size=50)
    result = kmeans(
        session, session.tiled(points), points[:K].copy(), iterations=25
    )

    print(f"k-means on {len(points)} points, k={K}")
    print(f"converged after {result.iterations} iterations, "
          f"inertia {result.inertia:.1f}")
    print("recovered centroids (sorted) vs true centers:")
    found = result.centroids[np.argsort(result.centroids[:, 0])]
    true_sorted = true_centers[np.argsort(true_centers[:, 0])]
    for f, t in zip(found, true_sorted):
        print(f"  found ({f[0]:7.2f}, {f[1]:7.2f})   "
              f"true ({t[0]:7.2f}, {t[1]:7.2f})")

    sizes = np.bincount(result.assignments, minlength=K)
    print("cluster sizes:", sizes.tolist())

    metrics = session.engine.metrics.total
    print(f"\nengine work: {metrics.tasks} tasks, "
          f"{metrics.shuffle_bytes / 1e6:.2f} MB shuffled")


if __name__ == "__main__":
    main()
