"""PageRank and power iteration on the comprehension API.

Iterative graph/ML algorithms in SAC are host-language loops around
compiled comprehensions (paper Sections 1 and 8).

Run with::

    python examples/pagerank.py
"""

import numpy as np

from repro import SacSession
from repro.linalg import pagerank, power_iteration
from repro.workloads import adjacency_matrix

N = 200


def main() -> None:
    session = SacSession(tile_size=50)
    adj = adjacency_matrix(N, edge_probability=0.05, seed=4)

    ranks = pagerank(session, session.tiled(adj), iterations=30).to_numpy()
    top = np.argsort(ranks)[::-1][:5]
    print("PageRank over a random 200-node graph")
    print(f"  sums to {ranks.sum():.6f}")
    print("  top pages:", ", ".join(f"{i} ({ranks[i]:.4f})" for i in top))
    print("  (in-degree of top page:", int(adj[top[0]].sum()), ")")

    # Power iteration: dominant eigenvalue of the symmetrized graph.
    sym = (adj + adj.T) / 2
    result = power_iteration(session, session.tiled(sym), max_iterations=100)
    expected = float(np.max(np.abs(np.linalg.eigvalsh(sym))))
    print()
    print(f"power iteration: λ = {result.eigenvalue:.6f} "
          f"after {result.iterations} steps (NumPy: {expected:.6f})")

    metrics = session.engine.metrics.total
    print()
    print(f"total engine work: {metrics.tasks} tasks, "
          f"{metrics.shuffle_bytes / 1e6:.2f} MB shuffled, "
          f"simulated time {session.simulated_time():.3f}s")


if __name__ == "__main__":
    main()
