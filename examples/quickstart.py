"""Quickstart: sessions, comprehensions, and the operator API.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import SacSession

rng = np.random.default_rng(0)


def main() -> None:
    # A session owns a simulated cluster (4 nodes, 8 executors — the
    # paper's evaluation platform) and a tile size for block arrays.
    session = SacSession(tile_size=100)

    a = rng.uniform(0, 10, size=(500, 400))
    b = rng.uniform(0, 10, size=(400, 300))

    # --- Level 1: write the comprehension yourself -------------------
    A = session.tiled(a)          # distribute as a tiled matrix
    B = session.tiled(b)

    product = session.run(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        A=A, B=B, n=500, m=300,
    )
    print("‖A·B‖ error vs NumPy:",
          np.abs(product.to_numpy() - a @ b).max())

    # Ask the compiler what it did: the multiplication matched the
    # group-by-join rule (Section 5.4) — the SUMMA-style plan.
    print()
    print(session.explain(
        "tiled(n, m)[ ((i,j), +/v) | ((i,k),x) <- A, ((kk,j),y) <- B,"
        " kk == k, let v = x*y, group by (i,j) ]",
        A=A, B=B, n=500, m=300,
    ))

    # --- Level 2: the operator API -----------------------------------
    M = session.matrix(a)         # SacMatrix handle
    N = session.matrix(b)

    C = M @ N                     # same compiled plan as above
    row_totals = C.row_sums()     # tiled reduce (Section 5.3)
    shifted = (2.0 * M.T + 1.0)   # preserve-tiling (Section 5.1)

    print()
    print("row_sums correct:",
          np.allclose(row_totals.to_numpy(), (a @ b).sum(axis=1)))
    print("2AT+1 correct:",
          np.allclose(shifted.to_numpy(), 2 * a.T + 1))

    # --- What did all this cost on the simulated cluster? ------------
    metrics = session.engine.metrics.total
    print()
    print(f"jobs ran {metrics.stages} stages / {metrics.tasks} tasks, "
          f"shuffled {metrics.shuffle_bytes / 1e6:.1f} MB")
    print(f"simulated cluster time: {session.simulated_time():.3f}s")


if __name__ == "__main__":
    main()
