"""Recommender-style matrix factorization (the paper's Figure 4.C workload).

Factors a 10 %-dense rating matrix R into low-rank P·Qᵀ by gradient
descent, with every step compiled from array comprehensions, and compares
one step against the MLlib-workalike baseline.

Run with::

    python examples/matrix_factorization.py
"""

import time

import numpy as np

from repro import SacSession
from repro.engine import EngineContext
from repro.linalg import (
    mllib_factorization_step, reconstruction_error, sac_factorization_step,
)
from repro.mllib import BlockMatrix
from repro.workloads import factor_matrix, rating_matrix

N, RANK, TILE = 300, 40, 60
ITERATIONS = 8
# The paper's γ = 0.002 is tuned for its single benchmark iteration; for a
# converging loop at this size the step must be smaller (the gradient
# scales with n·rank).
LEARNING_RATE = 0.0001


def main() -> None:
    r_np = rating_matrix(N, density=0.10, seed=1)
    p_np = factor_matrix(N, RANK, seed=2)
    q_np = factor_matrix(N, RANK, seed=3)

    session = SacSession(tile_size=TILE)
    r = session.tiled(r_np).cache()
    p = session.tiled(p_np)
    q = session.tiled(q_np)

    print(f"factorizing {N}x{N} ratings (10% dense) into rank {RANK}")
    print(f"{'iter':>4}  {'‖R - PQᵀ‖²':>14}")
    print(f"{0:>4}  {reconstruction_error(session, r, p, q):>14.2f}")

    for step in range(1, ITERATIONS + 1):
        state = sac_factorization_step(session, r, p, q, gamma=LEARNING_RATE)
        p, q = state.p, state.q
        print(f"{step:>4}  {reconstruction_error(session, r, p, q):>14.2f}")

    # One-step cross-check against the MLlib-workalike baseline.
    engine = EngineContext()
    start = time.perf_counter()
    p_m, q_m, _ = mllib_factorization_step(
        BlockMatrix.from_numpy(engine, r_np, TILE),
        BlockMatrix.from_numpy(engine, p_np, TILE),
        BlockMatrix.from_numpy(engine, q_np, TILE),
    )
    mllib_wall = time.perf_counter() - start

    session2 = SacSession(tile_size=TILE)
    start = time.perf_counter()
    state = sac_factorization_step(
        session2, session2.tiled(r_np), session2.tiled(p_np), session2.tiled(q_np)
    )
    sac_wall = time.perf_counter() - start

    agree = np.allclose(state.p.to_numpy(), p_m.to_numpy()) and np.allclose(
        state.q.to_numpy(), q_m.to_numpy()
    )
    print()
    print(f"SAC and MLlib baseline agree on one step: {agree}")
    print(f"one step wall time   SAC {sac_wall:.2f}s   MLlib-style {mllib_wall:.2f}s")
    print(f"one step simulated   SAC {session2.simulated_time():.3f}s   "
          f"MLlib-style {engine.simulated_time():.3f}s")


if __name__ == "__main__":
    main()
