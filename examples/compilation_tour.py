"""A tour of the translation rules: what each query compiles to.

Prints the full compilation report — normalized comprehension, selected
rule, and the Spark-like pseudocode of the generated plan — for one query
per rule in the paper's Section 5, plus the fallbacks.

Run with::

    python examples/compilation_tour.py
"""

import numpy as np

from repro import PlannerOptions, SacSession
from repro.workloads import dense_uniform

N, M, TILE = 240, 200, 60


def show(title: str, session: SacSession, query: str, **env) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(session.explain(query, **env))
    print()


def main() -> None:
    session = SacSession(tile_size=TILE)
    A = session.tiled(dense_uniform(N, M, seed=1))
    B = session.tiled(dense_uniform(N, M, seed=2))
    C = session.tiled(dense_uniform(M, N, seed=3))

    show(
        "Matrix addition  →  preserve-tiling (Section 5.1)",
        session,
        "tiled(n,m)[ ((i,j),a+b) | ((i,j),a) <- A, ((ii,jj),b) <- B,"
        " ii == i, jj == j ]",
        A=A, B=B, n=N, m=M,
    )

    show(
        "Row rotation  →  tiled shuffle with I_f replication (Section 5.2)",
        session,
        "tiled(n,m)[ (((i+1)%n, j), v) | ((i,j),v) <- A ]",
        A=A, n=N, m=M,
    )

    show(
        "Row sums  →  tiled reduce / reduceByKey(⊗′) (Section 5.3)",
        session,
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        A=A, n=N,
    )

    show(
        "Matrix multiplication  →  group-by-join / SUMMA (Section 5.4)",
        session,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        A=A, C=C, n=N, m=N,
    )

    no_gbj = SacSession(tile_size=TILE, options=PlannerOptions(group_by_join=False))
    A2 = no_gbj.tiled(dense_uniform(N, M, seed=1))
    C2 = no_gbj.tiled(dense_uniform(M, N, seed=3))
    show(
        "Same multiplication with GBJ disabled  →  join + reduceByKey (5.3)",
        no_gbj,
        "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- C,"
        " kk == k, let v = a*b, group by (i,j) ]",
        A=A2, C=C2, n=N, m=N,
    )

    coo = SacSession(tile_size=TILE, options=PlannerOptions(force_coordinate=True))
    A3 = coo.tiled(dense_uniform(24, 20, seed=1))
    show(
        "Coordinate-format execution (Section 4, Rules 13/14) — the "
        "DIABLO-style ablation",
        coo,
        "tiled_vector(n)[ (i, +/m) | ((i,j),m) <- A, group by i ]",
        A=A3, n=24,
    )


if __name__ == "__main__":
    main()
