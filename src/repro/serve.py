"""``repro serve``: the multi-tenant query front door.

One :class:`~repro.engine.substrate.EngineSubstrate` under many
sessions: a :class:`QueryService` hosts shared datasets through a loader
session and lazily attaches one tenant-labeled
:class:`~repro.core.session.SacSession` view per client, so concurrent
clients share the runner pool, the block store, the plan caches, and
(with CSE on, the serve default) retained shuffle outputs — while
admission control keeps one heavy tenant from starving the pool and
per-tenant quotas bound each tenant's resident bytes.

:class:`ServeServer` exposes the service over a minimal asyncio HTTP/1.1
JSON endpoint (stdlib only)::

    POST /query    {"tenant": "alice", "query": "...", "env": {"n": 8}}
    GET  /metrics  per-tenant counters, plan-cache stats, admission stats
    GET  /health

and :func:`replay` drives N concurrent clients through any submit
callable (in-process or HTTP) — the harness behind the cross-tenant
differential tests, the E15 benchmark, and the CI smoke job.

Environment knobs (all read through
:func:`~repro.engine.substrate.env_flag` / the substrate):

* ``REPRO_SERVE_MAX_CONCURRENT`` — admission bound on concurrently
  running jobs (unset: unbounded).
* ``REPRO_SERVE_QUOTA`` — default per-tenant resident-byte quota
  (``"64M"`` style; unset: no quota).
* ``REPRO_SERVE_CSE`` — compile served queries with common-subplan
  elimination so equal shuffles are answered from retained outputs
  across tenants (default on; ``0`` to disable).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from .core.session import SacSession
from .engine import PAPER_CLUSTER, ClusterSpec, EngineContext
from .engine.metrics import _percentile
from .engine.substrate import env_flag, parse_memory_limit
from .planner import PlannerOptions


def render_result(result: Any, include_values: bool = False) -> dict:
    """A JSON-able description of one query result.

    Arrays are summarized as shape + a sha256 digest of their canonical
    bytes (dtype, shape, C-order data) — enough for byte-identity
    differential checks without shipping the matrix; scalars travel by
    value.  ``include_values`` additionally inlines small arrays.
    """
    to_numpy = getattr(result, "to_numpy", None)
    if to_numpy is not None:
        result = to_numpy()
    if isinstance(result, np.ndarray):
        array = np.ascontiguousarray(result)
        digest = hashlib.sha256()
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
        rendered = {
            "kind": "array",
            "shape": list(array.shape),
            "dtype": str(array.dtype),
            "digest": digest.hexdigest(),
        }
        if include_values and array.size <= 400:
            rendered["values"] = array.tolist()
        return rendered
    if isinstance(result, (bool, int, float, str)) or result is None:
        payload = repr(result).encode()
        return {
            "kind": "scalar",
            "value": result,
            "digest": hashlib.sha256(payload).hexdigest(),
        }
    payload = repr(result).encode()
    return {
        "kind": type(result).__name__,
        "repr": repr(result),
        "digest": hashlib.sha256(payload).hexdigest(),
    }


class QueryService:
    """Many tenant sessions over one shared substrate.

    The service owns the substrate (via a loader
    :class:`~repro.core.session.SacSession` whose view hosts the shared
    datasets) and creates one labeled session per tenant on first use.
    Tenant sessions inherit the loader's adaptive/pipeline flags, so
    every lineage over the shared datasets executes under one uniform
    policy — per-tenant *data* is still isolated by tenant-labeled
    block namespaces and global RDD ids.
    """

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        tile_size: int = 100,
        runner: Any = None,
        options: Optional[PlannerOptions] = None,
        max_concurrent: Optional[int] = None,
        quota: Optional[int | str] = None,
        memory_limit: Optional[int | str] = None,
        pipeline: Optional[bool] = None,
        adaptive: Optional[bool] = None,
        engine: Optional[EngineContext] = None,
    ):
        if options is None:
            # Serve defaults CSE on: shared-substrate shuffle reuse
            # across tenants is the point of the front door.
            options = PlannerOptions(cse=env_flag("REPRO_SERVE_CSE", True))
        if quota is None:
            quota = os.environ.get("REPRO_SERVE_QUOTA") or None
        self._quota = parse_memory_limit(quota)
        self._options = options
        self._tile_size = tile_size
        if engine is None:
            engine = EngineContext(
                cluster=cluster, runner=runner, memory_limit=memory_limit,
                # Retain finished shuffle outputs so equal shuffles from
                # *other* tenants' queries are answered from the store
                # (CSE's per-plan opt-in only covers within-plan reuse).
                reuse_shuffles=env_flag(
                    "REPRO_SHUFFLE_REUSE", bool(options.cse)
                ),
                adaptive=(
                    env_flag("REPRO_ADAPTIVE", True)
                    if adaptive is None else adaptive
                ),
                pipeline=pipeline,
                max_concurrent_jobs=max_concurrent,
            )
        self.loader = SacSession(
            engine=engine, tile_size=tile_size, options=options
        )
        self.substrate = self.loader.engine.substrate
        self.datasets: dict[str, Any] = {}
        self._sessions: dict[str, SacSession] = {}
        self._lock = threading.Lock()

    # -- dataset hosting ------------------------------------------------

    def host(self, name: str, array: np.ndarray, sparse: bool = False) -> Any:
        """Load a local array as a shared dataset every tenant can query."""
        if array.ndim == 1:
            stored = self.loader.tiled_vector(array)
        elif sparse:
            stored = self.loader.sparse_tiled(array)
        else:
            stored = self.loader.tiled(array)
        self.datasets[name] = stored
        return stored

    def host_storage(self, name: str, storage: Any) -> None:
        """Register an already-built storage object as a shared dataset."""
        self.datasets[name] = storage

    # -- query execution ------------------------------------------------

    def session(self, tenant: str) -> SacSession:
        """The (lazily created) labeled session view for one tenant."""
        with self._lock:
            session = self._sessions.get(tenant)
            if session is None:
                session = SacSession(
                    engine=self.loader.engine, tile_size=self._tile_size,
                    options=self._options, tenant=tenant, quota=self._quota,
                )
                self._sessions[tenant] = session
            return session

    def submit(
        self,
        tenant: str,
        query: str,
        env: Optional[dict[str, Any]] = None,
        include_values: bool = False,
    ) -> dict:
        """Run one query for ``tenant`` against the hosted datasets.

        ``env`` supplies scalar bindings (and may shadow dataset names);
        the result comes back rendered (see :func:`render_result`) with
        the query's wall latency attached.
        """
        session = self.session(tenant)
        full_env = {**self.datasets, **(env or {})}
        start = time.perf_counter()
        # The scope covers rendering too: storages materialize lazily,
        # so shuffles (and reuses) can fire inside ``to_numpy``.
        with self.substrate.metrics.tenant_scope(tenant):
            result = session.run(query, full_env)
            rendered = render_result(result, include_values=include_values)
        rendered["latency_seconds"] = time.perf_counter() - start
        rendered["tenant"] = tenant
        return rendered

    def metrics_report(self) -> dict:
        """Per-tenant counters + shared-cache and admission stats."""
        return {
            "tenants": self.substrate.tenant_report(),
            "plan_caches": self.substrate.plan_caches.stats(),
            "admission": self.substrate.admission.stats(),
        }

    def close(self) -> None:
        self.substrate.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# The asyncio HTTP front door
# ----------------------------------------------------------------------

_MAX_BODY = 4 * 1024 * 1024


class ServeServer:
    """Minimal asyncio HTTP/1.1 JSON server over a :class:`QueryService`.

    Stdlib only.  Handlers parse one request per connection (the replay
    clients send ``Connection: close``), dispatch blocking engine work
    to the default executor so the event loop keeps accepting, and
    answer JSON.  Concurrency inside the engine is governed by the
    substrate's admission gate, not by the server.
    """

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # defensive: a handler bug must not kill the loop
            status, payload = 500, {"ok": False, "error": repr(exc)}
        body = json.dumps(payload).encode()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Error"
        )
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, {"ok": False, "error": "malformed request line"}
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = min(int(value.strip()), _MAX_BODY)
                except ValueError:
                    return 400, {"ok": False, "error": "bad content-length"}
        if method == "GET" and path == "/health":
            return 200, {"ok": True}
        if method == "GET" and path == "/metrics":
            return 200, {"ok": True, **self.service.metrics_report()}
        if method == "POST" and path == "/query":
            raw = await reader.readexactly(content_length)
            try:
                request = json.loads(raw or b"{}")
                tenant = str(request.get("tenant", "anonymous"))
                query = request["query"]
                env = request.get("env") or {}
            except (json.JSONDecodeError, KeyError) as exc:
                return 400, {"ok": False, "error": f"bad request: {exc!r}"}
            loop = asyncio.get_running_loop()
            try:
                rendered = await loop.run_in_executor(
                    None,
                    lambda: self.service.submit(
                        tenant, query, env,
                        include_values=bool(request.get("include_values")),
                    ),
                )
            except Exception as exc:
                return 400, {"ok": False, "tenant": tenant, "error": repr(exc)}
            return 200, {"ok": True, **rendered}
        return 404, {"ok": False, "error": f"no route {method} {path}"}


def http_submit(host: str, port: int) -> Callable:
    """A blocking submit callable speaking the server's JSON protocol.

    Returned function signature matches :meth:`QueryService.submit`, so
    :func:`replay` can drive an in-process service and a live server
    interchangeably.
    """
    import http.client

    def submit(
        tenant: str,
        query: str,
        env: Optional[dict] = None,
        include_values: bool = False,
    ) -> dict:
        connection = http.client.HTTPConnection(host, port, timeout=120)
        try:
            connection.request(
                "POST", "/query",
                body=json.dumps({
                    "tenant": tenant, "query": query, "env": env or {},
                    "include_values": include_values,
                }),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        if not payload.get("ok"):
            raise RuntimeError(payload.get("error", "query failed"))
        return payload

    return submit


# ----------------------------------------------------------------------
# Replay harness
# ----------------------------------------------------------------------


@dataclass
class ReplayReport:
    """What N concurrent replay clients saw."""

    #: tenant -> query-result digests in submission order.
    digests: dict[str, list[str]] = field(default_factory=dict)
    #: tenant -> per-query wall latencies (seconds), submission order.
    latencies: dict[str, list[float]] = field(default_factory=dict)
    #: (tenant, repr(exception)) for failed submissions.
    errors: list[tuple[str, str]] = field(default_factory=list)
    wall_seconds: float = 0.0

    def all_latencies(self) -> list[float]:
        return [
            latency
            for per_tenant in self.latencies.values()
            for latency in per_tenant
        ]

    def latency_percentile(self, fraction: float) -> float:
        return _percentile(sorted(self.all_latencies()), fraction)

    def summary(self) -> dict:
        return {
            "tenants": len(self.digests),
            "queries": sum(len(d) for d in self.digests.values()),
            "errors": len(self.errors),
            "wall_seconds": self.wall_seconds,
            "latency_p50_seconds": self.latency_percentile(0.50),
            "latency_p95_seconds": self.latency_percentile(0.95),
        }


def replay(
    submit: Callable,
    workloads: dict[str, list[tuple[str, dict]]],
    rounds: int = 1,
    concurrent: bool = True,
) -> ReplayReport:
    """Drive one client per tenant through its workload, concurrently.

    ``workloads`` maps each tenant to its query script — a list of
    ``(query, env)`` pairs — replayed ``rounds`` times in order.
    ``submit`` is any callable with :meth:`QueryService.submit`'s
    signature.  ``concurrent=False`` runs the same scripts serially in
    tenant order — the isolated-baseline shape for differential tests.
    """
    report = ReplayReport(
        digests={tenant: [] for tenant in workloads},
        latencies={tenant: [] for tenant in workloads},
    )

    def client(tenant: str, script: list[tuple[str, dict]]) -> None:
        for _round in range(rounds):
            for query, env in script:
                start = time.perf_counter()
                try:
                    rendered = submit(tenant, query, env)
                except Exception as exc:
                    report.errors.append((tenant, repr(exc)))
                    continue
                report.latencies[tenant].append(time.perf_counter() - start)
                report.digests[tenant].append(rendered["digest"])

    start = time.perf_counter()
    if concurrent:
        threads = [
            threading.Thread(
                target=client, args=(tenant, script), name=f"replay-{tenant}"
            )
            for tenant, script in workloads.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        for tenant, script in workloads.items():
            client(tenant, script)
    report.wall_seconds = time.perf_counter() - start
    return report


def demo_workload(
    service: QueryService,
    num_tenants: int = 4,
    size: int = 24,
    seed: int = 11,
) -> dict[str, list[tuple[str, dict]]]:
    """Host demo matrices and build one workload script per tenant.

    Every tenant replays the same three paper-shaped queries (multiply,
    scaled add, row sums) over the shared hosted datasets — the
    cache-friendly serve scenario: tenant 1 compiles and shuffles,
    tenants 2..N hit the shared plan cache and the retained shuffle
    outputs.
    """
    rng = np.random.default_rng(seed)
    n = size
    service.host("A", rng.uniform(0, 9, size=(n, n)))
    service.host("B", rng.uniform(0, 9, size=(n, n)))
    script = [
        (
            "tiled(n,m)[ ((i,j),+/v) | ((i,k),a) <- A, ((kk,j),b) <- B,"
            " kk == k, let v = a*b, group by (i,j) ]",
            {"n": n, "m": n},
        ),
        (
            "tiled(n, m)[ ((i,j), a + gamma * b)"
            " | ((i,j),a) <- A, ((ii,jj),b) <- B, ii == i, jj == j ]",
            {"n": n, "m": n, "gamma": 0.5},
        ),
        (
            "tiled_vector(n)[ (i, +/a) | ((i,j),a) <- A, group by i ]",
            {"n": n},
        ),
    ]
    return {f"tenant-{i + 1}": list(script) for i in range(num_tenants)}


# ----------------------------------------------------------------------
# CLI entry (``repro serve``)
# ----------------------------------------------------------------------


def serve_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``repro serve`` (see ``cli.py``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Boot the multi-tenant query front door: many sessions, one "
            "shared substrate."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 picks an ephemeral port, printed at boot)",
    )
    parser.add_argument(
        "--tile-size", type=int, default=100, help="tile side for hosted data"
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=None,
        help="admission bound on concurrently running jobs "
        "(default: REPRO_SERVE_MAX_CONCURRENT, else unbounded)",
    )
    parser.add_argument(
        "--quota", default=None,
        help="per-tenant resident-byte quota, e.g. 64M "
        "(default: REPRO_SERVE_QUOTA, else none)",
    )
    parser.add_argument(
        "--memory-limit", default=None,
        help="substrate memory cap with spill-to-disk, e.g. 256M",
    )
    parser.add_argument(
        "--pipeline", action="store_true", default=None,
        help="force task-graph (pipelined) execution for served queries",
    )
    parser.add_argument(
        "--demo", type=int, metavar="N", default=None,
        help="host the demo datasets sized NxN (default 24 with --replay)",
    )
    parser.add_argument(
        "--replay", type=int, metavar="CLIENTS", default=None,
        help="boot, drive CLIENTS concurrent replay clients over HTTP, "
        "print a JSON report, and exit (the CI smoke path)",
    )
    parser.add_argument(
        "--rounds", type=int, default=2, help="replay rounds per client"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    args = parser.parse_args(argv)

    service = QueryService(
        tile_size=args.tile_size,
        max_concurrent=args.max_concurrent,
        quota=args.quota,
        memory_limit=args.memory_limit,
        pipeline=args.pipeline,
    )
    if args.replay is not None:
        workloads = demo_workload(
            service, num_tenants=args.replay, size=args.demo or 24
        )
        server = ServeServer(service, host=args.host, port=args.port)

        async def run() -> ReplayReport:
            await server.start()
            submit = http_submit(server.host, server.port)
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, lambda: replay(submit, workloads, rounds=args.rounds)
                )
            finally:
                await server.stop()

        report = asyncio.run(run())
        payload = {
            "replay": report.summary(),
            **service.metrics_report(),
        }
        if args.json:
            print(json.dumps(payload, indent=2, default=str))
        else:
            summary = report.summary()
            print(
                f"replayed {summary['queries']} queries over "
                f"{summary['tenants']} tenants in "
                f"{summary['wall_seconds']:.2f}s "
                f"(p95 {summary['latency_p95_seconds'] * 1e3:.1f}ms, "
                f"{summary['errors']} errors)"
            )
            for tenant, stats in sorted(payload["tenants"].items()):
                if not tenant:
                    continue
                print(
                    f"  {tenant}: {stats.get('queries', 0)} queries, "
                    f"plan-cache hit rate "
                    f"{stats.get('plan_cache_hit_rate', 0.0):.2f}, "
                    f"{stats.get('shuffle_reuses', 0)} shuffle reuses"
                )
        service.close()
        return 1 if report.errors else 0

    if args.demo is not None:
        demo_workload(service, num_tenants=0, size=args.demo)
    server = ServeServer(service, host=args.host, port=args.port)

    async def run_forever() -> None:
        await server.start()
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"(POST /query, GET /metrics)"
        )
        await server.serve_forever()

    try:
        asyncio.run(run_forever())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0
