"""Matrix factorization by gradient descent (paper Section 6, Figure 4.C).

Factor a rating matrix ``R`` (n×m) into low-rank ``P`` (n×k) and ``Q``
(m×k) by repeating::

    E ← R − P×Qᵀ
    P ← P + γ(2E×Q − λP)
    Q ← Q + γ(2Eᵀ×P − λQ)

with learning rate γ and regularization λ (the paper uses γ = 0.002,
λ = 0.02).  Two implementations run the identical recurrence:

* :func:`sac_factorization_step` — every operation is an array
  comprehension compiled by the SAC planner; the multiplies use the
  group-by-join rule and ``E×Qᵀ``/``Eᵀ×P`` are expressed directly as
  comprehensions joining on the shared axis, so no transpose is ever
  materialized.

* :func:`mllib_factorization_step` — the MLlib-workalike baseline,
  which must materialize ``Qᵀ`` and ``Eᵀ`` with explicit transposes and
  scale matrices by mapping over blocks, exactly as an MLlib user would.

Each step submits the same query texts against same-shaped (fresh)
storages, so after the first iteration every comprehension here
compiles from the session's plan cache (see ``SacSession.compile``);
the host loop pays rule dispatch only, never re-parsing or
re-normalizing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ops
from ..core.session import SacSession
from ..mllib import BlockMatrix
from ..storage import TiledMatrix

#: The paper's hyper-parameters.
GAMMA = 0.002
LAMBDA = 0.02


@dataclass
class FactorizationState:
    """Factors after one or more gradient steps."""

    p: TiledMatrix
    q: TiledMatrix
    error: TiledMatrix


def sac_factorization_step(
    session: SacSession,
    r: TiledMatrix,
    p: TiledMatrix,
    q: TiledMatrix,
    gamma: float = GAMMA,
    lam: float = LAMBDA,
) -> FactorizationState:
    """One SAC gradient-descent step (compiled comprehensions)."""
    # E = R - P Qᵀ: the product joins P and Q on their shared rank axis.
    pqt = ops.multiply_nt(session, p, q)
    error = ops.subtract(session, r, pqt)
    # P += γ (2 E Q - λ P); E Q joins on E's column index.
    eq = ops.multiply(session, error, q)
    p_new = session.run(
        "tiled(n, k)[ ((i,j), p + gamma * (2.0 * g - lam * p))"
        " | ((i,j),p) <- P, ((ii,jj),g) <- G, ii == i, jj == j ]",
        P=p, G=eq, n=p.rows, k=p.cols, gamma=gamma, lam=lam,
    ).materialize()  # cut the lazy lineage across gradient steps
    # Q += γ (2 Eᵀ P - λ Q); Eᵀ P expressed directly (join on E's rows).
    etp = ops.multiply_tn(session, error, p_new)
    q_new = session.run(
        "tiled(m, k)[ ((i,j), q + gamma * (2.0 * g - lam * q))"
        " | ((i,j),q) <- Q, ((ii,jj),g) <- G, ii == i, jj == j ]",
        Q=q, G=etp, m=q.rows, k=q.cols, gamma=gamma, lam=lam,
    ).materialize()
    return FactorizationState(p=p_new, q=q_new, error=error)


def sac_factorize(
    session: SacSession,
    r: TiledMatrix,
    p: TiledMatrix,
    q: TiledMatrix,
    iterations: int,
    gamma: float = GAMMA,
    lam: float = LAMBDA,
) -> FactorizationState:
    """Run several gradient steps (comprehensions inside a host loop,
    the paper's pattern for iterative algorithms)."""
    state = FactorizationState(p=p, q=q, error=r)
    for _step in range(iterations):
        state = sac_factorization_step(session, r, state.p, state.q, gamma, lam)
    return state


def mllib_factorization_step(
    r: BlockMatrix,
    p: BlockMatrix,
    q: BlockMatrix,
    gamma: float = GAMMA,
    lam: float = LAMBDA,
) -> tuple[BlockMatrix, BlockMatrix, BlockMatrix]:
    """One gradient-descent step with the MLlib-workalike baseline."""
    error = r.subtract(p.multiply(q.transpose()))
    p_grad = error.multiply(q).map_blocks(lambda b: 2.0 * b)
    p_new = p.add(
        p_grad.subtract(p.map_blocks(lambda b: lam * b)).map_blocks(
            lambda b: gamma * b
        )
    )
    q_grad = error.transpose().multiply(p_new).map_blocks(lambda b: 2.0 * b)
    q_new = q.add(
        q_grad.subtract(q.map_blocks(lambda b: lam * b)).map_blocks(
            lambda b: gamma * b
        )
    )
    return p_new, q_new, error


def reconstruction_error(
    session: SacSession, r: TiledMatrix, p: TiledMatrix, q: TiledMatrix
) -> float:
    """``‖R − P Qᵀ‖²_F`` — the objective being minimized."""
    pqt = ops.multiply_nt(session, p, q)
    diff = ops.subtract(session, r, pqt)
    return ops.frobenius_norm_sq(session, diff)
