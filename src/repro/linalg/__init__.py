"""Machine-learning workloads built on the SAC public API."""

from .factorization import (
    FactorizationState, GAMMA, LAMBDA, mllib_factorization_step,
    reconstruction_error, sac_factorization_step, sac_factorize,
)
from .kmeans import KMeansResult, kmeans, kmeans_assign
from .routines import (
    PowerIterationResult, gradient_descent_linear_regression,
    logistic_regression, pagerank, power_iteration,
)

__all__ = [
    "FactorizationState",
    "GAMMA",
    "KMeansResult",
    "LAMBDA",
    "PowerIterationResult",
    "gradient_descent_linear_regression",
    "kmeans",
    "logistic_regression",
    "kmeans_assign",
    "mllib_factorization_step",
    "pagerank",
    "power_iteration",
    "reconstruction_error",
    "sac_factorization_step",
    "sac_factorize",
]
