"""Iterative algorithms built from comprehensions inside host loops.

The paper (Sections 1 and 8) positions loops in the *host* language with
one comprehension per step as the pattern for iterative algorithms —
LU-style factorizations excepted.  These routines demonstrate it on the
public API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core import ops
from ..core.session import SacSession
from ..storage import TiledMatrix, TiledVector


@dataclass
class PowerIterationResult:
    eigenvalue: float
    eigenvector: TiledVector
    iterations: int


def power_iteration(
    session: SacSession,
    a: TiledMatrix,
    max_iterations: int = 50,
    tolerance: float = 1e-9,
) -> PowerIterationResult:
    """Dominant eigenvalue/eigenvector of a square matrix.

    Each step is one distributed mat-vec comprehension plus one
    normalization comprehension.
    """
    if a.rows != a.cols:
        raise ValueError(f"power iteration needs a square matrix, got {a.rows}x{a.cols}")
    x = session.tiled_vector(np.ones(a.cols) / math.sqrt(a.cols))
    eigenvalue = 0.0
    steps = 0
    for steps in range(1, max_iterations + 1):
        y = ops.matvec(session, a, x)
        norm_sq = session.run("+/[ v * v | (i,v) <- Y ]", Y=y)
        norm = math.sqrt(norm_sq)
        if norm == 0.0:
            raise ValueError("matrix maps the iterate to zero")
        x_next = session.run(
            "tiled_vector(n)[ (i, v / s) | (i,v) <- Y ]",
            Y=y, n=a.rows, s=norm,
        ).materialize()  # cut the lazy lineage each step
        new_eigenvalue = session.run(
            "+/[ x * y | (i,x) <- X, (j,y) <- Y, j == i ]", X=x_next, Y=y
        )
        x = x_next
        if abs(new_eigenvalue - eigenvalue) < tolerance:
            eigenvalue = new_eigenvalue
            break
        eigenvalue = new_eigenvalue
    return PowerIterationResult(float(eigenvalue), x, steps)


def pagerank(
    session: SacSession,
    adjacency: TiledMatrix,
    damping: float = 0.85,
    iterations: int = 20,
) -> TiledVector:
    """PageRank over a dense column-stochastic transition matrix.

    ``adjacency[i, j] = 1`` for an edge j → i; the routine normalizes
    columns into a transition matrix (one comprehension), then iterates
    ``r ← (1 − d)/n + d·M r`` (one mat-vec comprehension per step).
    """
    n = adjacency.rows
    if adjacency.cols != n:
        raise ValueError("adjacency must be square")
    out_degree = ops.col_sums(session, adjacency)
    transition = session.run(
        "tiled(n, n)[ ((i,j), if (d > 0.0) v / d else 1.0 / nn)"
        " | ((i,j),v) <- A, (jj,d) <- D, jj == j ]",
        A=adjacency, D=out_degree, n=n, nn=float(n),
    ).materialize()  # reused every iteration
    rank = session.tiled_vector(np.full(n, 1.0 / n))
    teleport = (1.0 - damping) / n
    for _step in range(iterations):
        spread = ops.matvec(session, transition, rank)
        rank = session.run(
            "tiled_vector(n)[ (i, t + d * v) | (i,v) <- S ]",
            S=spread, n=n, t=teleport, d=damping,
        ).materialize()
    return rank


def logistic_regression(
    session: SacSession,
    x: TiledMatrix,
    y: TiledVector,
    learning_rate: float = 0.1,
    iterations: int = 100,
) -> TiledVector:
    """Binary logistic regression by gradient ascent.

    Update: ``w ← w + (α/n)·Xᵀ(y − σ(Xw))``; the sigmoid is an ordinary
    comprehension (``1/(1+exp(−z))``), compiled like everything else.
    """
    n_samples = x.rows
    w = session.tiled_vector(np.zeros(x.cols))
    for _step in range(iterations):
        scores = ops.matvec(session, x, w)
        probabilities = session.run(
            "tiled_vector(n)[ (i, 1.0 / (1.0 + exp(0.0 - z))) | (i,z) <- S ]",
            S=scores, n=n_samples,
        )
        residual = session.run(
            "tiled_vector(n)[ (i, t - p) | (i,p) <- P, (j,t) <- Y, j == i ]",
            P=probabilities, Y=y, n=n_samples,
        )
        gradient = session.run(
            "tiled_vector(k)[ (j, +/g) | ((i,j),v) <- X, (ii,r) <- R, ii == i,"
            " let g = v*r, group by j ]",
            X=x, R=residual, k=x.cols,
        )
        w = session.run(
            "tiled_vector(k)[ (j, wv + c * g) | (j,wv) <- W, (jj,g) <- G, jj == j ]",
            W=w, G=gradient, k=x.cols, c=learning_rate / n_samples,
        ).materialize()
    return w


def gradient_descent_linear_regression(
    session: SacSession,
    x: TiledMatrix,
    y: TiledVector,
    learning_rate: float = 0.01,
    iterations: int = 100,
) -> TiledVector:
    """Least-squares fit ``min ‖Xw − y‖²`` by full-batch gradient descent.

    Gradient step: ``w ← w − (2α/n) Xᵀ(Xw − y)``, each piece one
    comprehension.
    """
    n_samples = x.rows
    w = session.tiled_vector(np.zeros(x.cols))
    for _step in range(iterations):
        predictions = ops.matvec(session, x, w)
        residual = session.run(
            "tiled_vector(n)[ (i, p - t) | (i,p) <- P, (j,t) <- Y, j == i ]",
            P=predictions, Y=y, n=n_samples,
        )
        gradient = session.run(
            "tiled_vector(k)[ (j, +/g) | ((i,j),v) <- X, (ii,r) <- R, ii == i,"
            " let g = v*r, group by j ]",
            X=x, R=residual, k=x.cols,
        )
        w = session.run(
            "tiled_vector(k)[ (j, wv - c * g) | (j,wv) <- W, (jj,g) <- G, jj == j ]",
            W=w, G=gradient, k=x.cols, c=2.0 * learning_rate / n_samples,
        ).materialize()
    return w
