"""K-means clustering written entirely as array comprehensions.

K-means is the paper's kind of workload: it needs an *argmin* — an
operation no fixed linear-algebra library API offers directly — yet it
decomposes into comprehensions because the language is SQL-expressive:

1. pairwise squared distances via the expansion
   ``‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²`` (one group-by-join multiply and
   two broadcast joins);
2. the argmin as a row-``min/`` reduction followed by an equality join
   of the distance matrix with its own row minima;
3. new centroids as a group-by aggregation of member coordinates.

Each step is a compiled query; the host loop iterates (Section 8's
pattern for iterative algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ops
from ..core.session import SacSession
from ..storage import TiledMatrix


@dataclass
class KMeansResult:
    """Final centroids, per-point assignments, and the objective."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    iterations: int


def kmeans_assign(
    session: SacSession, points: TiledMatrix, centroids: TiledMatrix
) -> list[tuple[int, int]]:
    """Assign each point to its nearest centroid (one compiled round).

    Returns ``(point, centroid)`` pairs.  Ties break toward the lowest
    centroid index via the final ``min/`` group-by.
    """
    cross = ops.multiply_nt(session, points, centroids)  # X · Cᵀ, GBJ plan
    point_norms = session.run(
        "tiled_vector(n)[ (i, +/s) | ((i,d),x) <- X, let s = x*x, group by i ]",
        X=points, n=points.rows,
    )
    centroid_norms = session.run(
        "tiled_vector(k)[ (c, +/s) | ((c,d),v) <- C, let s = v*v, group by c ]",
        C=centroids, k=centroids.rows,
    )
    distances = session.run(
        "tiled(n, k)[ ((i,c), pn - 2.0*g + cn) | ((i,c),g) <- G,"
        " (ii,pn) <- PN, ii == i, (cc,cn) <- CN, cc == c ]",
        G=cross, PN=point_norms, CN=centroid_norms,
        n=points.rows, k=centroids.rows,
    )
    row_min = session.run(
        "tiled_vector(n)[ (i, min/d) | ((i,c),d) <- D, group by i ]",
        D=distances, n=points.rows,
    )
    # Argmin: join the distance matrix with its own row minima; ties
    # collapse to the smallest centroid index.
    return session.run(
        "[ (i, min/c) | ((i,c),d) <- D, (ii,m) <- M, ii == i, d <= m,"
        " group by i ]",
        D=distances, M=row_min,
    )


def kmeans(
    session: SacSession,
    points: TiledMatrix,
    initial_centroids: np.ndarray,
    iterations: int = 10,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Lloyd's algorithm with every step a compiled comprehension."""
    points.cache()
    centroids = np.array(initial_centroids, dtype=np.float64)
    k, dims = centroids.shape
    assignments: list[tuple[int, int]] = []
    steps = 0
    for steps in range(1, iterations + 1):
        centroid_storage = session.tiled(centroids)
        assignments = kmeans_assign(session, points, centroid_storage)
        # New centroids: mean of member coordinates, one group-by each
        # for the sums and the counts.
        sums = session.run(
            "matrix(k, dims)[ ((c,d), +/x) | (i,c) <- A, ((ii,d),x) <- X,"
            " ii == i, group by (c,d) ]",
            A=session.rdd(assignments), X=points, k=k, dims=dims,
        )
        counts = session.run(
            "vector(k)[ (c, count/i) | (i,c) <- A, group by c ]",
            A=session.rdd(assignments), k=k,
        )
        new_centroids = centroids.copy()
        for c in range(k):
            if counts.data[c] > 0:
                new_centroids[c] = sums.data[c] / counts.data[c]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift < tolerance:
            break
    inertia = _inertia(session, points, centroids, assignments)
    assignment_array = np.zeros(points.rows, dtype=np.int64)
    for i, c in assignments:
        assignment_array[i] = c
    return KMeansResult(centroids, assignment_array, inertia, steps)


def _inertia(
    session: SacSession,
    points: TiledMatrix,
    centroids: np.ndarray,
    assignments: list[tuple[int, int]],
) -> float:
    """Σ over points of squared distance to the assigned centroid."""
    centroid_of = dict(assignments)
    local_points = points.to_numpy()
    return float(
        sum(
            np.sum((local_points[i] - centroids[c]) ** 2)
            for i, c in centroid_of.items()
        )
    )
