"""MLlib-workalike ``BlockMatrix`` — the paper's comparison baseline.

Spark MLlib's ``linalg.distributed.BlockMatrix`` is reproduced here *on
our engine*, mirroring the real implementation's plan shapes:

* ``add``/``subtract`` cogroup the two block RDDs on a
  ``GridPartitioner`` and combine block pairs (missing blocks are
  zeros), converting each block to/from the Breeze representation — the
  conversion copy is reproduced because it is part of what the paper
  measured against.

* ``multiply`` follows MLlib's ``simulateMultiply``: every A-block is
  replicated to the *result partitions* that need it (one per partition
  containing result blocks of its row band), symmetrically for B; the
  replicated streams are cogrouped per partition id; all block products
  are computed there and merged by a final ``reduceByKey`` on the result
  partitioner.  Each product allocates a fresh block (as MLlib does),
  which is the allocation pressure the paper's generated code avoids.

* The paper ran MLlib with the **pure JVM** Breeze backend (no native
  BLAS).  Our blocks multiply with NumPy (native BLAS), so a
  :class:`KernelProfile` charges the *simulated* clock the documented
  JVM/native gap for each kernel invocation.  Set ``profile=None`` to
  compare plan shapes only; EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..engine import EngineContext, GridPartitioner, RDD


@dataclass(frozen=True)
class KernelProfile:
    """Relative cost of the baseline's local kernels vs native BLAS.

    ``gemm_slowdown`` / ``elementwise_slowdown`` multiply the measured
    kernel time in the *simulated* cost accounting only; wall-clock
    numbers are never altered.  Defaults follow common JVM-vs-native
    gemm measurements for pure-JVM Breeze (the paper's configuration).
    """

    gemm_slowdown: float = 4.0
    elementwise_slowdown: float = 1.5


#: The configuration of the paper's evaluation (Section 6).
PURE_JVM_BREEZE = KernelProfile()


class BlockMatrix:
    """A distributed block matrix in the style of Spark MLlib.

    Blocks are keyed by ``(block_row, block_col)``; edge blocks may be
    smaller than ``rows_per_block`` × ``cols_per_block``.
    """

    def __init__(
        self,
        blocks: RDD,
        rows_per_block: int,
        cols_per_block: int,
        num_rows: int,
        num_cols: int,
        profile: Optional[KernelProfile] = PURE_JVM_BREEZE,
    ):
        self.blocks = blocks
        self.rows_per_block = rows_per_block
        self.cols_per_block = cols_per_block
        self.num_rows = num_rows
        self.num_cols = num_cols
        self.profile = profile

    # -- shape ------------------------------------------------------------

    @property
    def num_row_blocks(self) -> int:
        return math.ceil(self.num_rows / self.rows_per_block)

    @property
    def num_col_blocks(self) -> int:
        return math.ceil(self.num_cols / self.cols_per_block)

    def block_shape(self, i: int, j: int) -> tuple[int, int]:
        return (
            min(self.rows_per_block, self.num_rows - i * self.rows_per_block),
            min(self.cols_per_block, self.num_cols - j * self.cols_per_block),
        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        engine: EngineContext,
        array: np.ndarray,
        block_size: int,
        num_partitions: Optional[int] = None,
        profile: Optional[KernelProfile] = PURE_JVM_BREEZE,
    ) -> "BlockMatrix":
        array = np.asarray(array, dtype=np.float64)
        rows, cols = array.shape
        blocks = []
        for bi in range(math.ceil(rows / block_size)):
            for bj in range(math.ceil(cols / block_size)):
                block = array[
                    bi * block_size : (bi + 1) * block_size,
                    bj * block_size : (bj + 1) * block_size,
                ].copy()
                blocks.append(((bi, bj), block))
        rdd = engine.parallelize(blocks, num_partitions or engine.default_parallelism)
        return cls(rdd, block_size, block_size, rows, cols, profile)

    # -- kernel accounting ----------------------------------------------------

    def _charge(self, elapsed: float, slowdown: float) -> None:
        """Charge the simulated clock for the JVM/native kernel gap."""
        if self.profile is not None and slowdown > 1.0:
            self.blocks.ctx.metrics.inflate_task(elapsed * (slowdown - 1.0))

    def _to_breeze(self, block: np.ndarray) -> np.ndarray:
        """MLlib converts every block to a Breeze matrix before math."""
        return np.array(block)  # the copy is the point

    # -- operations ---------------------------------------------------------

    def validate(self) -> None:
        """MLlib-style validation: block coordinates within the grid and
        block shapes consistent with the declared dimensions."""
        grid_rows, grid_cols = self.num_row_blocks, self.num_col_blocks

        def check(record):
            (bi, bj), block = record
            if not (0 <= bi < grid_rows and 0 <= bj < grid_cols):
                raise ValueError(f"block ({bi}, {bj}) outside the grid")
            expected = self.block_shape(bi, bj)
            if block.shape != expected:
                raise ValueError(
                    f"block ({bi}, {bj}) has shape {block.shape}, "
                    f"expected {expected}"
                )

        self.blocks.foreach(check)

    def _blockwise(self, other: "BlockMatrix", op: Callable) -> "BlockMatrix":
        if (self.num_rows, self.num_cols) != (other.num_rows, other.num_cols):
            raise ValueError(
                f"dimension mismatch: {self.num_rows}x{self.num_cols} vs "
                f"{other.num_rows}x{other.num_cols}"
            )
        partitioner = GridPartitioner(
            self.num_row_blocks,
            self.num_col_blocks,
            self.blocks.ctx.default_parallelism,
        )
        cogrouped = self.blocks.cogroup(other.blocks, partitioner=partitioner)
        outer = self

        def combine(record):
            key, (mine, theirs) = record
            start = time.perf_counter()
            if mine and theirs:
                result = op(outer._to_breeze(mine[0]), outer._to_breeze(theirs[0]))
            elif mine:
                result = op(outer._to_breeze(mine[0]), 0.0)
            else:
                result = op(0.0, outer._to_breeze(theirs[0]))
            elapsed = time.perf_counter() - start
            outer._charge(elapsed, outer.profile.elementwise_slowdown if outer.profile else 1.0)
            return key, result

        return BlockMatrix(
            cogrouped.map(combine),
            self.rows_per_block, self.cols_per_block,
            self.num_rows, self.num_cols, self.profile,
        )

    def add(self, other: "BlockMatrix") -> "BlockMatrix":
        """Block-wise addition via cogroup (MLlib's plan)."""
        return self._blockwise(other, lambda a, b: a + b)

    def subtract(self, other: "BlockMatrix") -> "BlockMatrix":
        """Block-wise subtraction via cogroup."""
        return self._blockwise(other, lambda a, b: a - b)

    def multiply(self, other: "BlockMatrix") -> "BlockMatrix":
        """MLlib's ``simulateMultiply`` + cogroup + products + reduceByKey."""
        if self.num_cols != other.num_rows:
            raise ValueError(
                f"inner dimensions disagree: {self.num_cols} vs {other.num_rows}"
            )
        if self.cols_per_block != other.rows_per_block:
            raise ValueError("block sizes are incompatible for multiply")
        engine = self.blocks.ctx
        result_partitioner = GridPartitioner(
            self.num_row_blocks, other.num_col_blocks, engine.default_parallelism
        )
        a_dest, b_dest = self._simulate_multiply(other, result_partitioner)
        grid_cols = other.num_col_blocks

        flat_a = self.blocks.flat_map(
            lambda record: [
                (pid, (record[0], record[1])) for pid in a_dest[record[0]]
            ]
        )
        flat_b = other.blocks.flat_map(
            lambda record: [
                (pid, (record[0], record[1])) for pid in b_dest[record[0]]
            ]
        )
        cogrouped = flat_a.cogroup(
            flat_b,
            num_partitions=result_partitioner.num_partitions,
        )
        outer = self

        def products(record):
            pid, (a_blocks, b_blocks) = record
            by_k: dict[int, list] = {}
            for (k, j), block in b_blocks:
                by_k.setdefault(k, []).append((j, block))
            out = []
            for (i, k), a_block in a_blocks:
                for j, b_block in by_k.get(k, ()):
                    if result_partitioner.partition((i, j)) != pid:
                        continue
                    start = time.perf_counter()
                    # MLlib allocates one fresh Breeze product per pair.
                    product = outer._to_breeze(a_block) @ outer._to_breeze(b_block)
                    elapsed = time.perf_counter() - start
                    outer._charge(
                        elapsed,
                        outer.profile.gemm_slowdown if outer.profile else 1.0,
                    )
                    out.append(((i, j), product))
            return out

        partial = cogrouped.flat_map(products)
        combined = partial.reduce_by_key(
            lambda a, b: a + b, partitioner=result_partitioner
        )
        return BlockMatrix(
            combined,
            self.rows_per_block, other.cols_per_block,
            self.num_rows, other.num_cols, self.profile,
        )

    def _simulate_multiply(
        self, other: "BlockMatrix", partitioner: GridPartitioner
    ) -> tuple[dict, dict]:
        """Destination partitions per block (MLlib's ``simulateMultiply``).

        For dense matrices every A-block ``(i, k)`` is needed by the
        partitions holding result row band ``i``, and every B-block
        ``(k, j)`` by the partitions holding result column band ``j``.
        """
        a_dest: dict[tuple[int, int], list[int]] = {}
        b_dest: dict[tuple[int, int], list[int]] = {}
        for i in range(self.num_row_blocks):
            for k in range(self.num_col_blocks):
                dests = {
                    partitioner.partition((i, j))
                    for j in range(other.num_col_blocks)
                }
                a_dest[(i, k)] = sorted(dests)
        for k in range(other.num_row_blocks):
            for j in range(other.num_col_blocks):
                dests = {
                    partitioner.partition((i, j))
                    for i in range(self.num_row_blocks)
                }
                b_dest[(k, j)] = sorted(dests)
        return a_dest, b_dest

    def transpose(self) -> "BlockMatrix":
        """Transpose blocks and their coordinates."""
        outer = self

        def flip(record):
            (bi, bj), block = record
            start = time.perf_counter()
            result = outer._to_breeze(block).T.copy()
            outer._charge(
                time.perf_counter() - start,
                outer.profile.elementwise_slowdown if outer.profile else 1.0,
            )
            return (bj, bi), result

        return BlockMatrix(
            self.blocks.map(flip),
            self.cols_per_block, self.rows_per_block,
            self.num_cols, self.num_rows, self.profile,
        )

    def map_blocks(self, fn: Callable[[np.ndarray], np.ndarray]) -> "BlockMatrix":
        """Apply ``fn`` to every block (how MLlib users scale a matrix —
        there is no public scalar-multiply on ``BlockMatrix``)."""
        outer = self

        def apply(record):
            key, block = record
            start = time.perf_counter()
            result = fn(outer._to_breeze(block))
            outer._charge(
                time.perf_counter() - start,
                outer.profile.elementwise_slowdown if outer.profile else 1.0,
            )
            return key, result

        return BlockMatrix(
            self.blocks.map(apply),
            self.rows_per_block, self.cols_per_block,
            self.num_rows, self.num_cols, self.profile,
        )

    def cache(self) -> "BlockMatrix":
        self.blocks.cache()
        return self

    def to_numpy(self) -> np.ndarray:
        out = np.zeros((self.num_rows, self.num_cols))
        for (bi, bj), block in self.blocks.collect():
            out[
                bi * self.rows_per_block : bi * self.rows_per_block + block.shape[0],
                bj * self.cols_per_block : bj * self.cols_per_block + block.shape[1],
            ] = block
        return out

    def __repr__(self) -> str:
        return (
            f"BlockMatrix({self.num_rows}x{self.num_cols}, "
            f"block={self.rows_per_block}x{self.cols_per_block})"
        )
