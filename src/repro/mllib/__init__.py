"""MLlib-workalike distributed linear algebra (the comparison baseline).

Reproduces Spark MLlib's ``BlockMatrix`` on our engine with the same
plan shapes as the real implementation, so SAC and the baseline compete
on the same substrate exactly as they both run on Spark in the paper.
"""

from .blockmatrix import PURE_JVM_BREEZE, BlockMatrix, KernelProfile

__all__ = ["BlockMatrix", "KernelProfile", "PURE_JVM_BREEZE"]
