"""Job metrics and the simulated-time cost model.

Every action (collect, count, ...) runs as a *job*.  The engine records,
per job and cumulatively:

* tasks launched and stages executed,
* records and measured bytes pushed through each shuffle,
* wall-clock compute time actually spent in user functions.

From those measurements :meth:`MetricsRegistry.simulated_time` derives the
time the same job would take on a :class:`~repro.engine.cluster.ClusterSpec`:
compute parallelizes over the cluster's cores, every task pays a launch
overhead (amortized over the available slots), and every shuffled byte
crosses the network at the spec's bandwidth.  The benchmark harness reports
both wall-clock and simulated time; the paper-shape comparisons use the
simulated time because that is where data-shuffling costs, the paper's
dominant factor, live.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .cluster import ClusterSpec


@dataclass
class StageCost:
    """Per-stage task timing, for makespan-aware simulation.

    Besides the makespan inputs (total and longest task), the stage keeps
    a small per-task wall-time histogram (p50/p95/max) so stragglers are
    visible per stage: a healthy stage has ``longest ≈ p50``, a skewed or
    delayed one has ``longest >> p50``.
    """

    num_tasks: int
    total_seconds: float
    longest_task_seconds: float
    p50_seconds: float = 0.0
    p95_seconds: float = 0.0

    def histogram(self) -> dict:
        """The stage's task-time histogram as a plain dict (for reports)."""
        return {
            "num_tasks": self.num_tasks,
            "total_seconds": self.total_seconds,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "max_seconds": self.longest_task_seconds,
        }


def _percentile(ordered: list, fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class JobMetrics:
    """Counters for one job (one action call)."""

    job_id: int
    description: str = ""
    stages: int = 0
    tasks: int = 0
    shuffles: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    #: Cost-model prediction recorded when a plan with an estimate runs;
    #: compared against the measured ``shuffle_bytes`` to validate the
    #: planner's model (estimated-vs-actual).
    estimated_shuffle_bytes: int = 0
    compute_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: BlockManager counters: cached-partition reads served from memory,
    #: reads that had to recompute, bytes dropped by LRU eviction, and
    #: shuffles answered from a retained equal shuffle's map outputs.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evicted_bytes: int = 0
    shuffle_reuses: int = 0
    #: Out-of-core tier counters (all zero unless a ``memory_limit`` is
    #: configured): bytes serialized to the spill store, bytes restored
    #: from it (each restore consumes its spill object, so ``restored
    #: <= spilled`` always), restore events, reads served from a block
    #: the prefetcher brought back ahead of time, and wall time consumers
    #: spent blocked on synchronous restores (the stall prefetch hides).
    spilled_bytes: int = 0
    restored_bytes: int = 0
    spill_restores: int = 0
    prefetch_hits: int = 0
    restore_stall_seconds: float = 0.0
    #: Fused-kernel cache lookups (:class:`repro.planner.codegen.KernelCache`):
    #: a hit reuses a previously compiled per-partition kernel, a miss
    #: compiles the generated source.  Both zero unless fusion is on.
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    #: Tasks re-executed after a :class:`~repro.engine.scheduler.TransientTaskError`
    #: (bounded by the runner's ``max_task_retries``).
    task_retries: int = 0
    stage_costs: list = field(default_factory=list)
    #: Runtime re-optimizations (:class:`~repro.engine.adaptive.AdaptiveDecision`)
    #: taken while this job ran: coalesced reduce phases, skew splits,
    #: join-strategy downgrades.  Empty whenever adaptive execution is off.
    adaptive_decisions: list = field(default_factory=list)

    def merge(self, other: "JobMetrics") -> None:
        """Accumulate ``other``'s counters into this one."""
        self.stages += other.stages
        self.tasks += other.tasks
        self.shuffles += other.shuffles
        self.shuffle_records += other.shuffle_records
        self.shuffle_bytes += other.shuffle_bytes
        self.estimated_shuffle_bytes += other.estimated_shuffle_bytes
        self.compute_seconds += other.compute_seconds
        self.wall_seconds += other.wall_seconds
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evicted_bytes += other.cache_evicted_bytes
        self.shuffle_reuses += other.shuffle_reuses
        self.spilled_bytes += other.spilled_bytes
        self.restored_bytes += other.restored_bytes
        self.spill_restores += other.spill_restores
        self.prefetch_hits += other.prefetch_hits
        self.restore_stall_seconds += other.restore_stall_seconds
        self.kernel_cache_hits += other.kernel_cache_hits
        self.kernel_cache_misses += other.kernel_cache_misses
        self.task_retries += other.task_retries
        self.stage_costs.extend(other.stage_costs)
        self.adaptive_decisions.extend(other.adaptive_decisions)

    def simulated_time(self, cluster: ClusterSpec) -> float:
        """Time this job would take on ``cluster`` (seconds).

        Stages serialize at shuffle boundaries, so each stage contributes
        its *makespan lower bound*::

            stage  = max(total_compute / total_cores, longest_task)
            launch = overhead * ceil(tasks / total_cores)   per stage
            network = shuffle_bytes / network_bandwidth     per job

        The ``longest_task`` term is what exposes key skew: a join whose
        key has only G distinct values runs on at most G cores no matter
        how large the cluster is (this is the dominant cost of the
        paper's join+group-by matrix multiplication, whose join key is
        the shared dimension).  Measured compute is multiplied by the
        cluster's ``compute_scale`` before conversion.
        """
        cores = max(1, cluster.total_cores)
        scale = cluster.compute_scale
        launch = 0.0
        compute = 0.0
        attributed = 0.0
        for stage in self.stage_costs:
            launch += cluster.task_launch_overhead * math.ceil(
                stage.num_tasks / cores
            )
            compute += max(
                stage.total_seconds * scale / cores,
                stage.longest_task_seconds * scale,
            )
            attributed += stage.total_seconds
        # Compute recorded outside any stage (e.g. baseline kernel-profile
        # adjustments) parallelizes ideally.
        extra = max(0.0, self.compute_seconds - attributed)
        compute += extra * scale / cores
        network = self.shuffle_bytes / cluster.network_bandwidth
        return launch + compute + network

    def stage_histograms(self) -> list[dict]:
        """Per-stage task-time histograms (p50/p95/max), in stage order."""
        return [stage.histogram() for stage in self.stage_costs]

    def critical_path_seconds(self) -> float:
        """Lower bound on makespan: the longest task of every stage.

        Stages serialize at shuffle barriers under staged execution, so
        the sum of per-stage longest tasks is the barrier-model critical
        path.  A pipelined run can beat it by overlapping one stage's
        straggler with another stage's work — comparing this number
        against measured wall time is how the harness attributes a
        pipelining win.
        """
        return sum(stage.longest_task_seconds for stage in self.stage_costs)

    def straggler_ratio(self) -> float:
        """Worst per-stage ``longest_task / p50`` over the job's stages.

        1.0 means perfectly balanced stages; a stage with one task
        delayed to 5x the median reports ~5.
        """
        ratios = [
            stage.longest_task_seconds / stage.p50_seconds
            for stage in self.stage_costs
            if stage.p50_seconds > 1e-12
        ]
        return max(ratios) if ratios else 1.0

    def spill_hit_rate(self) -> float:
        """Fraction of off-memory reads answered by the spill tier.

        A read that misses memory either restores from the spill store
        (a spill hit) or falls back to lineage recomputation (a cache
        miss).  1.0 means every evicted block came back from disk; 0.0
        with spills recorded means everything had to be recomputed.
        """
        lookups = self.spill_restores + self.cache_misses
        return self.spill_restores / lookups if lookups else 0.0

    def summary(self) -> str:
        """One-line human-readable counter summary."""
        return (
            f"job {self.job_id} [{self.description}]: "
            f"{self.stages} stages, {self.tasks} tasks, "
            f"{self.shuffles} shuffles "
            f"({self.shuffle_records} records / {self.shuffle_bytes} bytes), "
            f"compute {self.compute_seconds:.4f}s, wall {self.wall_seconds:.4f}s"
        )


class TaskTimer:
    """Times one task, excluding nested timed work.

    Lazy evaluation means a consumer task can trigger an entire upstream
    shuffle inside its own timer; the shuffle's map tasks are timed (and
    recorded as their own stage) by their own timers, so this timer's
    ``own_seconds`` subtracts all nested timed intervals to avoid double
    counting.
    """

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._start = 0.0
        self.nested_seconds = 0.0
        self.own_seconds = 0.0

    def __enter__(self) -> "TaskTimer":
        self._registry._timer_stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        self.own_seconds = max(0.0, elapsed - self.nested_seconds)
        stack = self._registry._timer_stack
        stack.pop()
        if stack:
            stack[-1].nested_seconds += elapsed


@dataclass
class TenantCounters:
    """Per-tenant counters on a shared substrate's registry.

    Engine-level counters (stages, shuffles, cache traffic) stay in the
    shared :class:`JobMetrics` stream — RDD lineages execute against the
    view that *built* the data, so attributing them per querying tenant
    would lie whenever tenants share a hosted dataset.  These counters
    are instead recorded at the query/front-door level, where the tenant
    is unambiguous.
    """

    tenant: str
    queries: int = 0
    errors: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    shuffle_reuses: int = 0
    admission_waits: int = 0
    admission_wait_seconds: float = 0.0
    quota_evictions: int = 0
    quota_evicted_bytes: int = 0
    #: Rolling per-query wall latencies (seconds); bounded so a
    #: long-lived serve substrate cannot grow without limit.
    latencies: deque = field(default_factory=lambda: deque(maxlen=4096))

    def latency_percentile(self, fraction: float) -> float:
        return _percentile(sorted(self.latencies), fraction)

    def report(self) -> dict:
        hits, misses = self.plan_cache_hits, self.plan_cache_misses
        lookups = hits + misses
        return {
            "tenant": self.tenant,
            "queries": self.queries,
            "errors": self.errors,
            "plan_cache_hits": hits,
            "plan_cache_misses": misses,
            "plan_cache_hit_rate": hits / lookups if lookups else 0.0,
            "shuffle_reuses": self.shuffle_reuses,
            "admission_waits": self.admission_waits,
            "admission_wait_seconds": self.admission_wait_seconds,
            "quota_evictions": self.quota_evictions,
            "quota_evicted_bytes": self.quota_evicted_bytes,
            "latency_p50_seconds": self.latency_percentile(0.50),
            "latency_p95_seconds": self.latency_percentile(0.95),
        }


@dataclass
class MetricsRegistry:
    """Cumulative metrics for one :class:`~repro.engine.context.EngineContext`.

    The registry keeps the full per-job history plus a running total.  A
    job is opened by the scheduler around each action; nested actions
    (e.g. a ``count`` issued while building a broadcast inside another
    job) merge into the enclosing job.
    """

    total: JobMetrics = field(default_factory=lambda: JobMetrics(job_id=-1, description="total"))
    jobs: list[JobMetrics] = field(default_factory=list)
    #: Per-tenant front-door counters (multi-tenant substrates only;
    #: empty for a classic single-session engine).
    tenants: dict = field(default_factory=dict)
    _active: Optional[JobMetrics] = None
    _next_job_id: int = 0
    _timers: threading.local = field(default_factory=threading.local)
    #: Per-thread "which tenant's query is this thread running" marker
    #: (set by :meth:`tenant_scope`); lets engine-level events recorded
    #: on the driver thread — shuffle reuses, chiefly — attribute to the
    #: tenant even when the reused lineage is owned by another view.
    _tenant_scope: threading.local = field(default_factory=threading.local)
    #: Serializes counter mutation: with a parallel runner, nested
    #: materialization can record stages/shuffles from worker threads
    #: while the driver holds the job open.  Timer stacks stay
    #: per-thread and unlocked.
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def _timer_stack(self) -> list:
        """Per-thread timer stack (threaded runners time independently)."""
        stack = getattr(self._timers, "stack", None)
        if stack is None:
            stack = []
            self._timers.stack = stack
        return stack

    def task_timer(self) -> TaskTimer:
        """A context manager timing one task (nested work excluded)."""
        return TaskTimer(self)

    def inflate_task(self, seconds: float) -> None:
        """Add simulated-only compute to the innermost running task.

        Used by baselines whose local kernels would be slower on the
        simulated substrate than the NumPy that executed here (e.g. the
        MLlib workalike's pure-JVM Breeze gemm): the extra time joins the
        task's own time, so stage makespans and skew see it.  Outside any
        task it degrades to plain :meth:`record_compute`.
        """
        stack = self._timer_stack
        if stack:
            stack[-1].nested_seconds -= seconds
        else:
            self.record_compute(seconds)

    @contextmanager
    def job(self, description: str = "") -> Iterator[JobMetrics]:
        """Open a job scope; counters recorded inside attribute to it."""
        if self._active is not None:
            # Nested action: account into the already-active job.
            yield self._active
            return
        metrics = JobMetrics(job_id=self._next_job_id, description=description)
        self._next_job_id += 1
        self._active = metrics
        start = time.perf_counter()
        try:
            yield metrics
        finally:
            with self._lock:
                metrics.wall_seconds = time.perf_counter() - start
                self._active = None
                self.jobs.append(metrics)
                self.total.merge(metrics)

    @property
    def current(self) -> JobMetrics:
        """The active job, or the cumulative total outside any job."""
        return self._active if self._active is not None else self.total

    def record_stage(
        self, num_tasks: int, task_seconds: Optional[list[float]] = None
    ) -> None:
        """Record a stage of ``num_tasks`` tasks.

        ``task_seconds`` carries the per-task compute times; when given,
        the times are also accumulated into ``compute_seconds`` and the
        stage's makespan data is kept for the cost model.
        """
        with self._lock:
            job = self.current
            job.stages += 1
            job.tasks += num_tasks
            if task_seconds:
                total = sum(task_seconds)
                job.compute_seconds += total
                ordered = sorted(task_seconds)
                job.stage_costs.append(
                    StageCost(
                        num_tasks,
                        total,
                        ordered[-1],
                        p50_seconds=_percentile(ordered, 0.50),
                        p95_seconds=_percentile(ordered, 0.95),
                    )
                )
            else:
                job.stage_costs.append(StageCost(num_tasks, 0.0, 0.0))

    def record_shuffle(self, records: int, nbytes: int) -> None:
        """Record one shuffle's measured volume."""
        with self._lock:
            job = self.current
            job.shuffles += 1
            job.shuffle_records += records
            job.shuffle_bytes += nbytes

    def record_compute(self, seconds: float) -> None:
        """Record wall time spent inside user functions."""
        with self._lock:
            self.current.compute_seconds += seconds

    def record_estimated_shuffle(self, nbytes: int) -> None:
        """Record a plan's predicted shuffle volume (at execution time)."""
        with self._lock:
            self.current.estimated_shuffle_bytes += nbytes

    def record_adaptive_decision(self, decision) -> None:
        """Record one runtime re-optimization taken by the adaptive layer."""
        with self._lock:
            self.current.adaptive_decisions.append(decision)

    # -- BlockManager counters ------------------------------------------

    def record_cache_hit(self) -> None:
        """A cached partition read was served from memory."""
        with self._lock:
            self.current.cache_hits += 1

    def record_cache_miss(self) -> None:
        """A cached partition read had to (re)compute its partition."""
        with self._lock:
            self.current.cache_misses += 1

    def record_cache_eviction(self, nbytes: int) -> None:
        """The block manager dropped ``nbytes`` of cached data under pressure."""
        with self._lock:
            self.current.cache_evicted_bytes += nbytes

    def record_shuffle_reuse(self) -> None:
        """An equal shuffle's retained map outputs answered a new shuffle."""
        with self._lock:
            self.current.shuffle_reuses += 1
        tenant = getattr(self._tenant_scope, "name", "")
        if tenant:
            self.record_tenant_shuffle_reuse(tenant)

    # -- Spill-tier counters --------------------------------------------

    def record_spill(self, nbytes: int) -> None:
        """A block left memory for the spill store (``nbytes`` written)."""
        with self._lock:
            self.current.spilled_bytes += nbytes

    def record_spill_restore(
        self, nbytes: int, stall_seconds: float = 0.0
    ) -> None:
        """A spilled block came back into memory.

        ``stall_seconds`` is the time the consumer spent blocked waiting
        for the restore (zero when the prefetcher did the work ahead of
        demand).
        """
        with self._lock:
            job = self.current
            job.restored_bytes += nbytes
            job.spill_restores += 1
            job.restore_stall_seconds += stall_seconds

    def record_restore_stall(self, seconds: float) -> None:
        """A consumer blocked ``seconds`` waiting on an in-flight restore."""
        with self._lock:
            self.current.restore_stall_seconds += seconds

    def record_prefetch_hit(self) -> None:
        """A read was served from a block the prefetcher restored."""
        with self._lock:
            self.current.prefetch_hits += 1

    def record_task_retry(self) -> None:
        """A task was re-executed after a transient failure."""
        with self._lock:
            self.current.task_retries += 1

    # -- Fused-kernel cache counters ------------------------------------

    def record_kernel_cache_hit(self) -> None:
        """A fused chain reused an already-compiled kernel."""
        with self._lock:
            self.current.kernel_cache_hits += 1

    def record_kernel_cache_miss(self) -> None:
        """A fused chain's generated source was compiled fresh."""
        with self._lock:
            self.current.kernel_cache_misses += 1

    # -- Per-tenant counters --------------------------------------------

    @contextmanager
    def tenant_scope(self, tenant: str) -> Iterator[None]:
        """Mark this thread as running ``tenant``'s query.

        Engine events that cannot see the tenant through their lineage
        (a reused shuffle whose data another view owns, typically the
        shared-dataset loader) attribute to the scoped tenant instead.
        Thread-local, so concurrent tenants on other threads are
        unaffected; work handed to pool threads inside the scope stays
        unattributed (the global counters still see it).
        """
        previous = getattr(self._tenant_scope, "name", "")
        self._tenant_scope.name = tenant
        try:
            yield
        finally:
            self._tenant_scope.name = previous

    def tenant(self, name: str) -> TenantCounters:
        """The (lazily created) counter block for one tenant."""
        with self._lock:
            counters = self.tenants.get(name)
            if counters is None:
                counters = TenantCounters(tenant=name)
                self.tenants[name] = counters
            return counters

    def record_tenant_query(
        self, tenant: str, wall_seconds: float, error: bool = False
    ) -> None:
        """One front-door query finished for ``tenant``."""
        counters = self.tenant(tenant)
        with self._lock:
            counters.queries += 1
            if error:
                counters.errors += 1
            else:
                counters.latencies.append(wall_seconds)

    def record_tenant_plan_cache(self, tenant: str, hit: bool) -> None:
        """A compile for ``tenant`` hit (or missed) the shared plan cache."""
        counters = self.tenant(tenant)
        with self._lock:
            if hit:
                counters.plan_cache_hits += 1
            else:
                counters.plan_cache_misses += 1

    def record_tenant_shuffle_reuse(self, tenant: str, count: int = 1) -> None:
        """``tenant``'s query was answered partly by retained shuffle outputs."""
        counters = self.tenant(tenant)
        with self._lock:
            counters.shuffle_reuses += count

    def record_tenant_admission_wait(self, tenant: str, seconds: float) -> None:
        """``tenant`` queued ``seconds`` at the admission gate."""
        counters = self.tenant(tenant)
        with self._lock:
            counters.admission_waits += 1
            counters.admission_wait_seconds += seconds

    def record_tenant_quota_eviction(self, tenant: str, nbytes: int) -> None:
        """``tenant`` evicted ``nbytes`` of its own blocks to stay in quota."""
        counters = self.tenant(tenant)
        with self._lock:
            counters.quota_evictions += 1
            counters.quota_evicted_bytes += nbytes

    def tenant_report(self) -> dict:
        """Per-tenant counter reports, keyed by tenant name."""
        with self._lock:
            return {name: c.report() for name, c in self.tenants.items()}

    def simulated_time(self, cluster: ClusterSpec) -> float:
        """Simulated time of everything recorded so far on ``cluster``."""
        return self.total.simulated_time(cluster)

    def reset(self) -> None:
        """Forget all history (used between benchmark repetitions)."""
        self.total = JobMetrics(job_id=-1, description="total")
        self.jobs.clear()
        self.tenants.clear()
        self._active = None
        self._next_job_id = 0

    def snapshot(self) -> JobMetrics:
        """Copy of the cumulative totals, for before/after deltas."""
        copy = JobMetrics(job_id=self.total.job_id, description=self.total.description)
        copy.merge(self.total)
        return copy

    def delta_since(self, snapshot: JobMetrics) -> JobMetrics:
        """Counters accumulated since ``snapshot`` was taken."""
        delta = JobMetrics(job_id=-1, description="delta")
        delta.merge(self.total)
        delta.stages -= snapshot.stages
        delta.tasks -= snapshot.tasks
        delta.shuffles -= snapshot.shuffles
        delta.shuffle_records -= snapshot.shuffle_records
        delta.shuffle_bytes -= snapshot.shuffle_bytes
        delta.estimated_shuffle_bytes -= snapshot.estimated_shuffle_bytes
        delta.compute_seconds -= snapshot.compute_seconds
        delta.wall_seconds -= snapshot.wall_seconds
        delta.cache_hits -= snapshot.cache_hits
        delta.cache_misses -= snapshot.cache_misses
        delta.cache_evicted_bytes -= snapshot.cache_evicted_bytes
        delta.shuffle_reuses -= snapshot.shuffle_reuses
        delta.spilled_bytes -= snapshot.spilled_bytes
        delta.restored_bytes -= snapshot.restored_bytes
        delta.spill_restores -= snapshot.spill_restores
        delta.prefetch_hits -= snapshot.prefetch_hits
        delta.restore_stall_seconds -= snapshot.restore_stall_seconds
        delta.kernel_cache_hits -= snapshot.kernel_cache_hits
        delta.kernel_cache_misses -= snapshot.kernel_cache_misses
        delta.task_retries -= snapshot.task_retries
        delta.stage_costs = delta.stage_costs[len(snapshot.stage_costs):]
        delta.adaptive_decisions = delta.adaptive_decisions[
            len(snapshot.adaptive_decisions):
        ]
        return delta
