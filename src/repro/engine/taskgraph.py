"""Task graphs: per-(stage, partition) scheduling without stage barriers.

The staged scheduler materializes wide dependencies one stage at a time —
every reduce task of a shuffle waits for *all* of its map tasks, even the
ones whose output it never reads, and a single straggling map task stalls
the whole downstream program.  This module compiles a lowered RDD program
into an explicit graph of fine-grained tasks instead:

* one **map task** per map slot of every in-flight shuffle,
* one **reduce task** per (possibly coalesced) reduce group,
* one **combine/drain/merge task** per partition of co-partitioned wide
  nodes,
* one **result task** per partition of the job's target RDD,

with explicit parent/child edges (the numpywren ``find_parents`` /
``find_children`` / ``starters`` / ``terminators`` shape), so the runner
can fire each task the moment the specific partitions it reads have
landed.  Synthetic tasks (``fn is None``) act as phase barriers and
planning hooks; their ``on_complete`` callbacks run under the graph's
external lock and may *extend* the graph — this is how adaptive
decisions (reduce coalescing, skew splitting) are taken mid-flight from
measured map statistics instead of behind a global barrier.

Metric parity: every stage/task/shuffle counter a staged run records is
recorded here too, with identical totals — map buckets concatenate in
deterministic slot order (see ``PipelinedShuffle``), reduce groups come
from the same adaptive planner, and per-parent cogroup merges are
chained per split so key insertion order is byte-identical.  Only the
*recording order* of stages may differ.

The graph itself is **externally synchronized**: the runner serializes
all calls to :meth:`TaskGraph.complete` / :meth:`TaskGraph.add_task`
(under its graph lock in the pipelined runner, trivially in the serial
one), so the graph keeps no lock of its own.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from .shuffle import PipelinedShuffle, ShuffleResult


class Task:
    """One schedulable unit: a key, a body, and dependency bookkeeping.

    ``fn is None`` marks a *synthetic* task (phase barrier, planning
    hook, virtual output slot): it completes inline without occupying a
    pool slot.  ``pending`` counts unmet dependencies — real parent
    edges plus any *virtual* dependencies released explicitly via
    :meth:`TaskGraph.release` (used for output slots whose producing
    task is only known dynamically).
    """

    __slots__ = (
        "key", "fn", "index", "on_complete", "result",
        "pending", "children", "parent_keys", "child_keys", "done",
    )

    def __init__(
        self,
        key: tuple,
        fn: Optional[Callable[[], Any]],
        index: int,
        on_complete: Optional[Callable[[], None]],
        pending: int,
    ):
        self.key = key
        self.fn = fn
        self.index = index
        self.on_complete = on_complete
        self.result: Any = None
        self.pending = pending
        self.children: list["Task"] = []
        self.parent_keys: list[tuple] = []
        self.child_keys: list[tuple] = []
        self.done = False

    def __lt__(self, other: "Task") -> bool:
        return self.index < other.index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else f"pending={self.pending}"
        return f"<Task {self.key!r} {state}>"


class TaskGraph:
    """A dynamic DAG of :class:`Task` nodes with dependency counters.

    Tasks may be added while the graph is executing (from ``on_complete``
    hooks); a task created with every dependency already satisfied is
    buffered and surfaces from the next :meth:`complete` (or
    :meth:`drain_ready`) call.
    """

    def __init__(self) -> None:
        self._tasks: dict[tuple, Task] = {}
        self._fresh: list[Task] = []
        self._num_done = 0

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> dict[tuple, Task]:
        return self._tasks

    def add_task(
        self,
        key: tuple,
        fn: Optional[Callable[[], Any]] = None,
        deps: Any = (),
        virtual_deps: int = 0,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> Task:
        if key in self._tasks:
            raise ValueError(f"duplicate task key {key!r}")
        task = Task(key, fn, len(self._tasks), on_complete, virtual_deps)
        self._tasks[key] = task
        for parent in deps:
            task.parent_keys.append(parent.key)
            parent.child_keys.append(key)
            if not parent.done:
                parent.children.append(task)
                task.pending += 1
        if task.pending == 0:
            self._fresh.append(task)
        return task

    def add_dependency(self, child: Task, parent: Task) -> None:
        """Add an edge to a task that is known not to be ready yet.

        Only valid while ``child`` still has at least one unmet
        dependency (e.g. the planning task whose hook is calling this) —
        a ready task may already be running.
        """
        if child.done or (child.pending == 0 and not parent.done):
            raise RuntimeError(
                f"cannot add dependency to already-ready task {child.key!r}"
            )
        child.parent_keys.append(parent.key)
        parent.child_keys.append(child.key)
        if not parent.done:
            parent.children.append(child)
            child.pending += 1

    def release(self, task: Task) -> None:
        """Satisfy one virtual dependency of ``task``."""
        task.pending -= 1
        if task.pending == 0 and not task.done:
            self._fresh.append(task)

    def drain_ready(self) -> list[Task]:
        """All currently-ready tasks, in creation order (the starters)."""
        fresh, self._fresh = self._fresh, []
        fresh.sort()
        return fresh

    def complete(self, task: Task) -> list[Task]:
        """Mark ``task`` done; return newly-ready tasks in creation order.

        The task's ``on_complete`` hook runs first (it may extend the
        graph or release virtual dependencies), then the task's children
        have their counters decremented.
        """
        if task.done:
            raise RuntimeError(f"task {task.key!r} completed twice")
        task.done = True
        self._num_done += 1
        if task.on_complete is not None:
            hook, task.on_complete = task.on_complete, None
            hook()
        newly = []
        for child in task.children:
            child.pending -= 1
            if child.pending == 0:
                newly.append(child)
        task.children = []
        if self._fresh:
            newly.extend(self._fresh)
            self._fresh = []
        newly.sort()
        return newly

    def check_done(self) -> None:
        """Raise if any task never ran (a missing edge or a cycle)."""
        remaining = len(self._tasks) - self._num_done
        if remaining == 0:
            return
        stuck = [t.key for t in self._tasks.values() if not t.done][:8]
        raise RuntimeError(
            f"task graph finished with {remaining} unexecuted tasks "
            f"(missing dependency edges or a cycle); e.g. {stuck}"
        )

    # -- introspection (numpywren-style) --------------------------------

    def find_parents(self, key: tuple) -> list[tuple]:
        return list(self._tasks[key].parent_keys)

    def find_children(self, key: tuple) -> list[tuple]:
        return list(self._tasks[key].child_keys)

    def starters(self) -> list[tuple]:
        return [t.key for t in self._tasks.values() if not t.parent_keys]

    def terminators(self) -> list[tuple]:
        return [t.key for t in self._tasks.values() if not t.child_keys]


class _WideBuild:
    """Compilation record of one in-flight wide node.

    ``out_tasks[split]`` is the task whose completion guarantees the
    node's output partition ``split`` is readable through its pipeline
    slots; ``stats_task`` completes once the node's map-output
    statistics are final; ``stats()`` reads them (``None`` when the node
    never crossed the shuffle machinery).  ``has_stats`` is False when
    the accessor is known at compile time to return ``None``, so
    downstream skew planning need not wait on ``stats_task``.
    """

    def __init__(
        self,
        out_tasks: list[Task],
        stats_task: Task,
        stats: Callable[[], Any],
        has_stats: bool = True,
    ):
        self.out_tasks = out_tasks
        self.stats_task = stats_task
        self.stats = stats
        self.has_stats = has_stats


def compile_job_graph(
    rdd, func, task_seconds, metrics, runner, adaptive
) -> tuple[TaskGraph, list[Task], list]:
    """Compile one job into a task graph.

    Returns ``(graph, result_tasks, wide_nodes)``: the graph, the
    ``("result", split)`` tasks in partition order (their ``result``
    fields hold the job's answers after execution), and the wide nodes
    whose pipeline slots must be cleaned up if execution fails.
    """
    compiler = _JobCompiler(metrics, runner, adaptive)
    return compiler.compile(rdd, func, task_seconds)


class _JobCompiler:
    def __init__(self, metrics, runner, adaptive):
        self._metrics = metrics
        self._runner = runner
        self._adaptive = adaptive
        self.graph = TaskGraph()
        #: id(wide node) -> _WideBuild for nodes built by this job.
        self.builds: dict[int, _WideBuild] = {}
        self.wide_nodes: list = []

    def compile(self, rdd, func, task_seconds):
        self._collect(rdd, set())
        result_tasks = [
            self.graph.add_task(
                ("result", split),
                fn=self._make_result_fn(rdd, func, split, task_seconds),
                deps=self.narrow_deps(rdd, split),
            )
            for split in range(rdd.num_partitions)
        ]
        return self.graph, result_tasks, self.wide_nodes

    def _make_result_fn(self, rdd, func, split, task_seconds):
        def fn():
            with self._metrics.task_timer() as timer:
                self._runner.fault_point("result", split)
                result = func(rdd.iterator(split))
            task_seconds[split] = timer.own_seconds
            return result

        return fn

    # -- lineage walk ---------------------------------------------------

    def _collect(self, node, seen: set[int]) -> None:
        """Postorder walk mirroring ``prepare_execution``'s stopping rules."""
        from .rdd import CoGroupedRDD, ShuffledRDD

        if id(node) in seen:
            return
        seen.add(id(node))
        wide = isinstance(node, (ShuffledRDD, CoGroupedRDD))
        if wide and node._output is not None:
            return
        if node._cached and node.ctx.block_manager.contains_all(
            node.id, node.num_partitions
        ):
            return
        for dep in node.dependencies:
            self._collect(dep, seen)
        if wide:
            self._build_wide(node)

    def _build_wide(self, node) -> None:
        from .rdd import CoGroupedRDD

        if isinstance(node, CoGroupedRDD):
            self._build_cogroup(node)
            return
        if node._parent.partitioner == node.partitioner:
            self._build_local_combine(node)
            return
        blocks = node.ctx.block_manager
        opt_in = node._reuse_opt_in or node._parent._reuse_opt_in
        reused = blocks.lookup_shuffle(
            node._parent.id, node.partitioner, node._aggregator, opt_in=opt_in
        )
        if reused is not None:
            # Compile-time shuffle reuse: the node is a materialized leaf.
            node._map_stats = getattr(reused, "stats", None)
            node._output = reused
            return
        self._build_shuffle(node, opt_in)

    # -- wide node builders ---------------------------------------------

    def _build_local_combine(self, node) -> None:
        """Co-partitioned ShuffledRDD: one combine task per partition."""
        graph = self.graph
        node._pipeline_install()
        self.wide_nodes.append(node)
        count = node._parent.num_partitions
        seconds = [0.0] * count
        combine_tasks = []
        for split in range(count):

            def fn(split=split):
                combined, own = node._combine_partition(split)
                node._pipeline_fill(split, combined)
                seconds[split] = own

            combine_tasks.append(
                graph.add_task(
                    ("combine", node.id, split),
                    fn=fn,
                    deps=self.narrow_deps(node._parent, split),
                )
            )

        def finalize():
            self._metrics.record_stage(count, list(seconds))
            node._pipeline_promote(node._pipeline_slots)

        done = graph.add_task(
            ("combined", node.id), deps=combine_tasks, on_complete=finalize
        )
        self.builds[id(node)] = _WideBuild(
            combine_tasks, done, lambda: None, has_stats=False
        )

    def _build_shuffle(self, node, opt_in: bool) -> None:
        """ShuffledRDD whose data really crosses the shuffle machinery."""
        graph = self.graph
        metrics = self._metrics
        adaptive = self._adaptive
        parent = node._parent
        node._pipeline_install()
        self.wide_nodes.append(node)
        num_reducers = node.num_partitions
        shuffle = PipelinedShuffle(
            metrics, self._runner, node.partitioner, node._aggregator,
            stage_label=str(node.id),
        )
        # Virtual output slots: released when the partition's data lands
        # (directly after the map phase without an aggregator, from the
        # owning reduce task with one).
        out_tasks = [
            graph.add_task(("out", node.id, r), virtual_deps=1)
            for r in range(num_reducers)
        ]

        def add_map_task(slot, partition, records_fn, deps):
            def fn():
                shuffle.run_map_slot(slot, records_fn(), partition)

            return graph.add_task(("map", node.id) + slot, fn=fn, deps=deps)

        def normal_map_task(m, deps):
            return add_map_task(
                (m, 0), m, lambda m=m: parent.iterator(m), deps
            )

        def chunk_map_tasks(m, chunks, chain):
            return [
                add_map_task(
                    (m, c), m,
                    lambda m=m, chunk=chunk: adaptive.rebuild_chain(
                        chain, m, chunk
                    ),
                    (),
                )
                for c, chunk in enumerate(chunks)
            ]

        def maps_done_hook():
            buckets, stats = shuffle.finish_map_phase()
            blocks = node.ctx.block_manager
            if node._aggregator is None:
                for r in range(num_reducers):
                    node._pipeline_fill(r, buckets[r])
                node._map_stats = stats
                node._pipeline_promote(buckets)
                # Register the promoted handle (identical to ``buckets``
                # without a spill tier; a managed, spillable output with
                # one) so registry reuse survives eviction.
                blocks.register_shuffle(
                    parent.id, node.partitioner, None, node._output,
                    opt_in=opt_in,
                )
                for r in range(num_reducers):
                    graph.release(out_tasks[r])
                return
            groups = None
            if adaptive is not None:
                groups = adaptive.plan_reduce_groups(stats)
            if groups is None:
                groups = [[r] for r in range(num_reducers)]
            reduce_seconds = [0.0] * len(groups)
            reduce_tasks = []
            for gindex, group in enumerate(groups):

                def fn(gindex=gindex, group=group):
                    merged_buckets, own = shuffle.run_reduce_group(group)
                    for bid, merged in merged_buckets:
                        node._pipeline_fill(bid, merged)
                    reduce_seconds[gindex] = own

                def release_group(group=group):
                    for bid in group:
                        graph.release(out_tasks[bid])

                reduce_tasks.append(
                    graph.add_task(
                        ("reduce", node.id, group[0]),
                        fn=fn,
                        deps=[maps_done],
                        on_complete=release_group,
                    )
                )

            def reduces_done_hook():
                metrics.record_stage(len(groups), list(reduce_seconds))
                merged = ShuffleResult(node._pipeline_slots)
                merged.stats = stats
                node._map_stats = stats
                node._pipeline_promote(merged)
                blocks.register_shuffle(
                    parent.id, node.partitioner, node._aggregator,
                    node._output, opt_in=opt_in,
                )

            graph.add_task(
                ("reduces-done", node.id),
                deps=reduce_tasks,
                on_complete=reduces_done_hook,
            )

        # Map-phase planning.  With adaptive skew splitting enabled and
        # the skew source still in flight in this very graph, planning is
        # deferred behind the source's statistics task — which costs
        # nothing, because every map task's data dependency (the source's
        # output partitions) already covers the stats barrier.
        source = None
        if adaptive is not None and adaptive.enabled:
            source = adaptive.find_skew_source(parent)
        source_build = None
        chain = source_node = None
        if source is not None:
            chain, source_node = source
            source_build = self.builds.get(id(source_node))
            if source_build is not None and not source_build.has_stats:
                source = source_build = None

        if source_build is None:
            # Static planning: the skew source (if any) is already
            # materialized, exactly like the staged path.
            splits: dict[int, int] = {}
            stats = base_output = None
            splittable = False
            if source is not None:
                stats = source_node.output_statistics()
                if (
                    stats is not None
                    and stats.num_partitions == source_node.num_partitions
                ):
                    splits = adaptive._plan_skew_splits(stats)
                if splits:
                    base_output = source_node._materialize()
                    splittable = getattr(
                        source_node, "_splittable_values", False
                    )
            map_tasks = []
            for m in range(parent.num_partitions):
                chunks = None
                if m in splits:
                    chunks = adaptive.plan_partition_chunks(
                        stats, splits, m, base_output[m], splittable
                    )
                if chunks is None:
                    map_tasks.append(
                        normal_map_task(m, self.narrow_deps(parent, m))
                    )
                else:
                    map_tasks.extend(chunk_map_tasks(m, chunks, chain))
            maps_done = graph.add_task(
                ("maps-done", node.id),
                deps=map_tasks,
                on_complete=maps_done_hook,
            )
        else:
            # Deferred planning: decide skew splits once the source's
            # map statistics land; chunk each hot partition as soon as
            # that specific partition lands.
            def source_partition(pid):
                slots = source_node._pipeline_slots
                if slots is not None:
                    return slots[pid]
                return source_node._materialize()[pid]

            def plan_hook():
                stats = source_build.stats()
                splits = {}
                if (
                    stats is not None
                    and stats.num_partitions == source_node.num_partitions
                ):
                    splits = adaptive._plan_skew_splits(stats)
                splittable = getattr(source_node, "_splittable_values", False)
                for m in range(parent.num_partitions):
                    if m not in splits:
                        graph.add_dependency(
                            maps_done,
                            normal_map_task(m, self.narrow_deps(parent, m)),
                        )
                        continue

                    def chunk_hook(m=m, stats=stats, splits=splits):
                        chunks = adaptive.plan_partition_chunks(
                            stats, splits, m, source_partition(m), splittable
                        )
                        if chunks is None:
                            graph.add_dependency(
                                maps_done, normal_map_task(m, ())
                            )
                        else:
                            for task in chunk_map_tasks(m, chunks, chain):
                                graph.add_dependency(maps_done, task)

                    chunk_plan = graph.add_task(
                        ("chunk-plan", node.id, m),
                        deps=[source_build.out_tasks[m]],
                        on_complete=chunk_hook,
                    )
                    graph.add_dependency(maps_done, chunk_plan)

            plan_task = graph.add_task(
                ("plan", node.id),
                deps=[source_build.stats_task],
                on_complete=plan_hook,
            )
            maps_done = graph.add_task(
                ("maps-done", node.id),
                deps=[plan_task],
                on_complete=maps_done_hook,
            )

        self.builds[id(node)] = _WideBuild(
            out_tasks, maps_done, lambda: shuffle.stats
        )

    def _build_cogroup(self, node) -> None:
        """CoGroupedRDD: per-parent bucket tasks + chained per-split merges.

        Merges for split ``p`` are chained across parents (parent ``i``'s
        merge depends on parent ``i-1``'s) so each key's value lists keep
        parent order and the grouped tables match the staged run exactly;
        different splits still pipeline independently.
        """
        graph = self.graph
        metrics = self._metrics
        runner = self._runner
        parents = node._parents
        arity = len(parents)
        num_parts = node.num_partitions
        node._pipeline_install()
        self.wide_nodes.append(node)
        node._parent_stats = [None] * arity
        blocks = node.ctx.block_manager

        grouped: list[dict] = [{} for _ in range(num_parts)]
        merge_seconds = [0.0] * num_parts
        stats_deps: list[Task] = []
        any_local = False
        prev_merges: Optional[list[Task]] = None

        for index, parent in enumerate(parents):
            if parent.partitioner == node.partitioner:
                any_local = True
                records_store: list = [None] * parent.num_partitions
                drain_seconds = [0.0] * parent.num_partitions
                drain_tasks = []
                for p in range(parent.num_partitions):

                    def fn(
                        p=p, index=index, parent=parent,
                        records_store=records_store,
                        drain_seconds=drain_seconds,
                    ):
                        records, own = node._drain_partition(parent, index, p)
                        records_store[p] = records
                        drain_seconds[p] = own

                    drain_tasks.append(
                        graph.add_task(
                            ("drain", node.id, index, p),
                            fn=fn,
                            deps=self.narrow_deps(parent, p),
                        )
                    )

                def drained_hook(
                    count=parent.num_partitions, drain_seconds=drain_seconds
                ):
                    metrics.record_stage(count, list(drain_seconds))

                stats_deps.append(
                    graph.add_task(
                        ("drained", node.id, index),
                        deps=drain_tasks,
                        on_complete=drained_hook,
                    )
                )
                bucket_tasks: Optional[list[Task]] = drain_tasks

                def bucket_of(p, records_store=records_store):
                    return records_store[p]

            else:
                opt_in = node._reuse_opt_in or parent._reuse_opt_in
                reused = blocks.lookup_shuffle(
                    parent.id, node.partitioner, None, opt_in=opt_in
                )
                if reused is not None:
                    node._parent_stats[index] = getattr(reused, "stats", None)
                    bucket_tasks = None

                    def bucket_of(p, reused=reused):
                        return reused[p]

                else:
                    pshuffle = PipelinedShuffle(
                        metrics, runner, node.partitioner, None,
                        stage_label=f"{node.id}.{index}",
                    )
                    map_tasks = []
                    for m in range(parent.num_partitions):

                        def fn(m=m, pshuffle=pshuffle, parent=parent):
                            pshuffle.run_map_slot((m, 0), parent.iterator(m), m)

                        map_tasks.append(
                            graph.add_task(
                                ("map", node.id, index, m),
                                fn=fn,
                                deps=self.narrow_deps(parent, m),
                            )
                        )
                    buckets_store: dict = {}

                    def shuffled_hook(
                        pshuffle=pshuffle, index=index, parent=parent,
                        opt_in=opt_in, buckets_store=buckets_store,
                    ):
                        buckets, stats = pshuffle.finish_map_phase()
                        buckets_store["buckets"] = buckets
                        node._parent_stats[index] = stats
                        blocks.register_shuffle(
                            parent.id, node.partitioner, None, buckets,
                            opt_in=opt_in,
                        )

                    maps_done = graph.add_task(
                        ("maps-done", node.id, index),
                        deps=map_tasks,
                        on_complete=shuffled_hook,
                    )
                    stats_deps.append(maps_done)
                    # A reduce bucket concatenates every map slot, so one
                    # barrier task guards all of this parent's buckets.
                    bucket_tasks = [maps_done] * num_parts

                    def bucket_of(p, buckets_store=buckets_store):
                        return buckets_store["buckets"][p]

            merges = []
            for p in range(num_parts):
                deps: list[Task] = []
                if bucket_tasks is not None:
                    deps.append(bucket_tasks[p])
                if prev_merges is not None:
                    deps.append(prev_merges[p])
                last = index == arity - 1

                def fn(p=p, index=index, bucket_of=bucket_of, last=last):
                    with metrics.task_timer() as timer:
                        runner.fault_point(f"merge:{node.id}", p)
                        table = grouped[p]
                        for key, value in bucket_of(p):
                            entry = table.get(key)
                            if entry is None:
                                entry = tuple([] for _ in range(arity))
                                table[key] = entry
                            entry[index].append(value)
                    merge_seconds[p] += timer.own_seconds
                    if last:
                        node._pipeline_fill(p, list(table.items()))

                merges.append(
                    graph.add_task(
                        ("merge", node.id, index, p), fn=fn, deps=deps
                    )
                )
            prev_merges = merges

        last_merges = prev_merges

        def merges_done_hook():
            metrics.record_stage(num_parts, list(merge_seconds))
            node._pipeline_promote(node._pipeline_slots)

        graph.add_task(
            ("merges-done", node.id),
            deps=last_merges,
            on_complete=merges_done_hook,
        )
        stats_task = graph.add_task(("stats", node.id), deps=stats_deps)

        def stats_accessor():
            combined = None
            for stats in node._parent_stats:
                if stats is None:
                    return None
                combined = (
                    stats if combined is None else combined.merged_with(stats)
                )
            return combined

        self.builds[id(node)] = _WideBuild(
            last_merges, stats_task, stats_accessor, has_stats=not any_local
        )

    # -- narrow dependency resolution -----------------------------------

    def narrow_deps(self, node, split: int, acc: Optional[list] = None) -> list:
        """Tasks that must land before partition ``split`` of ``node``
        can be computed, following the same per-partition wiring the
        narrow ``compute`` methods use."""
        from .rdd import (
            CartesianRDD, CoalescedRDD, CoGroupedRDD, MapPartitionsRDD,
            ParallelCollectionRDD, ShuffledRDD, UnionRDD, ZippedRDD,
        )

        if acc is None:
            acc = []
        build = self.builds.get(id(node))
        if build is not None:
            acc.append(build.out_tasks[split])
            return acc
        if isinstance(node, (ShuffledRDD, CoGroupedRDD)):
            return acc  # materialized, reused, or cached: a leaf
        if node._cached and node.ctx.block_manager.contains_all(
            node.id, node.num_partitions
        ):
            return acc
        if isinstance(node, MapPartitionsRDD):
            return self.narrow_deps(node._parent, split, acc)
        if isinstance(node, UnionRDD):
            for parent in node._parents:
                if split < parent.num_partitions:
                    return self.narrow_deps(parent, split, acc)
                split -= parent.num_partitions
            return acc
        if isinstance(node, CartesianRDD):
            left_split, right_split = divmod(
                split, node._right.num_partitions
            )
            self.narrow_deps(node._left, left_split, acc)
            return self.narrow_deps(node._right, right_split, acc)
        if isinstance(node, ZippedRDD):
            self.narrow_deps(node._left, split, acc)
            return self.narrow_deps(node._right, split, acc)
        if isinstance(node, CoalescedRDD):
            for i in node._groups[split]:
                self.narrow_deps(node._parent, i, acc)
            return acc
        if isinstance(node, ParallelCollectionRDD) or not node.dependencies:
            return acc
        # Unknown narrow subclass: the partition mapping is opaque, so
        # depend conservatively on every output partition of every
        # in-flight wide node beneath it.
        self._all_wide_deps(node, acc, set())
        return acc

    def _all_wide_deps(self, node, acc: list, seen: set[int]) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        build = self.builds.get(id(node))
        if build is not None:
            acc.extend(build.out_tasks)
            return
        for dep in node.dependencies:
            self._all_wide_deps(dep, acc, seen)
