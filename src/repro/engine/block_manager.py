"""Byte-accounted storage for cached partitions and shuffle outputs.

Spark's executors keep cached partitions in a memory-bounded block store
and shuffle map outputs in files that later stages — of *any* job — can
re-read.  This module is the engine's in-process analog:

* **Partition blocks** (``RDD.cache``): each cached partition is stored
  with its estimated serialized size (via the same accountant that
  prices shuffles, so cached bytes and shuffled bytes are comparable).
  When a ``memory_budget`` is configured, least-recently-used blocks are
  evicted until the store fits; an evicted partition is transparently
  recomputed on next access.  Hits, misses, and evicted bytes are
  reported through :class:`~repro.engine.metrics.MetricsRegistry`.

* **Shuffle outputs** (opt-in, ``reuse_shuffles=True``): a finished
  shuffle registers its reduce-side output under ``(parent RDD id,
  partitioner, aggregator)``.  A later shuffle of the *same* parent
  through an equal partitioner (aggregator matched by identity; plain
  re-partitions match each other) reuses the retained output instead of
  moving the data again — Spark's shuffle files surviving across jobs.
  The registry keeps the most recent :data:`SHUFFLE_REGISTRY_LIMIT`
  outputs; dropping an entry only forgets the reuse opportunity (the
  owning RDD keeps its own reference), so the bound is safe.  Reuse is
  off by default because it changes shuffle accounting: a reused
  shuffle records no stage, no tasks, and no bytes — correct for the
  cluster being simulated, but not comparable against runs without it.

All operations are thread-safe: with a parallel runner, cache reads and
writes arrive concurrently from pool workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

from .metrics import MetricsRegistry
from .partitioner import Partitioner
from .serialization import RecordSizeAccountant
from .shuffle import Aggregator

#: Retained shuffle outputs per context; oldest entries are forgotten.
SHUFFLE_REGISTRY_LIMIT = 32


@dataclass
class _Block:
    records: list
    nbytes: int


@dataclass
class _ShuffleEntry:
    partitioner: Partitioner
    aggregator: Optional[Aggregator]
    output: list[list[tuple[Any, Any]]]


class BlockManager:
    """LRU, byte-accounted store for cached partitions + shuffle outputs.

    Args:
        metrics: registry receiving hit/miss/eviction counters.
        memory_budget: cap on total cached-partition bytes; ``None``
            (default) stores everything, matching the historical
            unbounded cache.
        reuse_shuffles: retain shuffle outputs and serve later equal
            shuffles from them (off by default — reuse skips the
            repeated shuffle's stage/byte accounting).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        memory_budget: Optional[int] = None,
        reuse_shuffles: bool = False,
    ):
        if memory_budget is not None and memory_budget < 0:
            raise ValueError(
                f"memory_budget must be non-negative, got {memory_budget}"
            )
        self._metrics = metrics
        self._budget = memory_budget
        self._reuse_shuffles = reuse_shuffles
        self._blocks: "OrderedDict[tuple[int, int], _Block]" = OrderedDict()
        self._bytes = 0
        self._accountant = RecordSizeAccountant()
        self._shuffles: "OrderedDict[int, list[_ShuffleEntry]]" = OrderedDict()
        self._num_shuffle_entries = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Partition blocks
    # ------------------------------------------------------------------

    @property
    def memory_budget(self) -> Optional[int]:
        return self._budget

    @property
    def cached_bytes(self) -> int:
        """Estimated bytes currently held for cached partitions."""
        with self._lock:
            return self._bytes

    @property
    def num_blocks(self) -> int:
        with self._lock:
            return len(self._blocks)

    def get(self, rdd_id: int, split: int) -> Optional[list]:
        """The cached records of one partition, or ``None`` (miss)."""
        key = (rdd_id, split)
        with self._lock:
            block = self._blocks.get(key)
            if block is None:
                self._metrics.record_cache_miss()
                return None
            self._blocks.move_to_end(key)
            self._metrics.record_cache_hit()
            return block.records

    def put(self, rdd_id: int, split: int, records: list) -> bool:
        """Store one computed partition; returns whether it was kept.

        A partition larger than the whole budget is not stored at all
        (evicting everything else for it would thrash); the caller just
        keeps its computed list for the current read.
        """
        nbytes = self._accountant.batch_size(records)
        key = (rdd_id, split)
        with self._lock:
            if key in self._blocks:
                # A racing worker computed the same split; keep the first
                # copy so concurrent readers share one list.
                return True
            if self._budget is not None and nbytes > self._budget:
                return False
            self._blocks[key] = _Block(records, nbytes)
            self._bytes += nbytes
            self._evict_to_budget(protect=key)
            return True

    def _evict_to_budget(self, protect: tuple[int, int]) -> None:
        if self._budget is None:
            return
        while self._bytes > self._budget:
            victim = next(
                (key for key in self._blocks if key != protect), None
            )
            if victim is None:
                return
            block = self._blocks.pop(victim)
            self._bytes -= block.nbytes
            self._metrics.record_cache_eviction(block.nbytes)

    def contains(self, rdd_id: int, split: int) -> bool:
        with self._lock:
            return (rdd_id, split) in self._blocks

    def contains_all(self, rdd_id: int, num_splits: int) -> bool:
        """Whether every partition of an RDD is currently cached."""
        with self._lock:
            return all(
                (rdd_id, split) in self._blocks for split in range(num_splits)
            )

    def remove_rdd(self, rdd_id: int) -> int:
        """Drop all blocks of one RDD (``unpersist``); returns bytes freed.

        An explicit unpersist is not memory pressure, so the freed bytes
        are *not* counted as evictions.
        """
        with self._lock:
            victims = [key for key in self._blocks if key[0] == rdd_id]
            freed = 0
            for key in victims:
                freed += self._blocks.pop(key).nbytes
            self._bytes -= freed
            return freed

    # ------------------------------------------------------------------
    # Shuffle output reuse
    # ------------------------------------------------------------------

    def lookup_shuffle(
        self,
        parent_id: int,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        opt_in: bool = False,
    ) -> Optional[list[list[tuple[Any, Any]]]]:
        """A retained equal shuffle's output, or ``None``.

        Equality means: same map-side parent, equal partitioner, and the
        *same* aggregator object (combining functions cannot be compared
        structurally) — or no aggregator on either side, which makes all
        plain re-partitions of a parent interchangeable.

        ``opt_in`` admits a single lookup even when the engine-wide
        ``reuse_shuffles`` flag is off — used by the planner's CSE pass,
        which marks exactly the lineages whose reuse it proved safe.
        """
        if not (self._reuse_shuffles or opt_in):
            return None
        with self._lock:
            for entry in self._shuffles.get(parent_id, ()):
                if entry.aggregator is aggregator and entry.partitioner == partitioner:
                    self._metrics.record_shuffle_reuse()
                    return entry.output
            return None

    def register_shuffle(
        self,
        parent_id: int,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        output: list[list[tuple[Any, Any]]],
        opt_in: bool = False,
    ) -> None:
        """Retain a finished shuffle's output for later equal shuffles."""
        if not (self._reuse_shuffles or opt_in):
            return
        with self._lock:
            self._shuffles.setdefault(parent_id, []).append(
                _ShuffleEntry(partitioner, aggregator, output)
            )
            self._num_shuffle_entries += 1
            while self._num_shuffle_entries > SHUFFLE_REGISTRY_LIMIT:
                oldest_parent = next(iter(self._shuffles))
                entries = self._shuffles[oldest_parent]
                entries.pop(0)
                if not entries:
                    del self._shuffles[oldest_parent]
                self._num_shuffle_entries -= 1

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Forget everything (blocks and retained shuffle outputs)."""
        with self._lock:
            self._blocks.clear()
            self._bytes = 0
            self._shuffles.clear()
            self._num_shuffle_entries = 0

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"BlockManager(blocks={len(self._blocks)}, "
                f"bytes={self._bytes}, budget={self._budget}, "
                f"shuffles={self._num_shuffle_entries})"
            )
