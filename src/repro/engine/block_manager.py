"""Byte-accounted storage for cached partitions and shuffle outputs.

Spark's executors keep cached partitions in a memory-bounded block store
and shuffle map outputs in files that later stages — of *any* job — can
re-read.  This module is the engine's in-process analog:

* **Partition blocks** (``RDD.cache``): each cached partition is stored
  with its estimated serialized size (via the same accountant that
  prices shuffles, so cached bytes and shuffled bytes are comparable).
  When a ``memory_budget`` is configured, least-recently-used blocks are
  evicted until the store fits; an evicted partition is transparently
  recomputed on next access.  Hits, misses, and evicted bytes are
  reported through :class:`~repro.engine.metrics.MetricsRegistry`.

* **Shuffle outputs** (opt-in, ``reuse_shuffles=True``): a finished
  shuffle registers its reduce-side output under ``(parent RDD id,
  partitioner, aggregator)``.  A later shuffle of the *same* parent
  through an equal partitioner (aggregator matched by identity; plain
  re-partitions match each other) reuses the retained output instead of
  moving the data again — Spark's shuffle files surviving across jobs.
  The registry keeps the most recent :data:`SHUFFLE_REGISTRY_LIMIT`
  outputs; dropping an entry only forgets the reuse opportunity (the
  owning RDD keeps its own reference), so the bound is safe.  Reuse is
  off by default because it changes shuffle accounting: a reused
  shuffle records no stage, no tasks, and no bytes — correct for the
  cluster being simulated, but not comparable against runs without it.

* **The spill tier** (``spill_store=``, wired up by the session's
  ``memory_limit``): with an object store attached, eviction serializes
  victims to it instead of dropping them — numpywren's "Infinite RAM"
  shape, where storage is the memory abstraction and RAM is a cache over
  it.  Reads transparently restore spilled blocks (each restore consumes
  its spill object, so ``restored_bytes <= spilled_bytes`` holds by
  construction) before falling back to lineage recomputation, and a
  small background pool prefetches the spilled inputs of an about-to-run
  stage into free budget headroom.  Wide-dependency outputs live here
  too, as *managed* partitions addressed through :class:`ManagedOutput`
  handles, so a job's entire resident working set is governed by one
  budget.  Without a spill store, behavior is byte-identical to the
  historical drop-for-recompute cache.

All operations are thread-safe: with a parallel runner, cache reads and
writes arrive concurrently from pool workers.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from .metrics import MetricsRegistry
from .partitioner import Partitioner
from .scheduler import InjectedFatalTaskError
from .serialization import RecordSizeAccountant
from .shuffle import Aggregator

#: Retained shuffle outputs per context; oldest entries are forgotten.
SHUFFLE_REGISTRY_LIMIT = 32

#: Workers restoring spilled blocks ahead of demand.
PREFETCH_POOL_SIZE = 2


class SpillLostError(RuntimeError):
    """A managed partition is gone from both memory and the spill tier.

    Raised to the owning RDD, which falls back to lineage recomputation
    (re-running the shuffle that produced the output).  Callers outside
    the engine never see this.
    """


@dataclass
class _Block:
    records: list
    nbytes: int
    #: Set while the block owes its presence to the prefetcher; the
    #: first demand read clears it and counts a prefetch hit.
    prefetched: bool = field(default=False, compare=False)


@dataclass
class _ShuffleEntry:
    partitioner: Partitioner
    aggregator: Optional[Aggregator]
    output: Any  # list of partitions, or a ManagedOutput handle


class ManagedOutput:
    """List-like handle over partitions owned by the BlockManager.

    Wide-dependency outputs (shuffle/cogroup results) are adopted into
    the block manager under an *owner* namespace so the memory budget
    governs them and eviction can spill them.  The handle indexes like
    the plain ``list`` it replaces; a read of a partition that was lost
    from both tiers raises :class:`SpillLostError`, which the owning RDD
    answers with lineage recomputation.
    """

    __slots__ = ("_blocks", "owner", "num_partitions", "stats")

    def __init__(
        self,
        blocks: "BlockManager",
        owner: str,
        num_partitions: int,
        stats: Any = None,
    ):
        self._blocks = blocks
        self.owner = owner
        self.num_partitions = num_partitions
        #: Mirrors ``ShuffleResult.stats`` so reuse/adaptive consumers
        #: that do ``getattr(output, "stats", None)`` keep working.
        self.stats = stats

    def __len__(self) -> int:
        return self.num_partitions

    def __getitem__(self, split: int) -> list:
        if isinstance(split, slice):  # pragma: no cover - defensive
            return [self[i] for i in range(*split.indices(self.num_partitions))]
        if split < 0:
            split += self.num_partitions
        if not 0 <= split < self.num_partitions:
            raise IndexError(split)
        return self._blocks.get_managed(self.owner, split)

    def __iter__(self):
        for split in range(self.num_partitions):
            yield self[split]

    def __repr__(self) -> str:
        return (
            f"ManagedOutput(owner={self.owner!r}, "
            f"num_partitions={self.num_partitions})"
        )


class BlockManager:
    """LRU, byte-accounted store for cached partitions + shuffle outputs.

    Args:
        metrics: registry receiving hit/miss/eviction/spill counters.
        memory_budget: cap on total resident block bytes; ``None``
            (default) stores everything, matching the historical
            unbounded cache.
        reuse_shuffles: retain shuffle outputs and serve later equal
            shuffles from them (off by default — reuse skips the
            repeated shuffle's stage/byte accounting).
        spill_store: object store backing the spill tier
            (:mod:`repro.storage.objectstore`); ``None`` keeps the
            historical drop-for-recompute eviction.
        prefetch: allow background restoration of spilled blocks ahead
            of stage dispatch (only meaningful with a spill store).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        memory_budget: Optional[int] = None,
        reuse_shuffles: bool = False,
        spill_store: Any = None,
        prefetch: bool = True,
    ):
        if memory_budget is not None and memory_budget < 0:
            raise ValueError(
                f"memory_budget must be non-negative, got {memory_budget}"
            )
        self._metrics = metrics
        self._budget = memory_budget
        self._reuse_shuffles = reuse_shuffles
        self._store = spill_store
        self._prefetch_enabled = prefetch
        #: Set by the context so restore/spill paths pass through the
        #: runner's fault points (``inject_failure("restore", ...)``).
        self.runner: Any = None
        self._blocks: "OrderedDict[tuple[str, int], _Block]" = OrderedDict()
        self._bytes = 0
        #: Spilled blocks: key -> accounted nbytes (spill-time size, so
        #: spill/restore counters pair up exactly).
        self._spilled: "dict[tuple[str, int], int]" = {}
        #: In-flight restores; readers wait on the event instead of
        #: restoring (and deleting the spill object) twice.
        self._restoring: "dict[tuple[str, int], threading.Event]" = {}
        self._prefetch_pool: Optional[ThreadPoolExecutor] = None
        self._accountant = RecordSizeAccountant()
        self._shuffles: "OrderedDict[int, list[_ShuffleEntry]]" = OrderedDict()
        self._num_shuffle_entries = 0
        #: Tenancy layer (all empty — and all paths byte-identical to the
        #: single-tenant store — unless a :class:`TenantBlockView` writes
        #: through this manager): namespace -> owning tenant, per-tenant
        #: resident bytes, and per-tenant quota/reservation configs.
        self._ns_tenant: "dict[str, str]" = {}
        self._tenant_bytes: "dict[str, int]" = {}
        self._tenant_quota: "dict[str, int]" = {}
        self._tenant_reservation: "dict[str, int]" = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Partition blocks
    # ------------------------------------------------------------------

    @property
    def memory_budget(self) -> Optional[int]:
        return self._budget

    @property
    def spill_enabled(self) -> bool:
        """Whether eviction spills to an object store (vs. dropping)."""
        return self._store is not None

    @property
    def spill_store(self) -> Any:
        return self._store

    @property
    def cached_bytes(self) -> int:
        """Estimated bytes currently held resident in memory."""
        with self._lock:
            return self._bytes

    @property
    def spilled_bytes_held(self) -> int:
        """Estimated bytes currently parked in the spill tier."""
        with self._lock:
            return sum(self._spilled.values())

    @property
    def num_blocks(self) -> int:
        with self._lock:
            return len(self._blocks)

    @staticmethod
    def _cache_ns(rdd_id: int) -> str:
        return f"rdd/{rdd_id}"

    def _spill_key(self, key: tuple[str, int]) -> str:
        return f"spill/{key[0]}/{key[1]}"

    def get(self, rdd_id: int, split: int) -> Optional[list]:
        """The cached records of one partition, or ``None`` (miss).

        With a spill tier, a block evicted to the store is transparently
        restored (and its spill object consumed) before ``None`` — i.e.
        lineage recomputation — is the answer.
        """
        return self._lookup((self._cache_ns(rdd_id), split), count_hits=True)

    def put(
        self, rdd_id: int, split: int, records: list, tenant: str = ""
    ) -> bool:
        """Store one computed partition; returns whether it was kept.

        A partition larger than the whole budget — or than the writing
        tenant's quota — is not stored at all (evicting everything else
        for it would thrash); the caller just keeps its computed list
        for the current read.
        """
        nbytes = self._accountant.batch_size(records)
        key = (self._cache_ns(rdd_id), split)
        with self._lock:
            if key in self._blocks:
                # A racing worker computed the same split; keep the first
                # copy so concurrent readers share one list.
                return True
            if self._budget is not None and nbytes > self._budget:
                return False
            if tenant:
                self._ns_tenant.setdefault(key[0], tenant)
                quota = self._tenant_quota.get(tenant)
                if quota is not None and nbytes > quota:
                    return False
            self._drop_spilled(key)
            self._blocks[key] = _Block(records, nbytes)
            self._bytes += nbytes
            self._account_add(key, nbytes)
            self._evict_to_budget(protect=key)
            return True

    def _lookup(
        self, key: tuple[str, int], count_hits: bool
    ) -> Optional[list]:
        """Resolve ``key`` across memory and the spill tier.

        Returns the records, restoring from the spill store when needed,
        or ``None`` after recording a cache miss (the lineage-recompute
        signal).  A reader arriving while another thread restores the
        same key waits for that restore instead of duplicating it; the
        wait is accounted as restore stall time.
        """
        while True:
            with self._lock:
                block = self._blocks.get(key)
                if block is not None:
                    self._blocks.move_to_end(key)
                    if count_hits:
                        self._metrics.record_cache_hit()
                    if block.prefetched:
                        block.prefetched = False
                        self._metrics.record_prefetch_hit()
                        self._schedule_next_prefetch(key[0], key[1])
                    return block.records
                event = self._restoring.get(key)
                if event is None:
                    nbytes = self._spilled.get(key)
                    if nbytes is None or self._store is None:
                        self._metrics.record_cache_miss()
                        return None
                    event = threading.Event()
                    self._restoring[key] = event
                    restore_here = True
                else:
                    restore_here = False
            if restore_here:
                return self._finish_restore(key, nbytes, event, prefetch=False)
            start = time.perf_counter()
            event.wait()
            self._metrics.record_restore_stall(time.perf_counter() - start)
            # Loop: the restore landed the block (hit next round) or
            # declared it lost (miss next round).

    def _finish_restore(
        self,
        key: tuple[str, int],
        nbytes: int,
        event: threading.Event,
        prefetch: bool,
    ) -> Optional[list]:
        """Read one spill object back into memory (consuming it)."""
        records: Optional[list] = None
        start = time.perf_counter()
        try:
            try:
                runner = self.runner
                if runner is not None:
                    runner.fault_point("restore", key[1])
                records = pickle.loads(self._store.get(self._spill_key(key)))
            except InjectedFatalTaskError:
                raise
            except Exception:
                # Missing, truncated, or corrupt spill object (or an
                # injected transient restore fault): the block is lost;
                # the caller falls back to lineage recomputation.
                records = None
            stall = time.perf_counter() - start
            with self._lock:
                self._drop_spilled(key)
                if records is None:
                    if not prefetch:
                        self._metrics.record_cache_miss()
                    return None
                if key not in self._blocks:
                    self._blocks[key] = _Block(
                        records, nbytes, prefetched=prefetch
                    )
                    self._bytes += nbytes
                    self._account_add(key, nbytes)
                    self._evict_to_budget(protect=key)
                self._metrics.record_spill_restore(
                    nbytes, 0.0 if prefetch else stall
                )
                if not prefetch:
                    # A demand restore means the reader outran the
                    # window; pull the next partition ahead of it.
                    self._schedule_next_prefetch(key[0], key[1])
                return records
        finally:
            with self._lock:
                self._restoring.pop(key, None)
            event.set()

    def _drop_spilled(self, key: tuple[str, int]) -> None:
        """Forget a spill entry and its stored object (lock held)."""
        if self._spilled.pop(key, None) is not None and self._store is not None:
            try:
                self._store.delete(self._spill_key(key))
            except Exception:  # pragma: no cover - best effort
                pass

    def _account_add(self, key: tuple[str, int], nbytes: int) -> None:
        """Charge a now-resident block to its owning tenant (lock held)."""
        tenant = self._ns_tenant.get(key[0], "")
        if tenant:
            self._tenant_bytes[tenant] = (
                self._tenant_bytes.get(tenant, 0) + nbytes
            )

    def _account_sub(self, key: tuple[str, int], nbytes: int) -> None:
        """Release a no-longer-resident block's tenant charge (lock held)."""
        tenant = self._ns_tenant.get(key[0], "")
        if tenant:
            self._tenant_bytes[tenant] = (
                self._tenant_bytes.get(tenant, 0) - nbytes
            )

    def _evict_one(self, victim: tuple[str, int]) -> int:
        """Evict (and possibly spill) one resident block (lock held)."""
        block = self._blocks.pop(victim)
        self._bytes -= block.nbytes
        self._account_sub(victim, block.nbytes)
        self._metrics.record_cache_eviction(block.nbytes)
        if self._store is not None:
            self._spill(victim, block)
        return block.nbytes

    def _may_evict(self, key: tuple[str, int], evictor: str) -> bool:
        """Whether ``evictor``'s memory pressure may evict ``key``.

        A tenant may always evict its own blocks and unowned blocks;
        another tenant's block only while that tenant stays at or above
        its configured residency reservation (lock held).
        """
        owner = self._ns_tenant.get(key[0], "")
        if not owner or owner == evictor:
            return True
        reservation = self._tenant_reservation.get(owner, 0)
        if not reservation:
            return True
        nbytes = self._blocks[key].nbytes
        return self._tenant_bytes.get(owner, 0) - nbytes >= reservation

    def _evict_to_budget(self, protect: tuple[str, int]) -> None:
        """Evict LRU blocks until quota and budget hold (lock held).

        Two passes: first the writing tenant's own quota (its own LRU
        blocks pay, counted as quota evictions), then the global budget,
        where other tenants' blocks are victims only down to their
        reservations.  With no tenants configured both passes reduce to
        the historical single-budget LRU sweep, victim-for-victim.
        """
        tenant = self._ns_tenant.get(protect[0], "")
        quota = self._tenant_quota.get(tenant) if tenant else None
        if quota is not None:
            while self._tenant_bytes.get(tenant, 0) > quota:
                victim = next(
                    (
                        key
                        for key in self._blocks
                        if key != protect
                        and self._ns_tenant.get(key[0], "") == tenant
                    ),
                    None,
                )
                if victim is None:
                    break
                freed = self._evict_one(victim)
                self._metrics.record_tenant_quota_eviction(tenant, freed)
        if self._budget is None:
            return
        while self._bytes > self._budget:
            victim = next(
                (
                    key
                    for key in self._blocks
                    if key != protect and self._may_evict(key, tenant)
                ),
                None,
            )
            if victim is None:
                return
            self._evict_one(victim)

    def _spill(self, key: tuple[str, int], block: _Block) -> None:
        """Serialize an evicted block to the spill store (lock held)."""
        try:
            runner = self.runner
            if runner is not None:
                runner.fault_point("spill", key[1])
            data = pickle.dumps(block.records, protocol=pickle.HIGHEST_PROTOCOL)
        except InjectedFatalTaskError:
            raise
        except Exception:
            # Unpicklable records or an injected transient spill fault:
            # degrade to the historical drop-for-recompute eviction.
            return
        self._store.put(self._spill_key(key), data)
        self._spilled[key] = block.nbytes
        self._metrics.record_spill(block.nbytes)

    def contains(self, rdd_id: int, split: int) -> bool:
        key = (self._cache_ns(rdd_id), split)
        with self._lock:
            return key in self._blocks or key in self._spilled

    def contains_all(self, rdd_id: int, num_splits: int) -> bool:
        """Whether every partition of an RDD is cached or restorable."""
        with self._lock:
            ns = self._cache_ns(rdd_id)
            return all(
                (ns, split) in self._blocks or (ns, split) in self._spilled
                for split in range(num_splits)
            )

    def remove_rdd(self, rdd_id: int) -> int:
        """Drop all blocks of one RDD (``unpersist``); returns bytes freed.

        An explicit unpersist is not memory pressure, so the freed bytes
        are *not* counted as evictions.  Spilled partitions are deleted
        from the store as well.
        """
        with self._lock:
            ns = self._cache_ns(rdd_id)
            victims = [key for key in self._blocks if key[0] == ns]
            freed = 0
            for key in victims:
                nbytes = self._blocks.pop(key).nbytes
                self._account_sub(key, nbytes)
                freed += nbytes
            self._bytes -= freed
            for key in [key for key in self._spilled if key[0] == ns]:
                self._drop_spilled(key)
            self._ns_tenant.pop(ns, None)
            return freed

    # ------------------------------------------------------------------
    # Managed outputs (wide-dependency results under the budget)
    # ------------------------------------------------------------------

    def managed_output(
        self, owner: str, num_partitions: int, stats: Any = None
    ) -> ManagedOutput:
        """A fresh handle for ``num_partitions`` partitions of ``owner``.

        Any previous generation under the same owner is dropped first,
        so re-materialization after a lost spill starts clean.
        """
        self.drop_managed(owner)
        return ManagedOutput(self, owner, num_partitions, stats=stats)

    def put_managed(
        self, owner: str, split: int, records: list, tenant: str = ""
    ) -> int:
        """Adopt one produced partition under ``owner``; returns its bytes.

        Unlike :meth:`put`, an over-budget (or over-quota) partition is
        still admitted (it is the data's only copy); it stays as the one
        protected resident until the next eviction pass spills it.
        """
        nbytes = self._accountant.batch_size(records)
        key = (owner, split)
        with self._lock:
            if key in self._blocks:
                return self._blocks[key].nbytes
            if tenant:
                self._ns_tenant.setdefault(owner, tenant)
            self._drop_spilled(key)
            self._blocks[key] = _Block(records, nbytes)
            self._bytes += nbytes
            self._account_add(key, nbytes)
            self._evict_to_budget(protect=key)
            return nbytes

    def get_managed(self, owner: str, split: int) -> list:
        """One managed partition, restoring from the spill tier if needed.

        Raises :class:`SpillLostError` (after recording a cache miss)
        when the partition is gone from both tiers — the owner's cue to
        recompute its lineage.
        """
        records = self._lookup((owner, split), count_hits=False)
        if records is None:
            raise SpillLostError(f"managed partition {owner}[{split}] lost")
        return records

    def drop_managed(self, owner: str) -> None:
        """Forget every partition of ``owner`` (memory and spill tier)."""
        with self._lock:
            victims = [key for key in self._blocks if key[0] == owner]
            for key in victims:
                nbytes = self._blocks.pop(key).nbytes
                self._account_sub(key, nbytes)
                self._bytes -= nbytes
            for key in [key for key in self._spilled if key[0] == owner]:
                self._drop_spilled(key)
            self._ns_tenant.pop(owner, None)

    def adopt_output(
        self,
        owner: str,
        partitions: Iterable[list],
        stats: Any = None,
        tenant: str = "",
    ) -> ManagedOutput:
        """Adopt a wide dependency's finished partitions one at a time.

        Each partition is admitted (and possibly spilled) before the
        next is consumed from ``partitions``, so adopting an oversized
        output never holds more than budget + one partition resident.
        """
        count = 0
        self.drop_managed(owner)
        for split, records in enumerate(partitions):
            self.put_managed(owner, split, records, tenant=tenant)
            count += 1
        return ManagedOutput(self, owner, count, stats=stats)

    # ------------------------------------------------------------------
    # Prefetch
    # ------------------------------------------------------------------

    def prefetch_namespace(self, ns: str) -> None:
        """Restore ``ns``'s spilled partitions ahead of demand.

        Submitted to a small background pool.  A prefetch restore may
        evict least-recently-used resident blocks to make room — exactly
        like a demand restore — but never a block that was itself
        prefetched and not yet read, so the memory cap bounds the
        prefetch window instead of letting it thrash itself.  Partitions
        are swept in split order, matching the order the next stage's
        tasks read them.  No-op without a spill store or with prefetch
        disabled.
        """
        if self._store is None or not self._prefetch_enabled:
            return
        with self._lock:
            keys = sorted(key for key in self._spilled if key[0] == ns)
            if not keys:
                return
            pool = self._pool()
        for key in keys:
            try:
                pool.submit(self._prefetch_one, key)
            except RuntimeError:  # pool shut down mid-close
                return

    def prefetch_rdd_blocks(self, rdd_id: int) -> None:
        """Prefetch an RDD's spilled cached partitions."""
        self.prefetch_namespace(self._cache_ns(rdd_id))

    def _pool(self) -> ThreadPoolExecutor:
        """The lazily created prefetch pool (lock held)."""
        pool = self._prefetch_pool
        if pool is None:
            pool = self._prefetch_pool = ThreadPoolExecutor(
                max_workers=PREFETCH_POOL_SIZE,
                thread_name_prefix="spill-prefetch",
            )
        return pool

    def _schedule_next_prefetch(self, ns: str, split: int) -> None:
        """Keep the prefetch window rolling just ahead of the reader.

        Called (lock held) when a reader consumes a prefetched block or
        pays for a demand restore at ``split``: the next spilled
        partition of the same namespace is pulled in ahead of it.  A
        stage-boundary sweep alone stalls — its first few restores fill
        the window and the rest skip — so demand progress is what
        advances the window.
        """
        if self._store is None or not self._prefetch_enabled:
            return
        best: Optional[tuple[str, int]] = None
        for key in self._spilled:
            if key[0] == ns and key[1] > split and (
                best is None or key[1] < best[1]
            ):
                best = key
        if best is None:
            return
        try:
            self._pool().submit(self._prefetch_one, best)
        except RuntimeError:  # pool shut down mid-close
            pass

    def _prefetch_one(self, key: tuple[str, int]) -> None:
        with self._lock:
            if key in self._blocks or key in self._restoring:
                return
            nbytes = self._spilled.get(key)
            if nbytes is None:
                return
            if self._budget is not None and self._bytes + nbytes > self._budget:
                # Room must come from eviction.  Only LRU blocks *ahead*
                # of the unread prefetch window may pay for it; once the
                # window itself would be the victim, stop — demand reads
                # will drain it and free the space.
                need = self._bytes + nbytes - self._budget
                freeable = 0
                for resident in self._blocks.values():
                    if resident.prefetched:
                        break
                    freeable += resident.nbytes
                    if freeable >= need:
                        break
                if freeable < need:
                    return  # window full; demand read will restore it
            event = threading.Event()
            self._restoring[key] = event
        try:
            self._finish_restore(key, nbytes, event, prefetch=True)
        except Exception:  # pragma: no cover - pool thread must not die
            pass

    # ------------------------------------------------------------------
    # Shuffle output reuse
    # ------------------------------------------------------------------

    def lookup_shuffle(
        self,
        parent_id: int,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        opt_in: bool = False,
    ) -> Optional[Any]:
        """A retained equal shuffle's output, or ``None``.

        Equality means: same map-side parent, equal partitioner, and the
        *same* aggregator object (combining functions cannot be compared
        structurally) — or no aggregator on either side, which makes all
        plain re-partitions of a parent interchangeable.

        ``opt_in`` admits a single lookup even when the engine-wide
        ``reuse_shuffles`` flag is off — used by the planner's CSE pass,
        which marks exactly the lineages whose reuse it proved safe.
        """
        if not (self._reuse_shuffles or opt_in):
            return None
        with self._lock:
            for entry in self._shuffles.get(parent_id, ()):
                if entry.aggregator is aggregator and entry.partitioner == partitioner:
                    self._metrics.record_shuffle_reuse()
                    return entry.output
            return None

    def register_shuffle(
        self,
        parent_id: int,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        output: Any,
        opt_in: bool = False,
    ) -> None:
        """Retain a finished shuffle's output for later equal shuffles."""
        if not (self._reuse_shuffles or opt_in):
            return
        with self._lock:
            self._shuffles.setdefault(parent_id, []).append(
                _ShuffleEntry(partitioner, aggregator, output)
            )
            self._num_shuffle_entries += 1
            while self._num_shuffle_entries > SHUFFLE_REGISTRY_LIMIT:
                oldest_parent = next(iter(self._shuffles))
                entries = self._shuffles[oldest_parent]
                entries.pop(0)
                if not entries:
                    del self._shuffles[oldest_parent]
                self._num_shuffle_entries -= 1

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------

    def configure_tenant(
        self,
        tenant: str,
        quota: Optional[int] = None,
        reservation: int = 0,
    ) -> None:
        """Set one tenant's residency quota and/or reservation.

        ``quota`` caps the tenant's resident block bytes (its own LRU
        blocks are evicted — spilled, with a store — to stay under it);
        ``reservation`` is the residency floor other tenants' evictions
        may not push it below.  A reservation larger than the quota is
        rejected (it could never be honored and would wedge eviction).
        """
        if quota is not None and reservation > quota:
            raise ValueError(
                f"tenant {tenant!r}: reservation {reservation} exceeds "
                f"quota {quota}"
            )
        with self._lock:
            if quota is not None:
                self._tenant_quota[tenant] = quota
            if reservation:
                self._tenant_reservation[tenant] = reservation
            self._tenant_bytes.setdefault(tenant, 0)

    def view(self, tenant: str) -> "TenantBlockView":
        """A write-labeling facade attributing new blocks to ``tenant``."""
        return TenantBlockView(self, tenant)

    def tenant_usage(self) -> dict[str, dict[str, Any]]:
        """Per-tenant residency usage against quota and reservation."""
        with self._lock:
            tenants = (
                set(self._tenant_bytes)
                | set(self._tenant_quota)
                | set(self._tenant_reservation)
            )
            return {
                tenant: {
                    "resident_bytes": self._tenant_bytes.get(tenant, 0),
                    "quota_bytes": self._tenant_quota.get(tenant),
                    "reservation_bytes": self._tenant_reservation.get(tenant, 0),
                }
                for tenant in tenants
            }

    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Forget everything (blocks, spill tier, retained shuffles).

        Tenant quota/reservation *configs* survive (they are policy, not
        data); the per-tenant byte accounting resets with the blocks.
        """
        with self._lock:
            self._blocks.clear()
            self._bytes = 0
            for key in list(self._spilled):
                self._drop_spilled(key)
            self._shuffles.clear()
            self._num_shuffle_entries = 0
            self._ns_tenant.clear()
            self._tenant_bytes = {tenant: 0 for tenant in self._tenant_bytes}

    def close(self) -> None:
        """Stop the prefetch pool (the store is closed by its owner)."""
        pool = self._prefetch_pool
        if pool is not None:
            pool.shutdown(wait=True)
            self._prefetch_pool = None

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"BlockManager(blocks={len(self._blocks)}, "
                f"bytes={self._bytes}, budget={self._budget}, "
                f"spilled={len(self._spilled)}, "
                f"shuffles={self._num_shuffle_entries})"
            )


class TenantBlockView:
    """One tenant's handle on a shared :class:`BlockManager`.

    Reads, containment checks, prefetch, and shuffle-reuse registration
    pass straight through (the store is shared — cross-tenant reuse of
    registered shuffle outputs is the point); *writes* are labeled with
    the tenant so quota accounting and reservation-aware eviction know
    who owns each namespace.  Attribute access falls through to the
    underlying manager, so the view is drop-in wherever a
    ``BlockManager`` is expected.
    """

    def __init__(self, manager: BlockManager, tenant: str):
        self._manager = manager
        self.tenant = tenant

    def put(self, rdd_id: int, split: int, records: list) -> bool:
        return self._manager.put(rdd_id, split, records, tenant=self.tenant)

    def put_managed(self, owner: str, split: int, records: list) -> int:
        return self._manager.put_managed(
            owner, split, records, tenant=self.tenant
        )

    def adopt_output(
        self, owner: str, partitions: Iterable[list], stats: Any = None
    ) -> ManagedOutput:
        return self._manager.adopt_output(
            owner, partitions, stats=stats, tenant=self.tenant
        )

    def view(self, tenant: str) -> "TenantBlockView":
        return self._manager.view(tenant)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._manager, name)

    def __repr__(self) -> str:
        return f"TenantBlockView(tenant={self.tenant!r}, {self._manager!r})"
