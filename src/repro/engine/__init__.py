"""A from-scratch Spark-like dataflow engine.

This package is the *substrate* of the reproduction: the paper compiles
array comprehensions to Spark RDD programs, so the planner here compiles
them to this engine's RDD programs.  It provides lazily evaluated,
partitioned datasets with lineage, hash/grid partitioning, map-side
combining shuffles whose volume is measured byte-for-byte, and a cost
model that converts measured work into simulated time on a configurable
cluster.
"""

from .adaptive import AdaptiveDecision, AdaptiveManager
from .block_manager import (
    BlockManager, ManagedOutput, SpillLostError, TenantBlockView,
)
from .cluster import BENCH_CLUSTER, PAPER_CLUSTER, TINY_CLUSTER, ClusterSpec
from .context import Accumulator, Broadcast, EngineContext, parse_memory_limit
from .metrics import JobMetrics, MetricsRegistry, TenantCounters
from .partitioner import GridPartitioner, HashPartitioner, Partitioner, portable_hash
from .rdd import RDD
from .scheduler import (
    FairJobScheduler,
    FaultInjection,
    InjectedFatalTaskError,
    InjectedTaskFailure,
    PipelinedTaskRunner,
    SerialTaskRunner,
    TaskRunner,
    ThreadedTaskRunner,
    TransientTaskError,
    resolve_runner,
)
from .substrate import EngineSubstrate, LruCache, PlanCacheGroup, env_flag
from .serialization import RecordSizeAccountant
from .shuffle import (
    Aggregator,
    MapOutputStatistics,
    PipelinedShuffle,
    ShuffleManager,
)
from .taskgraph import Task, TaskGraph, compile_job_graph

__all__ = [
    "Accumulator",
    "AdaptiveDecision",
    "AdaptiveManager",
    "Aggregator",
    "BlockManager",
    "Broadcast",
    "BENCH_CLUSTER",
    "ClusterSpec",
    "EngineContext",
    "EngineSubstrate",
    "FairJobScheduler",
    "FaultInjection",
    "GridPartitioner",
    "HashPartitioner",
    "InjectedFatalTaskError",
    "InjectedTaskFailure",
    "JobMetrics",
    "LruCache",
    "ManagedOutput",
    "MapOutputStatistics",
    "MetricsRegistry",
    "PlanCacheGroup",
    "PAPER_CLUSTER",
    "Partitioner",
    "PipelinedShuffle",
    "PipelinedTaskRunner",
    "RDD",
    "RecordSizeAccountant",
    "SerialTaskRunner",
    "ShuffleManager",
    "SpillLostError",
    "Task",
    "TaskGraph",
    "TaskRunner",
    "TenantBlockView",
    "TenantCounters",
    "ThreadedTaskRunner",
    "TINY_CLUSTER",
    "TransientTaskError",
    "compile_job_graph",
    "env_flag",
    "parse_memory_limit",
    "portable_hash",
    "resolve_runner",
]
