"""A from-scratch Spark-like dataflow engine.

This package is the *substrate* of the reproduction: the paper compiles
array comprehensions to Spark RDD programs, so the planner here compiles
them to this engine's RDD programs.  It provides lazily evaluated,
partitioned datasets with lineage, hash/grid partitioning, map-side
combining shuffles whose volume is measured byte-for-byte, and a cost
model that converts measured work into simulated time on a configurable
cluster.
"""

from .adaptive import AdaptiveDecision, AdaptiveManager
from .block_manager import BlockManager, ManagedOutput, SpillLostError
from .cluster import BENCH_CLUSTER, PAPER_CLUSTER, TINY_CLUSTER, ClusterSpec
from .context import Accumulator, Broadcast, EngineContext, parse_memory_limit
from .metrics import JobMetrics, MetricsRegistry
from .partitioner import GridPartitioner, HashPartitioner, Partitioner, portable_hash
from .rdd import RDD
from .scheduler import (
    FaultInjection,
    InjectedFatalTaskError,
    InjectedTaskFailure,
    PipelinedTaskRunner,
    SerialTaskRunner,
    TaskRunner,
    ThreadedTaskRunner,
    TransientTaskError,
    resolve_runner,
)
from .serialization import RecordSizeAccountant
from .shuffle import (
    Aggregator,
    MapOutputStatistics,
    PipelinedShuffle,
    ShuffleManager,
)
from .taskgraph import Task, TaskGraph, compile_job_graph

__all__ = [
    "Accumulator",
    "AdaptiveDecision",
    "AdaptiveManager",
    "Aggregator",
    "BlockManager",
    "Broadcast",
    "BENCH_CLUSTER",
    "ClusterSpec",
    "EngineContext",
    "FaultInjection",
    "GridPartitioner",
    "HashPartitioner",
    "InjectedFatalTaskError",
    "InjectedTaskFailure",
    "JobMetrics",
    "ManagedOutput",
    "MapOutputStatistics",
    "MetricsRegistry",
    "PAPER_CLUSTER",
    "Partitioner",
    "PipelinedShuffle",
    "PipelinedTaskRunner",
    "RDD",
    "RecordSizeAccountant",
    "SerialTaskRunner",
    "ShuffleManager",
    "SpillLostError",
    "Task",
    "TaskGraph",
    "TaskRunner",
    "ThreadedTaskRunner",
    "TINY_CLUSTER",
    "TransientTaskError",
    "compile_job_graph",
    "parse_memory_limit",
    "portable_hash",
    "resolve_runner",
]
