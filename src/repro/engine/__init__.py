"""A from-scratch Spark-like dataflow engine.

This package is the *substrate* of the reproduction: the paper compiles
array comprehensions to Spark RDD programs, so the planner here compiles
them to this engine's RDD programs.  It provides lazily evaluated,
partitioned datasets with lineage, hash/grid partitioning, map-side
combining shuffles whose volume is measured byte-for-byte, and a cost
model that converts measured work into simulated time on a configurable
cluster.
"""

from .cluster import BENCH_CLUSTER, PAPER_CLUSTER, TINY_CLUSTER, ClusterSpec
from .context import Accumulator, Broadcast, EngineContext
from .metrics import JobMetrics, MetricsRegistry
from .partitioner import GridPartitioner, HashPartitioner, Partitioner, portable_hash
from .rdd import RDD
from .scheduler import SerialTaskRunner, ThreadedTaskRunner
from .shuffle import Aggregator, ShuffleManager

__all__ = [
    "Accumulator",
    "Aggregator",
    "Broadcast",
    "BENCH_CLUSTER",
    "ClusterSpec",
    "EngineContext",
    "GridPartitioner",
    "HashPartitioner",
    "JobMetrics",
    "MetricsRegistry",
    "PAPER_CLUSTER",
    "Partitioner",
    "RDD",
    "SerialTaskRunner",
    "ShuffleManager",
    "ThreadedTaskRunner",
    "TINY_CLUSTER",
    "portable_hash",
]
