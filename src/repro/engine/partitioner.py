"""Partitioners: how keyed records map to reduce-side partitions.

Mirrors Spark's ``Partitioner`` hierarchy.  ``HashPartitioner`` is the
default for all shuffles; ``GridPartitioner`` mirrors the one Spark MLlib
uses for ``BlockMatrix`` so the baseline library distributes blocks the
same way the real MLlib does.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

import numpy as np

#: CPython hashes ints modulo the Mersenne prime ``2**61 - 1``, so
#: ``hash(v) == v`` holds exactly for ``0 <= v < 2**61 - 1``.  The batch
#: paths only claim a key set when every component is in that window —
#: outside it the scalar ``portable_hash`` is the ground truth.
_HASH_IDENTITY_CAP = (1 << 61) - 1


def _as_int_key_array(keys: Sequence[Any]) -> Optional[np.ndarray]:
    """``keys`` as an int array, or ``None`` when batch hashing is unsafe.

    Accepts uniform bare-int keys (1-D result) and uniform same-width
    int-tuple keys (2-D result).  Floats, strings, mixed or ragged keys,
    negatives, and ints at/above the hash-identity cap all return
    ``None`` — those key sets keep the scalar per-record path.
    """
    try:
        arr = np.asarray(keys)
    except (ValueError, OverflowError):
        return None
    if arr.dtype.kind != "i" or arr.ndim not in (1, 2) or arr.size == 0:
        return None
    if int(arr.min()) < 0 or int(arr.max()) >= _HASH_IDENTITY_CAP:
        return None
    return arr


def _tuple_hash_batch(arr: np.ndarray) -> np.ndarray:
    """Vectorized :func:`portable_hash` for a 2-D array of int tuples.

    uint64 multiplication wraps modulo ``2**64`` exactly like the scalar
    loop's ``&= 0xFFFFFFFFFFFFFFFF``, and truncation commutes with the
    xor because every component is below ``2**61``; the replication is
    bit-exact, which the parity fuzz test pins.
    """
    value = np.full(arr.shape[0], 0x345678, dtype=np.uint64)
    mult = np.uint64(1000003)
    for column in range(arr.shape[1]):
        value = (value * mult) ^ arr[:, column].astype(np.uint64)
    return value


def portable_hash(key: Hashable) -> int:
    """Deterministic, non-negative hash used for partitioning.

    Python's built-in ``hash`` is salted for ``str`` between interpreter
    runs; partitioning must be stable so tests and benchmarks are
    reproducible, so strings hash via a small FNV-1a here.  Tuples hash
    recursively; everything else falls back to ``hash`` (ints/floats are
    stable in CPython).
    """
    if isinstance(key, str):
        value = 0xCBF29CE484222325
        for byte in key.encode("utf-8"):
            value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return value
    if isinstance(key, tuple):
        value = 0x345678
        for item in key:
            value = (value * 1000003) ^ portable_hash(item)
            value &= 0xFFFFFFFFFFFFFFFF
        return value
    if isinstance(key, bool):
        return int(key)
    return hash(key) & 0xFFFFFFFFFFFFFFFF


class Partitioner:
    """Maps keys to partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def partition_batch(self, keys: Sequence[Any]) -> Optional[np.ndarray]:
        """Partition ids for a whole key batch, or ``None``.

        ``None`` means "no vectorized path for these keys" — the caller
        falls back to per-record :meth:`partition` calls.  A non-``None``
        result must equal ``[self.partition(k) for k in keys]`` exactly;
        the shuffle's bucket contents (and therefore every byte counter)
        ride on that equivalence.
        """
        return None

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:  # partitioners are compared, never hashed by content
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Spark's default: ``portable_hash(key) % num_partitions``."""

    def partition(self, key: Any) -> int:
        return portable_hash(key) % self.num_partitions

    def partition_batch(self, keys: Sequence[Any]) -> Optional[np.ndarray]:
        arr = _as_int_key_array(keys)
        if arr is None:
            return None
        # ``portable_hash`` of an in-window int is the int itself, so a
        # bare-int batch skips the tuple fold entirely.
        hashed = arr.astype(np.uint64) if arr.ndim == 1 else _tuple_hash_batch(arr)
        return (hashed % np.uint64(self.num_partitions)).astype(np.int64)


class RangePartitioner(Partitioner):
    """Places keys into contiguous sorted ranges (used by ``sort_by``).

    ``bounds`` are the (sorted) upper bounds of the first
    ``num_partitions - 1`` partitions: keys ``<= bounds[i]`` fall into
    partition ``i`` at the earliest.
    """

    def __init__(self, bounds: list, ascending: bool = True):
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)
        self.ascending = ascending

    def partition(self, key: Any) -> int:
        import bisect

        index = bisect.bisect_left(self.bounds, key)
        if not self.ascending:
            index = self.num_partitions - 1 - index
        return index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.bounds == other.bounds
            and self.ascending == other.ascending
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class GridPartitioner(Partitioner):
    """Partitioner for block-coordinate keys ``(block_row, block_col)``.

    Mirrors MLlib's ``GridPartitioner``: the logical grid of blocks is cut
    into roughly square sub-grids, one per partition, so that neighbouring
    blocks land on the same executor.
    """

    def __init__(self, rows: int, cols: int, num_partitions: int):
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
        super().__init__(min(num_partitions, rows * cols))
        self.rows = rows
        self.cols = cols
        # Choose sub-grid side lengths so the partition count is respected.
        target = max(1, round((rows * cols / self.num_partitions) ** 0.5))
        self.row_step = min(rows, target)
        self.col_step = min(cols, target)
        self._cols_per_row_band = -(-cols // self.col_step)  # ceil division

    def partition(self, key: Any) -> int:
        row, col = key
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            # Out-of-grid keys (possible for padded edges) hash instead.
            return portable_hash(key) % self.num_partitions
        band = (row // self.row_step) * self._cols_per_row_band + col // self.col_step
        return band % self.num_partitions

    def partition_batch(self, keys: Sequence[Any]) -> Optional[np.ndarray]:
        arr = _as_int_key_array(keys)
        if arr is None or arr.ndim != 2 or arr.shape[1] != 2:
            return None
        rows, cols = arr[:, 0], arr[:, 1]
        band = (rows // self.row_step) * self._cols_per_row_band + (
            cols // self.col_step
        )
        out = (band % self.num_partitions).astype(np.int64)
        in_grid = (rows < self.rows) & (cols < self.cols)  # already >= 0
        if not in_grid.all():
            hashed = _tuple_hash_batch(arr) % np.uint64(self.num_partitions)
            out = np.where(in_grid, out, hashed.astype(np.int64))
        return out
