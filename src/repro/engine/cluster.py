"""Simulated cluster description used by the cost model.

The paper evaluates SAC on a 4-node cluster (one Xeon E5-2680v3 per node,
24 cores, 128 GB RAM) running 8 Spark executors with 11 cores each.  We
cannot run on that hardware, so the engine executes locally and *charges*
simulated costs against a :class:`ClusterSpec`: every task pays a launch
overhead, every shuffled byte pays network transfer time, and compute time
is divided by the number of cores the cluster would have applied.

The spec is deliberately small: the experiments in the paper are dominated
by (a) how many bytes cross the network during shuffles and (b) how much
per-tile compute each plan does, and those are exactly the quantities the
engine measures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of the cluster being simulated.

    Attributes:
        num_nodes: number of worker machines.
        executors_per_node: Spark-style executor processes per machine.
        cores_per_executor: task slots per executor.
        network_bandwidth: aggregate shuffle bandwidth in bytes/second.
        task_launch_overhead: scheduling + serialization cost per task, in
            seconds.  Spark tasks cost a few milliseconds to launch; this
            is what makes "many tiny partitions" lose to "few block-sized
            partitions" in the tile-size ablation.
        io_bandwidth: bytes/second for reading cached partitions; only
            used when replaying cached data, to keep cached re-reads from
            being free.
        compute_scale: how many seconds of the simulated cluster's
            per-core compute one second of *measured local* compute
            represents.  The engine measures compute with NumPy (native
            BLAS); the paper's substrate executes generated JVM loop
            code, which is roughly an order of magnitude slower per
            core, so benchmark specs set this above 1 to restore the
            paper's compute/network balance.  1.0 means "the simulated
            cores are exactly as fast as this machine's NumPy".
    """

    num_nodes: int = 4
    executors_per_node: int = 2
    cores_per_executor: int = 11
    network_bandwidth: float = 1.0e9
    task_launch_overhead: float = 0.004
    io_bandwidth: float = 4.0e9
    compute_scale: float = 1.0
    #: -- Adaptive-execution (AQE) thresholds ---------------------------
    #: Largest *measured* per-copy payload the runtime re-optimizer may
    #: downgrade a join strategy to broadcast for.  Mirrors Spark's
    #: ``spark.sql.adaptive.autoBroadcastJoinThreshold``.
    adaptive_broadcast_bytes: int = 32 * 2**20
    #: Target post-coalesce reduce-partition size: contiguous reduce
    #: buckets smaller than this merge into one reduce task (never below
    #: ``total_cores`` tasks, so parallelism is preserved).
    adaptive_coalesce_bytes: int = 1 * 2**20
    #: A reduce partition is "skewed" when its measured map-output bytes
    #: exceed this factor times the median non-empty partition's bytes.
    adaptive_skew_factor: float = 4.0
    #: Absolute floor for skew detection: partitions below this size are
    #: never split, so tiny unit-test shuffles stay untouched.
    adaptive_skew_min_bytes: int = 256 * 2**10
    #: Upper bound on how many map tasks one skewed partition fans out to.
    adaptive_max_splits: int = 16
    #: Bytes/second for the out-of-core spill tier (local-disk object
    #: store).  Used by the cost model to price the write+read-back of
    #: working set that overflows a configured memory limit; irrelevant
    #: when no limit is set.
    spill_bandwidth: float = 8.0e8

    @property
    def num_executors(self) -> int:
        """Total executor processes across the cluster."""
        return self.num_nodes * self.executors_per_node

    @property
    def total_cores(self) -> int:
        """Total concurrent task slots across the cluster."""
        return self.num_executors * self.cores_per_executor

    def default_parallelism(self) -> int:
        """Default number of partitions for new RDDs (as in Spark)."""
        return self.total_cores

    def local_parallelism(self) -> int:
        """Worker threads a local executor should run for this spec.

        The simulated cluster has :attr:`total_cores` task slots, but
        the engine executes on this machine, so a local thread pool
        larger than the machine's cores only adds contention: use the
        smaller of the two.
        """
        import os

        return max(1, min(self.total_cores, os.cpu_count() or 1))


#: The cluster used in the paper's evaluation (Section 6).
PAPER_CLUSTER = ClusterSpec()

#: The spec the benchmark harness charges costs against: the paper's
#: 4-node/88-core cluster with (a) aggregate shuffle bandwidth of a
#: 10 GbE fabric with mostly parallel transfers (~2.5 GB/s — on such a
#: cluster shuffle volume is a minor cost next to compute, which is why
#: the paper's rankings are kernel- and skew-driven), and (b) per-core
#: compute modeling generated JVM loop code at ~1/12 of local
#: NumPy/BLAS throughput.  Both constants are documented substitutions
#: (see DESIGN.md): they restore the compute/communication balance of
#: the paper's testbed at laptop scale.
BENCH_CLUSTER = ClusterSpec(
    network_bandwidth=2.5e9,
    compute_scale=12.0,
)

#: A tiny cluster useful in unit tests where we want shuffle effects to be
#: visible with very small data.
TINY_CLUSTER = ClusterSpec(
    num_nodes=2,
    executors_per_node=1,
    cores_per_executor=2,
    network_bandwidth=1.0e8,
    task_launch_overhead=0.001,
)
