"""Job execution: runs one task per partition and times it.

Wide dependencies materialize themselves (see ``ShuffledRDD`` /
``CoGroupedRDD``); what remains for the scheduler is the result stage:
evaluate ``func`` over every partition of the target RDD, recording task
count and compute time.

Two runners execute a stage's tasks:

* :class:`SerialTaskRunner` (default) runs them one after another —
  deterministic, and on a single-core machine also the fastest.
* :class:`ThreadedTaskRunner` fans them out on one persistent thread
  pool, sized from the :class:`~repro.engine.cluster.ClusterSpec` and
  shared by every stage of the context — result stages, shuffle
  map/reduce tasks, and cogroup merges all submit to it.  Task bodies
  that release the GIL (NumPy/BLAS tile kernels) genuinely overlap.

With a parallel runner the scheduler *prepares* a job before fanning
out: wide dependencies in the target RDD's lineage are materialized
bottom-up from the driver thread, exactly like Spark running shuffle map
stages before the result stage.  Without this, lazy evaluation would
trigger the whole shuffle inside the first result task — serializing the
job on one worker while the rest wait on the materialization lock.  Work
that still reaches the pool from inside a worker (nested materialization
through a cache miss, say) runs inline on that worker instead of being
re-submitted, so the pool can never deadlock on itself.

Neither runner changes any measured metric: stage/task/shuffle counters
are identical between the two, and simulated parallelism is applied by
the cost model in :mod:`repro.engine.metrics`, not by real threads.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import ClusterSpec
    from .rdd import RDD


class TaskRunner:
    """Strategy for executing the tasks of one stage."""

    #: Whether the runner may execute tasks concurrently; the scheduler
    #: pre-materializes wide dependencies only for parallel runners so
    #: the serial path stays byte-identical to the historical engine.
    parallel = False

    def run_stage(
        self, tasks: list[Callable[[], Any]]
    ) -> list[Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any execution resources (idempotent)."""


class SerialTaskRunner(TaskRunner):
    """Runs tasks one after another (deterministic, default)."""

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        return [task() for task in tasks]


def _invoke(task: Callable[[], Any]) -> Any:
    return task()


class ThreadedTaskRunner(TaskRunner):
    """Runs stages on one persistent thread pool.

    The pool is created lazily on the first multi-task stage and reused
    for every stage afterwards (creating a ``ThreadPoolExecutor`` per
    stage costs more than many of the engine's stages).  Stages
    submitted from inside a pool worker — nested materialization — run
    inline on that worker, which keeps results correct and makes
    pool-exhaustion deadlocks impossible.  Shut the pool down with
    :meth:`close` (``EngineContext.close()`` does this).
    """

    parallel = True

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is None:
            max_workers = max(1, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._worker_state = threading.local()

    @classmethod
    def for_cluster(cls, cluster: "ClusterSpec") -> "ThreadedTaskRunner":
        """A runner sized for ``cluster`` on this machine."""
        return cls(max_workers=cluster.local_parallelism())

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _mark_worker(self) -> None:
        self._worker_state.in_worker = True

    def _in_worker(self) -> bool:
        return getattr(self._worker_state, "in_worker", False)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-executor",
                    initializer=self._mark_worker,
                )
            return self._pool

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        if len(tasks) <= 1 or self._max_workers == 1 or self._in_worker():
            return [task() for task in tasks]
        return list(self._ensure_pool().map(_invoke, tasks))

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def resolve_runner(
    runner: Union[TaskRunner, str, None], cluster: "ClusterSpec"
) -> TaskRunner:
    """Resolve a runner argument to a :class:`TaskRunner` instance.

    ``None`` consults the ``REPRO_RUNNER`` environment variable
    (``serial`` when unset); the strings ``"serial"`` and ``"threads"``
    name the two built-in runners, with the threaded one sized from
    ``cluster``.
    """
    if runner is None:
        runner = os.environ.get("REPRO_RUNNER", "serial")
    if isinstance(runner, TaskRunner):
        return runner
    if runner == "serial":
        return SerialTaskRunner()
    if runner in ("threads", "threaded"):
        return ThreadedTaskRunner.for_cluster(cluster)
    raise ValueError(
        f"unknown runner {runner!r}: expected a TaskRunner, 'serial', or 'threads'"
    )


class DAGScheduler:
    """Executes actions as jobs of timed per-partition tasks."""

    def __init__(self, metrics, runner: TaskRunner | None = None, adaptive=None):
        self._metrics = metrics
        self._runner = runner or SerialTaskRunner()
        #: Optional :class:`~repro.engine.adaptive.AdaptiveManager`; when
        #: enabled, jobs are prepared (wide stages materialized one at a
        #: time, bottom-up) even under the serial runner, so each stage's
        #: measured statistics exist before the next stage launches.
        self._adaptive = adaptive

    @property
    def runner(self) -> TaskRunner:
        return self._runner

    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[Iterator], Any],
        description: str = "",
    ) -> list[Any]:
        """Evaluate ``func`` over each partition of ``rdd``.

        Returns one result per partition, in partition order.
        """

        task_seconds: list[float] = [0.0] * rdd.num_partitions

        def make_task(split: int) -> Callable[[], Any]:
            def task() -> Any:
                with self._metrics.task_timer() as timer:
                    result = func(rdd.iterator(split))
                task_seconds[split] = timer.own_seconds
                return result

            return task

        with self._metrics.job(description):
            adaptive_on = self._adaptive is not None and self._adaptive.enabled
            if self._runner.parallel or adaptive_on:
                rdd.prepare_execution(set())
            tasks = [make_task(split) for split in range(rdd.num_partitions)]
            results = self._runner.run_stage(tasks)
            self._metrics.record_stage(len(tasks), task_seconds)
            return results
