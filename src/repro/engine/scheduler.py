"""Job execution: runs one task per partition and times it.

Wide dependencies materialize themselves (see ``ShuffledRDD`` /
``CoGroupedRDD``), so by the time a result-stage task pulls its partition,
all upstream shuffles have run and been accounted.  What remains for the
scheduler is the result stage itself: evaluate ``func`` over every
partition of the target RDD, recording task count and compute time.

Tasks can optionally run on a thread pool (``ThreadedTaskRunner``); the
default is the deterministic serial runner, which on a single-core machine
is also the fastest.  Simulated parallelism is applied afterwards by the
cost model in :mod:`repro.engine.metrics`, not by real threads.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .rdd import RDD


class TaskRunner:
    """Strategy for executing the tasks of one stage."""

    def run_stage(
        self, tasks: list[Callable[[], Any]]
    ) -> list[Any]:  # pragma: no cover - interface
        raise NotImplementedError


class SerialTaskRunner(TaskRunner):
    """Runs tasks one after another (deterministic, default)."""

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        return [task() for task in tasks]


class ThreadedTaskRunner(TaskRunner):
    """Runs tasks on a thread pool.

    Useful when task bodies release the GIL (NumPy kernels); the engine's
    correctness does not depend on it.
    """

    def __init__(self, max_workers: int = 4):
        self._max_workers = max_workers

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
            return list(pool.map(lambda t: t(), tasks))


class DAGScheduler:
    """Executes actions as jobs of timed per-partition tasks."""

    def __init__(self, metrics, runner: TaskRunner | None = None):
        self._metrics = metrics
        self._runner = runner or SerialTaskRunner()

    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[Iterator], Any],
        description: str = "",
    ) -> list[Any]:
        """Evaluate ``func`` over each partition of ``rdd``.

        Returns one result per partition, in partition order.
        """

        task_seconds: list[float] = [0.0] * rdd.num_partitions

        def make_task(split: int) -> Callable[[], Any]:
            def task() -> Any:
                with self._metrics.task_timer() as timer:
                    result = func(rdd.iterator(split))
                task_seconds[split] = timer.own_seconds
                return result

            return task

        with self._metrics.job(description):
            tasks = [make_task(split) for split in range(rdd.num_partitions)]
            results = self._runner.run_stage(tasks)
            self._metrics.record_stage(len(tasks), task_seconds)
            return results
