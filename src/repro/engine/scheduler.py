"""Job execution: task runners and the DAG scheduler.

Wide dependencies materialize themselves (see ``ShuffledRDD`` /
``CoGroupedRDD``); what remains for the scheduler is the result stage:
evaluate ``func`` over every partition of the target RDD, recording task
count and compute time.

Three runners execute the engine's tasks:

* :class:`SerialTaskRunner` (default) runs them one after another —
  deterministic, and on a single-core machine also the fastest.
* :class:`ThreadedTaskRunner` fans them out on one persistent thread
  pool, sized from the :class:`~repro.engine.cluster.ClusterSpec` and
  shared by every stage of the context — result stages, shuffle
  map/reduce tasks, and cogroup merges all submit to it.  Task bodies
  that release the GIL (NumPy/BLAS tile kernels, injected sleeps)
  genuinely overlap.
* :class:`PipelinedTaskRunner` additionally executes whole *task
  graphs* (see :mod:`repro.engine.taskgraph`): per-task dependency
  counters replace the stage barrier, so a downstream task fires as
  soon as the specific partitions it reads have landed, even while a
  straggler from an earlier stage is still running.

With a parallel runner the staged scheduler *prepares* a job before
fanning out: wide dependencies in the target RDD's lineage are
materialized bottom-up from the driver thread, exactly like Spark
running shuffle map stages before the result stage.  Work that still
reaches the pool from inside a worker (nested materialization through a
cache miss, say) runs inline on that worker, so the pool can never
deadlock on itself.

No runner changes any measured metric: stage/task/shuffle counters are
identical across all of them (pipelined execution records the same
stages, just not in barrier order), and simulated parallelism is applied
by the cost model in :mod:`repro.engine.metrics`, not by real threads.

Every runner also carries the engine's **fault-injection** surface:
:meth:`TaskRunner.inject_delay` and :meth:`TaskRunner.inject_failure`
register deterministic delays/failures keyed by stage label and
partition, consulted by each task body via :meth:`TaskRunner.fault_point`.
Failures raised as :class:`TransientTaskError` are retried up to
``max_task_retries`` times, counted in ``JobMetrics.task_retries``.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from collections import deque
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import ClusterSpec
    from .rdd import RDD
    from .taskgraph import TaskGraph


class TransientTaskError(RuntimeError):
    """A task failure that is safe to retry.

    Raised by fault points (before the task has consumed any shared
    input) and available to user task bodies that know their work is
    idempotent.  The runner re-executes the task up to
    ``max_task_retries`` times before giving up; every retry is counted
    in ``JobMetrics.task_retries``.
    """


class InjectedTaskFailure(TransientTaskError):
    """A deterministic failure registered via :meth:`TaskRunner.inject_failure`."""


class InjectedFatalTaskError(RuntimeError):
    """An injected failure that must *not* be retried (``transient=False``)."""


@dataclass
class FaultInjection:
    """One registered delay or failure, matched by stage label + partition.

    ``stage`` is either a full label (``"map:17"``) or a bare kind
    (``"map"``, ``"reduce"``, ``"combine"``, ``"merge"``, ``"drain"``,
    ``"result"``) matching every stage of that kind.  ``partition`` of
    ``None`` matches every partition.  ``remaining`` of ``None`` fires
    on every match; an integer decrements per firing and stops at zero.
    """

    stage: str
    partition: Optional[int]
    delay_seconds: float = 0.0
    error_message: Optional[str] = None
    transient: bool = True
    remaining: Optional[int] = None

    def matches(self, stage: str, partition: int) -> bool:
        if self.partition is not None and self.partition != partition:
            return False
        return self.stage == stage or self.stage == stage.split(":", 1)[0]


class TaskRunner:
    """Strategy for executing the engine's tasks."""

    #: Whether the runner may execute tasks concurrently; the scheduler
    #: pre-materializes wide dependencies only for parallel runners so
    #: the serial path stays byte-identical to the historical engine.
    parallel = False

    #: Maximum re-executions of a task after a :class:`TransientTaskError`
    #: (``REPRO_TASK_RETRIES`` overrides the default of 1).
    max_task_retries: int

    def __init__(self) -> None:
        self.max_task_retries = int(os.environ.get("REPRO_TASK_RETRIES", "1"))
        #: Metrics registry retries are counted against (bound by the
        #: owning ``EngineContext``; ``None`` leaves retries uncounted).
        self.metrics = None
        self._injections: list[FaultInjection] = []
        self._injection_lock = threading.Lock()

    # -- fault injection ------------------------------------------------

    def inject_delay(
        self,
        stage: str,
        partition: Optional[int],
        seconds: float,
        times: Optional[int] = None,
    ) -> None:
        """Delay matching tasks by ``seconds`` (a deterministic straggler)."""
        with self._injection_lock:
            self._injections.append(
                FaultInjection(stage, partition, delay_seconds=seconds,
                               remaining=times)
            )

    def inject_failure(
        self,
        stage: str,
        partition: Optional[int],
        message: str = "injected task failure",
        times: Optional[int] = 1,
        transient: bool = True,
    ) -> None:
        """Fail matching tasks deterministically.

        ``transient=True`` (default) raises :class:`InjectedTaskFailure`,
        which the retry path may recover from; ``transient=False`` raises
        :class:`InjectedFatalTaskError`, which always propagates.
        """
        with self._injection_lock:
            self._injections.append(
                FaultInjection(stage, partition, error_message=message,
                               transient=transient, remaining=times)
            )

    def clear_injections(self) -> None:
        with self._injection_lock:
            self._injections.clear()

    def fault_point(self, stage: str, partition: int) -> None:
        """Apply registered injections matching ``(stage, partition)``.

        Called at the *head* of every task body, inside its timer but
        before any shared input is consumed — so injected delays inflate
        the task's measured time and injected failures leave the task
        idempotent for the retry path.  All matching delays accumulate;
        the first matching failure fires after the sleep.
        """
        if not self._injections:
            return
        delay = 0.0
        failure: Optional[FaultInjection] = None
        with self._injection_lock:
            for injection in self._injections:
                if not injection.matches(stage, partition):
                    continue
                if injection.remaining is not None:
                    if injection.remaining <= 0:
                        continue
                    injection.remaining -= 1
                if injection.error_message is not None:
                    if failure is None:
                        failure = injection
                else:
                    delay += injection.delay_seconds
        if delay > 0.0:
            time.sleep(delay)
        if failure is not None:
            message = f"{failure.error_message} [{stage} partition {partition}]"
            if failure.transient:
                raise InjectedTaskFailure(message)
            raise InjectedFatalTaskError(message)

    # -- execution ------------------------------------------------------

    def _in_worker(self) -> bool:
        """Whether the calling thread is one of this runner's workers."""
        return False

    def _execute_task(self, task: Callable[[], Any]) -> Any:
        """Run one task body, retrying bounded transient failures."""
        attempts = 0
        while True:
            try:
                return task()
            except TransientTaskError:
                if attempts >= self.max_task_retries:
                    raise
                attempts += 1
                if self.metrics is not None:
                    self.metrics.record_task_retry()

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        raise NotImplementedError  # pragma: no cover - interface

    def run_graph(self, graph: "TaskGraph") -> None:
        """Execute a task graph serially, in dependency (then index) order.

        The base implementation is deterministic: among ready tasks the
        one created first runs first.  Parallel runners override this
        with an eager, bounded-in-flight executor.
        """
        ready: list = [(task.index, task) for task in graph.drain_ready()]
        heapq.heapify(ready)
        while ready:
            _index, task = heapq.heappop(ready)
            if task.fn is not None:
                task.result = self._execute_task(task.fn)
            for successor in graph.complete(task):
                heapq.heappush(ready, (successor.index, successor))
        graph.check_done()

    def close(self) -> None:
        """Release any execution resources (idempotent)."""


class SerialTaskRunner(TaskRunner):
    """Runs tasks one after another (deterministic, default)."""

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        return [self._execute_task(task) for task in tasks]


class ThreadedTaskRunner(TaskRunner):
    """Runs stages on one persistent thread pool.

    The pool is created lazily on the first multi-task stage and reused
    for every stage afterwards (creating a ``ThreadPoolExecutor`` per
    stage costs more than many of the engine's stages).  Stages
    submitted from inside a pool worker — nested materialization — run
    inline on that worker, which keeps results correct and makes
    pool-exhaustion deadlocks impossible.  Shut the pool down with
    :meth:`close` (``EngineContext.close()`` does this).

    A failing task cancels every not-yet-started task of the same stage
    and the *first* error by submission order is re-raised — not
    whichever future the pool happens to surface first.
    """

    parallel = True

    def __init__(self, max_workers: Optional[int] = None):
        super().__init__()
        if max_workers is None:
            max_workers = max(1, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._worker_state = threading.local()

    @classmethod
    def for_cluster(cls, cluster: "ClusterSpec") -> "ThreadedTaskRunner":
        """A runner sized for ``cluster`` on this machine."""
        return cls(max_workers=cluster.local_parallelism())

    @property
    def max_workers(self) -> int:
        return self._max_workers

    def _mark_worker(self) -> None:
        self._worker_state.in_worker = True

    def _in_worker(self) -> bool:
        return getattr(self._worker_state, "in_worker", False)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="repro-executor",
                    initializer=self._mark_worker,
                )
            return self._pool

    def run_stage(self, tasks: list[Callable[[], Any]]) -> list[Any]:
        if len(tasks) <= 1 or self._max_workers == 1 or self._in_worker():
            return [self._execute_task(task) for task in tasks]
        pool = self._ensure_pool()
        futures = [pool.submit(self._execute_task, task) for task in tasks]
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        if any(future.exception() is not None for future in done):
            # Cancel everything not yet started, let running tasks
            # drain, then raise the error of the lowest-index failure —
            # deterministic no matter which future surfaced first.
            for future in not_done:
                future.cancel()
            wait(futures)
            for future in futures:
                if not future.cancelled() and future.exception() is not None:
                    raise future.exception()
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class PipelinedTaskRunner(ThreadedTaskRunner):
    """Threaded runner that also executes task graphs eagerly.

    :meth:`run_graph` keeps a bounded ready-queue: tasks whose
    dependency counters reach zero are submitted to the shared pool as
    soon as a slot frees up (at most ``max_inflight`` concurrently), in
    creation order among simultaneously-ready tasks.  Synthetic tasks
    (``fn is None`` — phase barriers, planning hooks, virtual output
    slots) complete inline under the graph lock and never occupy a pool
    slot.

    On a task failure no further tasks are submitted; in-flight tasks
    drain and the lowest-index error is raised, mirroring
    :meth:`ThreadedTaskRunner.run_stage`.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
    ):
        super().__init__(max_workers)
        if max_inflight is None:
            max_inflight = 2 * self._max_workers
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self._max_inflight = max_inflight

    @property
    def max_inflight(self) -> int:
        return self._max_inflight

    def run_graph(self, graph: "TaskGraph") -> None:
        if self._max_workers == 1 or self._in_worker():
            # Single slot (or nested inside a pool worker): the serial
            # dependency-order executor is equivalent and cannot deadlock.
            return TaskRunner.run_graph(self, graph)
        pool = self._ensure_pool()
        # Reentrant: a future finished before add_done_callback runs its
        # callback synchronously on the submitting thread, which already
        # holds the lock.
        lock = threading.RLock()
        done_cv = threading.Condition(lock)
        ready: list = []
        state = {"inflight": 0, "error": None}

        def push_ready(tasks) -> None:
            for task in tasks:
                heapq.heappush(ready, (task.index, task))

        def pump_locked() -> None:
            while ready and state["error"] is None:
                if ready[0][1].fn is None:
                    _index, task = heapq.heappop(ready)
                    push_ready(graph.complete(task))
                    continue
                if state["inflight"] >= self._max_inflight:
                    return
                _index, task = heapq.heappop(ready)
                state["inflight"] += 1
                future = pool.submit(self._execute_task, task.fn)
                future.add_done_callback(make_callback(task))

        def make_callback(task):
            def callback(future) -> None:
                with lock:
                    state["inflight"] -= 1
                    try:
                        exc = future.exception()
                        if exc is not None:
                            raise exc
                        task.result = future.result()
                        push_ready(graph.complete(task))
                        pump_locked()
                    except BaseException as exc:  # noqa: BLE001
                        error = state["error"]
                        if error is None or task.index < error[0]:
                            state["error"] = (task.index, exc)
                    done_cv.notify_all()

            return callback

        with lock:
            push_ready(graph.drain_ready())
            pump_locked()
            while state["inflight"] > 0 or (ready and state["error"] is None):
                done_cv.wait()
            if state["error"] is not None:
                raise state["error"][1]
        graph.check_done()


def resolve_runner(
    runner: Union[TaskRunner, str, None], cluster: "ClusterSpec"
) -> TaskRunner:
    """Resolve a runner argument to a :class:`TaskRunner` instance.

    ``None`` consults the ``REPRO_RUNNER`` environment variable
    (``serial`` when unset); the strings ``"serial"``, ``"threads"``,
    and ``"pipelined"`` name the built-in runners, the parallel ones
    sized from ``cluster``.
    """
    if runner is None:
        runner = os.environ.get("REPRO_RUNNER", "serial")
    if isinstance(runner, TaskRunner):
        return runner
    if runner == "serial":
        return SerialTaskRunner()
    if runner in ("threads", "threaded"):
        return ThreadedTaskRunner.for_cluster(cluster)
    if runner in ("pipelined", "pipeline"):
        return PipelinedTaskRunner.for_cluster(cluster)
    raise ValueError(
        f"unknown runner {runner!r}: expected a TaskRunner, 'serial', "
        f"'threads', or 'pipelined'"
    )


class FairJobScheduler:
    """Admission control for jobs on a shared substrate.

    Bounds the number of concurrently *running* jobs and grants freed
    slots round-robin across tenants, each tenant's own waiters FIFO —
    so one tenant replaying a heavy workload cannot starve the pool: a
    light tenant's next query waits behind at most one queued job per
    other tenant, not behind the heavy tenant's whole backlog.

    With ``max_concurrent=None`` (the single-session default and the
    classic-engine path) :meth:`admit` is a no-op passthrough.  Nested
    admissions from an already-admitted thread (a session action that
    triggers another action) reenter without taking a second slot,
    which also makes the gate deadlock-free under recursion.
    """

    def __init__(self, max_concurrent: Optional[int] = None, metrics=None):
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 (or None)")
        self.max_concurrent = max_concurrent
        self._metrics = metrics
        self._cond = threading.Condition()
        self._running = 0
        #: High-water mark of concurrently admitted jobs (tests assert
        #: the bound held under concurrent load).
        self.peak_running = 0
        self._queues: dict[str, deque] = {}
        #: Tenants with waiters, in grant order; invariant: a tenant is
        #: in the rotation iff its queue is non-empty.
        self._rotation: deque = deque()
        self._granted: set = set()
        self._local = threading.local()

    def _dispatch_locked(self) -> None:
        while self._running < self.max_concurrent and self._rotation:
            tenant = self._rotation.popleft()
            queue = self._queues[tenant]
            ticket = queue.popleft()
            if queue:
                self._rotation.append(tenant)
            self._granted.add(ticket)
            self._running += 1
            self.peak_running = max(self.peak_running, self._running)
        self._cond.notify_all()

    @contextmanager
    def admit(self, tenant: str = "") -> Iterator[None]:
        """Hold a job slot for the duration of the ``with`` body."""
        if self.max_concurrent is None:
            yield
            return
        depth = getattr(self._local, "depth", 0)
        if depth:
            # Nested action inside an admitted job: reenter freely.
            self._local.depth = depth + 1
            try:
                yield
            finally:
                self._local.depth = depth
            return
        ticket = object()
        start = time.perf_counter()
        queued = False
        with self._cond:
            queue = self._queues.setdefault(tenant, deque())
            queue.append(ticket)
            if len(queue) == 1:
                self._rotation.append(tenant)
            self._dispatch_locked()
            while ticket not in self._granted:
                queued = True
                self._cond.wait()
            self._granted.discard(ticket)
        if queued and self._metrics is not None:
            self._metrics.record_tenant_admission_wait(
                tenant, time.perf_counter() - start
            )
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            with self._cond:
                self._running -= 1
                self._dispatch_locked()

    def stats(self) -> dict:
        with self._cond:
            return {
                "max_concurrent": self.max_concurrent,
                "running": self._running,
                "peak_running": self.peak_running,
                "waiting": sum(len(q) for q in self._queues.values()),
            }


class DAGScheduler:
    """Executes actions as jobs of timed per-partition tasks.

    With ``pipeline=True`` a job is compiled into a task graph of
    (stage, partition) nodes (see :mod:`repro.engine.taskgraph`) and
    handed to the runner's :meth:`TaskRunner.run_graph`; otherwise the
    staged path runs — wide stages materialize bottom-up behind
    barriers, byte-identical to the historical engine.
    """

    def __init__(
        self,
        metrics,
        runner: TaskRunner | None = None,
        adaptive=None,
        pipeline: bool = False,
        block_manager=None,
    ):
        self._metrics = metrics
        self._runner = runner or SerialTaskRunner()
        #: Optional :class:`~repro.engine.block_manager.BlockManager`;
        #: when its spill tier is active, job dispatch prefetches the
        #: spilled inputs of the about-to-run stages back into budget
        #: headroom before tasks demand them.
        self._block_manager = block_manager
        #: Optional :class:`~repro.engine.adaptive.AdaptiveManager`; when
        #: enabled, jobs are prepared (wide stages materialized one at a
        #: time, bottom-up) even under the serial runner, so each stage's
        #: measured statistics exist before the next stage launches.
        self._adaptive = adaptive
        #: Task-graph execution toggle (``pipeline=`` / ``REPRO_PIPELINE``).
        self.pipeline = pipeline

    @property
    def runner(self) -> TaskRunner:
        return self._runner

    def run_job(
        self,
        rdd: "RDD",
        func: Callable[[Iterator], Any],
        description: str = "",
    ) -> list[Any]:
        """Evaluate ``func`` over each partition of ``rdd``.

        Returns one result per partition, in partition order.
        """
        with self._metrics.job(description):
            # Nested actions issued from inside a pool worker (lazy
            # materialization through a cache miss) run staged inline:
            # the surrounding graph already owns the pool.
            if self.pipeline and not self._runner._in_worker():
                return self._run_pipelined(rdd, func)
            return self._run_staged(rdd, func)

    def _prefetch_spilled_inputs(self, rdd: "RDD") -> None:
        """Warm the spill tier's async prefetch for a job's inputs.

        Walks the lineage the job is about to execute and asks the block
        manager to restore spilled partitions of materialized wide
        outputs and cached RDDs in the background.  Restoration is
        bounded by the memory budget (prefetch only fills free headroom)
        and is purely a latency optimization: a partition that is not
        prefetched in time is restored synchronously on first read.
        No-op unless the spill tier is active.
        """
        blocks = self._block_manager
        if blocks is None or not blocks.spill_enabled:
            return
        seen: set[int] = set()
        stack = [rdd]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            owner = getattr(getattr(node, "_output", None), "owner", None)
            if owner is not None:
                # A materialized wide output: its partitions feed the
                # next stage directly, so its lineage will not re-run.
                blocks.prefetch_namespace(owner)
                continue
            if getattr(node, "_cached", False):
                blocks.prefetch_rdd_blocks(node.id)
            stack.extend(node.dependencies)

    def _run_staged(
        self, rdd: "RDD", func: Callable[[Iterator], Any]
    ) -> list[Any]:
        task_seconds: list[float] = [0.0] * rdd.num_partitions

        def make_task(split: int) -> Callable[[], Any]:
            def task() -> Any:
                with self._metrics.task_timer() as timer:
                    self._runner.fault_point("result", split)
                    result = func(rdd.iterator(split))
                task_seconds[split] = timer.own_seconds
                return result

            return task

        adaptive_on = self._adaptive is not None and self._adaptive.enabled
        self._prefetch_spilled_inputs(rdd)
        if self._runner.parallel or adaptive_on:
            rdd.prepare_execution(set())
        # Wide deps materialized during preparation may themselves have
        # spilled their outputs under the budget; warm them for the
        # result tasks about to fan out.
        self._prefetch_spilled_inputs(rdd)
        tasks = [make_task(split) for split in range(rdd.num_partitions)]
        results = self._runner.run_stage(tasks)
        self._metrics.record_stage(len(tasks), task_seconds)
        return results

    def _run_pipelined(
        self, rdd: "RDD", func: Callable[[Iterator], Any]
    ) -> list[Any]:
        from .taskgraph import compile_job_graph

        self._prefetch_spilled_inputs(rdd)
        task_seconds: list[float] = [0.0] * rdd.num_partitions
        graph, result_tasks, wide_nodes = compile_job_graph(
            rdd, func, task_seconds, self._metrics, self._runner, self._adaptive
        )
        try:
            self._runner.run_graph(graph)
        finally:
            # Promoted nodes already cleared their slots; on failure this
            # drops partial per-partition state so a later (staged) run
            # re-materializes from scratch.
            for node in wide_nodes:
                node._pipeline_cleanup()
        self._metrics.record_stage(len(result_tasks), task_seconds)
        return [task.result for task in result_tasks]
