"""The shared execution substrate under every session of one engine.

The paper's premise is one array-programming surface serving many
analysts over one cluster.  Before this module, each
:class:`~repro.core.session.SacSession` owned a private
:class:`~repro.engine.context.EngineContext` — its own thread pool,
block manager, plan caches, and metrics — so N clients meant N isolated
engines with zero reuse.  The substrate splits that world in two:

* :class:`EngineSubstrate` owns everything **expensive and shareable**:
  the persistent task-runner pool, the byte-accounted
  :class:`~repro.engine.block_manager.BlockManager` (now with per-tenant
  quotas layered on its LRU/spill tier), the spill store, the
  :class:`~repro.engine.metrics.MetricsRegistry` (which labels
  per-tenant counters), the shared compiled-plan caches
  (:class:`PlanCacheGroup`), the global RDD id counter (so two tenants'
  cached partitions can never collide in the shared store), and the
  :class:`~repro.engine.scheduler.FairJobScheduler` admission gate.

* :class:`~repro.engine.context.EngineContext` becomes a **cheap
  per-tenant view** over a substrate: it carries only the per-session
  execution flags (adaptive, pipeline) and per-session wrappers
  (scheduler, shuffle manager, adaptive manager, tenant-scoped block
  view) — a few small Python objects, no threads, no storage.

A context constructed the historical way (``EngineContext()``) builds a
private substrate and behaves byte-identically to the pre-split engine;
``substrate.view(...)`` or ``context.view(...)`` attaches additional
tenants to the same substrate.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Optional

from .block_manager import BlockManager
from .cluster import PAPER_CLUSTER, ClusterSpec
from .metrics import MetricsRegistry
from .scheduler import FairJobScheduler, TaskRunner, resolve_runner


def env_flag(name: str, default: Optional[bool] = None) -> Optional[bool]:
    """Read a boolean environment knob.

    ``"1"``, ``"true"``, ``"yes"``, and ``"on"`` (any case) are true;
    any other set value is false; an *unset* variable returns
    ``default`` — so callers can distinguish "explicitly off" from
    "absent" by passing ``default=None``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("1", "true", "yes", "on")


def parse_memory_limit(text: str | int | None) -> Optional[int]:
    """A byte count from ``"64M"``-style size strings (K/M/G suffixes).

    Accepts plain ints (passed through), decimal strings, and strings
    with a K/M/G/KB/MB/GB suffix (powers of 1024, case-insensitive).
    ``None`` and ``""`` mean no limit.
    """
    if text is None:
        return None
    if isinstance(text, int):
        return text
    cleaned = text.strip().lower()
    if not cleaned:
        return None
    multiplier = 1
    for suffix, factor in (("kb", 1024), ("mb", 1024**2), ("gb", 1024**3),
                           ("k", 1024), ("m", 1024**2), ("g", 1024**3),
                           ("b", 1)):
        if cleaned.endswith(suffix):
            cleaned = cleaned[: -len(suffix)].strip()
            multiplier = factor
            break
    try:
        return int(float(cleaned) * multiplier)
    except ValueError:
        raise ValueError(
            f"cannot parse memory limit {text!r} (expected e.g. 67108864, "
            f"'64M', '2G')"
        ) from None


class LruCache:
    """Bounded LRU cache with hit/miss/eviction counters (thread-safe).

    Used for the substrate's parse and plan caches: iterative workloads
    (k-means, matrix factorization) compile the same handful of queries
    every step, so these stay tiny in practice; the bound only protects
    long-lived substrates that stream many distinct queries.
    """

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __getitem__(self, key):
        """Raw (non-counting, non-reordering) access, for introspection."""
        return self._data[key]

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PlanCacheGroup:
    """The compiled-query caches, shared by every session of a substrate.

    Four tiers, exactly the ones :class:`~repro.core.session.SacSession`
    used to own privately (same sizes, same key discipline — the keys
    already carry binding signatures, planner-option signatures, and the
    adaptive flag, plus a per-session build profile, so moving the
    *store* up to the substrate lets same-shaped sessions share hits
    without ever serving a stale or foreign entry):

    * ``parse``: query text -> AST (parsing is pure).
    * ``plan``: front-half key -> (parsed, normalized) pair.
    * ``passes``: identity-level key -> finished ``PlanState`` (same
      storage *objects* required, so a cross-session hit only happens
      for sessions querying the same hosted datasets).
    * ``compiled``: (front key, IR fingerprint) -> whole lowered
      ``Plan`` for CSE shuffle-output sharing.
    """

    def __init__(self):
        self.parse = LruCache(512)
        self.plan = LruCache(256)
        self.compiled = LruCache(64)
        self.passes = LruCache(256)

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            "parse_cache": self.parse.stats(),
            "plan_cache": self.plan.stats(),
            "compiled_plan_cache": self.compiled.stats(),
            "pass_cache": self.passes.stats(),
        }

    def clear(self) -> None:
        for cache in (self.parse, self.plan, self.compiled, self.passes):
            cache.clear()


class EngineSubstrate:
    """Everything one simulated cluster shares across its tenants.

    Owns the persistent runner pool, the block manager (and spill
    store), the metrics registry, the shared plan caches, the global
    RDD id counter, and the admission gate.  Contexts attach as views
    via :meth:`view`; a substrate-owning context's ``close()`` (or a
    ``with`` block) releases the pool and the spill store.

    Args mirror the resource arguments of the historical
    ``EngineContext``; per-session flags (``adaptive``, ``pipeline``)
    live on the views instead.
    """

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        runner: Optional[TaskRunner | str] = None,
        default_parallelism: Optional[int] = None,
        memory_budget: Optional[int] = None,
        reuse_shuffles: Optional[bool] = None,
        memory_limit: Optional[int | str] = None,
        spill_store: Any = None,
        spill_prefetch: Optional[bool] = None,
        max_concurrent_jobs: Optional[int] = None,
    ):
        self.cluster = cluster
        self.metrics = MetricsRegistry()
        self.runner = resolve_runner(runner, cluster)
        # Bind the runner to this substrate's metrics so task retries
        # land in the right JobMetrics.
        self.runner.metrics = self.metrics
        if reuse_shuffles is None:
            reuse_shuffles = env_flag("REPRO_SHUFFLE_REUSE", False)
        # Out-of-core tier: ``memory_limit`` both caps resident block
        # bytes and turns eviction into spill-to-store (the legacy
        # ``memory_budget`` keeps the historical drop-for-recompute
        # semantics).  With neither set, nothing spill-related exists.
        if memory_limit is None:
            memory_limit = os.environ.get("REPRO_MEMORY_LIMIT") or None
        self.memory_limit = parse_memory_limit(memory_limit)
        if spill_prefetch is None:
            spill_prefetch = env_flag("REPRO_SPILL_PREFETCH", True)
        self._owns_spill_store = False
        if self.memory_limit is not None:
            if memory_budget is None:
                memory_budget = self.memory_limit
            if spill_store is None:
                from ..storage.objectstore import LocalDiskStore

                spill_store = LocalDiskStore(
                    os.environ.get("REPRO_SPILL_DIR") or None
                )
                self._owns_spill_store = True
        self.block_manager = BlockManager(
            self.metrics, memory_budget, reuse_shuffles=reuse_shuffles,
            spill_store=spill_store, prefetch=spill_prefetch,
        )
        # Spill/restore paths pass through the runner's fault points
        # (``inject_failure("restore", ...)``).
        self.block_manager.runner = self.runner
        if max_concurrent_jobs is None:
            raw = os.environ.get("REPRO_SERVE_MAX_CONCURRENT")
            max_concurrent_jobs = int(raw) if raw else None
        self.admission = FairJobScheduler(
            max_concurrent_jobs, metrics=self.metrics
        )
        self.plan_caches = PlanCacheGroup()
        self._default_parallelism = (
            default_parallelism or cluster.default_parallelism()
        )
        self._rdd_counter = 0
        self._rdd_counter_lock = threading.Lock()
        self._view_counter = 0
        self._closed = False

    # ------------------------------------------------------------------

    @property
    def default_parallelism(self) -> int:
        return self._default_parallelism

    def register_rdd(self) -> int:
        """The next substrate-global RDD id.

        Global (not per-view) so two tenants' cached partitions and
        shuffle namespaces can never collide in the shared block store.
        """
        with self._rdd_counter_lock:
            self._rdd_counter += 1
            return self._rdd_counter

    def next_view_name(self) -> str:
        with self._rdd_counter_lock:
            self._view_counter += 1
            return f"tenant-{self._view_counter}"

    def view(
        self,
        tenant: Optional[str] = None,
        *,
        adaptive: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        quota: Optional[int | str] = None,
        reservation: Optional[int | str] = None,
    ):
        """A per-tenant :class:`~repro.engine.context.EngineContext` view.

        ``tenant`` of ``None`` allocates a fresh ``tenant-N`` name;
        pass ``""`` explicitly to attach to the unlabeled default
        tenant (no quota bookkeeping, raw block manager).  ``quota``
        caps the tenant's resident block bytes; ``reservation``
        protects them from other tenants' evictions.
        """
        from .context import EngineContext

        if tenant is None:
            tenant = self.next_view_name()
        return EngineContext(
            substrate=self, tenant=tenant, adaptive=adaptive,
            pipeline=pipeline,
            quota=parse_memory_limit(quota),
            reservation=parse_memory_limit(reservation) or 0,
        )

    # ------------------------------------------------------------------

    def tenant_report(self) -> dict[str, dict[str, Any]]:
        """Per-tenant counters merged with block-manager usage."""
        report = self.metrics.tenant_report()
        for tenant, usage in self.block_manager.tenant_usage().items():
            report.setdefault(tenant, {}).update(usage)
        return report

    def close(self) -> None:
        """Release the executor pool, the prefetch pool, and (when this
        substrate created it) the spill store.  Idempotent."""
        self.runner.close()
        self.block_manager.close()
        if self._owns_spill_store:
            store = self.block_manager.spill_store
            if store is not None:
                store.close()
        self._closed = True

    def __enter__(self) -> "EngineSubstrate":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EngineSubstrate(cluster={self.cluster!r}, "
            f"runner={type(self.runner).__name__}, "
            f"views={self._view_counter})"
        )
