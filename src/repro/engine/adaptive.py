"""Adaptive query execution: re-optimize from measured statistics.

The planner's :class:`~repro.planner.cost.CostModel` prices strategies
from *estimates* frozen at compile time.  This module closes the
estimate-vs-actual gap at runtime, the way Spark's AQE does, using the
:class:`~repro.engine.shuffle.MapOutputStatistics` histograms that every
shuffle's map phase records for free:

* **Partition coalescing** — before the reduce phase of a combining
  shuffle launches, contiguous reduce buckets whose measured bytes fall
  below ``ClusterSpec.adaptive_coalesce_bytes`` merge into one reduce
  *task* (each bucket is still merged separately, so the logical
  partitioning is unchanged), cutting task-launch overhead.  Never
  coalesces below ``total_cores`` tasks, so parallelism is preserved.

* **Skew splitting** — before a downstream shuffle's map stage launches,
  the lineage is walked through element-wise narrow ops down to the
  materialized wide stage feeding it.  A reduce partition whose measured
  bytes exceed ``adaptive_skew_factor`` times the median is *split*: its
  records fan out over several map tasks whose partial combines merge in
  the ordinary reduce phase.  This attacks the paper's Section 5.3 skew
  directly — the join+group-by multiply's hot join key no longer
  serializes its contraction onto one core.  When the hot partition is a
  join's cartesian groups (one giant record per key), the record itself
  is first expanded by chunking one side's value list, which preserves
  the joined pair multiset.

* **Join-strategy downgrade** — handled by the planner
  (:mod:`repro.planner.groupby_join`), which measures both sides'
  materialized sizes at execution time, re-prices the candidates, and
  swaps replicate/tiled plans for a broadcast join when one side's
  *measured* size clears ``adaptive_broadcast_bytes``.  The measured
  sizes land in :attr:`AdaptiveManager.measured_sizes`, where later
  compiles of the same session price with facts instead of estimates.

Every action taken is recorded as an :class:`AdaptiveDecision` — on the
manager, on the active :class:`~repro.engine.metrics.JobMetrics`, and
(via the planner) on the executed plan's ``explain()`` report — with the
measured numbers that triggered it.

With ``enabled=False`` every hook returns ``None`` before touching
anything, so all counters stay byte-identical to a build without this
module.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from .cluster import ClusterSpec
from .metrics import MetricsRegistry
from .shuffle import MapOutputStatistics


@dataclass(frozen=True)
class AdaptiveDecision:
    """One runtime re-optimization, with the numbers that triggered it."""

    #: ``"coalesce"``, ``"skew-split"`` or ``"broadcast-downgrade"``.
    kind: str
    #: Human-readable account of what fired and why.
    description: str
    #: Measured statistics the decision was based on.
    measured: dict = field(default_factory=dict)
    #: The compile-time estimate the measurement contradicted (empty when
    #: the decision is purely execution-level).
    estimate: dict = field(default_factory=dict)

    def summary(self) -> str:
        parts = [f"[{self.kind}] {self.description}"]
        if self.measured:
            measured = ", ".join(f"{k}={v}" for k, v in sorted(self.measured.items()))
            parts.append(f"measured: {measured}")
        if self.estimate:
            estimate = ", ".join(f"{k}={v}" for k, v in sorted(self.estimate.items()))
            parts.append(f"estimated: {estimate}")
        return " | ".join(parts)


#: A reduce-phase hook: given one shuffle's map-output histogram and the
#: cluster spec, either ``None`` (no opinion) or a ``(groups, decision)``
#: pair, where ``groups`` lists the bucket ids each reduce task handles.
ReduceHook = Callable[
    [MapOutputStatistics, ClusterSpec],
    Optional[tuple[list[list[int]], AdaptiveDecision]],
]


def coalesce_contiguous_partitions(
    stats: MapOutputStatistics, cluster: ClusterSpec
) -> Optional[tuple[list[list[int]], AdaptiveDecision]]:
    """Built-in reduce hook: pack small contiguous buckets together.

    Greedy first-fit over the partition order: a group closes once its
    measured bytes reach the coalesce target.  The target never drops a
    shuffle below ``total_cores`` reduce tasks, so a well-sized shuffle
    (the default ``reducers == total_cores`` layout) is left untouched.
    """
    num_partitions = stats.num_partitions
    floor = max(1, cluster.total_cores)
    if num_partitions <= floor:
        return None
    target = max(
        1,
        min(
            cluster.adaptive_coalesce_bytes,
            -(-stats.total_bytes // floor),  # ceil division
        ),
    )
    groups: list[list[int]] = []
    current: list[int] = []
    current_bytes = 0
    for pid, nbytes in enumerate(stats.bytes_per_partition):
        if current and current_bytes + nbytes > target:
            groups.append(current)
            current, current_bytes = [], 0
        current.append(pid)
        current_bytes += nbytes
    if current:
        groups.append(current)
    if len(groups) >= num_partitions:
        return None
    decision = AdaptiveDecision(
        kind="coalesce",
        description=(
            f"coalesced {num_partitions} reduce partitions into "
            f"{len(groups)} tasks (target {target} bytes/task)"
        ),
        measured={
            "partitions": num_partitions,
            "tasks": len(groups),
            "total_bytes": stats.total_bytes,
            "target_bytes": target,
        },
    )
    return groups, decision


class AdaptiveManager:
    """Holds adaptive state for one engine context.

    The shuffle manager consults :meth:`plan_reduce_groups` before its
    reduce phase; :class:`~repro.engine.rdd.ShuffledRDD` consults
    :meth:`plan_map_splits` before its map phase; the planner's runtime
    join reconsideration records its downgrades and measured sizes here.
    All hooks are no-ops while :attr:`enabled` is ``False``.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        metrics: MetricsRegistry,
        enabled: bool = False,
    ):
        self.cluster = cluster
        self.metrics = metrics
        self.enabled = enabled
        #: Every decision taken over the context's lifetime, in order.
        self.decisions: list[AdaptiveDecision] = []
        #: Measured materialized sizes, keyed by ``id(storage)`` →
        #: ``(bytes, records)``.  Later compiles in the same session feed
        #: these to the cost model so estimates converge on facts.
        self.measured_sizes: dict[int, tuple[int, int]] = {}
        #: Strong references to the measured storages: an ``id()`` is
        #: only unique while its object lives, so pinning the object
        #: keeps the key from ever aliasing a different storage.
        self._measured_refs: dict[int, Any] = {}
        self._lock = threading.Lock()
        self._reduce_hooks: list[ReduceHook] = [coalesce_contiguous_partitions]

    def install_reduce_hook(self, hook: ReduceHook) -> None:
        """Register a hook consulted (in order) before each reduce phase."""
        self._reduce_hooks.append(hook)

    def record_decision(self, decision: AdaptiveDecision) -> None:
        """Append a decision to the manager and the active job's metrics."""
        with self._lock:
            self.decisions.append(decision)
        self.metrics.record_adaptive_decision(decision)

    def record_measured_size(self, storage: Any, nbytes: int, records: int) -> None:
        """Remember a storage object's measured materialized size."""
        with self._lock:
            self.measured_sizes[id(storage)] = (nbytes, records)
            self._measured_refs[id(storage)] = storage

    # ------------------------------------------------------------------
    # Reduce-phase planning (coalescing)
    # ------------------------------------------------------------------

    def plan_reduce_groups(
        self, stats: Optional[MapOutputStatistics]
    ) -> Optional[list[list[int]]]:
        """Bucket grouping for one shuffle's reduce phase, or ``None``."""
        if not self.enabled or stats is None:
            return None
        for hook in self._reduce_hooks:
            planned = hook(stats, self.cluster)
            if planned is not None:
                groups, decision = planned
                self.record_decision(decision)
                return groups
        return None

    # ------------------------------------------------------------------
    # Map-phase planning (skew splitting)
    # ------------------------------------------------------------------

    def find_skew_source(self, parent) -> Optional[tuple[list, Any]]:
        """The wide stage feeding ``parent`` through element-wise ops.

        Returns ``(chain, node)`` — the narrow ops walked through
        (downstream-first) and the :class:`~repro.engine.rdd.ShuffledRDD`
        or :class:`~repro.engine.rdd.CoGroupedRDD` at the bottom — or
        ``None`` when the walk hits anything the skew splitter cannot
        re-run per chunk (an opaque ``map_partitions``, a cached node, a
        narrow source).
        """
        if not self.enabled:
            return None
        from .rdd import CoGroupedRDD, MapPartitionsRDD, ShuffledRDD

        chain: list = []
        node = parent
        while (
            isinstance(node, MapPartitionsRDD)
            and node._elementwise
            and not node._cached
        ):
            chain.append(node)
            node = node._parent
        if not isinstance(node, (ShuffledRDD, CoGroupedRDD)) or node._cached:
            return None
        return chain, node

    @staticmethod
    def rebuild_chain(chain: list, pid: int, records: list) -> Iterator:
        """Re-apply a narrow element-wise chain to a slice of partition ``pid``."""
        it: Iterator = iter(records)
        for narrow in reversed(chain):
            it = iter(narrow._func(pid, it))
        return it

    def plan_partition_chunks(
        self,
        stats: MapOutputStatistics,
        splits: dict[int, int],
        pid: int,
        records: list,
        splittable: bool,
    ) -> Optional[list[list]]:
        """Chunk one hot partition's records, recording the decision.

        ``None`` means the partition stays a single map task (too few
        records to slice) and no decision is recorded — exactly the
        staged fallback.
        """
        want = splits[pid]
        if splittable and len(records) < want:
            records = _expand_cartesian_records(records, want)
        slices = min(want, len(records))
        if slices < 2:
            return None
        from .rdd import _slice

        chunks = _slice(list(records), slices)
        median = _lower_median(stats.bytes_per_partition)
        self.record_decision(AdaptiveDecision(
            kind="skew-split",
            description=(
                f"reduce partition {pid} is skewed "
                f"({stats.bytes_per_partition[pid]} bytes vs median "
                f"{median}); split its map input into {slices} tasks"
            ),
            measured={
                "partition": pid,
                "partition_bytes": stats.bytes_per_partition[pid],
                "partition_records": stats.records_per_partition[pid],
                "median_bytes": median,
                "splits": slices,
            },
        ))
        return chunks

    def plan_map_splits(self, parent) -> Optional[list[Iterator]]:
        """Fan a skewed upstream partition out over several map tasks.

        Walks ``parent``'s lineage through element-wise narrow ops down
        to a materialized wide stage; if that stage's measured histogram
        shows hot partitions, returns one iterator per map task — the
        hot partitions' record lists sliced into chunks with the narrow
        chain re-applied per chunk, the rest untouched.  ``None`` when
        nothing qualifies (the common case), leaving the caller on the
        exact seed code path.
        """
        source = self.find_skew_source(parent)
        if source is None:
            return None
        chain, node = source
        stats = node.output_statistics()
        if stats is None or stats.num_partitions != node.num_partitions:
            return None
        splits = self._plan_skew_splits(stats)
        if not splits:
            return None

        base_output = node._materialize()
        splittable = getattr(node, "_splittable_values", False)

        map_outputs: list[Iterator] = []
        for pid in range(node.num_partitions):
            if pid not in splits:
                map_outputs.append(parent.iterator(pid))
                continue
            chunks = self.plan_partition_chunks(
                stats, splits, pid, base_output[pid], splittable
            )
            if chunks is None:
                map_outputs.append(parent.iterator(pid))
                continue
            for chunk in chunks:
                map_outputs.append(self.rebuild_chain(chain, pid, chunk))
        return map_outputs

    def _plan_skew_splits(self, stats: MapOutputStatistics) -> dict[int, int]:
        """Hot partitions and the number of slices each should fan out to."""
        nonzero = [b for b in stats.bytes_per_partition if b]
        if len(nonzero) < 2:
            return {}
        median = _lower_median(stats.bytes_per_partition)
        factor = self.cluster.adaptive_skew_factor
        min_bytes = self.cluster.adaptive_skew_min_bytes
        splits: dict[int, int] = {}
        for pid, nbytes in enumerate(stats.bytes_per_partition):
            if nbytes >= min_bytes and nbytes > factor * median:
                splits[pid] = min(
                    self.cluster.adaptive_max_splits,
                    max(2, round(nbytes / max(1, median))),
                )
        return splits


def _lower_median(bytes_per_partition) -> int:
    """Lower median of the non-empty buckets.

    Shuffle histograms under key skew are right-tailed with few non-empty
    buckets; the *upper* median of a two-bucket histogram is the hot
    bucket itself, which would mask exactly the skew being hunted, so the
    typical bucket is taken as the lower median.
    """
    nonzero = sorted(b for b in bytes_per_partition if b)
    return nonzero[(len(nonzero) - 1) // 2] if nonzero else 0


def _expand_cartesian_records(records: list, want: int) -> list:
    """Chunk cartesian cogroup records until at least ``want`` exist.

    Each record is ``(key, (left_values, right_values))`` destined for a
    cartesian flatten; splitting the longer value list of the biggest
    record into two halves preserves the flattened pair multiset while
    doubling the slicing granularity.  Records of any other shape are
    left alone.
    """
    out = list(records)
    while len(out) < want:
        best_index = -1
        best_weight = 1
        for index, record in enumerate(out):
            weight = _cartesian_weight(record)
            if weight > best_weight:
                best_index, best_weight = index, weight
        if best_index < 0:
            break
        key, (left, right) = out.pop(best_index)
        if len(left) >= len(right):
            mid = len(left) // 2
            out.append((key, (left[:mid], right)))
            out.append((key, (left[mid:], right)))
        else:
            mid = len(right) // 2
            out.append((key, (left, right[:mid])))
            out.append((key, (left, right[mid:])))
    return out


def _cartesian_weight(record: Any) -> int:
    """Longest value-list length of a splittable cogroup record, else 0."""
    if not (isinstance(record, tuple) and len(record) == 2):
        return 0
    value = record[1]
    if not (isinstance(value, tuple) and len(value) == 2):
        return 0
    left, right = value
    if not (isinstance(left, list) and isinstance(right, list)):
        return 0
    if not left or not right:
        return 0
    return max(len(left), len(right))
