"""The driver-side entry point to the engine (Spark's ``SparkContext``)."""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Generic, Iterable, Iterator, Optional, TypeVar

from .adaptive import AdaptiveManager
from .block_manager import BlockManager
from .cluster import PAPER_CLUSTER, ClusterSpec
from .metrics import MetricsRegistry
from .rdd import RDD, ParallelCollectionRDD
from .scheduler import (
    DAGScheduler, PipelinedTaskRunner, TaskRunner, resolve_runner,
)
from .shuffle import ShuffleManager

T = TypeVar("T")


def parse_memory_limit(text: str | int | None) -> Optional[int]:
    """A byte count from ``"64M"``-style size strings (K/M/G suffixes).

    Accepts plain ints (passed through), decimal strings, and strings
    with a K/M/G/KB/MB/GB suffix (powers of 1024, case-insensitive).
    ``None`` and ``""`` mean no limit.
    """
    if text is None:
        return None
    if isinstance(text, int):
        return text
    cleaned = text.strip().lower()
    if not cleaned:
        return None
    multiplier = 1
    for suffix, factor in (("kb", 1024), ("mb", 1024**2), ("gb", 1024**3),
                           ("k", 1024), ("m", 1024**2), ("g", 1024**3),
                           ("b", 1)):
        if cleaned.endswith(suffix):
            cleaned = cleaned[: -len(suffix)].strip()
            multiplier = factor
            break
    try:
        return int(float(cleaned) * multiplier)
    except ValueError:
        raise ValueError(
            f"cannot parse memory limit {text!r} (expected e.g. 67108864, "
            f"'64M', '2G')"
        ) from None


class Broadcast(Generic[T]):
    """A read-only value shared with every task.

    In-process this is just a reference; it exists so generated plans read
    like their Spark counterparts and so broadcast sizes can be accounted
    if a cost model for driver→executor traffic is ever needed.
    """

    def __init__(self, value: T):
        self._value = value

    @property
    def value(self) -> T:
        return self._value


class Accumulator:
    """A write-only counter tasks add to and the driver reads.

    ``add`` is atomic: with a parallel task runner, tasks on different
    worker threads add concurrently, and an unlocked read-modify-write
    would lose updates.
    """

    def __init__(self, initial: Any, add: Callable[[Any, Any], Any] = lambda a, b: a + b):
        self._value = initial
        self._add = add
        self._lock = threading.Lock()

    def add(self, amount: Any) -> None:
        with self._lock:
            self._value = self._add(self._value, amount)

    @property
    def value(self) -> Any:
        return self._value


class EngineContext:
    """Creates RDDs and runs jobs against a simulated cluster.

    Example::

        ctx = EngineContext()
        rdd = ctx.parallelize(range(100), num_partitions=8)
        total = rdd.map(lambda x: x * x).sum()

    One :class:`~repro.engine.scheduler.TaskRunner` — resolved from the
    ``runner`` argument or the ``REPRO_RUNNER`` environment variable and
    sized from the cluster spec — is shared by the scheduler's result
    stages, the shuffle manager's map/reduce tasks, and cogroup merges,
    so a threaded context keeps one persistent executor pool for its
    lifetime (``close()`` or a ``with`` block shuts it down).
    """

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        runner: Optional[TaskRunner | str] = None,
        default_parallelism: Optional[int] = None,
        memory_budget: Optional[int] = None,
        reuse_shuffles: Optional[bool] = None,
        adaptive: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        memory_limit: Optional[int | str] = None,
        spill_store: Any = None,
        spill_prefetch: Optional[bool] = None,
    ):
        self.cluster = cluster
        self.metrics = MetricsRegistry()
        self.runner = resolve_runner(runner, cluster)
        # Bind the runner to this context's metrics so task retries land
        # in the right JobMetrics.
        self.runner.metrics = self.metrics
        if reuse_shuffles is None:
            reuse_shuffles = os.environ.get(
                "REPRO_SHUFFLE_REUSE", ""
            ).lower() in ("1", "true", "yes")
        if adaptive is None:
            # Raw engine contexts default to non-adaptive (the historical
            # behavior); SAC sessions pass an explicit value.  The
            # environment variable overrides either default for A/B runs.
            adaptive = os.environ.get(
                "REPRO_ADAPTIVE", ""
            ).lower() in ("1", "true", "yes")
        # Out-of-core tier: ``memory_limit`` both caps resident block
        # bytes and turns eviction into spill-to-store (the legacy
        # ``memory_budget`` keeps the historical drop-for-recompute
        # semantics).  With neither set, nothing spill-related exists.
        if memory_limit is None:
            memory_limit = os.environ.get("REPRO_MEMORY_LIMIT") or None
        self.memory_limit = parse_memory_limit(memory_limit)
        if spill_prefetch is None:
            env = os.environ.get("REPRO_SPILL_PREFETCH")
            spill_prefetch = (
                env.lower() in ("1", "true", "yes") if env is not None else True
            )
        self._owns_spill_store = False
        if self.memory_limit is not None:
            if memory_budget is None:
                memory_budget = self.memory_limit
            if spill_store is None:
                from ..storage.objectstore import LocalDiskStore

                spill_store = LocalDiskStore(
                    os.environ.get("REPRO_SPILL_DIR") or None
                )
                self._owns_spill_store = True
        self.block_manager = BlockManager(
            self.metrics, memory_budget, reuse_shuffles=reuse_shuffles,
            spill_store=spill_store, prefetch=spill_prefetch,
        )
        # Spill/restore paths pass through the runner's fault points
        # (``inject_failure("restore", ...)``).
        self.block_manager.runner = self.runner
        self.adaptive = AdaptiveManager(cluster, self.metrics, enabled=adaptive)
        self.shuffle_manager = ShuffleManager(
            self.metrics, self.runner, adaptive=self.adaptive,
            blocks=self.block_manager,
        )
        if pipeline is None:
            # Task-graph execution defaults on for runners that execute
            # graphs natively; ``REPRO_PIPELINE`` overrides for A/B runs.
            env = os.environ.get("REPRO_PIPELINE")
            if env is not None:
                pipeline = env.lower() in ("1", "true", "yes")
            else:
                pipeline = isinstance(self.runner, PipelinedTaskRunner)
        self.pipeline = pipeline
        self.scheduler = DAGScheduler(
            self.metrics, self.runner, adaptive=self.adaptive,
            pipeline=pipeline, block_manager=self.block_manager,
        )
        self._default_parallelism = default_parallelism or cluster.default_parallelism()
        self._rdd_counter = 0
        self._rdd_counter_lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def default_parallelism(self) -> int:
        return self._default_parallelism

    def _register_rdd(self) -> int:
        with self._rdd_counter_lock:
            self._rdd_counter += 1
            return self._rdd_counter

    def close(self) -> None:
        """Release the executor pool (idempotent; context stays usable
        for serial work — a threaded runner re-spawns its pool lazily if
        another job runs).  Also stops the spill prefetch pool and, when
        this context created the spill store, closes it (removing its
        temp directory)."""
        self.runner.close()
        self.block_manager.close()
        if self._owns_spill_store:
            store = self.block_manager.spill_store
            if store is not None:
                store.close()

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def parallelize(
        self, data: Iterable, num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute an in-memory collection as an RDD."""
        return ParallelCollectionRDD(
            self, data, num_partitions or self._default_parallelism
        )

    def empty_rdd(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    def range(self, start: int, end: int, num_partitions: Optional[int] = None) -> RDD:
        return self.parallelize(range(start, end), num_partitions)

    def broadcast(self, value: T) -> Broadcast[T]:
        return Broadcast(value)

    def accumulator(self, initial: Any = 0) -> Accumulator:
        return Accumulator(initial)

    # ------------------------------------------------------------------

    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator], Any],
        description: str = "",
    ) -> list[Any]:
        """Run ``func`` over every partition of ``rdd`` (one job)."""
        return self.scheduler.run_job(rdd, func, description)

    def simulated_time(self) -> float:
        """Simulated cluster time of everything run on this context."""
        return self.metrics.simulated_time(self.cluster)
