"""The driver-side entry point to the engine (Spark's ``SparkContext``).

Since the substrate split (:mod:`repro.engine.substrate`), a context is
a cheap per-tenant *view*: the expensive shared machinery — runner pool,
block manager, metrics, plan caches, admission gate — lives on an
:class:`~repro.engine.substrate.EngineSubstrate`, and the context
carries only per-session execution policy (adaptive, pipeline) and the
per-session wrappers built from it.  Constructing a context the
historical way builds a private substrate and behaves byte-identically
to the pre-split engine.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Iterable, Iterator, Optional, TypeVar

from .adaptive import AdaptiveManager
from .cluster import PAPER_CLUSTER, ClusterSpec
from .rdd import RDD, ParallelCollectionRDD
from .scheduler import DAGScheduler, PipelinedTaskRunner, TaskRunner
from .shuffle import ShuffleManager
from .substrate import EngineSubstrate, env_flag, parse_memory_limit

__all__ = [
    "Accumulator", "Broadcast", "EngineContext", "env_flag",
    "parse_memory_limit",
]

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value shared with every task.

    In-process this is just a reference; it exists so generated plans read
    like their Spark counterparts and so broadcast sizes can be accounted
    if a cost model for driver→executor traffic is ever needed.
    """

    def __init__(self, value: T):
        self._value = value

    @property
    def value(self) -> T:
        return self._value


class Accumulator:
    """A write-only counter tasks add to and the driver reads.

    ``add`` is atomic: with a parallel task runner, tasks on different
    worker threads add concurrently, and an unlocked read-modify-write
    would lose updates.
    """

    def __init__(self, initial: Any, add: Callable[[Any, Any], Any] = lambda a, b: a + b):
        self._value = initial
        self._add = add
        self._lock = threading.Lock()

    def add(self, amount: Any) -> None:
        with self._lock:
            self._value = self._add(self._value, amount)

    @property
    def value(self) -> Any:
        return self._value


class EngineContext:
    """Creates RDDs and runs jobs against a simulated cluster.

    Example::

        ctx = EngineContext()
        rdd = ctx.parallelize(range(100), num_partitions=8)
        total = rdd.map(lambda x: x * x).sum()

    One :class:`~repro.engine.scheduler.TaskRunner` — resolved from the
    ``runner`` argument or the ``REPRO_RUNNER`` environment variable and
    sized from the cluster spec — is shared by the scheduler's result
    stages, the shuffle manager's map/reduce tasks, and cogroup merges,
    so a threaded context keeps one persistent executor pool for its
    lifetime (``close()`` or a ``with`` block shuts it down).

    Pass ``substrate=`` (or call :meth:`view` /
    :meth:`~repro.engine.substrate.EngineSubstrate.view`) to attach this
    context as a tenant view on an existing substrate instead of
    building a private one: the view shares the substrate's pool, block
    store, metrics, and plan caches, but carries its *own*
    adaptive/pipeline flags, scheduler, and shuffle manager — so
    per-session execution policy never leaks across sessions.  A named
    ``tenant`` writes its cached blocks through a
    :class:`~repro.engine.block_manager.TenantBlockView`, making it
    subject to its ``quota`` and protected by its ``reservation``.
    """

    def __init__(
        self,
        cluster: ClusterSpec = PAPER_CLUSTER,
        runner: Optional[TaskRunner | str] = None,
        default_parallelism: Optional[int] = None,
        memory_budget: Optional[int] = None,
        reuse_shuffles: Optional[bool] = None,
        adaptive: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        memory_limit: Optional[int | str] = None,
        spill_store: Any = None,
        spill_prefetch: Optional[bool] = None,
        substrate: Optional[EngineSubstrate] = None,
        tenant: str = "",
        quota: Optional[int | str] = None,
        reservation: Optional[int | str] = None,
        max_concurrent_jobs: Optional[int] = None,
    ):
        if substrate is None:
            substrate = EngineSubstrate(
                cluster=cluster, runner=runner,
                default_parallelism=default_parallelism,
                memory_budget=memory_budget, reuse_shuffles=reuse_shuffles,
                memory_limit=memory_limit, spill_store=spill_store,
                spill_prefetch=spill_prefetch,
                max_concurrent_jobs=max_concurrent_jobs,
            )
        self.substrate = substrate
        self.tenant = tenant
        self.cluster = substrate.cluster
        self.metrics = substrate.metrics
        self.runner = substrate.runner
        self.memory_limit = substrate.memory_limit
        if tenant:
            quota = parse_memory_limit(quota)
            reservation = parse_memory_limit(reservation) or 0
            if quota is not None or reservation:
                substrate.block_manager.configure_tenant(
                    tenant, quota=quota, reservation=reservation
                )
            self.block_manager = substrate.block_manager.view(tenant)
        else:
            # The unlabeled default tenant writes through the raw shared
            # manager — byte-identical to the pre-tenancy store.
            self.block_manager = substrate.block_manager
        if adaptive is None:
            # Raw engine contexts default to non-adaptive (the historical
            # behavior); SAC sessions pass an explicit value.  The
            # environment variable overrides either default for A/B runs.
            adaptive = env_flag("REPRO_ADAPTIVE", False)
        self.adaptive = AdaptiveManager(
            self.cluster, self.metrics, enabled=adaptive
        )
        self.shuffle_manager = ShuffleManager(
            self.metrics, self.runner, adaptive=self.adaptive,
            blocks=self.block_manager,
        )
        if pipeline is None:
            # Task-graph execution defaults on for runners that execute
            # graphs natively; ``REPRO_PIPELINE`` overrides for A/B runs.
            pipeline = env_flag("REPRO_PIPELINE")
            if pipeline is None:
                pipeline = isinstance(self.runner, PipelinedTaskRunner)
        self.pipeline = pipeline
        self.scheduler = DAGScheduler(
            self.metrics, self.runner, adaptive=self.adaptive,
            pipeline=pipeline, block_manager=self.block_manager,
        )

    # ------------------------------------------------------------------

    @property
    def default_parallelism(self) -> int:
        return self.substrate.default_parallelism

    def _register_rdd(self) -> int:
        return self.substrate.register_rdd()

    def view(
        self,
        tenant: Optional[str] = None,
        *,
        adaptive: Optional[bool] = None,
        pipeline: Optional[bool] = None,
        quota: Optional[int | str] = None,
        reservation: Optional[int | str] = None,
    ) -> "EngineContext":
        """Another context over this context's substrate.

        ``tenant=None`` inherits this view's tenant (the flag-override
        case); flags left ``None`` inherit this view's current values,
        so ``ctx.view(adaptive=False)`` is "same session shape, adaptive
        off" without mutating ``ctx``.
        """
        return EngineContext(
            substrate=self.substrate,
            tenant=self.tenant if tenant is None else tenant,
            adaptive=self.adaptive.enabled if adaptive is None else adaptive,
            pipeline=self.pipeline if pipeline is None else pipeline,
            quota=quota,
            reservation=reservation,
        )

    def close(self) -> None:
        """Release the substrate's executor pool (idempotent; the
        context stays usable for serial work — a threaded runner
        re-spawns its pool lazily if another job runs).  Also stops the
        spill prefetch pool and, when the substrate created the spill
        store, closes it (removing its temp directory).  Closing any
        view closes the shared substrate — multi-tenant owners should
        close the substrate once, not per-view."""
        self.substrate.close()

    def __enter__(self) -> "EngineContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def parallelize(
        self, data: Iterable, num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute an in-memory collection as an RDD."""
        return ParallelCollectionRDD(
            self, data, num_partitions or self.default_parallelism
        )

    def empty_rdd(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    def range(self, start: int, end: int, num_partitions: Optional[int] = None) -> RDD:
        return self.parallelize(range(start, end), num_partitions)

    def broadcast(self, value: T) -> Broadcast[T]:
        return Broadcast(value)

    def accumulator(self, initial: Any = 0) -> Accumulator:
        return Accumulator(initial)

    # ------------------------------------------------------------------

    def run_job(
        self,
        rdd: RDD,
        func: Callable[[Iterator], Any],
        description: str = "",
    ) -> list[Any]:
        """Run ``func`` over every partition of ``rdd`` (one job)."""
        return self.scheduler.run_job(rdd, func, description)

    def simulated_time(self) -> float:
        """Simulated cluster time of everything run on this context."""
        return self.metrics.simulated_time(self.cluster)
