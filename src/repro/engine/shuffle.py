"""Shuffle execution: the only way data crosses "the network".

A shuffle takes the keyed output of every map-side partition, buckets each
record by a :class:`~repro.engine.partitioner.Partitioner`, and hands each
reduce-side partition the merged contents of its bucket.  Two regimes
mirror Spark:

* **With an aggregator and map-side combining** (``reduceByKey``,
  ``combineByKey``, ``foldByKey``, ``aggregateByKey``): values are combined
  into per-key combiners *before* they are counted against the network, so
  a sum over a billion records shuffles one combiner per key per map
  partition.  This is the mechanism behind the paper's insistence on
  translating group-bys to ``reduceByKey`` (Sections 4 and 5.3).

* **Without map-side combining** (``groupByKey``, ``cogroup``): every
  record crosses the network individually.  The ablation benchmark E5
  measures exactly this difference.

Shuffled bytes are *measured* from the actual records via
:mod:`repro.engine.serialization`, not assumed — but through the
:class:`~repro.engine.serialization.RecordSizeAccountant` fast path, so
pricing a homogeneous tile stream costs a memo lookup per record rather
than a recursive walk, and the accounting is batched per map partition.

Map tasks (drain + combine + bucket + account one map partition) and
reduce tasks (merge one bucket) are independent, so both fan out on the
engine's shared :class:`~repro.engine.scheduler.TaskRunner`.  Buckets
are concatenated in map-partition order afterwards, which makes the
output — and every recorded counter — identical to the serial drain.

Two execution shapes share the same per-partition map work
(:func:`_map_partition`):

* :meth:`ShuffleManager.shuffle` — the staged path: one barrier after
  the map phase, one after the reduce phase.
* :class:`PipelinedShuffle` — per-partition-addressable state for the
  task-graph scheduler: map slots land individually (each slot's
  buckets, bytes, and timing are stored as they complete), partial
  statistics are readable while the map phase is still running, and
  ``finish_map_phase`` concatenates slots in deterministic slot order so
  every byte counter matches the staged path exactly.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

import numpy as np

from .metrics import MetricsRegistry
from .partitioner import Partitioner
from .scheduler import SerialTaskRunner, TaskRunner
from .serialization import RecordSizeAccountant


@dataclass(frozen=True)
class MapOutputStatistics:
    """Per-reduce-partition histogram of one shuffle's map output.

    Collected unconditionally during the map phase of every shuffle: each
    map task prices its buckets separately through the same
    :class:`RecordSizeAccountant` that priced the whole partition before,
    so ``sum(bytes_per_partition)`` is integer-identical to the recorded
    ``shuffle_bytes`` contribution and collecting the histogram never
    perturbs a counter.  The adaptive layer reads these numbers to decide
    coalescing, skew splitting, and join-strategy downgrades.
    """

    bytes_per_partition: tuple[int, ...]
    records_per_partition: tuple[int, ...]

    @property
    def num_partitions(self) -> int:
        return len(self.bytes_per_partition)

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_per_partition)

    @property
    def total_records(self) -> int:
        return sum(self.records_per_partition)

    def merged_with(self, other: "MapOutputStatistics") -> "MapOutputStatistics":
        """Elementwise sum with another shuffle's histogram (cogroups)."""
        return MapOutputStatistics(
            tuple(a + b for a, b in zip(self.bytes_per_partition,
                                        other.bytes_per_partition)),
            tuple(a + b for a, b in zip(self.records_per_partition,
                                        other.records_per_partition)),
        )

    def summary(self) -> str:
        nonzero = [b for b in self.bytes_per_partition if b]
        top = max(self.bytes_per_partition) if self.bytes_per_partition else 0
        return (
            f"{self.num_partitions} partitions, {self.total_bytes} bytes "
            f"({len(nonzero)} non-empty, largest {top})"
        )


class ShuffleResult(list):
    """The reduce-side buckets of one shuffle, list-compatible.

    Behaves exactly like the ``list[list[record]]`` the manager always
    returned; the map-output histogram rides along as :attr:`stats` so
    callers that want it (the adaptive layer) can read it without a
    signature change anywhere else.
    """

    stats: Optional[MapOutputStatistics] = None


@dataclass
class Aggregator:
    """Spark-style map/reduce-side combining functions.

    ``create_combiner`` turns the first value for a key into a combiner,
    ``merge_value`` folds another value into an existing combiner, and
    ``merge_combiners`` merges two combiners on the reduce side.
    """

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]
    map_side_combine: bool = True


def _combine_map_side(
    records: Iterator[tuple[Any, Any]], aggregator: Aggregator
) -> list[tuple[Any, Any]]:
    """Fold values into one combiner per key within a map partition."""
    combiners: dict[Any, Any] = {}
    for key, value in records:
        if key in combiners:
            combiners[key] = aggregator.merge_value(combiners[key], value)
        else:
            combiners[key] = aggregator.create_combiner(value)
    return list(combiners.items())


def _merge_reduce_side(
    bucket: list[tuple[Any, Any]], aggregator: Aggregator
) -> list[tuple[Any, Any]]:
    """Merge the (pre-combined or raw) records of one reduce bucket."""
    merged: dict[Any, Any] = {}
    if aggregator.map_side_combine:
        for key, combiner in bucket:
            if key in merged:
                merged[key] = aggregator.merge_combiners(merged[key], combiner)
            else:
                merged[key] = combiner
    else:
        for key, value in bucket:
            if key in merged:
                merged[key] = aggregator.merge_value(merged[key], value)
            else:
                merged[key] = aggregator.create_combiner(value)
    return list(merged.items())


#: Below this many records the numpy batch setup costs more than the
#: per-record ``partition`` calls it saves.
_BATCH_SCATTER_MIN = 32


def _scatter_records(
    records: list[tuple[Any, Any]],
    partitioner: Partitioner,
    num_reducers: int,
) -> list[list]:
    """Bucket ``records`` by reducer, vectorizing when the keys allow.

    The batch path hashes every key in one numpy pass
    (:meth:`Partitioner.partition_batch`), then scatters with a *stable*
    argsort — each bucket keeps its records in original partition order,
    so the result is list-identical (hence byte- and counter-identical)
    to the per-record loop it replaces.
    """
    local_buckets: list[list] = [[] for _ in range(num_reducers)]
    bucket_ids = None
    if (
        num_reducers > 1
        and len(records) >= _BATCH_SCATTER_MIN
        and partitioner.num_partitions == num_reducers
    ):
        bucket_ids = partitioner.partition_batch(
            [record[0] for record in records]
        )
    if bucket_ids is None:
        partition = partitioner.partition
        for record in records:
            local_buckets[partition(record[0])].append(record)
        return local_buckets
    order = np.argsort(bucket_ids, kind="stable")
    starts = np.searchsorted(bucket_ids[order], np.arange(num_reducers + 1))
    for reducer in range(num_reducers):
        lo, hi = int(starts[reducer]), int(starts[reducer + 1])
        if lo != hi:
            local_buckets[reducer] = [records[i] for i in order[lo:hi]]
    return local_buckets


def _map_partition(
    partition_iter: Iterator[tuple[Any, Any]],
    partitioner: Partitioner,
    aggregator: Optional[Aggregator],
    accountant: RecordSizeAccountant,
    num_reducers: int,
) -> tuple[list[list], list[int], int]:
    """The map-side work for one partition: drain, combine, bucket, price.

    Shared verbatim by the staged and pipelined paths so their measured
    bytes cannot diverge.  Pricing each bucket separately sums the same
    memoized per-record sizes as a single ``batch_size(records)`` call —
    the per-reducer histogram is free.
    """
    if aggregator is not None and aggregator.map_side_combine:
        records = _combine_map_side(partition_iter, aggregator)
    else:
        records = list(partition_iter)
    local_buckets = _scatter_records(records, partitioner, num_reducers)
    bucket_bytes = [
        accountant.batch_size(bucket) if bucket else 0
        for bucket in local_buckets
    ]
    return local_buckets, bucket_bytes, len(records)


class _BucketSpiller:
    """Map-output buckets written straight to the spill store.

    In spill mode the map phase never accumulates its buckets in driver
    memory: each map task prices its buckets (identical accounting to
    the in-memory path), then serializes every non-empty bucket to the
    object store.  The reduce/assembly side reads a reducer's buckets
    back in ascending map-slot order — the same concatenation order as
    the in-memory path, so reduce inputs are byte-identical — consuming
    (deleting) each object as it goes.  Spilled and restored bytes use
    the accountant's bucket sizes so the counters pair up exactly.
    """

    def __init__(self, store: Any, metrics: MetricsRegistry, label: str):
        self._store = store
        self._metrics = metrics
        self._label = label
        #: (slot, reducer) -> accounted bucket bytes.
        self._written: dict[tuple[Any, int], int] = {}
        self._lock = threading.Lock()

    def _key(self, slot: Any, reducer: int) -> str:
        return f"shufmap/{self._label}/{slot}/{reducer}"

    def write(self, slot: Any, local_buckets: list[list],
              bucket_bytes: list[int]) -> None:
        """Persist one map slot's non-empty buckets (idempotent)."""
        for reducer, bucket in enumerate(local_buckets):
            if not bucket:
                continue
            data = pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL)
            self._store.put(self._key(slot, reducer), data)
            with self._lock:
                self._written[(slot, reducer)] = bucket_bytes[reducer]
            self._metrics.record_spill(bucket_bytes[reducer])

    def read_bucket(self, reducer: int) -> list:
        """One reducer's concatenated bucket, consumed from the store.

        Entries are only forgotten (and objects only deleted) after the
        whole bucket assembled, so a task retried partway through a read
        still finds every object.
        """
        with self._lock:
            keys = sorted(
                (key for key in self._written if key[1] == reducer),
                key=lambda key: key[0],
            )
            sizes = {key: self._written[key] for key in keys}
        bucket: list = []
        for key in keys:
            store_key = self._key(key[0], reducer)
            bucket.extend(pickle.loads(self._store.get(store_key)))
        for key in keys:
            with self._lock:
                self._written.pop(key, None)
            self._store.delete(self._key(key[0], reducer))
            self._metrics.record_spill_restore(sizes[key])
        return bucket


class ShuffleManager:
    """Executes shuffles and records their measured volume."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        runner: Optional[TaskRunner] = None,
        adaptive=None,
        blocks=None,
    ):
        self._metrics = metrics
        self._runner = runner or SerialTaskRunner()
        #: Optional :class:`~repro.engine.adaptive.AdaptiveManager`; when
        #: present and enabled it may regroup the reduce phase (partition
        #: coalescing).  ``None`` (or disabled) reproduces the seed
        #: behavior exactly.
        self._adaptive = adaptive
        #: Optional :class:`~repro.engine.block_manager.BlockManager`;
        #: when its spill tier is active, shuffles run out-of-core (map
        #: buckets stream through the spill store and reduce outputs are
        #: adopted as budget-managed partitions).
        self._blocks = blocks

    def shuffle(
        self,
        map_outputs: Iterable[Iterator[tuple[Any, Any]]],
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
        stage_label: Optional[str] = None,
    ) -> list[list[tuple[Any, Any]]]:
        """Run a full shuffle.

        Args:
            map_outputs: one keyed-record iterator per map-side partition.
                Each iterator is drained inside a timed "map task".
            partitioner: reduce-side placement of keys.
            aggregator: combining semantics; ``None`` means plain
                re-partitioning (records pass through unmodified, possibly
                with duplicate keys).
            stage_label: identity suffix for fault-injection points
                (``map:<label>`` / ``reduce:<label>``); bare ``map`` /
                ``reduce`` when omitted.

        Returns:
            One list of ``(key, value)`` pairs per reduce partition.  With
            an aggregator the value is the fully merged combiner.  With
            the spill tier active, the partitions come back as a
            budget-managed ``ManagedOutput`` handle (list-compatible).
        """
        if self._blocks is not None and self._blocks.spill_enabled:
            return self._shuffle_spill(
                map_outputs, partitioner, aggregator, stage_label
            )
        num_reducers = partitioner.num_partitions
        map_label = f"map:{stage_label}" if stage_label else "map"
        reduce_label = f"reduce:{stage_label}" if stage_label else "reduce"
        # One accountant for the whole shuffle: map partitions of one
        # shuffle share record shapes, so the signature memo hits across
        # tasks (dict access is atomic under the GIL, and a racing
        # double-insert writes the same value).
        accountant = RecordSizeAccountant()

        def make_map_task(index: int, partition_iter: Iterator[tuple[Any, Any]]):
            def map_task():
                with self._metrics.task_timer() as timer:
                    self._runner.fault_point(map_label, index)
                    local_buckets, bucket_bytes, num_records = _map_partition(
                        partition_iter, partitioner, aggregator,
                        accountant, num_reducers,
                    )
                return local_buckets, bucket_bytes, num_records, timer

            return map_task

        map_tasks = [
            make_map_task(index, it) for index, it in enumerate(map_outputs)
        ]
        map_results = self._runner.run_stage(map_tasks)

        buckets = ShuffleResult([] for _ in range(num_reducers))
        partition_bytes = [0] * num_reducers
        partition_records = [0] * num_reducers
        map_task_seconds: list[float] = []
        shuffled_records = 0
        shuffled_bytes = 0
        for local_buckets, bucket_bytes, num_records, timer in map_results:
            for reducer, local in enumerate(local_buckets):
                if local:
                    buckets[reducer].extend(local)
                    partition_bytes[reducer] += bucket_bytes[reducer]
                    partition_records[reducer] += len(local)
            shuffled_records += num_records
            shuffled_bytes += sum(bucket_bytes)
            map_task_seconds.append(timer.own_seconds)

        stats = MapOutputStatistics(tuple(partition_bytes), tuple(partition_records))
        buckets.stats = stats
        self._metrics.record_stage(len(map_task_seconds), map_task_seconds)
        self._metrics.record_shuffle(shuffled_records, shuffled_bytes)

        if aggregator is None:
            return buckets

        # Reduce phase.  By default one task merges one bucket; the
        # adaptive layer may coalesce contiguous small buckets into one
        # task (logical partition count is unchanged — each bucket is
        # still merged separately and lands back in its own slot).
        groups: Optional[list[list[int]]] = None
        if self._adaptive is not None:
            groups = self._adaptive.plan_reduce_groups(stats)
        if groups is None:
            groups = [[reducer] for reducer in range(num_reducers)]

        def make_reduce_task(bucket_ids: list[int]):
            def reduce_task():
                with self._metrics.task_timer() as timer:
                    self._runner.fault_point(reduce_label, bucket_ids[0])
                    merged_buckets = [
                        (bid, self._merge_reduce_side(buckets[bid], aggregator))
                        for bid in bucket_ids
                    ]
                return merged_buckets, timer

            return reduce_task

        reduce_results = self._runner.run_stage(
            [make_reduce_task(group) for group in groups]
        )
        merged = ShuffleResult([None] * num_reducers)
        merged.stats = stats
        reduce_task_seconds = []
        for merged_buckets, timer in reduce_results:
            for bid, merged_bucket in merged_buckets:
                merged[bid] = merged_bucket
            reduce_task_seconds.append(timer.own_seconds)
        self._metrics.record_stage(len(groups), reduce_task_seconds)
        return merged

    def _shuffle_spill(
        self,
        map_outputs: Iterable[Iterator[tuple[Any, Any]]],
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        stage_label: Optional[str],
    ):
        """The out-of-core twin of :meth:`shuffle`.

        Identical stage/task/shuffle accounting and byte-identical
        output contents, but no phase ever holds the full data set in
        memory: map buckets stream through the spill store
        (:class:`_BucketSpiller`) and every output partition is adopted
        into the block manager — admitted, counted against the budget,
        and spilled back out if it doesn't fit — as soon as it is
        produced.  Resident footprint is roughly the memory budget plus
        one in-flight partition per runner worker.
        """
        num_reducers = partitioner.num_partitions
        map_label = f"map:{stage_label}" if stage_label else "map"
        reduce_label = f"reduce:{stage_label}" if stage_label else "reduce"
        accountant = RecordSizeAccountant()
        blocks = self._blocks
        label = stage_label if stage_label else "anon"
        owner = f"out/{label}"
        spiller = _BucketSpiller(blocks.spill_store, self._metrics, label)

        def make_map_task(index: int, partition_iter: Iterator[tuple[Any, Any]]):
            def map_task():
                with self._metrics.task_timer() as timer:
                    self._runner.fault_point(map_label, index)
                    local_buckets, bucket_bytes, num_records = _map_partition(
                        partition_iter, partitioner, aggregator,
                        accountant, num_reducers,
                    )
                # Spill I/O stays outside the timer so measured compute
                # matches the in-memory path.
                bucket_counts = [len(bucket) for bucket in local_buckets]
                spiller.write(index, local_buckets, bucket_bytes)
                return bucket_bytes, bucket_counts, num_records, timer

            return map_task

        map_tasks = [
            make_map_task(index, it) for index, it in enumerate(map_outputs)
        ]
        map_results = self._runner.run_stage(map_tasks)

        partition_bytes = [0] * num_reducers
        partition_records = [0] * num_reducers
        map_task_seconds: list[float] = []
        shuffled_records = 0
        shuffled_bytes = 0
        for bucket_bytes, bucket_counts, num_records, timer in map_results:
            for reducer, count in enumerate(bucket_counts):
                if count:
                    partition_bytes[reducer] += bucket_bytes[reducer]
                    partition_records[reducer] += count
            shuffled_records += num_records
            shuffled_bytes += sum(bucket_bytes)
            map_task_seconds.append(timer.own_seconds)

        stats = MapOutputStatistics(tuple(partition_bytes), tuple(partition_records))
        self._metrics.record_stage(len(map_task_seconds), map_task_seconds)
        self._metrics.record_shuffle(shuffled_records, shuffled_bytes)

        output = blocks.managed_output(owner, num_reducers, stats=stats)

        if aggregator is None:
            # Plain repartition: assemble one reducer at a time and hand
            # each straight to the block manager.
            for reducer in range(num_reducers):
                blocks.put_managed(owner, reducer, spiller.read_bucket(reducer))
            # The next stage reads the output from split 0 up; restore
            # the early (spilled-first) partitions ahead of its tasks.
            blocks.prefetch_namespace(owner)
            return output

        groups: Optional[list[list[int]]] = None
        if self._adaptive is not None:
            groups = self._adaptive.plan_reduce_groups(stats)
        if groups is None:
            groups = [[reducer] for reducer in range(num_reducers)]

        def make_reduce_task(bucket_ids: list[int]):
            def reduce_task():
                with self._metrics.task_timer() as timer:
                    self._runner.fault_point(reduce_label, bucket_ids[0])
                    merged_buckets = [
                        (bid, _merge_reduce_side(
                            spiller.read_bucket(bid), aggregator
                        ))
                        for bid in bucket_ids
                    ]
                for bid, merged_bucket in merged_buckets:
                    blocks.put_managed(owner, bid, merged_bucket)
                return timer

            return reduce_task

        reduce_results = self._runner.run_stage(
            [make_reduce_task(group) for group in groups]
        )
        self._metrics.record_stage(
            len(groups), [timer.own_seconds for timer in reduce_results]
        )
        # The next stage reads the output from split 0 up; restore the
        # early (spilled-first) partitions ahead of its tasks.
        blocks.prefetch_namespace(owner)
        return output

    _combine_map_side = staticmethod(_combine_map_side)
    _merge_reduce_side = staticmethod(_merge_reduce_side)


class PipelinedShuffle:
    """Per-partition-addressable state of one in-flight shuffle.

    The task-graph compiler creates one per wide node whose data really
    crosses the shuffle machinery.  Map *slots* — ``(partition, chunk)``
    keys, so a skew-split partition's chunks slot in where the original
    partition would — land independently via :meth:`run_map_slot`;
    :meth:`partial_statistics` exposes the accumulating histogram while
    the map phase is still in flight; once every slot has landed,
    :meth:`finish_map_phase` concatenates buckets in ascending slot
    order and records the map stage and shuffle volume — producing the
    byte-identical counters and bucket contents of the staged
    :meth:`ShuffleManager.shuffle`, whatever order the slots actually
    completed in.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        runner: TaskRunner,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
        stage_label: Optional[str] = None,
    ):
        self._metrics = metrics
        self._runner = runner
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.num_reducers = partitioner.num_partitions
        self._map_label = f"map:{stage_label}" if stage_label else "map"
        self._reduce_label = f"reduce:{stage_label}" if stage_label else "reduce"
        self._accountant = RecordSizeAccountant()
        #: slot key -> (local_buckets, bucket_bytes, num_records, seconds)
        self._slots: dict[tuple, tuple] = {}
        self._slots_lock = threading.Lock()
        self._buckets: Optional[ShuffleResult] = None
        self.stats: Optional[MapOutputStatistics] = None

    def run_map_slot(
        self,
        slot: tuple,
        partition_iter: Iterator[tuple[Any, Any]],
        partition: int,
    ) -> float:
        """Execute the map work of one slot; returns its own-seconds.

        Idempotent: a retried slot overwrites its own entry.  ``slot``
        is ``(partition, chunk)``; ``partition`` feeds the fault point
        so an injection targeting partition *p* hits every chunk of *p*.
        """
        with self._metrics.task_timer() as timer:
            self._runner.fault_point(self._map_label, partition)
            result = _map_partition(
                partition_iter, self.partitioner, self.aggregator,
                self._accountant, self.num_reducers,
            )
        with self._slots_lock:
            self._slots[slot] = (*result, timer.own_seconds)
        return timer.own_seconds

    def partial_statistics(self) -> MapOutputStatistics:
        """Histogram over the map slots that have landed so far.

        The adaptive layer may read this while the map phase is still
        running — per-partition-set decisions no longer have to wait for
        the full stage boundary.
        """
        with self._slots_lock:
            landed = list(self._slots.values())
        partition_bytes = [0] * self.num_reducers
        partition_records = [0] * self.num_reducers
        for local_buckets, bucket_bytes, _num_records, _seconds in landed:
            for reducer, local in enumerate(local_buckets):
                if local:
                    partition_bytes[reducer] += bucket_bytes[reducer]
                    partition_records[reducer] += len(local)
        return MapOutputStatistics(
            tuple(partition_bytes), tuple(partition_records)
        )

    def finish_map_phase(self) -> tuple[ShuffleResult, MapOutputStatistics]:
        """Concatenate all landed slots; record map stage + shuffle volume."""
        buckets = ShuffleResult([] for _ in range(self.num_reducers))
        partition_bytes = [0] * self.num_reducers
        partition_records = [0] * self.num_reducers
        task_seconds: list[float] = []
        shuffled_records = 0
        shuffled_bytes = 0
        with self._slots_lock:
            ordered = [self._slots[key] for key in sorted(self._slots)]
        for local_buckets, bucket_bytes, num_records, seconds in ordered:
            for reducer, local in enumerate(local_buckets):
                if local:
                    buckets[reducer].extend(local)
                    partition_bytes[reducer] += bucket_bytes[reducer]
                    partition_records[reducer] += len(local)
            shuffled_records += num_records
            shuffled_bytes += sum(bucket_bytes)
            task_seconds.append(seconds)
        stats = MapOutputStatistics(
            tuple(partition_bytes), tuple(partition_records)
        )
        buckets.stats = stats
        self.stats = stats
        self._buckets = buckets
        self._metrics.record_stage(len(task_seconds), task_seconds)
        self._metrics.record_shuffle(shuffled_records, shuffled_bytes)
        return buckets, stats

    def run_reduce_group(
        self, bucket_ids: list[int]
    ) -> tuple[list[tuple[int, list]], float]:
        """Merge one reduce task's buckets; returns pairs + own-seconds."""
        aggregator = self.aggregator
        with self._metrics.task_timer() as timer:
            self._runner.fault_point(self._reduce_label, bucket_ids[0])
            merged_buckets = [
                (bid, _merge_reduce_side(self._buckets[bid], aggregator))
                for bid in bucket_ids
            ]
        return merged_buckets, timer.own_seconds
