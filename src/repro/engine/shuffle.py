"""Shuffle execution: the only way data crosses "the network".

A shuffle takes the keyed output of every map-side partition, buckets each
record by a :class:`~repro.engine.partitioner.Partitioner`, and hands each
reduce-side partition the merged contents of its bucket.  Two regimes
mirror Spark:

* **With an aggregator and map-side combining** (``reduceByKey``,
  ``combineByKey``, ``foldByKey``, ``aggregateByKey``): values are combined
  into per-key combiners *before* they are counted against the network, so
  a sum over a billion records shuffles one combiner per key per map
  partition.  This is the mechanism behind the paper's insistence on
  translating group-bys to ``reduceByKey`` (Sections 4 and 5.3).

* **Without map-side combining** (``groupByKey``, ``cogroup``): every
  record crosses the network individually.  The ablation benchmark E5
  measures exactly this difference.

Shuffled bytes are *measured* from the actual records via
:mod:`repro.engine.serialization`, not assumed — but through the
:class:`~repro.engine.serialization.RecordSizeAccountant` fast path, so
pricing a homogeneous tile stream costs a memo lookup per record rather
than a recursive walk, and the accounting is batched per map partition.

Map tasks (drain + combine + bucket + account one map partition) and
reduce tasks (merge one bucket) are independent, so both fan out on the
engine's shared :class:`~repro.engine.scheduler.TaskRunner`.  Buckets
are concatenated in map-partition order afterwards, which makes the
output — and every recorded counter — identical to the serial drain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from .metrics import MetricsRegistry
from .partitioner import Partitioner
from .scheduler import SerialTaskRunner, TaskRunner
from .serialization import RecordSizeAccountant


@dataclass
class Aggregator:
    """Spark-style map/reduce-side combining functions.

    ``create_combiner`` turns the first value for a key into a combiner,
    ``merge_value`` folds another value into an existing combiner, and
    ``merge_combiners`` merges two combiners on the reduce side.
    """

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]
    map_side_combine: bool = True


class ShuffleManager:
    """Executes shuffles and records their measured volume."""

    def __init__(self, metrics: MetricsRegistry, runner: Optional[TaskRunner] = None):
        self._metrics = metrics
        self._runner = runner or SerialTaskRunner()

    def shuffle(
        self,
        map_outputs: Iterable[Iterator[tuple[Any, Any]]],
        partitioner: Partitioner,
        aggregator: Optional[Aggregator] = None,
    ) -> list[list[tuple[Any, Any]]]:
        """Run a full shuffle.

        Args:
            map_outputs: one keyed-record iterator per map-side partition.
                Each iterator is drained inside a timed "map task".
            partitioner: reduce-side placement of keys.
            aggregator: combining semantics; ``None`` means plain
                re-partitioning (records pass through unmodified, possibly
                with duplicate keys).

        Returns:
            One list of ``(key, value)`` pairs per reduce partition.  With
            an aggregator the value is the fully merged combiner.
        """
        num_reducers = partitioner.num_partitions
        # One accountant for the whole shuffle: map partitions of one
        # shuffle share record shapes, so the signature memo hits across
        # tasks (dict access is atomic under the GIL, and a racing
        # double-insert writes the same value).
        accountant = RecordSizeAccountant()

        def make_map_task(partition_iter: Iterator[tuple[Any, Any]]):
            def map_task():
                with self._metrics.task_timer() as timer:
                    if aggregator is not None and aggregator.map_side_combine:
                        records = self._combine_map_side(partition_iter, aggregator)
                    else:
                        records = list(partition_iter)
                    local_buckets: list[list] = [[] for _ in range(num_reducers)]
                    partition = partitioner.partition
                    for record in records:
                        local_buckets[partition(record[0])].append(record)
                    nbytes = accountant.batch_size(records)
                return local_buckets, len(records), nbytes, timer

            return map_task

        map_tasks = [make_map_task(it) for it in map_outputs]
        map_results = self._runner.run_stage(map_tasks)

        buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_reducers)]
        map_task_seconds: list[float] = []
        shuffled_records = 0
        shuffled_bytes = 0
        for local_buckets, num_records, nbytes, timer in map_results:
            for reducer, local in enumerate(local_buckets):
                if local:
                    buckets[reducer].extend(local)
            shuffled_records += num_records
            shuffled_bytes += nbytes
            map_task_seconds.append(timer.own_seconds)

        self._metrics.record_stage(len(map_task_seconds), map_task_seconds)
        self._metrics.record_shuffle(shuffled_records, shuffled_bytes)

        if aggregator is None:
            return buckets

        def make_reduce_task(bucket: list):
            def reduce_task():
                with self._metrics.task_timer() as timer:
                    merged_bucket = self._merge_reduce_side(bucket, aggregator)
                return merged_bucket, timer

            return reduce_task

        reduce_results = self._runner.run_stage(
            [make_reduce_task(bucket) for bucket in buckets]
        )
        merged = [bucket for bucket, _timer in reduce_results]
        reduce_task_seconds = [timer.own_seconds for _bucket, timer in reduce_results]
        self._metrics.record_stage(len(merged), reduce_task_seconds)
        return merged

    @staticmethod
    def _combine_map_side(
        records: Iterator[tuple[Any, Any]], aggregator: Aggregator
    ) -> list[tuple[Any, Any]]:
        """Fold values into one combiner per key within a map partition."""
        combiners: dict[Any, Any] = {}
        for key, value in records:
            if key in combiners:
                combiners[key] = aggregator.merge_value(combiners[key], value)
            else:
                combiners[key] = aggregator.create_combiner(value)
        return list(combiners.items())

    @staticmethod
    def _merge_reduce_side(
        bucket: list[tuple[Any, Any]], aggregator: Aggregator
    ) -> list[tuple[Any, Any]]:
        """Merge the (pre-combined or raw) records of one reduce bucket."""
        merged: dict[Any, Any] = {}
        if aggregator.map_side_combine:
            for key, combiner in bucket:
                if key in merged:
                    merged[key] = aggregator.merge_combiners(merged[key], combiner)
                else:
                    merged[key] = combiner
        else:
            for key, value in bucket:
                if key in merged:
                    merged[key] = aggregator.merge_value(merged[key], value)
                else:
                    merged[key] = aggregator.create_combiner(value)
        return list(merged.items())
