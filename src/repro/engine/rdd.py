"""Resilient Distributed Datasets: lazy, partitioned, lineage-tracked.

This is the engine's Spark-RDD workalike.  An :class:`RDD` is a lazily
evaluated description of a partitioned dataset; transformations build
lineage and actions (``collect``, ``count``, ...) trigger execution through
the context's scheduler, which times tasks and accounts shuffles.

Narrow transformations (``map``, ``filter``, ``flatMap``, ...) pipeline
within a partition.  Wide transformations (``reduceByKey``, ``groupByKey``,
``join``, ``cogroup``, ``partitionBy``) insert a :class:`ShuffledRDD` or
:class:`CoGroupedRDD` whose first evaluation runs a measured shuffle.

The subset implemented is the one the SAC planner and the MLlib-workalike
baseline generate, plus the conveniences a user of the engine would expect.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional, TypeVar

from .partitioner import HashPartitioner, Partitioner
from .block_manager import SpillLostError
from .shuffle import Aggregator, MapOutputStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .context import EngineContext

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


class RDD:
    """A lazily evaluated, partitioned dataset.

    Subclasses implement :meth:`compute`; everything else — caching,
    transformations, actions — lives here.
    """

    def __init__(
        self,
        ctx: "EngineContext",
        num_partitions: int,
        partitioner: Optional[Partitioner] = None,
    ):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.ctx = ctx
        self.id = ctx._register_rdd()
        self._num_partitions = num_partitions
        #: Known reduce-side partitioner, when this RDD is the direct
        #: output of a shuffle (lets later shuffles on the same key skip
        #: the network, as in Spark).
        self.partitioner = partitioner
        self._cached = False
        #: Per-lineage opt-in to shuffle-output reuse (set by the
        #: planner's CSE pass via :meth:`mark_shuffle_reuse`); lets the
        #: BlockManager retain/serve this RDD's map outputs even when
        #: the engine-wide ``reuse_shuffles`` flag is off.
        self._reuse_opt_in = False

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @property
    def dependencies(self) -> list["RDD"]:
        """Direct parent RDDs in the lineage graph."""
        return []

    def mark_shuffle_reuse(self) -> None:
        """Opt this RDD's whole lineage into shuffle-output reuse.

        A shuffle consuming a marked RDD registers its map outputs with
        the BlockManager and equal later shuffles over the same marked
        parent are served from them — regardless of the engine-wide
        ``reuse_shuffles`` setting.  Only the planner should call this,
        and only for plans whose IR fingerprint proves that re-executing
        reads the very same storages.
        """
        seen: set[int] = set()
        stack: list["RDD"] = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node._reuse_opt_in = True
            stack.extend(node.dependencies)

    def compute(self, split: int) -> Iterator:
        """Produce the records of partition ``split``."""
        raise NotImplementedError

    def iterator(self, split: int) -> Iterator:
        """Like :meth:`compute` but honouring :meth:`cache`.

        Cached partitions live in the context's
        :class:`~repro.engine.block_manager.BlockManager`; a partition
        evicted under memory pressure is transparently recomputed.
        """
        if not self._cached:
            return self.compute(split)
        blocks = self.ctx.block_manager
        stored = blocks.get(self.id, split)
        if stored is None:
            stored = list(self.compute(split))
            blocks.put(self.id, split, stored)
        return iter(stored)

    def prepare_execution(self, seen: set[int]) -> None:
        """Materialize wide dependencies bottom-up (driver side).

        Called by the scheduler before fanning a job's result tasks onto
        a parallel runner, so each shuffle runs its map tasks from the
        driver thread — where they fan out — instead of inside whichever
        result task happens to pull first.  Fully cached RDDs stop the
        walk: their partitions replay from the block manager without
        touching parents (exactly what lazy evaluation would do).
        """
        if id(self) in seen:
            return
        seen.add(id(self))
        if self._cached and self.ctx.block_manager.contains_all(
            self.id, self._num_partitions
        ):
            return
        for dep in self.dependencies:
            dep.prepare_execution(seen)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def cache(self) -> "RDD":
        """Materialize partitions on first use and reuse them afterwards."""
        self._cached = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        """Drop cached partitions."""
        self._cached = False
        self.ctx.block_manager.remove_rdd(self.id)
        return self

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def map_partitions(
        self,
        func: Callable[[Iterator], Iterator],
        preserves_partitioning: bool = False,
        elementwise: bool = False,
    ) -> "RDD":
        """Apply ``func`` to each whole partition iterator.

        Pass ``elementwise=True`` only when ``func`` maps each record
        independently of its neighbours and the split index (e.g. a
        fused per-record kernel); it licenses the skew splitter to
        replay the function over partition slices.
        """
        return MapPartitionsRDD(
            self, lambda _idx, it: func(it), preserves_partitioning,
            elementwise=elementwise,
        )

    def map_partitions_with_index(
        self,
        func: Callable[[int, Iterator], Iterator],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """Like :meth:`map_partitions` but ``func`` also receives the index."""
        return MapPartitionsRDD(self, func, preserves_partitioning)

    def map(self, func: Callable[[T], U]) -> "RDD":
        """Element-wise transform."""
        return MapPartitionsRDD(
            self, lambda _i, it: map(func, it), elementwise=True
        )

    def flat_map(self, func: Callable[[T], Iterable[U]]) -> "RDD":
        """Element-wise transform producing zero or more outputs each."""
        return MapPartitionsRDD(
            self,
            lambda _i, it: itertools.chain.from_iterable(map(func, it)),
            elementwise=True,
        )

    def filter(self, predicate: Callable[[T], bool]) -> "RDD":
        """Keep elements satisfying ``predicate`` (keyed partitioning survives)."""
        return MapPartitionsRDD(
            self,
            lambda _i, it: filter(predicate, it),
            preserves_partitioning=True,
            elementwise=True,
        )

    def map_values(self, func: Callable[[V], U]) -> "RDD":
        """Transform the value of each ``(key, value)`` pair, keeping keys."""
        return MapPartitionsRDD(
            self,
            lambda _i, it: ((k, func(v)) for k, v in it),
            preserves_partitioning=True,
            elementwise=True,
        )

    def flat_map_values(self, func: Callable[[V], Iterable[U]]) -> "RDD":
        """Expand each value to several, pairing each with the original key."""

        def expand(_i: int, it: Iterator) -> Iterator:
            for key, value in it:
                for out in func(value):
                    yield key, out

        return MapPartitionsRDD(
            self, expand, preserves_partitioning=True, elementwise=True
        )

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def key_by(self, func: Callable[[T], K]) -> "RDD":
        """Pair each element with ``func(element)`` as its key."""
        return self.map(lambda item: (func(item), item))

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        return MapPartitionsRDD(self, lambda _i, it: iter([list(it)]))

    def zip_with_index(self) -> "RDD":
        """Pair each element with a global, partition-ordered index."""
        counts = self.ctx.run_job(
            self, lambda it: sum(1 for _ in it), description="zip_with_index sizes"
        )
        offsets = list(itertools.accumulate([0] + counts[:-1]))

        def number(idx: int, it: Iterator) -> Iterator:
            for position, item in enumerate(it):
                yield item, offsets[idx] + position

        return MapPartitionsRDD(self, number)

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs ``(a, b)``; partition count multiplies."""
        return CartesianRDD(self, other)

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle."""
        if num_partitions >= self._num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD":
        """Change partition count via a full shuffle of opaque records."""
        indexed = self.map(lambda item: (item, None))
        shuffled = ShuffledRDD(indexed, HashPartitioner(num_partitions), None)
        return shuffled.map(lambda kv: kv[0])

    def zip(self, other: "RDD") -> "RDD":
        """Pair elements position-wise; partition structure must match."""
        if self.num_partitions != other.num_partitions:
            raise ValueError(
                f"cannot zip RDDs with {self.num_partitions} and "
                f"{other.num_partitions} partitions"
            )
        return ZippedRDD(self, other)

    def sort_by(
        self,
        key_func: Callable[[T], Any] = lambda x: x,
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Globally sort by ``key_func`` (range partition, then local sort).

        Samples keys to choose balanced range bounds, exactly like
        Spark's ``sortBy``.
        """
        from .partitioner import RangePartitioner

        partitions = num_partitions or self._num_partitions
        sample_keys = sorted(
            key_func(item)
            for item in self.map(lambda x: x).take(10000)
        )
        if partitions <= 1 or len(sample_keys) < partitions:
            bounds: list = []
        else:
            step = len(sample_keys) / partitions
            bounds = [
                sample_keys[int(step * (i + 1)) - 1] for i in range(partitions - 1)
            ]
        partitioner = RangePartitioner(bounds, ascending)
        keyed = self.map(lambda item: (key_func(item), item))
        shuffled = ShuffledRDD(keyed, partitioner, None)
        return shuffled.map_partitions(
            lambda it: iter(
                [
                    value
                    for _key, value in sorted(
                        it, key=lambda kv: kv[0], reverse=not ascending
                    )
                ]
            )
        )

    def top(self, n: int, key: Optional[Callable] = None) -> list:
        """The ``n`` largest elements, descending."""
        import heapq

        parts = self.ctx.run_job(
            self, lambda it: heapq.nlargest(n, it, key=key), description="top"
        )
        return heapq.nlargest(n, itertools.chain.from_iterable(parts), key=key)

    def take_ordered(self, n: int, key: Optional[Callable] = None) -> list:
        """The ``n`` smallest elements, ascending."""
        import heapq

        parts = self.ctx.run_job(
            self,
            lambda it: heapq.nsmallest(n, it, key=key),
            description="take_ordered",
        )
        return heapq.nsmallest(n, itertools.chain.from_iterable(parts), key=key)

    def subtract_by_key(self, other: "RDD") -> "RDD":
        """Keyed pairs whose key does not appear in ``other``."""

        def keep(groups: tuple[list, list]) -> Iterator:
            mine, theirs = groups
            if not theirs:
                yield from mine

        return self.cogroup(other).flat_map_values(keep)

    def subtract(self, other: "RDD") -> "RDD":
        """Elements of this RDD not present in ``other`` (set difference,
        preserving this side's duplicates like Spark)."""
        return (
            self.map(lambda x: (x, None))
            .subtract_by_key(other.map(lambda x: (x, None)))
            .keys()
        )

    def intersection(self, other: "RDD") -> "RDD":
        """Distinct elements present in both RDDs."""

        def both(groups: tuple[list, list]) -> Iterator:
            mine, theirs = groups
            if mine and theirs:
                yield None

        return (
            self.map(lambda x: (x, None))
            .cogroup(other.map(lambda x: (x, None)))
            .flat_map(lambda kv: [kv[0]] if kv[1][0] and kv[1][1] else [])
        )

    def stats(self) -> "StatCounter":
        """Count, mean, variance, min, max in one pass."""
        return self.aggregate(
            StatCounter(), lambda acc, x: acc.add(x), lambda a, b: a.merge(b)
        )

    def histogram(self, buckets: int) -> tuple[list, list]:
        """Evenly spaced histogram over the value range.

        Returns ``(bucket_boundaries, counts)`` like Spark's
        ``DoubleRDD.histogram(int)``.
        """
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        stats = self.stats()
        if stats.count == 0:
            raise ValueError("histogram() on an empty RDD")
        lo, hi = stats.minimum, stats.maximum
        if lo == hi:
            return [lo, hi], [stats.count]
        width = (hi - lo) / buckets
        boundaries = [lo + width * i for i in range(buckets)] + [hi]

        def count_partition(it: Iterator) -> list[int]:
            counts = [0] * buckets
            for value in it:
                index = min(int((value - lo) / width), buckets - 1)
                counts[index] += 1
            return counts

        parts = self.ctx.run_job(self, count_partition, description="histogram")
        totals = [sum(col) for col in zip(*parts)]
        return boundaries, totals

    def checkpoint(self) -> "RDD":
        """Materialize now (cache + force), cutting lazy lineage."""
        self.cache()
        self.count()
        return self

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Bernoulli sample of each partition (deterministic per seed).

        Sampling is filter-shaped — it only drops records — so a keyed
        parent's partitioner survives and a later shuffle on the same
        keys stays local.  (Not ``elementwise``: the per-partition RNG is
        seeded by the split index, so replaying a slice of a partition
        under a different fan-out would change which records survive.)
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")

        def sampler(idx: int, it: Iterator) -> Iterator:
            import random

            rng = random.Random(seed * 1_000_003 + idx)
            return (item for item in it if rng.random() < fraction)

        return MapPartitionsRDD(self, sampler, preserves_partitioning=True)

    # ------------------------------------------------------------------
    # Wide (shuffling) transformations
    # ------------------------------------------------------------------

    def _default_shuffle_partitions(self, num_partitions: Optional[int]) -> int:
        if num_partitions is not None:
            return num_partitions
        return self._num_partitions

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        """Redistribute ``(key, value)`` pairs according to ``partitioner``."""
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner, None)

    def combine_by_key(
        self,
        create_combiner: Callable[[V], U],
        merge_value: Callable[[U, V], U],
        merge_combiners: Callable[[U, U], U],
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
        map_side_combine: bool = True,
    ) -> "RDD":
        """General keyed aggregation (the primitive under reduce/fold/group)."""
        if partitioner is None:
            partitioner = HashPartitioner(self._default_shuffle_partitions(num_partitions))
        aggregator = Aggregator(
            create_combiner, merge_value, merge_combiners, map_side_combine
        )
        return ShuffledRDD(self, partitioner, aggregator)

    def reduce_by_key(
        self,
        func: Callable[[V, V], V],
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        """Merge values per key with ``func``, combining map-side first.

        This is the operation the paper's Rule (13) targets: grouped
        values are partially reduced *before* they are shuffled.
        """
        return self.combine_by_key(
            lambda v: v, func, func, num_partitions, partitioner
        )

    def fold_by_key(
        self,
        zero: V,
        func: Callable[[V, V], V],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        import copy

        return self.combine_by_key(
            lambda v: func(copy.deepcopy(zero), v), func, func, num_partitions
        )

    def aggregate_by_key(
        self,
        zero: U,
        seq_func: Callable[[U, V], U],
        comb_func: Callable[[U, U], U],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        import copy

        return self.combine_by_key(
            lambda v: seq_func(copy.deepcopy(zero), v),
            seq_func,
            comb_func,
            num_partitions,
        )

    def group_by_key(
        self,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        """Collect all values per key into a list — no map-side combining.

        Deliberately shuffles every record, exactly like Spark: the paper's
        optimizations exist to *avoid* this operation when an aggregation
        follows.
        """
        if partitioner is None:
            partitioner = HashPartitioner(self._default_shuffle_partitions(num_partitions))
        aggregator = Aggregator(
            create_combiner=lambda v: [v],
            merge_value=lambda acc, v: acc + [v],
            merge_combiners=lambda a, b: a + b,
            map_side_combine=False,
        )
        return ShuffledRDD(self, partitioner, aggregator)

    def cogroup(
        self,
        other: "RDD",
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        """Group both RDDs by key: ``(key, (values_self, values_other))``."""
        if partitioner is None:
            partitions = num_partitions or max(
                self._num_partitions, other._num_partitions
            )
            partitioner = HashPartitioner(partitions)
        return CoGroupedRDD(self.ctx, [self, other], partitioner)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner join on keys: ``(key, (v_self, v_other))`` per match pair."""

        def flatten(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            for lv in left:
                for rv in right:
                    yield lv, rv

        cogrouped = self.cogroup(other, num_partitions)
        if isinstance(cogrouped, CoGroupedRDD):
            # The grouped record feeding ``flatten`` is a cartesian
            # product, so the adaptive skew splitter may break one side's
            # value list into chunks without changing the joined pair
            # multiset.  The cogroup object itself never escapes this
            # method, so the marking cannot affect user-visible grouping.
            cogrouped._splittable_values = True
        return cogrouped.flat_map_values(flatten)

    def left_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Left outer join; missing right values appear as ``None``."""

        def flatten(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            for lv in left:
                if right:
                    for rv in right:
                        yield lv, rv
                else:
                    yield lv, None

        return self.cogroup(other, num_partitions).flat_map_values(flatten)

    def right_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Right outer join; missing left values appear as ``None``."""

        def flatten(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            for rv in right:
                if left:
                    for lv in left:
                        yield lv, rv
                else:
                    yield None, rv

        return self.cogroup(other, num_partitions).flat_map_values(flatten)

    def full_outer_join(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Full outer join; missing sides appear as ``None``."""

        def flatten(groups: tuple[list, list]) -> Iterator:
            left, right = groups
            if not left:
                for rv in right:
                    yield None, rv
            elif not right:
                for lv in left:
                    yield lv, None
            else:
                for lv in left:
                    for rv in right:
                        yield lv, rv

        return self.cogroup(other, num_partitions).flat_map_values(flatten)

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        return (
            self.map(lambda item: (item, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .keys()
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> list:
        """All records, in partition order."""
        parts = self.ctx.run_job(self, list, description="collect")
        return list(itertools.chain.from_iterable(parts))

    def collect_as_map(self) -> dict:
        """Collect a keyed RDD into a dict (later duplicates win)."""
        return dict(self.collect())

    def count(self) -> int:
        parts = self.ctx.run_job(
            self, lambda it: sum(1 for _ in it), description="count"
        )
        return sum(parts)

    def is_empty(self) -> bool:
        return self.count() == 0

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise ValueError("first() on an empty RDD")
        return taken[0]

    def take(self, n: int) -> list:
        """First ``n`` records in partition order (evaluates lazily per split)."""
        if n <= 0:
            return []
        out: list = []
        with self.ctx.metrics.job("take"):
            for split in range(self._num_partitions):
                self.ctx.metrics.record_stage(1)
                for item in self.iterator(split):
                    out.append(item)
                    if len(out) == n:
                        return out
        return out

    def reduce(self, func: Callable[[T, T], T]) -> T:
        """Reduce all records with an associative ``func``."""
        sentinel = object()

        def reduce_partition(it: Iterator) -> Any:
            acc: Any = sentinel
            for item in it:
                acc = item if acc is sentinel else func(acc, item)
            return acc

        parts = [
            p
            for p in self.ctx.run_job(self, reduce_partition, description="reduce")
            if p is not sentinel
        ]
        if not parts:
            raise ValueError("reduce() on an empty RDD")
        acc = parts[0]
        for item in parts[1:]:
            acc = func(acc, item)
        return acc

    def fold(self, zero: T, func: Callable[[T, T], T]) -> T:
        """Fold with a zero element.

        Like Spark, the zero is (deep-)copied per partition, so mutable
        accumulators are safe.
        """
        import copy

        parts = self.ctx.run_job(
            self,
            lambda it: _fold_iter(it, copy.deepcopy(zero), func),
            description="fold",
        )
        acc = copy.deepcopy(zero)
        for part in parts:
            acc = func(acc, part)
        return acc

    def aggregate(
        self,
        zero: U,
        seq_func: Callable[[U, T], U],
        comb_func: Callable[[U, U], U],
    ) -> U:
        """Aggregate with different within- and across-partition combines.

        The zero is (deep-)copied per partition (Spark serializes it per
        task), so mutable accumulators are safe.
        """
        import copy

        parts = self.ctx.run_job(
            self,
            lambda it: _fold_iter(it, copy.deepcopy(zero), seq_func),
            description="aggregate",
        )
        acc = copy.deepcopy(zero)
        for part in parts:
            acc = comb_func(acc, part)
        return acc

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def count_by_key(self) -> dict:
        return dict(self.map_values(lambda _v: 1).reduce_by_key(lambda a, b: a + b).collect())

    def lookup(self, key: Any) -> list:
        """All values for ``key`` (scans; uses partitioner if known)."""
        if self.partitioner is not None:
            split = self.partitioner.partition(key)
            with self.ctx.metrics.job("lookup"):
                self.ctx.metrics.record_stage(1)
                return [v for k, v in self.iterator(split) if k == key]
        return self.filter(lambda kv: kv[0] == key).values().collect()

    def foreach(self, func: Callable[[T], None]) -> None:
        def run(it: Iterator) -> None:
            for item in it:
                func(item)

        self.ctx.run_job(self, run, description="foreach")

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id}, partitions={self._num_partitions})"


def _fold_iter(it: Iterator, zero: Any, func: Callable[[Any, Any], Any]) -> Any:
    acc = zero
    for item in it:
        acc = func(acc, item)
    return acc


class StatCounter:
    """Streaming count/mean/variance/min/max (Welford merge, like Spark)."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, value: float) -> "StatCounter":
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        return self

    def merge(self, other: "StatCounter") -> "StatCounter":
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else float("nan")

    @property
    def stdev(self) -> float:
        return self.variance ** 0.5

    def __repr__(self) -> str:
        return (
            f"StatCounter(count={self.count}, mean={self.mean:.4f}, "
            f"stdev={self.stdev:.4f}, min={self.minimum}, max={self.maximum})"
        )


class ParallelCollectionRDD(RDD):
    """An RDD over an in-memory sequence, sliced into partitions."""

    def __init__(self, ctx: "EngineContext", data: Iterable, num_partitions: int):
        items = list(data)
        num_partitions = max(1, min(num_partitions, max(1, len(items))))
        super().__init__(ctx, num_partitions)
        self._slices = _slice(items, num_partitions)

    def compute(self, split: int) -> Iterator:
        return iter(self._slices[split])


def _slice(items: list, num_partitions: int) -> list[list]:
    """Split ``items`` into ``num_partitions`` contiguous, balanced runs."""
    length = len(items)
    slices = []
    for i in range(num_partitions):
        start = (i * length) // num_partitions
        end = ((i + 1) * length) // num_partitions
        slices.append(items[start:end])
    return slices


class MapPartitionsRDD(RDD):
    """Narrow transformation: ``func(index, parent_iterator)`` per split.

    ``elementwise`` marks functions that treat the partition as a plain
    record stream — each input record contributes outputs independently
    of its neighbours and of the split index (``map``, ``filter``,
    ``flat_map`` and the ``*_values`` variants).  The adaptive skew
    splitter may re-run such a function over a *slice* of a partition;
    opaque ``map_partitions`` functions (stateful scans, index-seeded
    samplers) never get that flag and stop the splitter's lineage walk.
    """

    def __init__(
        self,
        parent: RDD,
        func: Callable[[int, Iterator], Iterator],
        preserves_partitioning: bool = False,
        elementwise: bool = False,
    ):
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            parent.partitioner if preserves_partitioning else None,
        )
        self._parent = parent
        self._func = func
        self._elementwise = elementwise

    @property
    def dependencies(self) -> list[RDD]:
        return [self._parent]

    def compute(self, split: int) -> Iterator:
        return iter(self._func(split, self._parent.iterator(split)))


#: Sentinel marking a pipelined output partition that has not landed yet.
_PENDING = object()


class _PipelinedWide:
    """Per-partition output slots for task-graph (pipelined) execution.

    While a pipelined job runs, a wide node's output partitions land one
    at a time in :attr:`_pipeline_slots`; downstream tasks whose
    dependency edges have fired read them through :meth:`compute` before
    the node is fully materialized.  When every partition has landed the
    compiler *promotes* the slots to the permanent ``_output`` (the same
    object shape the staged path produces), so later jobs see a
    materialized node indistinguishable from a staged run.
    """

    _pipeline_slots: Optional[list] = None

    def _pipeline_install(self) -> None:
        self._pipeline_slots = [_PENDING] * self._num_partitions

    def _pipeline_fill(self, split: int, records: list) -> None:
        self._pipeline_slots[split] = records

    def _pipeline_promote(self, output: list) -> None:
        blocks = self.ctx.block_manager
        if blocks.spill_enabled:
            # Out-of-core tier: the permanent output lives under the
            # memory budget as managed partitions (spillable), not as a
            # pinned driver-side list.  Mid-flight slots stay plain lists
            # — pipelining trades strict mid-job bounding for overlap —
            # but everything a *later* job can read is budget-governed.
            self._output = blocks.adopt_output(
                f"out/{self.id}", output, stats=getattr(output, "stats", None)
            )
        else:
            self._output = output
        self._pipeline_slots = None

    def _pipeline_cleanup(self) -> None:
        """Drop un-promoted slots (no-op after promotion)."""
        self._pipeline_slots = None

    def _pipeline_compute(self, split: int) -> Optional[Iterator]:
        """Partition ``split`` from the in-flight slots, or ``None``.

        Raises when the slot has not landed: a pipelined task reading an
        unfilled slot means the task graph is missing a dependency edge,
        which must fail loudly rather than silently re-run the shuffle.
        """
        slots = self._pipeline_slots
        if slots is None:
            return None
        value = slots[split]
        if value is _PENDING:
            raise RuntimeError(
                f"pipelined read of partition {split} of rdd {self.id} "
                f"before it landed (missing task-graph dependency edge)"
            )
        return iter(value)

    def _check_not_pipelining(self) -> None:
        if self._pipeline_slots is not None:
            raise RuntimeError(
                f"cannot materialize rdd {self.id} behind a stage barrier "
                f"while a pipelined job is producing it"
            )


class ShuffledRDD(_PipelinedWide, RDD):
    """Wide dependency: repartitions (and optionally combines) by key.

    The shuffle runs once, on first access to any output partition, and its
    results are retained for the lifetime of the RDD object (mirroring
    Spark's shuffle files surviving for later stages).

    When the parent is already partitioned by an equal partitioner the
    records do not move: each output partition derives from exactly the
    matching parent partition, no shuffle bytes are recorded, and only the
    combining work runs (Spark's "shuffle avoided" narrow path).
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[Aggregator],
    ):
        super().__init__(parent.ctx, partitioner.num_partitions, partitioner)
        self._parent = parent
        self._aggregator = aggregator
        self._output: Optional[list[list[tuple[Any, Any]]]] = None
        self._map_stats: Optional[MapOutputStatistics] = None
        self._materialize_lock = threading.Lock()
        self._pipeline_slots = None

    @property
    def dependencies(self) -> list[RDD]:
        return [self._parent]

    def output_statistics(self) -> Optional[MapOutputStatistics]:
        """Measured per-partition map-output histogram of this shuffle.

        Materializes the shuffle if needed (this is how the adaptive
        layer "runs wide stages one at a time": the upstream stage must
        finish before its statistics can steer the next one).  ``None``
        when the data never crossed the shuffle machinery (co-partitioned
        local combine).
        """
        self._materialize()
        return self._map_stats

    def prepare_execution(self, seen: set[int]) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        if self._output is not None:
            return
        if self._cached and self.ctx.block_manager.contains_all(
            self.id, self._num_partitions
        ):
            return
        self._parent.prepare_execution(seen)
        self._materialize()

    def _materialize(self) -> list[list[tuple[Any, Any]]]:
        output = self._output
        if output is None:
            self._check_not_pipelining()
            # Concurrent result tasks race here; one thread runs (and
            # accounts) the shuffle, the rest reuse its output.
            with self._materialize_lock:
                if self._output is None:
                    self._output = self._run_shuffle()
                output = self._output
        return output

    def _run_shuffle(self) -> list[list[tuple[Any, Any]]]:
        if self._parent.partitioner == self.partitioner:
            return self._local_combine()
        blocks = self.ctx.block_manager
        opt_in = self._reuse_opt_in or self._parent._reuse_opt_in
        reused = blocks.lookup_shuffle(
            self._parent.id, self.partitioner, self._aggregator,
            opt_in=opt_in,
        )
        if reused is not None:
            self._map_stats = getattr(reused, "stats", None)
            return reused
        map_outputs: Any = (
            self._parent.iterator(i)
            for i in range(self._parent.num_partitions)
        )
        adaptive = getattr(self.ctx, "adaptive", None)
        if adaptive is not None and adaptive.enabled:
            # Skew mitigation: if an upstream materialized stage reports
            # a hot partition, fan its map work out over several tasks
            # whose partial combines merge in the reduce phase below.
            expanded = adaptive.plan_map_splits(self._parent)
            if expanded is not None:
                map_outputs = expanded
        output = self.ctx.shuffle_manager.shuffle(
            map_outputs, self.partitioner, self._aggregator,
            stage_label=str(self.id),
        )
        self._map_stats = getattr(output, "stats", None)
        blocks.register_shuffle(
            self._parent.id, self.partitioner, self._aggregator, output,
            opt_in=opt_in,
        )
        return output

    def _combine_partition(self, split: int) -> tuple[list, float]:
        """The in-place combine work for one co-partitioned partition.

        Shared by the staged :meth:`_local_combine` stage and the
        pipelined combine tasks; returns ``(combined, own_seconds)``.
        """
        with self.ctx.metrics.task_timer() as timer:
            self.ctx.runner.fault_point(f"combine:{self.id}", split)
            records = self._parent.iterator(split)
            if self._aggregator is None:
                combined = list(records)
            else:
                combiners: dict[Any, Any] = {}
                agg = self._aggregator
                for key, value in records:
                    if key in combiners:
                        combiners[key] = agg.merge_value(combiners[key], value)
                    else:
                        combiners[key] = agg.create_combiner(value)
                combined = list(combiners.items())
        return combined, timer.own_seconds

    def _local_combine(self) -> list[list[tuple[Any, Any]]]:
        """Parent already partitioned correctly: combine in place."""
        blocks = self.ctx.block_manager
        if blocks.spill_enabled:
            # Out-of-core: each combined partition goes under the budget
            # as soon as its task produces it, instead of accumulating
            # in a driver-side list.  Same stage/task accounting.
            owner = f"out/{self.id}"
            output = blocks.managed_output(owner, self._parent.num_partitions)

            def combine_task(split: int) -> float:
                combined, seconds = self._combine_partition(split)
                blocks.put_managed(owner, split, combined)
                return seconds

            task_seconds = self.ctx.runner.run_stage(
                [
                    (lambda split=split: combine_task(split))
                    for split in range(self._parent.num_partitions)
                ]
            )
            self.ctx.metrics.record_stage(
                self._parent.num_partitions, list(task_seconds)
            )
            # Downstream tasks read the output from split 0 up next;
            # warm the early (spilled-first) partitions ahead of them.
            blocks.prefetch_namespace(owner)
            return output
        results = self.ctx.runner.run_stage(
            [
                (lambda split=split: self._combine_partition(split))
                for split in range(self._parent.num_partitions)
            ]
        )
        output = [combined for combined, _seconds in results]
        task_seconds = [seconds for _combined, seconds in results]
        self.ctx.metrics.record_stage(self._parent.num_partitions, task_seconds)
        return output

    def _discard_lost_output(self, output: Any) -> None:
        """Forget a materialized output whose spilled partition was lost.

        Only discards when ``output`` is still the current one, so a
        concurrent reader that failed on the *previous* generation never
        throws away a freshly rebuilt output.
        """
        with self._materialize_lock:
            if self._output is output:
                owner = getattr(output, "owner", None)
                if owner is not None:
                    self.ctx.block_manager.drop_managed(owner)
                self._output = None
                self._map_stats = None

    def compute(self, split: int) -> Iterator:
        pipelined = self._pipeline_compute(split)
        if pipelined is not None:
            return pipelined
        # A spilled output partition that cannot be restored (deleted or
        # corrupt spill object) falls back to lineage recomputation: the
        # whole shuffle re-runs, exactly as if the output had never been
        # retained.
        for _attempt in range(2):
            output = None
            try:
                output = self._materialize()
                return iter(output[split])
            except SpillLostError:
                if output is not None:
                    self._discard_lost_output(output)
        raise SpillLostError(
            f"partition {split} of rdd {self.id} lost twice in a row"
        )


class CoGroupedRDD(_PipelinedWide, RDD):
    """Groups several keyed RDDs by key into ``(key, (list_0, list_1, ...))``.

    Each parent that is not already partitioned compatibly is shuffled
    (without combining — cogroup moves every record, like Spark).
    """

    def __init__(
        self, ctx: "EngineContext", parents: list[RDD], partitioner: Partitioner
    ):
        super().__init__(ctx, partitioner.num_partitions, partitioner)
        self._parents = parents
        self._output: Optional[list[list[tuple[Any, Any]]]] = None
        self._materialize_lock = threading.Lock()
        self._pipeline_slots = None
        #: Per-parent map-output histograms, filled during materialization
        #: (``None`` for a parent that never crossed the shuffle).
        self._parent_stats: list[Optional[MapOutputStatistics]] = []
        #: Set by :meth:`RDD.join`: the grouped value lists only ever feed
        #: a cartesian flatten, so the skew splitter may chunk them.
        self._splittable_values = False

    @property
    def dependencies(self) -> list[RDD]:
        return list(self._parents)

    def output_statistics(self) -> Optional[MapOutputStatistics]:
        """Combined per-partition histogram over all shuffled parents.

        ``None`` when any parent was co-partitioned (its bytes never
        moved, so there is no measured histogram to combine).
        """
        self._materialize()
        if len(self._parent_stats) != len(self._parents):
            return None
        combined: Optional[MapOutputStatistics] = None
        for stats in self._parent_stats:
            if stats is None:
                return None
            combined = stats if combined is None else combined.merged_with(stats)
        return combined

    def prepare_execution(self, seen: set[int]) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        if self._output is not None:
            return
        if self._cached and self.ctx.block_manager.contains_all(
            self.id, self._num_partitions
        ):
            return
        for parent in self._parents:
            parent.prepare_execution(seen)
        self._materialize()

    def _materialize(self) -> list[list[tuple[Any, Any]]]:
        output = self._output
        if output is None:
            self._check_not_pipelining()
            with self._materialize_lock:
                if self._output is None:
                    self._output = self._run_cogroup()
                output = self._output
        return output

    def _drain_partition(self, parent: RDD, index: int, split: int) -> tuple:
        """Drain one co-partitioned parent partition in place.

        Shared by the staged stage below and the pipelined drain tasks;
        returns ``(records, own_seconds)``.
        """
        with self.ctx.metrics.task_timer() as timer:
            self.ctx.runner.fault_point(f"drain:{self.id}.{index}", split)
            records = list(parent.iterator(split))
        return records, timer.own_seconds

    def _parent_buckets(
        self, parent: RDD, index: int
    ) -> list[list[tuple[Any, Any]]]:
        """One bucket per output partition for one parent."""
        if parent.partitioner == self.partitioner:
            blocks = self.ctx.block_manager
            if blocks.spill_enabled:
                # Out-of-core: drained partitions park under the budget
                # in a scratch namespace until the merge pass consumes
                # them (dropped in :meth:`_run_cogroup`).
                scratch = f"scratch/{self.id}.{index}"
                out = blocks.managed_output(scratch, parent.num_partitions)

                def drain_task(i: int) -> float:
                    records, seconds = self._drain_partition(parent, index, i)
                    blocks.put_managed(scratch, i, records)
                    return seconds

                task_seconds = self.ctx.runner.run_stage(
                    [
                        (lambda i=i: drain_task(i))
                        for i in range(parent.num_partitions)
                    ]
                )
                self.ctx.metrics.record_stage(
                    parent.num_partitions, list(task_seconds)
                )
                self._parent_stats.append(None)
                return out
            # Already co-partitioned: drain parent partitions in place
            # (independent splits, so they fan out on the runner).
            results = self.ctx.runner.run_stage(
                [
                    (lambda i=i: self._drain_partition(parent, index, i))
                    for i in range(parent.num_partitions)
                ]
            )
            self.ctx.metrics.record_stage(
                parent.num_partitions,
                [seconds for _records, seconds in results],
            )
            self._parent_stats.append(None)
            return [records for records, _seconds in results]
        blocks = self.ctx.block_manager
        opt_in = self._reuse_opt_in or parent._reuse_opt_in
        reused = blocks.lookup_shuffle(
            parent.id, self.partitioner, None, opt_in=opt_in
        )
        if reused is not None:
            self._parent_stats.append(getattr(reused, "stats", None))
            return reused
        map_outputs = (parent.iterator(i) for i in range(parent.num_partitions))
        buckets = self.ctx.shuffle_manager.shuffle(
            map_outputs, self.partitioner, None,
            stage_label=f"{self.id}.{index}",
        )
        self._parent_stats.append(getattr(buckets, "stats", None))
        blocks.register_shuffle(
            parent.id, self.partitioner, None, buckets, opt_in=opt_in
        )
        return buckets

    def _run_cogroup(self) -> list[list[tuple[Any, Any]]]:
        # Fresh per materialization: a lineage-fallback re-run (lost
        # spill) must not accumulate stale per-parent histograms.
        self._parent_stats = []
        if self.ctx.block_manager.spill_enabled:
            return self._run_cogroup_spill()
        arity = len(self._parents)
        grouped: list[dict[Any, tuple[list, ...]]] = [
            {} for _ in range(self.num_partitions)
        ]
        merge_seconds = [0.0] * self.num_partitions
        # Parents are processed sequentially so each key's value lists
        # keep parent order; the per-split merges within one parent are
        # independent and fan out on the runner.
        for index, parent in enumerate(self._parents):
            buckets = self._parent_buckets(parent, index)

            def make_merge_task(
                split: int, bucket: list, index: int = index
            ) -> Callable[[], Any]:
                def task() -> Any:
                    with self.ctx.metrics.task_timer() as timer:
                        self.ctx.runner.fault_point(f"merge:{self.id}", split)
                        table = grouped[split]
                        for key, value in bucket:
                            entry = table.get(key)
                            if entry is None:
                                entry = tuple([] for _ in range(arity))
                                table[key] = entry
                            entry[index].append(value)
                    return timer

                return task

            timers = self.ctx.runner.run_stage(
                [
                    make_merge_task(split, bucket)
                    for split, bucket in enumerate(buckets)
                ]
            )
            for split, timer in enumerate(timers):
                merge_seconds[split] += timer.own_seconds
        self.ctx.metrics.record_stage(self.num_partitions, merge_seconds)
        return [list(table.items()) for table in grouped]

    def _run_cogroup_spill(self) -> Any:
        """Out-of-core cogroup: one split's table resident at a time.

        The in-memory path keeps every split's grouped table alive while
        parents are merged in sequence; under a memory cap that *is* the
        working set, so the merge is restructured per split — read each
        parent's bucket for the split (restoring from the spill tier as
        needed), build that split's table, adopt it under the budget,
        free it, move on.  Parent buckets and merge results keep their
        exact in-memory ordering, so the output records and every
        stage/task counter are byte-identical to the in-memory path:
        per-parent drain/shuffle stages land first in the same order,
        and the single merge stage still records ``num_partitions``
        tasks with per-split times.
        """
        arity = len(self._parents)
        blocks = self.ctx.block_manager
        # Parent bucket handles, in parent order, before any merge runs
        # (the same stage-recording order as the in-memory path, which
        # also finishes every parent's shuffle before the merge stage is
        # recorded).
        parent_buckets = [
            self._parent_buckets(parent, index)
            for index, parent in enumerate(self._parents)
        ]
        # The merge stage reads the parent buckets split by split; start
        # restoring their spilled partitions now so early merge tasks
        # find them resident (prefetch fills free headroom only).
        for handle in parent_buckets:
            handle_owner = getattr(handle, "owner", None)
            if handle_owner is not None:
                blocks.prefetch_namespace(handle_owner)
        owner = f"out/{self.id}"
        output = blocks.managed_output(owner, self.num_partitions)

        def make_merge_task(split: int) -> Callable[[], float]:
            def task() -> float:
                with self.ctx.metrics.task_timer() as timer:
                    table: dict[Any, tuple[list, ...]] = {}
                    for index in range(arity):
                        self.ctx.runner.fault_point(f"merge:{self.id}", split)
                        for key, value in parent_buckets[index][split]:
                            entry = table.get(key)
                            if entry is None:
                                entry = tuple([] for _ in range(arity))
                                table[key] = entry
                            entry[index].append(value)
                blocks.put_managed(owner, split, list(table.items()))
                return timer.own_seconds

            return task

        merge_seconds = self.ctx.runner.run_stage(
            [make_merge_task(split) for split in range(self.num_partitions)]
        )
        self.ctx.metrics.record_stage(self.num_partitions, list(merge_seconds))
        for index in range(arity):
            blocks.drop_managed(f"scratch/{self.id}.{index}")
        # Downstream tasks read the output from split 0 up next; warm
        # the early (spilled-first) partitions ahead of them.
        blocks.prefetch_namespace(owner)
        return output

    def _discard_lost_output(self, output: Any) -> None:
        """Forget a materialized cogroup whose spilled partition was lost."""
        with self._materialize_lock:
            if self._output is output:
                owner = getattr(output, "owner", None)
                if owner is not None:
                    self.ctx.block_manager.drop_managed(owner)
                self._output = None
                self._parent_stats = []

    def compute(self, split: int) -> Iterator:
        pipelined = self._pipeline_compute(split)
        if pipelined is not None:
            return pipelined
        for _attempt in range(2):
            output = None
            try:
                output = self._materialize()
                return iter(output[split])
            except SpillLostError:
                if output is not None:
                    self._discard_lost_output(output)
        raise SpillLostError(
            f"partition {split} of rdd {self.id} lost twice in a row"
        )


class UnionRDD(RDD):
    """Concatenation of several RDDs; partitions are juxtaposed."""

    def __init__(self, ctx: "EngineContext", parents: list[RDD]):
        super().__init__(ctx, sum(p.num_partitions for p in parents))
        self._parents = parents

    @property
    def dependencies(self) -> list[RDD]:
        return list(self._parents)

    def compute(self, split: int) -> Iterator:
        for parent in self._parents:
            if split < parent.num_partitions:
                return parent.iterator(split)
            split -= parent.num_partitions
        raise IndexError(f"partition {split} out of range")


class CartesianRDD(RDD):
    """All pairs of two RDDs; ``n * m`` partitions."""

    def __init__(self, left: RDD, right: RDD):
        super().__init__(left.ctx, left.num_partitions * right.num_partitions)
        self._left = left
        self._right = right

    @property
    def dependencies(self) -> list[RDD]:
        return [self._left, self._right]

    def compute(self, split: int) -> Iterator:
        left_split, right_split = divmod(split, self._right.num_partitions)
        left_items = list(self._left.iterator(left_split))
        for right_item in self._right.iterator(right_split):
            for left_item in left_items:
                yield left_item, right_item


class ZippedRDD(RDD):
    """Position-wise pairing of two RDDs with identical partitioning."""

    def __init__(self, left: RDD, right: RDD):
        super().__init__(left.ctx, left.num_partitions)
        self._left = left
        self._right = right

    @property
    def dependencies(self) -> list[RDD]:
        return [self._left, self._right]

    def compute(self, split: int) -> Iterator:
        left_items = list(self._left.iterator(split))
        right_items = list(self._right.iterator(split))
        if len(left_items) != len(right_items):
            raise ValueError(
                f"cannot zip partition {split}: {len(left_items)} vs "
                f"{len(right_items)} elements"
            )
        return iter(list(zip(left_items, right_items)))


class CoalescedRDD(RDD):
    """Merges parent partitions into fewer, without moving data."""

    def __init__(self, parent: RDD, num_partitions: int):
        super().__init__(parent.ctx, num_partitions)
        self._parent = parent
        self._groups = _slice(list(range(parent.num_partitions)), num_partitions)

    @property
    def dependencies(self) -> list[RDD]:
        return [self._parent]

    def compute(self, split: int) -> Iterator:
        return itertools.chain.from_iterable(
            self._parent.iterator(i) for i in self._groups[split]
        )
