"""Size estimation for shuffle accounting.

The engine never actually serializes data (everything stays in one Python
process), but the cost model needs to know how many bytes each shuffle
*would* move on a real cluster.  ``estimate_size`` walks common container
shapes structurally — NumPy arrays report their true buffer size, which is
what dominates block-array workloads — and falls back to ``pickle`` for
anything exotic.
"""

from __future__ import annotations

import pickle
import sys
from typing import Any

import numpy as np

#: Flat per-record envelope a real serializer would add (type tags, length
#: prefixes).  Chosen to roughly match Kryo's overhead for small tuples.
RECORD_OVERHEAD = 8

_PRIMITIVE_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    complex: 16,
    type(None): 1,
}


def estimate_size(obj: Any) -> int:
    """Estimate the serialized size of ``obj`` in bytes.

    NumPy arrays count their exact buffer size plus a small header;
    containers are summed recursively.  The estimate is intentionally on
    the "wire format" side rather than the Python-object side: a Python
    float counts 8 bytes, not ``sys.getsizeof``'s 24.
    """
    size = _estimate(obj)
    return size if size > 0 else 1


def _estimate(obj: Any) -> int:
    primitive = _PRIMITIVE_SIZES.get(type(obj))
    if primitive is not None:
        return primitive
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 16
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj) + 4
    if isinstance(obj, tuple):
        return 2 + sum(_estimate(item) for item in obj)
    if isinstance(obj, (list, set, frozenset)):
        return 8 + sum(_estimate(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(_estimate(k) + _estimate(v) for k, v in obj.items())
    return _fallback_estimate(obj)


def _fallback_estimate(obj: Any) -> int:
    """Pickle-based fallback for user-defined types."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable: charge its in-memory footprint
        return sys.getsizeof(obj)


def estimate_record_size(record: Any) -> int:
    """Size of one shuffle record, including the per-record envelope."""
    return estimate_size(record) + RECORD_OVERHEAD
