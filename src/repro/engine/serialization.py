"""Size estimation for shuffle accounting.

The engine never actually serializes data (everything stays in one Python
process), but the cost model needs to know how many bytes each shuffle
*would* move on a real cluster.  ``estimate_size`` walks common container
shapes structurally — NumPy arrays report their true buffer size, which is
what dominates block-array workloads — and falls back to ``pickle`` for
anything exotic.
"""

from __future__ import annotations

import pickle
import sys
from typing import Any

import numpy as np

#: Flat per-record envelope a real serializer would add (type tags, length
#: prefixes).  Chosen to roughly match Kryo's overhead for small tuples.
RECORD_OVERHEAD = 8

_PRIMITIVE_SIZES = {
    bool: 1,
    int: 8,
    float: 8,
    complex: 16,
    type(None): 1,
}


def estimate_size(obj: Any) -> int:
    """Estimate the serialized size of ``obj`` in bytes.

    NumPy arrays count their exact buffer size plus a small header;
    containers are summed recursively.  The estimate is intentionally on
    the "wire format" side rather than the Python-object side: a Python
    float counts 8 bytes, not ``sys.getsizeof``'s 24.
    """
    size = _estimate(obj)
    return size if size > 0 else 1


def _estimate(obj: Any) -> int:
    primitive = _PRIMITIVE_SIZES.get(type(obj))
    if primitive is not None:
        return primitive
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + 16
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj) + 4
    if isinstance(obj, tuple):
        return 2 + sum(_estimate(item) for item in obj)
    if isinstance(obj, (list, set, frozenset)):
        return 8 + sum(_estimate(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(_estimate(k) + _estimate(v) for k, v in obj.items())
    return _fallback_estimate(obj)


def _fallback_estimate(obj: Any) -> int:
    """Pickle-based fallback for user-defined types."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # unpicklable: charge its in-memory footprint
        return sys.getsizeof(obj)


def estimate_record_size(record: Any) -> int:
    """Size of one shuffle record, including the per-record envelope."""
    return estimate_size(record) + RECORD_OVERHEAD


# ----------------------------------------------------------------------
# Fast-path accounting for homogeneous record streams
# ----------------------------------------------------------------------
#
# Shuffle streams in this engine are overwhelmingly *homogeneous*: every
# record of a tiled-matrix shuffle is ``((i, j), ndarray)`` and every
# record of a coordinate shuffle is ``((i, j), float)``.  Walking each
# record recursively through ``_estimate`` costs more than the rest of
# the shuffle loop combined, so the accountant below derives a record's
# size from a structural *signature* — key shape plus value type (and
# dtype/shape for arrays) — and memoizes the estimate per signature.
# Records that do not fit a fixed-size signature fall back to the full
# recursive walk, so the totals are byte-identical to per-record
# estimation in every case.

#: Types whose estimate does not depend on the value (see
#: ``_PRIMITIVE_SIZES``); signature membership implies a constant size.
_FIXED_SIZE_TYPES = frozenset(_PRIMITIVE_SIZES)

#: Size of a ``((int, int), ndarray)`` tile record minus the array
#: buffer: record tuple (2) + key tuple (2 + 8 + 8) + array header (16)
#: + per-record envelope.
_TILE_RECORD_OVERHEAD = 2 + (2 + 8 + 8) + 16 + RECORD_OVERHEAD


def _fixed_size_signature(obj: Any) -> Any:
    """A hashable signature for values whose estimate is type-determined.

    Returns ``None`` when ``obj``'s size depends on its contents (strings,
    lists, arbitrary objects), which routes the record to the full walk.
    """
    t = type(obj)
    if t in _FIXED_SIZE_TYPES:
        return t
    if t is tuple:
        parts = tuple(_fixed_size_signature(item) for item in obj)
        if None in parts:
            return None
        return ("t", parts)
    if isinstance(obj, np.generic):
        return ("g", t)
    return None


def _record_signature(record: Any) -> Any:
    """Signature of a ``(key, value)`` shuffle record, or ``None``."""
    if type(record) is not tuple or len(record) != 2:
        return None
    key, value = record
    ksig = _fixed_size_signature(key)
    if ksig is None:
        return None
    tv = type(value)
    if tv is np.ndarray:
        return (ksig, value.dtype, value.shape)
    vsig = _fixed_size_signature(value)
    if vsig is None:
        return None
    return (ksig, vsig)


class RecordSizeAccountant:
    """Amortized, byte-exact size accounting for shuffle record streams.

    ``record_size`` agrees with :func:`estimate_record_size` on every
    input by construction: the first record of each signature is priced
    by the full estimator and later records of the same signature reuse
    the memoized price.  ``((i, j), ndarray)`` tile records — the block
    shuffle hot path — skip the memo entirely and price directly from
    ``ndarray.nbytes``, so ragged edge tiles stay exact without one memo
    entry per shape.
    """

    __slots__ = ("_memo",)

    def __init__(self):
        self._memo: dict[Any, int] = {}

    def record_size(self, record: Any) -> int:
        """Size of one record (identical to ``estimate_record_size``)."""
        if type(record) is tuple and len(record) == 2:
            key, value = record
            if type(value) is np.ndarray and type(key) is tuple and len(key) == 2:
                k0, k1 = key
                if type(k0) is int and type(k1) is int:
                    return int(value.nbytes) + _TILE_RECORD_OVERHEAD
        sig = _record_signature(record)
        if sig is None:
            return estimate_record_size(record)
        size = self._memo.get(sig)
        if size is None:
            size = estimate_record_size(record)
            self._memo[sig] = size
        return size

    def batch_size(self, records: Any) -> int:
        """Total size of a batch of records (one call per partition)."""
        total = 0
        size_of = self.record_size
        for record in records:
            total += size_of(record)
        return total
