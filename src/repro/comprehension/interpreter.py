"""Reference interpreter: the formal semantics of array comprehensions.

This module evaluates any desugared comprehension directly over
association lists, implementing the meaning given in Sections 2–3 of the
paper:

* a generator ``p <- e`` traverses the *abstract* form of ``e`` — concrete
  storages are up-coerced through their registered sparsifiers, engine
  RDDs are collected, ranges and lists iterate as themselves;
* ``group by p`` groups the bindings produced so far by the value of
  ``p``'s variables and **lifts** every other bound variable to the list
  of its values within the group (Rule 11);
* ``op/e`` folds a monoid; builders down-coerce the resulting association
  list into a concrete storage.

The interpreter is deliberately simple and obviously correct; the planner
and kernels are differential-tested against it.  Semantics choices shared
with the compiled path (and with the paper's Scala):

* ``/`` and ``%`` on two integers are integer division/modulo — the tile
  arithmetic ``i/N``, ``i%N`` depends on this;
* pattern-match failure in a generator is an error, not a filter.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

import numpy as np

from ..storage.registry import REGISTRY, BuildContext, StorageRegistry
from .ast import (
    BinOp, BuilderApp, Call, Comprehension, Expr, Field, Generator,
    GroupByQual, Guard, IfExpr, Index, LetQual, Lit, Pattern, Qualifier,
    RangeExpr, Reduce, TupleExpr, TuplePat, UnOp, Var, VarPat, WildPat,
    pattern_vars,
)
from .errors import SacNameError, SacPatternError, SacTypeError
from .monoids import monoid


def _int_div(a: Any, b: Any) -> Any:
    """Scala-style division: integer division on ints, true otherwise."""
    if isinstance(a, (int, np.integer)) and isinstance(b, (int, np.integer)):
        return int(a) // int(b)
    return a / b


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _int_div,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Pure functions available in every query.
BUILTINS: dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "count": len,
    "len": len,
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "pow": pow,
    "floor": math.floor,
    "ceil": math.ceil,
}


class Interpreter:
    """Evaluates comprehension ASTs against an environment.

    Args:
        env: free-variable bindings (arrays, scalars, lists, functions).
        functions: extra named functions callable from queries.
        build_context: ambient parameters for builders (engine, tile size).
        registry: storage registry (defaults to the global one).
    """

    def __init__(
        self,
        env: Optional[Mapping[str, Any]] = None,
        functions: Optional[Mapping[str, Callable]] = None,
        build_context: Optional[BuildContext] = None,
        registry: StorageRegistry = REGISTRY,
    ):
        self._env = dict(env or {})
        self._functions = {**BUILTINS, **(functions or {})}
        self._build_context = build_context or BuildContext()
        self._registry = registry

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(self, expr: Expr, extra_env: Optional[Mapping[str, Any]] = None) -> Any:
        env = dict(self._env)
        if extra_env:
            env.update(extra_env)
        return self._eval(expr, env)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, env: dict[str, Any]) -> Any:
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise SacNameError(f"unbound variable {expr.name!r}") from None
        if isinstance(expr, TupleExpr):
            return tuple(self._eval(item, env) for item in expr.items)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, UnOp):
            operand = self._eval(expr.operand, env)
            return -operand if expr.op == "-" else not operand
        if isinstance(expr, Call):
            return self._eval_call(expr, env)
        if isinstance(expr, Field):
            return self._eval_field(expr, env)
        if isinstance(expr, Index):
            return self._eval_index(expr, env)
        if isinstance(expr, RangeExpr):
            lo = self._eval(expr.lo, env)
            hi = self._eval(expr.hi, env)
            return range(int(lo), int(hi) + (1 if expr.inclusive else 0))
        if isinstance(expr, IfExpr):
            if self._eval(expr.cond, env):
                return self._eval(expr.then, env)
            return self._eval(expr.orelse, env)
        if isinstance(expr, Reduce):
            return self._eval_reduce(expr, env)
        if isinstance(expr, Comprehension):
            return self._eval_comprehension(expr, env)
        if isinstance(expr, BuilderApp):
            return self._eval_builder(expr, env)
        raise SacTypeError(f"cannot evaluate {type(expr).__name__}")

    def _eval_binop(self, expr: BinOp, env: dict[str, Any]) -> Any:
        if expr.op == "&&":
            return bool(self._eval(expr.left, env)) and bool(self._eval(expr.right, env))
        if expr.op == "||":
            return bool(self._eval(expr.left, env)) or bool(self._eval(expr.right, env))
        try:
            op = _BINOPS[expr.op]
        except KeyError:
            raise SacTypeError(f"unknown operator {expr.op!r}") from None
        return op(self._eval(expr.left, env), self._eval(expr.right, env))

    def _eval_call(self, expr: Call, env: dict[str, Any]) -> Any:
        args = [self._eval(arg, env) for arg in expr.args]
        func = env.get(expr.func)
        if callable(func):
            return func(*args)
        if expr.func in self._functions:
            return self._functions[expr.func](*args)
        raise SacNameError(f"unknown function {expr.func!r}")

    def _eval_field(self, expr: Field, env: dict[str, Any]) -> Any:
        base = self._eval(expr.base, env)
        if expr.name == "length":
            return len(base)
        if isinstance(base, Mapping):
            try:
                return base[expr.name]
            except KeyError:
                raise SacNameError(
                    f"record has no field {expr.name!r}; fields: {sorted(base)}"
                ) from None
        attr = getattr(base, expr.name, None)
        if attr is not None and not callable(attr):
            return attr
        raise SacTypeError(
            f"cannot access field {expr.name!r} on {type(base).__name__}"
        )

    def _eval_index(self, expr: Index, env: dict[str, Any]) -> Any:
        base = self._eval(expr.base, env)
        indices = [self._eval(i, env) for i in expr.indices]
        return index_value(base, indices)

    def _eval_reduce(self, expr: Reduce, env: dict[str, Any]) -> Any:
        values = self._eval(expr.expr, env)
        if not isinstance(values, (list, tuple, range, np.ndarray)):
            raise SacTypeError(
                f"reduction {expr.monoid}/ needs a collection, got "
                f"{type(values).__name__}"
            )
        if expr.monoid == "count":
            return len(values)
        return monoid(expr.monoid).fold(values)

    # ------------------------------------------------------------------
    # Comprehensions
    # ------------------------------------------------------------------

    def _eval_comprehension(self, comp: Comprehension, env: dict[str, Any]) -> list:
        rows = self._rows(comp.qualifiers, env)
        return [self._eval(comp.head, row) for row in rows]

    def _rows(
        self, qualifiers: tuple[Qualifier, ...], env: dict[str, Any]
    ) -> list[dict[str, Any]]:
        """Process qualifiers left to right over a list of binding rows."""
        rows = [dict(env)]
        local_vars: set[str] = set()
        for qual in qualifiers:
            if isinstance(qual, Generator):
                new_rows = []
                for row in rows:
                    source = self._eval(qual.source, row)
                    for item in self._iterate(source):
                        extended = dict(row)
                        bind_pattern(qual.pattern, item, extended)
                        new_rows.append(extended)
                rows = new_rows
                local_vars |= set(pattern_vars(qual.pattern))
            elif isinstance(qual, LetQual):
                for row in rows:
                    bind_pattern(qual.pattern, self._eval(qual.expr, row), row)
                local_vars |= set(pattern_vars(qual.pattern))
            elif isinstance(qual, Guard):
                rows = [row for row in rows if self._eval(qual.expr, row)]
            elif isinstance(qual, GroupByQual):
                if qual.pattern is None or qual.key is not None:
                    raise SacTypeError(
                        "group-by must be desugared before interpretation"
                    )
                rows = self._group(rows, qual.pattern, local_vars)
                local_vars = set(pattern_vars(qual.pattern)) | {
                    v for v in local_vars
                }
            else:
                raise SacTypeError(f"unknown qualifier {type(qual).__name__}")
        return rows

    def _group(
        self,
        rows: list[dict[str, Any]],
        pattern: Pattern,
        local_vars: set[str],
    ) -> list[dict[str, Any]]:
        """Rule (11): group rows by the key pattern and lift other vars."""
        key_vars = pattern_vars(pattern)
        lifted_vars = sorted(local_vars - set(key_vars))
        groups: dict[Any, list[dict[str, Any]]] = {}
        for row in rows:
            try:
                key = tuple(_hashable(row[name]) for name in key_vars)
            except KeyError as missing:
                raise SacNameError(
                    f"group-by key variable {missing} is not bound"
                ) from None
            groups.setdefault(key, []).append(row)
        out = []
        for key, group_rows in groups.items():
            new_row = dict(group_rows[0])
            for name, value in zip(key_vars, key):
                new_row[name] = value
            for name in lifted_vars:
                new_row[name] = [row[name] for row in group_rows if name in row]
            out.append(new_row)
        return out

    def _iterate(self, value: Any) -> Iterator:
        """Traverse a generator source in its abstract (assoc-list) form."""
        sparsifier = self._registry.sparsifier_for(value)
        if sparsifier is not None:
            return iter(sparsifier(value))
        if isinstance(value, range):
            return iter(value)
        if isinstance(value, (list, tuple)):
            return iter(value)
        if isinstance(value, dict):
            return iter(value.items())
        if hasattr(value, "collect"):  # engine RDD
            return iter(value.collect())
        if isinstance(value, Iterable):
            return iter(value)
        raise SacTypeError(f"cannot traverse a {type(value).__name__}")

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    def _eval_builder(self, expr: BuilderApp, env: dict[str, Any]) -> Any:
        args = tuple(self._eval(arg, env) for arg in expr.args)
        items = self._eval(expr.source, env)
        if not isinstance(items, list):
            items = list(self._iterate(items))
        return self._registry.build(expr.name, args, items, self._build_context)


# ----------------------------------------------------------------------
# Shared helpers (also used by the planner's generated code)
# ----------------------------------------------------------------------


def bind_pattern(pattern: Pattern, value: Any, env: dict[str, Any]) -> None:
    """Destructure ``value`` against ``pattern`` into ``env``.

    Mismatched tuple arity raises :class:`SacPatternError` — generators in
    this language always traverse homogeneous association lists, so a
    mismatch is a bug, not a filter.
    """
    if isinstance(pattern, VarPat):
        env[pattern.name] = _scalar(value)
    elif isinstance(pattern, WildPat):
        pass
    elif isinstance(pattern, TuplePat):
        if not isinstance(value, (tuple, list)) or len(value) != len(pattern.items):
            raise SacPatternError(
                f"cannot match {value!r} against pattern {pattern}"
            )
        for sub, item in zip(pattern.items, value):
            bind_pattern(sub, item, env)
    else:
        raise SacTypeError(f"unknown pattern {type(pattern).__name__}")


def _scalar(value: Any) -> Any:
    """NumPy scalars become Python scalars so keys hash consistently."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _hashable(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


def index_value(base: Any, indices: list) -> Any:
    """Shared indexing semantics for ``base[e1, ..., en]``."""
    if hasattr(base, "get") and not isinstance(base, dict):
        return base.get(*indices)
    if isinstance(base, np.ndarray):
        out = base[tuple(int(i) for i in indices)]
        return out.item() if isinstance(out, np.generic) else out
    if isinstance(base, dict):
        key = indices[0] if len(indices) == 1 else tuple(indices)
        return base[key]
    if isinstance(base, (list, tuple)) and len(indices) == 1:
        return base[int(indices[0])]
    raise SacTypeError(
        f"cannot index a {type(base).__name__} with {len(indices)} indices"
    )
