"""Abstract syntax for SAC array comprehensions (paper Figure 2).

The expression language::

    e ::= [ e | q1, ..., qn ]          comprehension
        | op/e                          reduction by a monoid
        | v[e1, ..., en]                array indexing
        | builder(args)[ e | q ]        builder application
        | e1 until e2 | e1 to e2        index ranges
        | literals, variables, tuples, calls, field access,
          unary/binary operators, if-else

    q ::= p <- e                        generator
        | let p = e                     local declaration
        | e                             filter (guard)
        | group by p [: e]              group-by

    p ::= v | (p1, ..., pn) | _         patterns

All nodes are frozen dataclasses: rewrites build new trees.  ``to_source``
pretty-prints any node back to parseable DSL text (used by tests and by
the code generator's comments), and the free-variable / renaming helpers
support the normalization rules' capture-avoiding substitution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional


class Node:
    """Base class for all AST nodes."""

    def __str__(self) -> str:
        return to_source(self)


class Expr(Node):
    """Base class for expressions."""


class Pattern(Node):
    """Base class for patterns."""


class Qualifier(Node):
    """Base class for comprehension qualifiers."""


# ----------------------------------------------------------------------
# Patterns
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VarPat(Pattern):
    """A pattern variable: binds the matched value to ``name``."""

    name: str


@dataclass(frozen=True)
class TuplePat(Pattern):
    """A tuple pattern; matches a tuple of equal arity component-wise."""

    items: tuple[Pattern, ...]


@dataclass(frozen=True)
class WildPat(Pattern):
    """The wildcard ``_``: matches anything, binds nothing."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Var(Expr):
    """Variable reference."""

    name: str


@dataclass(frozen=True)
class Lit(Expr):
    """Literal constant (int, float, bool, or str)."""

    value: object


@dataclass(frozen=True)
class TupleExpr(Expr):
    """Tuple construction ``(e1, ..., en)``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator application."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    """Unary operator application (``-`` or ``!``)."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Function call ``f(e1, ..., en)`` for a named builtin or env function."""

    func: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Field(Expr):
    """Field access ``e.name`` (records) or ``e.length`` (lifted lists)."""

    base: Expr
    name: str


@dataclass(frozen=True)
class Index(Expr):
    """Array indexing ``base[e1, ..., en]``."""

    base: Expr
    indices: tuple[Expr, ...]


@dataclass(frozen=True)
class RangeExpr(Expr):
    """Index range ``lo until hi`` (exclusive) or ``lo to hi`` (inclusive)."""

    lo: Expr
    hi: Expr
    inclusive: bool = False


@dataclass(frozen=True)
class IfExpr(Expr):
    """Conditional expression ``if (c) e1 else e2``."""

    cond: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class Reduce(Expr):
    """Total reduction ``op/e`` by the monoid named ``op``."""

    monoid: str
    expr: Expr


@dataclass(frozen=True)
class Comprehension(Expr):
    """``[ head | qualifiers ]``."""

    head: Expr
    qualifiers: tuple[Qualifier, ...]


@dataclass(frozen=True)
class BuilderApp(Expr):
    """Builder application ``name(args)[ e | q ]`` (e.g. ``matrix(n,m)[...]``).

    Converts the association list produced by ``source`` into a concrete
    storage.  ``source`` is usually a :class:`Comprehension` but may be any
    expression yielding an association list.
    """

    name: str
    args: tuple[Expr, ...]
    source: Expr


# ----------------------------------------------------------------------
# Qualifiers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Generator(Qualifier):
    """``p <- e``: traverse ``e``, binding each element against ``p``."""

    pattern: Pattern
    source: Expr


@dataclass(frozen=True)
class LetQual(Qualifier):
    """``let p = e``."""

    pattern: Pattern
    expr: Expr


@dataclass(frozen=True)
class Guard(Qualifier):
    """A boolean filter expression."""

    expr: Expr


@dataclass(frozen=True)
class GroupByQual(Qualifier):
    """``group by p``, ``group by p : e``, or ``group by e``.

    The third form (``pattern is None``) keys the group on a bare
    expression, as in the paper's ``group by i/N``; desugaring introduces a
    fresh key variable for it.  After desugaring, ``key`` is always ``None``
    and ``pattern`` never is.
    """

    pattern: Optional[Pattern]
    key: Optional[Expr] = None


# ----------------------------------------------------------------------
# Pattern / variable utilities
# ----------------------------------------------------------------------


def pattern_vars(pattern: Pattern) -> list[str]:
    """Variables bound by ``pattern``, in left-to-right order."""
    if isinstance(pattern, VarPat):
        return [pattern.name]
    if isinstance(pattern, TuplePat):
        out: list[str] = []
        for item in pattern.items:
            out.extend(pattern_vars(item))
        return out
    if isinstance(pattern, WildPat):
        return []
    raise TypeError(f"not a pattern: {pattern!r}")


def pattern_to_expr(pattern: Pattern) -> Expr:
    """The expression reading back exactly what ``pattern`` binds."""
    if isinstance(pattern, VarPat):
        return Var(pattern.name)
    if isinstance(pattern, TuplePat):
        return TupleExpr(tuple(pattern_to_expr(p) for p in pattern.items))
    raise TypeError(f"cannot convert pattern to expression: {pattern!r}")


def _children(node: Node) -> Iterator[Node]:
    for f in fields(node):  # type: ignore[arg-type]
        value = getattr(node, f.name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and all descendants."""
    yield node
    for child in _children(node):
        yield from walk(child)


def free_vars(expr: Expr) -> set[str]:
    """Free variables of ``expr`` (comprehension qualifiers bind)."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Comprehension):
        free: set[str] = set()
        bound: set[str] = set()
        for qual in expr.qualifiers:
            if isinstance(qual, Generator):
                free |= free_vars(qual.source) - bound
                bound |= set(pattern_vars(qual.pattern))
            elif isinstance(qual, LetQual):
                free |= free_vars(qual.expr) - bound
                bound |= set(pattern_vars(qual.pattern))
            elif isinstance(qual, Guard):
                free |= free_vars(qual.expr) - bound
            elif isinstance(qual, GroupByQual):
                if qual.key is not None:
                    free |= free_vars(qual.key) - bound
                if qual.pattern is not None:
                    bound |= set(pattern_vars(qual.pattern))
        free |= free_vars(expr.head) - bound
        return free
    if isinstance(expr, BuilderApp):
        out = free_vars(expr.source)
        for arg in expr.args:
            out |= free_vars(arg)
        return out
    out = set()
    for child in _children(expr):
        if isinstance(child, Expr):
            out |= free_vars(child)
    return out


def rename_expr(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rename free variables of ``expr`` by ``mapping`` (capture-naive).

    The normalizer only calls this with fresh target names, so capture
    cannot occur.
    """
    if not mapping:
        return expr
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, Comprehension):
        quals = []
        inner = dict(mapping)
        for qual in expr.qualifiers:
            if isinstance(qual, Generator):
                quals.append(Generator(rename_pattern(qual.pattern, inner), rename_expr(qual.source, inner)))
            elif isinstance(qual, LetQual):
                quals.append(LetQual(rename_pattern(qual.pattern, inner), rename_expr(qual.expr, inner)))
            elif isinstance(qual, Guard):
                quals.append(Guard(rename_expr(qual.expr, inner)))
            elif isinstance(qual, GroupByQual):
                key = rename_expr(qual.key, inner) if qual.key is not None else None
                pattern = (
                    rename_pattern(qual.pattern, inner)
                    if qual.pattern is not None
                    else None
                )
                quals.append(GroupByQual(pattern, key))
        return Comprehension(rename_expr(expr.head, inner), tuple(quals))
    return _rebuild(expr, mapping)


def rename_pattern(pattern: Pattern, mapping: dict[str, str]) -> Pattern:
    """Rename the variables a pattern binds (used for alpha-renaming)."""
    if isinstance(pattern, VarPat):
        return VarPat(mapping.get(pattern.name, pattern.name))
    if isinstance(pattern, TuplePat):
        return TuplePat(tuple(rename_pattern(p, mapping) for p in pattern.items))
    return pattern


def _rebuild(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Structurally rebuild ``expr`` renaming nested expression children."""
    kwargs = {}
    for f in fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            kwargs[f.name] = rename_expr(value, mapping)
        elif isinstance(value, tuple) and value and isinstance(value[0], Expr):
            kwargs[f.name] = tuple(rename_expr(v, mapping) for v in value)
        else:
            kwargs[f.name] = value
    return type(expr)(**kwargs)


class FreshNames:
    """Generates fresh variable names that cannot collide with source names.

    Source identifiers cannot contain ``$``, so every generated name is
    safe without scanning the tree.
    """

    def __init__(self, prefix: str = "v"):
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str = "") -> str:
        base = hint or self._prefix
        return f"{base}${next(self._counter)}"


# ----------------------------------------------------------------------
# Pretty printing
# ----------------------------------------------------------------------

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def to_source(node: Node) -> str:
    """Render a node back to DSL source text."""
    return _render(node, 0)


def _render(node: Node, parent_prec: int) -> str:
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Lit):
        if isinstance(node.value, bool):
            return "true" if node.value else "false"
        if isinstance(node.value, str):
            return repr(node.value)
        return repr(node.value)
    if isinstance(node, TupleExpr):
        return "(" + ", ".join(_render(item, 0) for item in node.items) + ")"
    if isinstance(node, BinOp):
        prec = _PRECEDENCE[node.op]
        text = f"{_render(node.left, prec)} {node.op} {_render(node.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(node, UnOp):
        return f"{node.op}{_render(node.operand, 9)}"
    if isinstance(node, Call):
        return f"{node.func}(" + ", ".join(_render(a, 0) for a in node.args) + ")"
    if isinstance(node, Field):
        return f"{_render(node.base, 9)}.{node.name}"
    if isinstance(node, Index):
        return f"{_render(node.base, 9)}[" + ", ".join(_render(i, 0) for i in node.indices) + "]"
    if isinstance(node, RangeExpr):
        word = "to" if node.inclusive else "until"
        text = f"{_render(node.lo, 5)} {word} {_render(node.hi, 5)}"
        return f"({text})" if parent_prec > 4 else text
    if isinstance(node, IfExpr):
        text = (
            f"if ({_render(node.cond, 0)}) {_render(node.then, 9)} "
            f"else {_render(node.orelse, 9)}"
        )
        # As an operand the else-branch would swallow the rest of the
        # enclosing expression; parenthesize in any nested position.
        return f"({text})" if parent_prec > 0 else text
    if isinstance(node, Reduce):
        return f"{node.monoid}/{_render(node.expr, 9)}"
    if isinstance(node, Comprehension):
        quals = ", ".join(_render(q, 0) for q in node.qualifiers)
        return f"[ {_render(node.head, 0)} | {quals} ]"
    if isinstance(node, BuilderApp):
        args = f"({', '.join(_render(a, 0) for a in node.args)})" if node.args else ""
        if isinstance(node.source, Comprehension):
            return f"{node.name}{args}{_render(node.source, 0)}"
        return f"{node.name}{args}({_render(node.source, 0)})"
    if isinstance(node, Generator):
        return f"{_render(node.pattern, 0)} <- {_render(node.source, 0)}"
    if isinstance(node, LetQual):
        return f"let {_render(node.pattern, 0)} = {_render(node.expr, 0)}"
    if isinstance(node, Guard):
        return _render(node.expr, 0)
    if isinstance(node, GroupByQual):
        if node.pattern is None:
            return f"group by {_render(node.key, 0)}"
        if node.key is not None:
            return f"group by {_render(node.pattern, 0)}: {_render(node.key, 0)}"
        return f"group by {_render(node.pattern, 0)}"
    if isinstance(node, VarPat):
        return node.name
    if isinstance(node, TuplePat):
        return "(" + ", ".join(_render(p, 0) for p in node.items) + ")"
    if isinstance(node, WildPat):
        return "_"
    raise TypeError(f"cannot render {node!r}")
