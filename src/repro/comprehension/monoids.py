"""Monoids: the reduction algebras behind ``op/e`` and ``reduceByKey``.

The paper's group-by translation (Section 3, Equation 12) abstracts every
use of a lifted variable as ``op/w.map(g)`` for a *monoid* ``op`` — an
associative combine with an identity.  The same monoids drive map-side
combining in the distributed translation (Rule 13): ``reduceByKey(op)`` is
only correct because ``op`` is associative.

``count`` and ``avg`` are not primitive monoids; they are decomposed
during desugaring (``avg/e`` into ``(+/e)/(count/e)``) and group-by
analysis (``count/e`` into ``+`` over ``1``), exactly as a real
implementation must before it can combine partial aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from .errors import SacTypeError


@dataclass(frozen=True)
class Monoid:
    """An associative combine with identity.

    Attributes:
        name: the DSL spelling (``+``, ``*``, ``min``, ...).
        zero: identity element (``1⊕`` in the paper).
        combine: the associative binary operation.
        np_combine: the element-wise NumPy equivalent, used by tile
            kernels to combine whole blocks pairwise (Section 5.3's
            ``⊗′``); ``None`` when no ufunc applies.
    """

    name: str
    zero: Any
    combine: Callable[[Any, Any], Any]
    np_combine: Optional[Callable[[Any, Any], Any]] = None

    def fold(self, values) -> Any:
        """Reduce an iterable with this monoid (``op/values``)."""
        acc = self.zero
        for value in values:
            acc = self.combine(acc, value)
        return acc


MONOIDS: dict[str, Monoid] = {
    "+": Monoid("+", 0, lambda a, b: a + b, np.add),
    "*": Monoid("*", 1, lambda a, b: a * b, np.multiply),
    "min": Monoid("min", float("inf"), lambda a, b: a if a <= b else b, np.minimum),
    "max": Monoid("max", float("-inf"), lambda a, b: a if a >= b else b, np.maximum),
    "&&": Monoid("&&", True, lambda a, b: bool(a) and bool(b), np.logical_and),
    "||": Monoid("||", False, lambda a, b: bool(a) or bool(b), np.logical_or),
    "++": Monoid("++", [], lambda a, b: list(a) + list(b), None),
}


def monoid(name: str) -> Monoid:
    """Look up a primitive monoid; raises :class:`SacTypeError` if unknown."""
    try:
        return MONOIDS[name]
    except KeyError:
        raise SacTypeError(
            f"unknown monoid {name!r}; known: {sorted(MONOIDS)}"
        ) from None


def is_monoid(name: str) -> bool:
    return name in MONOIDS
