"""Recursive-descent parser for the SAC comprehension DSL.

The concrete syntax follows the paper (Figure 2 plus the examples):

* generators ``((i,j),v) <- M``, lets ``let v = a*b``, guards
  ``kk == k``, and ``group by (i,j)`` / ``group by k: (gx(i,j), gy(ii,jj))``;
* reductions ``+/v``, ``*/v``, ``&&/[...]``, ``min/v``, ``max/v``, ``avg/v``;
* index ranges ``0 until n`` and ``(i-1) to (i+1)``;
* builder applications ``matrix(n,m)[ ... | ... ]``, ``vector(n)(L)``,
  ``tiled(n,m)[ ... ]``, ``rdd[ ... ]``.

Disambiguation notes:

* ``base[...]`` parses as a *comprehension argument* when the bracket
  contains a top-level ``|``, otherwise as array indexing.
* ``min``, ``max`` and ``avg`` immediately followed by ``/`` parse as
  reductions, not divisions; parenthesize ``(min)/x`` to divide by a
  variable that shadows a monoid name.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    BinOp, BuilderApp, Call, Comprehension, Expr, Field, Generator,
    GroupByQual, Guard, IfExpr, Index, LetQual, Lit, Pattern, Qualifier,
    RangeExpr, Reduce, TupleExpr, TuplePat, UnOp, Var, VarPat, WildPat,
)
from .errors import SacSyntaxError
from .lexer import Token, tokenize

#: Operator tokens that, followed by ``/``, start a reduction.
_OP_MONOIDS = {"+", "*", "&&", "||"}
#: Identifiers that, followed by ``/``, start a reduction.
_NAMED_MONOIDS = {"min", "max", "avg", "count"}

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


def parse(source: str) -> Expr:
    """Parse a complete DSL query expression."""
    parser = _Parser(source)
    expr = parser.expression()
    parser.expect_eof()
    return expr


def parse_pattern(source: str) -> Pattern:
    """Parse a standalone pattern (used in tests and tooling)."""
    parser = _Parser(source)
    pattern = parser.pattern()
    parser.expect_eof()
    return pattern


class _Parser:
    def __init__(self, source: str):
        self._source = source
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> SacSyntaxError:
        return SacSyntaxError(message, self._source, self._current.position)

    def _expect_op(self, text: str) -> Token:
        if not self._current.is_op(text):
            raise self._error(f"expected {text!r}, found {self._current.text!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._current.is_keyword(word):
            raise self._error(f"expected {word!r}, found {self._current.text!r}")
        return self._advance()

    def expect_eof(self) -> None:
        if self._current.kind != "eof":
            raise self._error(f"unexpected trailing input {self._current.text!r}")

    # -- expressions ----------------------------------------------------

    def expression(self) -> Expr:
        if self._current.is_keyword("if"):
            return self._if_expr()
        return self._or_expr()

    def _if_expr(self) -> Expr:
        self._expect_keyword("if")
        self._expect_op("(")
        cond = self.expression()
        self._expect_op(")")
        then = self.expression()
        self._expect_keyword("else")
        orelse = self.expression()
        return IfExpr(cond, then, orelse)

    def _or_expr(self) -> Expr:
        expr = self._and_expr()
        while self._current.is_op("||") and not self._peek().is_op("/"):
            self._advance()
            expr = BinOp("||", expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expr:
        expr = self._cmp_expr()
        while self._current.is_op("&&") and not self._peek().is_op("/"):
            self._advance()
            expr = BinOp("&&", expr, self._cmp_expr())
        return expr

    def _cmp_expr(self) -> Expr:
        expr = self._range_expr()
        while self._current.kind == "op" and self._current.text in _COMPARISONS:
            op = self._advance().text
            expr = BinOp(op, expr, self._range_expr())
        return expr

    def _range_expr(self) -> Expr:
        expr = self._add_expr()
        if self._current.is_keyword("until", "to"):
            inclusive = self._advance().text == "to"
            hi = self._add_expr()
            return RangeExpr(expr, hi, inclusive)
        return expr

    def _add_expr(self) -> Expr:
        expr = self._mul_expr()
        while self._current.is_op("+", "-") and not self._peek().is_op("/"):
            op = self._advance().text
            expr = BinOp(op, expr, self._mul_expr())
        return expr

    def _mul_expr(self) -> Expr:
        expr = self._unary()
        while self._current.is_op("*", "/", "%"):
            if self._current.is_op("*") and self._peek().is_op("/"):
                break  # */x is a reduction, not multiply-divide
            op = self._advance().text
            expr = BinOp(op, expr, self._unary())
        return expr

    def _unary(self) -> Expr:
        token = self._current
        if token.kind == "op" and token.text in _OP_MONOIDS and self._peek().is_op("/"):
            self._advance()  # the monoid op
            self._advance()  # '/'
            return Reduce(token.text, self._unary())
        if (
            token.kind == "ident"
            and token.text in _NAMED_MONOIDS
            and self._peek().is_op("/")
        ):
            self._advance()
            self._advance()
            return Reduce(token.text, self._unary())
        if token.is_op("-"):
            self._advance()
            return UnOp("-", self._unary())
        if token.is_op("!"):
            self._advance()
            return UnOp("!", self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            if self._current.is_op("("):
                expr = self._apply_parens(expr)
            elif self._current.is_op("["):
                expr = self._apply_bracket(expr)
            elif self._current.is_op(".") and self._peek().kind == "ident":
                self._advance()
                expr = Field(expr, self._advance().text)
            else:
                return expr

    def _apply_parens(self, base: Expr) -> Expr:
        """``f(args)`` on a variable is a call; on a call it is the second
        argument group of a builder, e.g. ``matrix(n,m)(L)``."""
        args = self._paren_args()
        if isinstance(base, Var):
            return Call(base.name, tuple(args))
        if isinstance(base, Call):
            if len(args) != 1:
                raise self._error(
                    f"builder {base.func!r} takes one association-list argument"
                )
            return BuilderApp(base.func, base.args, args[0])
        raise self._error("only named functions and builders can be applied")

    def _apply_bracket(self, base: Expr) -> Expr:
        """``base[...]``: comprehension argument if the bracket holds a
        top-level ``|``, otherwise array indexing."""
        if self._bracket_has_bar():
            source = self._comprehension()
            if isinstance(base, Var):
                return BuilderApp(base.name, (), source)
            if isinstance(base, Call):
                return BuilderApp(base.func, base.args, source)
            raise self._error("a comprehension argument needs a builder name")
        self._expect_op("[")
        indices = [self.expression()]
        while self._current.is_op(","):
            self._advance()
            indices.append(self.expression())
        self._expect_op("]")
        return Index(base, tuple(indices))

    def _bracket_has_bar(self) -> bool:
        """Look ahead from a ``[`` for a ``|`` before its matching ``]``."""
        depth = 0
        index = self._pos
        while index < len(self._tokens):
            token = self._tokens[index]
            if token.is_op("[", "("):
                depth += 1
            elif token.is_op("]", ")"):
                depth -= 1
                if depth == 0:
                    return False
            elif token.is_op("|") and depth == 1:
                return True
            elif token.kind == "eof":
                break
            index += 1
        raise self._error("unterminated '['")

    def _paren_args(self) -> list[Expr]:
        self._expect_op("(")
        args: list[Expr] = []
        if not self._current.is_op(")"):
            args.append(self.expression())
            while self._current.is_op(","):
                self._advance()
                args.append(self.expression())
        self._expect_op(")")
        return args

    def _primary(self) -> Expr:
        token = self._current
        if token.kind == "int":
            self._advance()
            return Lit(int(token.text))
        if token.kind == "float":
            self._advance()
            return Lit(float(token.text))
        if token.kind == "string":
            self._advance()
            return Lit(token.text[1:-1].replace('\\"', '"'))
        if token.is_keyword("true"):
            self._advance()
            return Lit(True)
        if token.is_keyword("false"):
            self._advance()
            return Lit(False)
        if token.is_keyword("if"):
            return self._if_expr()
        if token.kind == "ident":
            if token.text == "_":
                raise self._error("wildcard '_' is only valid in patterns")
            self._advance()
            return Var(token.text)
        if token.is_op("("):
            self._advance()
            items = [self.expression()]
            while self._current.is_op(","):
                self._advance()
                items.append(self.expression())
            self._expect_op(")")
            if len(items) == 1:
                return items[0]
            return TupleExpr(tuple(items))
        if token.is_op("["):
            return self._comprehension()
        raise self._error(f"unexpected token {token.text!r}")

    # -- comprehensions ---------------------------------------------------

    def _comprehension(self) -> Comprehension:
        self._expect_op("[")
        head = self.expression()
        self._expect_op("|")
        qualifiers: list[Qualifier] = []
        if not self._current.is_op("]"):
            qualifiers.append(self._qualifier())
            while self._current.is_op(","):
                self._advance()
                qualifiers.append(self._qualifier())
        self._expect_op("]")
        return Comprehension(head, tuple(qualifiers))

    def _qualifier(self) -> Qualifier:
        if self._current.is_keyword("let"):
            self._advance()
            pattern = self.pattern()
            self._expect_op("=")
            return LetQual(pattern, self.expression())
        if self._current.is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            saved = self._pos
            try:
                pattern = self.pattern()
                # Pattern form only if the key ends here or a ':' follows;
                # otherwise what looked like a pattern was the start of an
                # expression key (e.g. ``group by i/N``).
                if self._current.is_op(",", "]"):
                    return GroupByQual(pattern, None)
                if self._current.is_op(":"):
                    self._advance()
                    return GroupByQual(pattern, self.expression())
            except SacSyntaxError:
                pass
            self._pos = saved
            return GroupByQual(None, self.expression())
        # Generator vs guard: try a pattern and look for '<-'.
        saved = self._pos
        try:
            pattern = self.pattern()
            if self._current.is_op("<-"):
                self._advance()
                return Generator(pattern, self.expression())
        except SacSyntaxError:
            pass
        self._pos = saved
        return Guard(self.expression())

    # -- patterns ---------------------------------------------------------

    def pattern(self) -> Pattern:
        token = self._current
        if token.kind == "ident":
            self._advance()
            if token.text == "_":
                return WildPat()
            return VarPat(token.text)
        if token.is_op("("):
            self._advance()
            items = [self.pattern()]
            while self._current.is_op(","):
                self._advance()
                items.append(self.pattern())
            self._expect_op(")")
            if len(items) == 1:
                return items[0]
            return TuplePat(tuple(items))
        raise self._error(f"expected a pattern, found {token.text!r}")
