"""Tokenizer for the SAC comprehension DSL."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from .errors import SacSyntaxError

KEYWORDS = {
    "let", "group", "by", "until", "to", "if", "else", "true", "false",
    # Statement keywords used by the DIABLO-style loop front end.
    "for", "do", "end", "var", "while",
}

#: Multi-character operators first so maximal munch wins.
_OPERATORS = [
    "<-", "==", "!=", "<=", ">=", "&&", "||", "+=", "*=", ":=",
    "[", "]", "(", ")", ",", "|", "<", ">", "=",
    "+", "-", "*", "/", "%", "!", ":", ".", "_", ";",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<float>\d+\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>%s)
    """
    % "|".join(re.escape(op) for op in _OPERATORS),
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``int``, ``float``, ``string``, ``ident``,
    ``keyword``, ``op``, or ``eof``.  ``text`` is the raw lexeme and
    ``position`` its character offset in the source.
    """

    kind: str
    text: str
    position: int

    def is_op(self, *texts: str) -> bool:
        return self.kind == "op" and self.text in texts

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "keyword" and self.text in words


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`SacSyntaxError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise SacSyntaxError(
                f"unexpected character {source[position]!r}", source, position
            )
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "ident" and text in KEYWORDS:
            yield Token("keyword", text, match.start())
        elif kind == "string":
            yield Token("string", text, match.start())
        else:
            yield Token(kind, text, match.start())  # type: ignore[arg-type]
    yield Token("eof", "", length)
