"""The SAC comprehension language: syntax, semantics, and rewrites.

Pipeline order: :func:`parse` → :func:`desugar` → :func:`normalize` →
(:class:`Interpreter` for reference evaluation, or the planner for
distributed execution).
"""

from .ast import (
    BinOp, BuilderApp, Call, Comprehension, Expr, Field, FreshNames,
    Generator, GroupByQual, Guard, IfExpr, Index, LetQual, Lit, Node,
    Pattern, Qualifier, RangeExpr, Reduce, TupleExpr, TuplePat, UnOp, Var,
    VarPat, WildPat, free_vars, pattern_to_expr, pattern_vars, to_source,
    walk,
)
from .desugar import desugar
from .flatmap_form import evaluate as evaluate_flatmap_form
from .flatmap_form import render as render_flatmap_form
from .flatmap_form import to_flatmap_form
from .errors import (
    SacError, SacNameError, SacPatternError, SacPlanError, SacSyntaxError,
    SacTypeError,
)
from .interpreter import BUILTINS, Interpreter, bind_pattern, index_value
from .lexer import Token, tokenize
from .monoids import MONOIDS, Monoid, is_monoid, monoid
from .normalize import normalize
from .parser import parse, parse_pattern

__all__ = [
    "BinOp", "BuilderApp", "BUILTINS", "Call", "Comprehension", "Expr",
    "Field", "FreshNames", "Generator", "GroupByQual", "Guard", "IfExpr",
    "Index", "Interpreter", "LetQual", "Lit", "MONOIDS", "Monoid", "Node",
    "Pattern", "Qualifier", "RangeExpr", "Reduce", "SacError",
    "SacNameError", "SacPatternError", "SacPlanError", "SacSyntaxError",
    "SacTypeError", "Token", "TupleExpr", "TuplePat", "UnOp", "Var",
    "VarPat", "WildPat", "bind_pattern", "desugar", "free_vars",
    "index_value", "is_monoid", "monoid", "normalize", "parse",
    "parse_pattern", "pattern_to_expr", "pattern_vars",
    "render_flatmap_form", "to_flatmap_form", "to_source",
    "tokenize", "walk",
]
