"""Figure 3: desugaring comprehensions into flatMap chains.

The paper's Figure 3 gives the standard translation of (group-by-free)
comprehensions into monadic form::

    [ e1 | p <- e2, q ]    =  e2.flatMap(λp. [ e1 | q ])     (4)
    [ e1 | let p = e2, q ] =  let p = e2 in [ e1 | q ]       (5)
    [ e1 | e2, q ]         =  if (e2) [ e1 | q ] else Nil    (6)
    [ e | ]                =  [ e ]                          (7)

This module implements those four rules as an explicit, executable
transformation: :func:`to_flatmap_form` produces a term tree,
:func:`render` prints it in the paper's notation, and :func:`evaluate`
runs it.  It is the formal bridge between comprehensions and the
flatMap-based target language; the engine's RDD translation follows the
same shape with Rule (14) replacing nested flatMaps by joins.

Group-by comprehensions are translated by first applying Rule (11)
(see :mod:`repro.comprehension.interpreter`); this module rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from ..storage.registry import REGISTRY
from .ast import (
    Comprehension, Expr, Generator, GroupByQual, Guard, LetQual, Pattern,
    to_source,
)
from .errors import SacTypeError
from .interpreter import Interpreter, bind_pattern


@dataclass(frozen=True)
class Singleton:
    """Rule (7): ``[ e ]``."""

    head: Expr


@dataclass(frozen=True)
class FlatMap:
    """Rule (4): ``e.flatMap(λp. body)``."""

    source: Expr
    pattern: Pattern
    body: "Term"


@dataclass(frozen=True)
class LetIn:
    """Rule (5): ``let p = e in body``."""

    pattern: Pattern
    value: Expr
    body: "Term"


@dataclass(frozen=True)
class IfNil:
    """Rule (6): ``if (e) body else Nil``."""

    condition: Expr
    body: "Term"


Term = Union[Singleton, FlatMap, LetIn, IfNil]


def to_flatmap_form(comp: Comprehension) -> Term:
    """Apply Figure 3's rules (4)–(7) to a group-by-free comprehension."""
    if any(isinstance(q, GroupByQual) for q in comp.qualifiers):
        raise SacTypeError(
            "Figure 3 covers group-by-free comprehensions; apply the "
            "group-by translation (Rule 11) first"
        )
    return _desugar(comp.head, list(comp.qualifiers))


def _desugar(head: Expr, qualifiers: list) -> Term:
    if not qualifiers:
        return Singleton(head)  # Rule (7)
    qual, rest = qualifiers[0], qualifiers[1:]
    if isinstance(qual, Generator):
        return FlatMap(qual.source, qual.pattern, _desugar(head, rest))  # (4)
    if isinstance(qual, LetQual):
        return LetIn(qual.pattern, qual.expr, _desugar(head, rest))  # (5)
    if isinstance(qual, Guard):
        return IfNil(qual.expr, _desugar(head, rest))  # (6)
    raise SacTypeError(f"unexpected qualifier {type(qual).__name__}")


def render(term: Term) -> str:
    """Print a term in the paper's notation."""
    if isinstance(term, Singleton):
        return f"[ {to_source(term.head)} ]"
    if isinstance(term, FlatMap):
        return (
            f"{to_source(term.source)}.flatMap(λ{to_source(term.pattern)}. "
            f"{render(term.body)})"
        )
    if isinstance(term, LetIn):
        return (
            f"let {to_source(term.pattern)} = {to_source(term.value)} in "
            f"{render(term.body)}"
        )
    if isinstance(term, IfNil):
        return f"if ({to_source(term.condition)}) {render(term.body)} else Nil"
    raise SacTypeError(f"not a term: {term!r}")


def evaluate(term: Term, env: dict[str, Any]) -> list:
    """Run a flatMap-form term; equals the comprehension's meaning."""
    interpreter = Interpreter(env)

    def go(node: Term, scope: dict[str, Any]) -> list:
        if isinstance(node, Singleton):
            return [interpreter.evaluate(node.head, extra_env=scope)]
        if isinstance(node, FlatMap):
            source = interpreter.evaluate(node.source, extra_env=scope)
            out: list = []
            for item in _iterate(source):
                inner = dict(scope)
                bind_pattern(node.pattern, item, inner)
                out.extend(go(node.body, inner))
            return out
        if isinstance(node, LetIn):
            inner = dict(scope)
            bind_pattern(
                node.pattern,
                interpreter.evaluate(node.value, extra_env=scope),
                inner,
            )
            return go(node.body, inner)
        if isinstance(node, IfNil):
            if interpreter.evaluate(node.condition, extra_env=scope):
                return go(node.body, scope)
            return []  # Nil
        raise SacTypeError(f"not a term: {node!r}")

    return go(term, {})


def _iterate(value: Any):
    if REGISTRY.is_storage(value):
        return REGISTRY.sparsify(value)
    if isinstance(value, dict):
        return value.items()
    if hasattr(value, "collect"):
        return value.collect()
    return value
