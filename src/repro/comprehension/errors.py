"""Exceptions raised by the comprehension front-end and planner."""

from __future__ import annotations


class SacError(Exception):
    """Base class for all SAC errors."""


class SacSyntaxError(SacError):
    """Lexing or parsing failure, with source position."""

    def __init__(self, message: str, source: str = "", position: int = 0):
        self.position = position
        self.source = source
        if source:
            line = source.count("\n", 0, position) + 1
            column = position - (source.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SacNameError(SacError):
    """An unbound variable was referenced."""


class SacTypeError(SacError):
    """A value was used at the wrong type (e.g. indexing a scalar)."""


class SacPatternError(SacError):
    """A pattern failed to match a value during evaluation."""


class SacPlanError(SacError):
    """The planner could not translate a comprehension."""
