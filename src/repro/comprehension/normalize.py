"""Normalization: the paper's comprehension-calculus rewrite rules.

The passes here turn desugared comprehensions into the *flat* form the
planner pattern-matches:

* **Rule (3) unnesting** — a generator whose source is itself a
  comprehension (without group-by) is spliced inline, alpha-renaming the
  inner qualifiers to avoid capture::

      [ e1 | q1, p <- [ e2 | q3 ], q2 ]  =  [ e1 | q1, q3, let p = e2, q2 ]

* **Builder/sparsifier fusion** — traversing a freshly built array
  traverses its association list directly (``sparsify(builder(L)) = L``),
  removing the intermediate storage the paper calls "superfluous".
  Association lists are assumed to map each index at most once, as the
  paper assumes.

* **Guard conjunction splitting and pushdown** — ``e1 && e2`` becomes two
  guards, and guards move as early as their variables allow (never across
  a group-by), so joins and filters are recognized at the right position.

* **Range fusion** — ``i <- r1, j <- r2, i == j`` collapses to one
  traversal of the intersected range with ``let j = i`` (Section 2's
  index-traversal optimization).

* **Trivial let inlining and constant folding** — cleanups that make the
  generated plans readable.

``normalize`` runs all passes to a (bounded) fixpoint.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    BinOp, BuilderApp, Call, Comprehension, Expr, FreshNames, Generator,
    GroupByQual, Guard, LetQual, Lit, Node, Qualifier, RangeExpr,
    UnOp, Var, VarPat, free_vars, pattern_vars,
    rename_expr, rename_pattern,
)
from .desugar import rewrite_bottom_up

#: Builders whose ``sparsify . builder`` composition is the identity on
#: association lists (assuming unique keys), making fusion sound.
_FUSABLE_BUILDERS = {
    "vector", "matrix", "array", "coo", "coo_vector", "csr", "tiled",
    "tiled_vector", "rdd", "list",
}

_MAX_PASSES = 20


def normalize(expr: Expr, fresh: Optional[FreshNames] = None) -> Expr:
    """Run all normalization passes to a fixpoint."""
    fresh = fresh or FreshNames()
    for _round in range(_MAX_PASSES):
        before = expr
        expr = _normalize_ranges(expr)
        expr = _fuse_builders(expr)
        expr = _unnest(expr, fresh)
        expr = _split_guards(expr)
        expr = _push_guards(expr)
        expr = _fuse_ranges(expr)
        expr = _promote_ranges(expr)
        expr = _inline_trivial_lets(expr)
        expr = _fold_constants(expr)
        if expr == before:
            return expr
    return expr


# ----------------------------------------------------------------------
# Ranges
# ----------------------------------------------------------------------


def _normalize_ranges(expr: Expr) -> Expr:
    """``a to b``  →  ``a until b+1`` so later passes see one form."""

    def visit(node: Node) -> Node:
        if isinstance(node, RangeExpr) and node.inclusive:
            return RangeExpr(node.lo, BinOp("+", node.hi, Lit(1)), False)
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Builder fusion
# ----------------------------------------------------------------------


def _fuse_builders(expr: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if isinstance(node, Generator) and isinstance(node.source, BuilderApp):
            builder = node.source
            if builder.name in _FUSABLE_BUILDERS:
                return Generator(node.pattern, builder.source)
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Rule (3): unnesting
# ----------------------------------------------------------------------


def _unnest(expr: Expr, fresh: FreshNames) -> Expr:
    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        new_quals: list[Qualifier] = []
        changed = False
        for qual in node.qualifiers:
            if (
                isinstance(qual, Generator)
                and isinstance(qual.source, Comprehension)
                and not _has_group_by(qual.source)
            ):
                inner = _alpha_rename(qual.source, fresh)
                new_quals.extend(inner.qualifiers)
                new_quals.append(LetQual(qual.pattern, inner.head))
                changed = True
            else:
                new_quals.append(qual)
        if changed:
            return Comprehension(node.head, tuple(new_quals))
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _has_group_by(comp: Comprehension) -> bool:
    return any(isinstance(q, GroupByQual) for q in comp.qualifiers)


def _alpha_rename(comp: Comprehension, fresh: FreshNames) -> Comprehension:
    """Rename every variable ``comp``'s qualifiers bind to a fresh name."""
    mapping: dict[str, str] = {}
    for qual in comp.qualifiers:
        pattern = getattr(qual, "pattern", None)
        if pattern is not None:
            for name in pattern_vars(pattern):
                mapping.setdefault(name, fresh.fresh(name.split("$")[0]))
    renamed = rename_expr(
        Comprehension(comp.head, comp.qualifiers), mapping
    )
    assert isinstance(renamed, Comprehension)
    return renamed


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------


def _split_guards(expr: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        new_quals: list[Qualifier] = []
        changed = False
        for qual in node.qualifiers:
            if isinstance(qual, Guard):
                parts = _conjuncts(qual.expr)
                if len(parts) > 1:
                    changed = True
                new_quals.extend(Guard(p) for p in parts)
            else:
                new_quals.append(qual)
        if changed:
            return Comprehension(node.head, tuple(new_quals))
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinOp) and expr.op == "&&":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _push_guards(expr: Expr) -> Expr:
    """Move each guard to the earliest point its variables are bound.

    Guards never move across a group-by: lifting changes what their
    variables mean.
    """

    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        segments = _segments(node.qualifiers)
        new_quals: list[Qualifier] = []
        changed = False
        for segment, group_by in segments:
            reordered = _push_segment(segment)
            changed |= reordered != segment
            new_quals.extend(reordered)
            if group_by is not None:
                new_quals.append(group_by)
        if changed:
            return Comprehension(node.head, tuple(new_quals))
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _segments(
    qualifiers: tuple[Qualifier, ...]
) -> list[tuple[list[Qualifier], Optional[GroupByQual]]]:
    """Split qualifiers into runs separated by group-by qualifiers."""
    out: list[tuple[list[Qualifier], Optional[GroupByQual]]] = []
    current: list[Qualifier] = []
    for qual in qualifiers:
        if isinstance(qual, GroupByQual):
            out.append((current, qual))
            current = []
        else:
            current.append(qual)
    out.append((current, None))
    return out


def _push_segment(segment: list[Qualifier]) -> list[Qualifier]:
    binders: list[Qualifier] = [
        q for q in segment if not isinstance(q, Guard)
    ]
    if len(binders) == len(segment):
        return segment

    # bound_after[i] = variables available after the first i binders, and
    # for each guard the number of binders preceding it originally.
    bound_after: list[set[str]] = [set()]
    for qual in binders:
        pattern = getattr(qual, "pattern", None)
        added = set(pattern_vars(pattern)) if pattern is not None else set()
        bound_after.append(bound_after[-1] | added)
    locally_bound = bound_after[-1]

    placed: list[list[Guard]] = [[] for _ in range(len(binders) + 1)]
    binder_count = 0
    for qual in segment:
        if not isinstance(qual, Guard):
            binder_count += 1
            continue
        # Variables from outer scope are available everywhere; only the
        # locally bound ones constrain how early the guard can run.
        needed = free_vars(qual.expr) & locally_bound
        earliest = next(
            i for i, available in enumerate(bound_after) if needed <= available
        )
        # Never move a guard later than where it was written: a later
        # binder may shadow an outer variable the guard refers to.
        placed[min(earliest, binder_count)].append(qual)

    out: list[Qualifier] = []
    out.extend(placed[0])
    for index, qual in enumerate(binders):
        out.append(qual)
        out.extend(placed[index + 1])
    return out


# ----------------------------------------------------------------------
# Range fusion (Section 2)
# ----------------------------------------------------------------------


def _fuse_ranges(expr: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        result = _fuse_ranges_once(node)
        return result if result is not None else node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _fuse_ranges_once(comp: Comprehension) -> Optional[Comprehension]:
    """Fuse one ``i <- r1, j <- r2, i == j`` triple, if present."""
    range_binders: dict[str, int] = {}
    for index, qual in enumerate(comp.qualifiers):
        if (
            isinstance(qual, Generator)
            and isinstance(qual.pattern, VarPat)
            and isinstance(qual.source, RangeExpr)
        ):
            range_binders[qual.pattern.name] = index
        if isinstance(qual, GroupByQual):
            break  # only fuse within the first segment; later passes recurse

    for index, qual in enumerate(comp.qualifiers):
        if not (isinstance(qual, Guard) and _is_var_eq(qual.expr)):
            continue
        left, right = qual.expr.left.name, qual.expr.right.name  # type: ignore[union-attr]
        if left not in range_binders or right not in range_binders:
            continue
        first_idx, second_idx = sorted((range_binders[left], range_binders[right]))
        if first_idx == second_idx:
            continue
        first = comp.qualifiers[first_idx]
        second = comp.qualifiers[second_idx]
        assert isinstance(first, Generator) and isinstance(second, Generator)
        fused_range = _intersect_ranges(first.source, second.source)  # type: ignore[arg-type]
        new_quals = list(comp.qualifiers)
        new_quals[first_idx] = Generator(first.pattern, fused_range)
        new_quals[second_idx] = LetQual(
            second.pattern, Var(first.pattern.name)  # type: ignore[union-attr]
        )
        del new_quals[index]
        return Comprehension(comp.head, tuple(new_quals))
    return None


def _is_var_eq(expr: Expr) -> bool:
    return (
        isinstance(expr, BinOp)
        and expr.op == "=="
        and isinstance(expr.left, Var)
        and isinstance(expr.right, Var)
    )


def _intersect_ranges(a: RangeExpr, b: RangeExpr) -> RangeExpr:
    lo = a.lo if a.lo == b.lo else Call("max", (a.lo, b.lo))
    hi = a.hi if a.hi == b.hi else Call("min", (a.hi, b.hi))
    return RangeExpr(lo, hi, False)


# ----------------------------------------------------------------------
# Range promotion: loops become array traversals
# ----------------------------------------------------------------------


def _promote_ranges(expr: Expr) -> Expr:
    """Turn an index loop equated to an array traversal into the traversal.

    ``i <- 0 until n, ..., (k, v) <- A, ..., k == i`` scans the whole
    range and, for each index, the whole array — the nested-loop shape
    imperative programs produce (and the DIABLO front end emits).  The
    array traversal already enumerates every index once, so the range
    generator is replaced by bound guards on the traversed index::

        [ e | i <- 0 until n, (k, v) <- A, k == i ]
          =  [ e | (k, v) <- A, let i = k, i >= 0, i < n ]

    This is the conversion that makes loop-style queries compile to the
    same distributed plans as generator-style queries.
    """

    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        result = _promote_ranges_once(node)
        return result if result is not None else node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _promote_ranges_once(comp: Comprehension) -> Optional[Comprehension]:
    quals = list(comp.qualifiers)
    segment_end = next(
        (i for i, q in enumerate(quals) if isinstance(q, GroupByQual)), len(quals)
    )
    # Variables bound by association-list (non-range) generators.
    assoc_bound: dict[str, int] = {}
    range_at: dict[str, int] = {}
    for index in range(segment_end):
        qual = quals[index]
        if isinstance(qual, Generator):
            if isinstance(qual.source, RangeExpr):
                if isinstance(qual.pattern, VarPat):
                    range_at[qual.pattern.name] = index
            else:
                for name in pattern_vars(qual.pattern):
                    assoc_bound[name] = index

    for index in range(segment_end):
        qual = quals[index]
        if not (isinstance(qual, Guard) and _is_var_eq(qual.expr)):
            continue
        left, right = qual.expr.left.name, qual.expr.right.name  # type: ignore[union-attr]
        for range_var, traversal_var in ((left, right), (right, left)):
            if range_var not in range_at or traversal_var not in assoc_bound:
                continue
            range_pos = range_at[range_var]
            gen_pos = assoc_bound[traversal_var]
            range_gen = quals[range_pos]
            assoc_gen = quals[gen_pos]
            assert isinstance(range_gen, Generator) and isinstance(assoc_gen, Generator)
            source = range_gen.source
            assert isinstance(source, RangeExpr)
            # The traversal may only move up if its source depends on
            # nothing bound at or after the loop position.
            bound_before = set()
            for earlier in quals[:range_pos]:
                pattern = getattr(earlier, "pattern", None)
                if pattern is not None:
                    bound_before |= set(pattern_vars(pattern))
            locally_bound = set()
            for q in quals[:segment_end]:
                pattern = getattr(q, "pattern", None)
                if pattern is not None:
                    locally_bound |= set(pattern_vars(q.pattern))
            moved_deps = free_vars(assoc_gen.source) & (locally_bound - bound_before)
            if moved_deps:
                continue
            # Moving the traversal up must not reorder rebindings of the
            # same name (shadowing) relative to qualifiers in between.
            if gen_pos > range_pos:
                between_bound: set[str] = set()
                for q in quals[range_pos:gen_pos]:
                    pattern = getattr(q, "pattern", None)
                    if pattern is not None:
                        between_bound |= set(pattern_vars(pattern))
                if between_bound & set(pattern_vars(assoc_gen.pattern)):
                    continue
            replacement: list[Qualifier] = [
                LetQual(VarPat(range_var), Var(traversal_var)),
                Guard(BinOp(">=", Var(range_var), source.lo)),
                Guard(BinOp("<", Var(range_var), source.hi)),
            ]
            new_quals = list(quals)
            del new_quals[index]  # the equality guard
            if gen_pos < range_pos:
                new_quals[range_pos:range_pos + 1] = replacement
            else:
                # Move the traversal up to where the loop was.
                gen_index = new_quals.index(assoc_gen)
                del new_quals[gen_index]
                new_quals[range_pos:range_pos + 1] = [assoc_gen] + replacement
            return Comprehension(comp.head, tuple(new_quals))
    return None


# ----------------------------------------------------------------------
# Trivial lets
# ----------------------------------------------------------------------


def _inline_trivial_lets(expr: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        for index, qual in enumerate(node.qualifiers):
            if (
                isinstance(qual, LetQual)
                and isinstance(qual.pattern, VarPat)
                and isinstance(qual.expr, (Var, Lit))
                and not _rebound_later(node, index, qual.pattern.name)
            ):
                name = qual.pattern.name
                if isinstance(qual.expr, Var):
                    mapping = {name: qual.expr.name}
                    tail = [
                        _rename_qual(q, mapping)
                        for q in node.qualifiers[index + 1 :]
                    ]
                    head = rename_expr(node.head, mapping)
                else:
                    tail = [
                        _substitute_qual(q, name, qual.expr)
                        for q in node.qualifiers[index + 1 :]
                    ]
                    head = _substitute(node.head, name, qual.expr)
                return visit(
                    Comprehension(
                        head, node.qualifiers[:index] + tuple(tail)
                    )
                )
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _rebound_later(comp: Comprehension, index: int, name: str) -> bool:
    for qual in comp.qualifiers[index + 1 :]:
        pattern = getattr(qual, "pattern", None)
        if pattern is not None and name in pattern_vars(pattern):
            return True
    return False


def _rename_qual(qual: Qualifier, mapping: dict[str, str]) -> Qualifier:
    if isinstance(qual, Generator):
        return Generator(qual.pattern, rename_expr(qual.source, mapping))
    if isinstance(qual, LetQual):
        return LetQual(qual.pattern, rename_expr(qual.expr, mapping))
    if isinstance(qual, Guard):
        return Guard(rename_expr(qual.expr, mapping))
    if isinstance(qual, GroupByQual):
        pattern = qual.pattern
        if pattern is not None:
            pattern = rename_pattern(pattern, mapping)
        key = rename_expr(qual.key, mapping) if qual.key is not None else None
        return GroupByQual(pattern, key)
    return qual


def _substitute(expr: Expr, name: str, value: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if isinstance(node, Var) and node.name == name:
            return value
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _substitute_qual(qual: Qualifier, name: str, value: Expr) -> Qualifier:
    if isinstance(qual, Generator):
        return Generator(qual.pattern, _substitute(qual.source, name, value))
    if isinstance(qual, LetQual):
        return LetQual(qual.pattern, _substitute(qual.expr, name, value))
    if isinstance(qual, Guard):
        return Guard(_substitute(qual.expr, name, value))
    if isinstance(qual, GroupByQual) and qual.key is not None:
        return GroupByQual(qual.pattern, _substitute(qual.key, name, value))
    return qual


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _fold_constants(expr: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if (
            isinstance(node, BinOp)
            and isinstance(node.left, Lit)
            and isinstance(node.right, Lit)
            and node.op in _FOLDABLE
        ):
            return Lit(_FOLDABLE[node.op](node.left.value, node.right.value))
        if (
            isinstance(node, BinOp)
            and node.op == "/"
            and isinstance(node.left, Lit)
            and isinstance(node.right, Lit)
            and isinstance(node.left.value, int)
            and isinstance(node.right.value, int)
            and node.right.value != 0
        ):
            return Lit(node.left.value // node.right.value)
        if (
            isinstance(node, UnOp)
            and node.op == "-"
            and isinstance(node.operand, Lit)
        ):
            return Lit(-node.operand.value)  # type: ignore[operator]
        if isinstance(node, Call) and node.func in ("min", "max"):
            if len(node.args) == 2 and node.args[0] == node.args[1]:
                return node.args[0]
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]
