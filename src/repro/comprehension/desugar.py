"""Desugaring: surface conveniences rewritten into the core language.

Implements the paper's syntactic rewrites that happen *before*
normalization and planning:

1. ``group by p : e``  →  ``let p = e, group by p``            (Section 3)
2. ``group by e``      →  ``let k$ = e, group by k$`` with later
   occurrences of ``e`` replaced by ``k$``                     (used by the
   paper's builders, e.g. ``group by i/N``)
3. Array indexing ``V[e1, ..., en]`` inside a comprehension →
   add ``((k1, ..., kn), k0) <- V`` plus guards ``ki == ei`` and replace
   the indexing by ``k0``                                      (Section 2)
4. ``avg/e``  →  ``(+/e) / (count/e)`` so only combinable reductions
   survive into group-by analysis.

Rule 3 only fires for *abstract array* variables (those the session's
environment maps to storages); indexing of ordinary values — tiles inside
kernels, lifted lists — keeps its direct meaning.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Callable, Optional

from .ast import (
    BinOp, Call, Comprehension, Expr, FreshNames, Generator, GroupByQual,
    Guard, Index, LetQual, Node, Pattern, Qualifier, Reduce, TuplePat,
    Var, VarPat,
)
from .errors import SacPlanError


def desugar(
    expr: Expr,
    is_array: Optional[Callable[[str], bool]] = None,
    fresh: Optional[FreshNames] = None,
) -> Expr:
    """Apply all desugaring rules to ``expr``.

    Args:
        expr: parsed query.
        is_array: predicate deciding whether a free variable names an
            abstract array (enables the indexing rule for it).
        fresh: fresh-name supply (shared across passes for readability).
    """
    fresh = fresh or FreshNames()
    is_array = is_array or (lambda _name: False)
    expr = _rewrite_avg(expr)
    expr = _rewrite_group_by(expr, fresh)
    expr = _rewrite_indexing(expr, is_array, fresh)
    return expr


# ----------------------------------------------------------------------
# Generic bottom-up rewriting
# ----------------------------------------------------------------------


def rewrite_bottom_up(node: Node, visit: Callable[[Node], Node]) -> Node:
    """Rebuild ``node`` bottom-up, applying ``visit`` to every node."""
    kwargs = {}
    changed = False
    for f in fields(node):  # type: ignore[arg-type]
        value = getattr(node, f.name)
        if isinstance(value, Node):
            new = rewrite_bottom_up(value, visit)
            changed |= new is not value
            kwargs[f.name] = new
        elif isinstance(value, tuple) and any(isinstance(v, Node) for v in value):
            new_items = tuple(
                rewrite_bottom_up(v, visit) if isinstance(v, Node) else v
                for v in value
            )
            changed |= any(a is not b for a, b in zip(new_items, value))
            kwargs[f.name] = new_items
        else:
            kwargs[f.name] = value
    rebuilt = type(node)(**kwargs) if changed else node
    return visit(rebuilt)


# ----------------------------------------------------------------------
# avg
# ----------------------------------------------------------------------


def _rewrite_avg(expr: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if isinstance(node, Reduce) and node.monoid == "avg":
            return BinOp("/", Reduce("+", node.expr), Reduce("count", node.expr))
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# group-by forms
# ----------------------------------------------------------------------


def _rewrite_group_by(expr: Expr, fresh: FreshNames) -> Expr:
    def visit(node: Node) -> Node:
        if not isinstance(node, Comprehension):
            return node
        qualifiers: list[Qualifier] = []
        rebuilt_tail: Optional[Comprehension] = None
        for position, qual in enumerate(node.qualifiers):
            if isinstance(qual, GroupByQual) and qual.pattern is None:
                key_name = fresh.fresh("k")
                qualifiers.append(LetQual(VarPat(key_name), qual.key))
                qualifiers.append(GroupByQual(VarPat(key_name), None))
                # Replace later occurrences of the key expression.
                tail = node.qualifiers[position + 1 :]
                replaced_tail = tuple(
                    _replace_expr_in_qual(q, qual.key, Var(key_name)) for q in tail
                )
                new_head = _replace_expr(node.head, qual.key, Var(key_name))
                rebuilt_tail = Comprehension(
                    new_head, tuple(qualifiers) + replaced_tail
                )
                break
            if isinstance(qual, GroupByQual) and qual.key is not None:
                qualifiers.append(LetQual(qual.pattern, qual.key))
                qualifiers.append(GroupByQual(qual.pattern, None))
            else:
                qualifiers.append(qual)
        if rebuilt_tail is not None:
            # Recurse in case several expression-keyed group-bys exist.
            return visit(rebuilt_tail)
        return Comprehension(node.head, tuple(qualifiers))

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _replace_expr(expr: Expr, target: Expr, replacement: Expr) -> Expr:
    def visit(node: Node) -> Node:
        if isinstance(node, Expr) and node == target:
            return replacement
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _replace_expr_in_qual(qual: Qualifier, target: Expr, replacement: Expr) -> Qualifier:
    if isinstance(qual, Generator):
        return Generator(qual.pattern, _replace_expr(qual.source, target, replacement))
    if isinstance(qual, LetQual):
        return LetQual(qual.pattern, _replace_expr(qual.expr, target, replacement))
    if isinstance(qual, Guard):
        return Guard(_replace_expr(qual.expr, target, replacement))
    if isinstance(qual, GroupByQual) and qual.key is not None:
        return GroupByQual(qual.pattern, _replace_expr(qual.key, target, replacement))
    return qual


# ----------------------------------------------------------------------
# Array indexing
# ----------------------------------------------------------------------


def _rewrite_indexing(
    expr: Expr, is_array: Callable[[str], bool], fresh: FreshNames
) -> Expr:
    def visit(node: Node) -> Node:
        if isinstance(node, Comprehension):
            return _desugar_comp_indexing(node, is_array, fresh)
        return node

    return rewrite_bottom_up(expr, visit)  # type: ignore[return-value]


def _desugar_comp_indexing(
    comp: Comprehension, is_array: Callable[[str], bool], fresh: FreshNames
) -> Comprehension:
    """Apply the Section-2 indexing rule inside one comprehension."""
    bound: set[str] = set()
    new_quals: list[Qualifier] = []
    saw_group_by = False

    def eligible(index: Index) -> bool:
        return (
            isinstance(index.base, Var)
            and index.base.name not in bound
            and is_array(index.base.name)
        )

    def extract(expression: Expr) -> tuple[Expr, list[Qualifier]]:
        """Replace eligible indexings in ``expression`` by fresh vars."""
        added: list[Qualifier] = []

        def visit(node: Node) -> Node:
            if isinstance(node, Index) and eligible(node):
                if saw_group_by:
                    raise SacPlanError(
                        f"array indexing {node} after a group-by cannot be "
                        "desugared; bind it with an explicit generator "
                        "before the group-by"
                    )
                value_name = fresh.fresh("x")
                index_names = [fresh.fresh("k") for _ in node.indices]
                key_pat: Pattern
                if len(index_names) == 1:
                    key_pat = VarPat(index_names[0])
                else:
                    key_pat = TuplePat(tuple(VarPat(n) for n in index_names))
                added.append(
                    Generator(
                        TuplePat((key_pat, VarPat(value_name))), node.base
                    )
                )
                for name, idx_expr in zip(index_names, node.indices):
                    added.append(Guard(BinOp("==", Var(name), idx_expr)))
                return Var(value_name)
            return node

        return rewrite_bottom_up(expression, visit), added  # type: ignore[return-value]

    for qual in comp.qualifiers:
        if isinstance(qual, Generator):
            new_source, added = extract(qual.source)
            new_quals.extend(added)
            new_quals.append(Generator(qual.pattern, new_source))
            bound |= set(_pattern_vars(qual.pattern))
        elif isinstance(qual, LetQual):
            new_expr, added = extract(qual.expr)
            new_quals.extend(added)
            new_quals.append(LetQual(qual.pattern, new_expr))
            bound |= set(_pattern_vars(qual.pattern))
        elif isinstance(qual, Guard):
            new_expr, added = extract(qual.expr)
            new_quals.extend(added)
            new_quals.append(Guard(new_expr))
        elif isinstance(qual, GroupByQual):
            saw_group_by = True
            new_quals.append(qual)
            if qual.pattern is not None:
                bound |= set(_pattern_vars(qual.pattern))
    new_head, added = extract(comp.head)
    new_quals.extend(added)
    return Comprehension(new_head, tuple(new_quals))


def _pattern_vars(pattern: Pattern) -> list[str]:
    from .ast import pattern_vars

    return pattern_vars(pattern)
