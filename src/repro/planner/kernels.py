"""Tile-level kernels: NumPy realizations of per-block computations.

The paper's generated Scala processes each tile with parallel loops
(Scala's ``.par``).  The Python equivalent of "fast dense loops inside a
block" is a vectorized NumPy expression, so this module provides:

* :func:`compile_vectorized` — compiles a scalar DSL expression into a
  function over NumPy arrays (index grids and tile values), preserving
  the DSL's integer-division semantics.  Raises
  :class:`KernelUnsupported` for constructs with no vectorized form, in
  which case the planner falls back to slower reference evaluation.

* :func:`gather` — realigns a source tile to the output tile's local
  index grids according to the variable mapping the analysis derived
  (identity for aligned element-wise ops, a transpose for ``((j,i),v)``
  heads, a diagonal gather for ``i == j``, ...).

* :func:`contract` — the Section 5.3/5.4 per-tile-pair aggregation.  The
  multiply-add case dispatches to ``einsum`` (BLAS-backed: this *is* the
  optimal tile kernel the paper gets from its generic rules); any other
  monoid/term pair uses a broadcast-and-reduce with the monoid's ufunc.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..comprehension.ast import (
    BinOp, Call, Expr, IfExpr, Lit, TupleExpr, UnOp, Var,
)
from ..comprehension.monoids import Monoid, monoid


class KernelUnsupported(Exception):
    """The expression has no vectorized NumPy form."""


Env = dict[str, Any]
Kernel = Callable[[Env], Any]

_NP_BINOPS: dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "%": np.mod,
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "&&": np.logical_and,
    "||": np.logical_or,
}

_NP_CALLS: dict[str, Callable] = {
    "abs": np.abs,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "floor": np.floor,
    "ceil": np.ceil,
    "pow": np.power,
    "min": np.minimum,
    "max": np.maximum,
}


def _div(a: Any, b: Any) -> Any:
    """DSL division: floor division when both operands are integral."""
    a_int = isinstance(a, (int, np.integer)) or (
        isinstance(a, np.ndarray) and np.issubdtype(a.dtype, np.integer)
    )
    b_int = isinstance(b, (int, np.integer)) or (
        isinstance(b, np.ndarray) and np.issubdtype(b.dtype, np.integer)
    )
    if a_int and b_int:
        return a // b
    return a / b


def compile_vectorized(expr: Expr) -> Kernel:
    """Compile ``expr`` into a function of an array environment.

    Every free variable must be present in the environment at call time,
    bound to a scalar or a broadcastable NumPy array.
    """
    if isinstance(expr, Lit):
        value = expr.value
        return lambda _env: value
    if isinstance(expr, Var):
        name = expr.name
        return lambda env: env[name]
    if isinstance(expr, TupleExpr):
        parts = [compile_vectorized(item) for item in expr.items]
        return lambda env: tuple(part(env) for part in parts)
    if isinstance(expr, BinOp):
        left = compile_vectorized(expr.left)
        right = compile_vectorized(expr.right)
        if expr.op == "/":
            return lambda env: _div(left(env), right(env))
        try:
            op = _NP_BINOPS[expr.op]
        except KeyError:
            raise KernelUnsupported(f"operator {expr.op!r}") from None
        return lambda env: op(left(env), right(env))
    if isinstance(expr, UnOp):
        operand = compile_vectorized(expr.operand)
        if expr.op == "-":
            return lambda env: np.negative(operand(env))
        return lambda env: np.logical_not(operand(env))
    if isinstance(expr, IfExpr):
        cond = compile_vectorized(expr.cond)
        then = compile_vectorized(expr.then)
        orelse = compile_vectorized(expr.orelse)
        return lambda env: np.where(cond(env), then(env), orelse(env))
    if isinstance(expr, Call):
        try:
            fn = _NP_CALLS[expr.func]
        except KeyError:
            raise KernelUnsupported(f"function {expr.func!r}") from None
        args = [compile_vectorized(arg) for arg in expr.args]
        return lambda env: fn(*(arg(env) for arg in args))
    raise KernelUnsupported(f"expression {type(expr).__name__}")


#: Source spellings of the vectorized operator tables above.  The fused
#: per-partition codegen (:mod:`repro.planner.codegen`) renders the same
#: ufunc calls :func:`compile_vectorized` would make, so the generated
#: text evaluates bit-identically to the interpreter's closure kernels.
_NP_BINOP_SOURCE: dict[str, str] = {
    "+": "np.add",
    "-": "np.subtract",
    "*": "np.multiply",
    "%": "np.mod",
    "==": "np.equal",
    "!=": "np.not_equal",
    "<": "np.less",
    "<=": "np.less_equal",
    ">": "np.greater",
    ">=": "np.greater_equal",
    "&&": "np.logical_and",
    "||": "np.logical_or",
}

_NP_CALL_SOURCE: dict[str, str] = {
    "abs": "np.abs",
    "exp": "np.exp",
    "log": "np.log",
    "sqrt": "np.sqrt",
    "floor": "np.floor",
    "ceil": "np.ceil",
    "pow": "np.power",
    "min": "np.minimum",
    "max": "np.maximum",
}


def emit_vectorized_source(expr: Expr, names: dict[str, str]) -> str:
    """Render ``expr`` as NumPy source text over pre-bound ``names``.

    ``names`` maps each DSL variable to the Python expression that holds
    its value in the generated scope (a local identifier, or a literal
    for closed-over constants).  The rendering calls exactly the ufuncs
    :func:`compile_vectorized` dispatches to (including ``_div`` for the
    DSL's integral division), so evaluating the text reproduces the
    interpreter kernel bit for bit.  Raises :class:`KernelUnsupported`
    in precisely the cases :func:`compile_vectorized` would, plus for
    variables absent from ``names``.
    """
    if isinstance(expr, Lit):
        return repr(expr.value)
    if isinstance(expr, Var):
        try:
            return names[expr.name]
        except KeyError:
            raise KernelUnsupported(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, TupleExpr):
        parts = [emit_vectorized_source(item, names) for item in expr.items]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"
    if isinstance(expr, BinOp):
        left = emit_vectorized_source(expr.left, names)
        right = emit_vectorized_source(expr.right, names)
        if expr.op == "/":
            return f"_div({left}, {right})"
        try:
            op = _NP_BINOP_SOURCE[expr.op]
        except KeyError:
            raise KernelUnsupported(f"operator {expr.op!r}") from None
        return f"{op}({left}, {right})"
    if isinstance(expr, UnOp):
        operand = emit_vectorized_source(expr.operand, names)
        if expr.op == "-":
            return f"np.negative({operand})"
        return f"np.logical_not({operand})"
    if isinstance(expr, IfExpr):
        cond = emit_vectorized_source(expr.cond, names)
        then = emit_vectorized_source(expr.then, names)
        orelse = emit_vectorized_source(expr.orelse, names)
        return f"np.where({cond}, {then}, {orelse})"
    if isinstance(expr, Call):
        try:
            fn = _NP_CALL_SOURCE[expr.func]
        except KeyError:
            raise KernelUnsupported(f"function {expr.func!r}") from None
        args = ", ".join(emit_vectorized_source(arg, names) for arg in expr.args)
        return f"{fn}({args})"
    raise KernelUnsupported(f"expression {type(expr).__name__}")


#: Attribute memoizing compiled kernels on the (frozen, immutable) AST
#: node: iterative workloads re-plan the same normalized tree every
#: step, and a kernel depends only on the expression.
_KERNEL_MEMO = "_sac_kernel_memo"


def compile_vectorized_cached(expr: Expr) -> Kernel:
    """:func:`compile_vectorized` memoized on the node (failures too)."""
    memo = getattr(expr, _KERNEL_MEMO, None)
    if memo is None:
        try:
            memo = compile_vectorized(expr)
        except KernelUnsupported as exc:
            memo = exc
        object.__setattr__(expr, _KERNEL_MEMO, memo)
    if isinstance(memo, KernelUnsupported):
        raise memo
    return memo


# ----------------------------------------------------------------------
# Tile realignment
# ----------------------------------------------------------------------


def gather(
    tile: np.ndarray,
    axis_map: Sequence[int],
    grids: Sequence[np.ndarray],
) -> np.ndarray:
    """Realign ``tile`` so its axes follow the output's local index grids.

    ``axis_map[d]`` names the output dimension that indexes axis ``d`` of
    the tile; ``grids`` are ``np.indices(out_shape)``.  The identity map
    on a matching shape returns the tile itself (no copy).
    """
    if list(axis_map) == list(range(len(grids))) and tile.shape == tuple(
        g.shape[d] for d, g in enumerate(grids)
    ):
        if tile.ndim == len(grids):
            return tile
    index = tuple(grids[out_dim] for out_dim in axis_map)
    return tile[index]


# ----------------------------------------------------------------------
# Contractions (Sections 5.3 / 5.4)
# ----------------------------------------------------------------------


def contract(
    left: np.ndarray,
    right: np.ndarray,
    left_axes: tuple[str, ...],
    right_axes: tuple[str, ...],
    out_axes: tuple[str, ...],
    term: Optional[Expr],
    mon: Monoid,
    value_vars: tuple[str, str],
) -> np.ndarray:
    """Aggregate ``⊕/h(a, b)`` over the shared (contracted) index classes.

    ``left_axes``/``right_axes``/``out_axes`` name each tensor dimension by
    its index *class*; classes present in the inputs but not the output
    are contracted.  ``term`` is ``h`` (``None`` means plain ``a*b``).

    The canonical multiply-add case lowers to ``einsum`` — for the matrix
    multiplication comprehension this is exactly the per-tile GEMM the
    paper's translation produces.  Other (monoid, term) pairs broadcast
    both tiles over the union of classes, evaluate ``h`` vectorized, and
    reduce the contracted axes with the monoid's ufunc.
    """
    if _is_multiply_add(term, mon, value_vars):
        fast = _blas_contract(left, right, left_axes, right_axes, out_axes)
        if fast is not None:
            return fast
        subscripts = _einsum_subscripts(left_axes, right_axes, out_axes)
        return np.einsum(subscripts, left, right)

    all_axes = list(out_axes) + [
        c for c in dict.fromkeys(list(left_axes) + list(right_axes))
        if c not in out_axes
    ]
    left_b = _broadcast_to_axes(left, left_axes, all_axes)
    right_b = _broadcast_to_axes(right, right_axes, all_axes)
    if term is None:
        values = left_b * right_b
    else:
        kernel = compile_vectorized_cached(term)
        values = kernel({value_vars[0]: left_b, value_vars[1]: right_b})
    if mon.np_combine is None:
        raise KernelUnsupported(f"monoid {mon.name!r} has no ufunc")
    reduce_axes = tuple(range(len(out_axes), len(all_axes)))
    if not reduce_axes:
        return np.asarray(values)
    result = values
    for axis in sorted(reduce_axes, reverse=True):
        result = mon.np_combine.reduce(result, axis=axis)
    return result


def _blas_contract(
    left: np.ndarray,
    right: np.ndarray,
    left_axes: tuple[str, ...],
    right_axes: tuple[str, ...],
    out_axes: tuple[str, ...],
) -> Optional[np.ndarray]:
    """Dispatch common multiply-add contractions straight to BLAS.

    ``einsum`` without a precomputed path runs a C loop an order of
    magnitude slower than ``dot`` at tile sizes, so the matrix-matrix and
    matrix-vector orientations go to ``@`` with transposes.  Returns
    ``None`` for shapes this does not cover.
    """
    # Matrix x matrix with one contracted axis.
    if len(left_axes) == 2 and len(right_axes) == 2 and len(out_axes) == 2:
        shared = set(left_axes) & set(right_axes)
        if len(shared) != 1:
            return None
        k = shared.pop()
        a = left if left_axes[1] == k else left.T
        a_out = left_axes[0] if left_axes[1] == k else left_axes[1]
        b = right if right_axes[0] == k else right.T
        b_out = right_axes[1] if right_axes[0] == k else right_axes[0]
        if (a_out, b_out) == tuple(out_axes):
            return a @ b
        if (b_out, a_out) == tuple(out_axes):
            return (a @ b).T
        return None
    # Matrix x vector.
    if len(left_axes) == 2 and len(right_axes) == 1 and len(out_axes) == 1:
        (k,) = right_axes
        if k not in left_axes:
            return None
        a = left if left_axes[1] == k else left.T
        a_out = left_axes[0] if left_axes[1] == k else left_axes[1]
        return a @ right if (a_out,) == tuple(out_axes) else None
    if len(left_axes) == 1 and len(right_axes) == 2 and len(out_axes) == 1:
        (k,) = left_axes
        if k not in right_axes:
            return None
        b = right if right_axes[0] == k else right.T
        b_out = right_axes[1] if right_axes[0] == k else right_axes[0]
        return left @ b if (b_out,) == tuple(out_axes) else None
    # Vector x vector inner product.
    if len(left_axes) == 1 and len(right_axes) == 1 and len(out_axes) == 0:
        if left_axes == right_axes:
            return np.asarray(left @ right)
    return None


def _is_multiply_add(
    term: Optional[Expr], mon: Monoid, value_vars: tuple[str, str]
) -> bool:
    if mon.name != "+":
        return False
    if term is None:
        return True
    return (
        isinstance(term, BinOp)
        and term.op == "*"
        and {_var_name(term.left), _var_name(term.right)} == set(value_vars)
    )


def _var_name(expr: Expr) -> Optional[str]:
    return expr.name if isinstance(expr, Var) else None


def _einsum_subscripts(
    left_axes: tuple[str, ...],
    right_axes: tuple[str, ...],
    out_axes: tuple[str, ...],
) -> str:
    letters: dict[str, str] = {}
    alphabet = iter("abcdefghijklmnopqrstuvwxyz")
    for cls in list(left_axes) + list(right_axes) + list(out_axes):
        if cls not in letters:
            letters[cls] = next(alphabet)
    lhs = "".join(letters[c] for c in left_axes)
    rhs = "".join(letters[c] for c in right_axes)
    out = "".join(letters[c] for c in out_axes)
    return f"{lhs},{rhs}->{out}"


def _broadcast_to_axes(
    tile: np.ndarray, axes: tuple[str, ...], all_axes: list[str]
) -> np.ndarray:
    """View ``tile`` with singleton dimensions inserted for absent classes."""
    shape = []
    src_order = []
    for cls in all_axes:
        if cls in axes:
            src_order.append(axes.index(cls))
    permuted = np.transpose(tile, src_order) if src_order != list(range(tile.ndim)) else tile
    position = 0
    for cls in all_axes:
        if cls in axes:
            shape.append(permuted.shape[position])
            position += 1
        else:
            shape.append(1)
    return permuted.reshape(shape)


def reduce_axes_with(
    values: np.ndarray, mon: Monoid, axes: Sequence[int]
) -> np.ndarray:
    """Reduce ``values`` over ``axes`` with a monoid ufunc."""
    if mon.np_combine is None:
        raise KernelUnsupported(f"monoid {mon.name!r} has no ufunc")
    result = values
    for axis in sorted(axes, reverse=True):
        result = mon.np_combine.reduce(result, axis=axis)
    return result


def combine_tiles(mon: Monoid, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Pairwise tile combination — the ``⊗′`` monoid of Section 5.3."""
    if mon.np_combine is None:
        raise KernelUnsupported(f"monoid {mon.name!r} has no ufunc")
    return mon.np_combine(left, right)
