"""Local code generation: comprehensions → imperative loop programs.

Sections 2–3 of the paper translate array comprehensions into *efficient
imperative programs with memory effects*: sparsifiers inline into index
loops over the storage, builders inline into direct array writes, and a
group-by whose key is the output index becomes in-place accumulation
into a pre-allocated buffer — the paper's matrix multiplication becomes
the triple loop ``V[i, j] += A[i, k] * B[k, j]``.

This module performs that translation for the in-memory storages: it
emits a Python function whose body is exactly those loops (inspectable
via ``Plan.pseudocode``), compiles it with ``compile``/``exec``, and
runs it.  The generated code is differential-tested against the
reference interpreter; the planner uses it for local queries whenever
the comprehension fits, falling back to the interpreter otherwise.

Supported: generators over dense/COO/CSR/CSC storages, raw ndarrays,
ranges, and in-memory association lists; guards; lets; one trailing
group-by.  Aggregations accumulate into output-shaped NumPy buffers when
the group key is the builder index (the Section 3 special case, ``+``
and ``*`` reductions) and into a hash table otherwise (Equation 12).
Guards compile to structured nesting, so they are valid at any position.
"""

from __future__ import annotations

import math
from dataclasses import fields as dataclass_fields
from typing import Any, Callable, Iterator, Optional

import numpy as np

from ..comprehension.ast import (
    BinOp, BuilderApp, Call, Comprehension, Expr, Field, Generator,
    GroupByQual, Guard, IfExpr, Index, LetQual, Lit, Pattern, Qualifier,
    RangeExpr, Reduce, TupleExpr, UnOp, Var, VarPat, TuplePat, WildPat,
    free_vars, pattern_vars,
)
from ..comprehension.interpreter import _int_div as _runtime_div
from ..comprehension.monoids import monoid
from ..storage import (
    CooMatrix, CooVector, CscMatrix, CsrMatrix, DenseMatrix, DenseVector,
)
from ..storage.registry import REGISTRY, BuildContext


class CodegenUnsupported(Exception):
    """The query has no local loop-code translation; use the interpreter."""


#: Builders whose results wrap one output buffer the generated code can
#: write or accumulate into directly, with their index arity.
_BUFFER_BUILDERS = {"vector": 1, "matrix": 2, "array": 1}

_PY_BINOPS = {
    "+": "+", "-": "-", "*": "*", "%": "%",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "&&": "and", "||": "or",
}

_PY_CALLS = {"abs", "min", "max", "len", "exp", "log", "sqrt", "floor",
             "ceil", "pow"}

_ACCUM_OPS = {"+", "*"}

_COMPILED_MONOIDS = {"+", "*", "min", "max", "&&", "||"}


def compile_local(
    expr: Expr,
    env: dict[str, Any],
    build_context: Optional[BuildContext] = None,
) -> tuple[str, Callable[[], Any]]:
    """Generate and compile loop code for a local query.

    Returns ``(source, thunk)``; raises :class:`CodegenUnsupported` when
    the query is outside the supported fragment.
    """
    context = build_context or BuildContext()
    generator = _Codegen(env)
    source = generator.generate(expr)
    namespace: dict[str, Any] = {
        "np": np,
        "_div": _runtime_div,
        "_env": env,
        "_build": lambda name, args, items: REGISTRY.build(
            name, args, items, context
        ),
        "_wrap_matrix": lambda buf, n, m: DenseMatrix(int(n), int(m), buf.ravel()),
        "_wrap_vector": lambda buf, n: DenseVector(buf),
        "exp": math.exp, "log": math.log, "sqrt": math.sqrt,
        "floor": math.floor, "ceil": math.ceil,
    }
    code = compile(source, "<sac-codegen>", "exec")
    exec(code, namespace)
    return source, namespace["_query"]


class _Codegen:
    """Emits the body of one ``_query()`` function."""

    def __init__(self, env: dict[str, Any]):
        self.env = env
        self.lines: list[str] = []
        self.depth = 1
        self._temp = 0
        #: DSL names bound by patterns/lets → generated Python names.
        self.renames: dict[str, str] = {}

    # -- infrastructure -------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def fresh(self, hint: str = "t") -> str:
        self._temp += 1
        return f"_{hint}{self._temp}"

    def bind_name(self, name: str) -> str:
        self.renames[name] = name.replace("$", "_d")
        return self.renames[name]

    # -- entry point ------------------------------------------------------

    def generate(self, expr: Expr) -> str:
        if isinstance(expr, BuilderApp) and isinstance(expr.source, Comprehension):
            self._generate_builder(expr.name, expr.args, expr.source)
        elif isinstance(expr, Reduce) and isinstance(expr.expr, Comprehension):
            self._generate_total_reduce(expr.monoid, expr.expr)
        elif isinstance(expr, Comprehension):
            self._generate_list(expr)
        else:
            raise CodegenUnsupported(f"not a query form: {type(expr).__name__}")
        return "\n".join(["def _query():"] + self.lines) + "\n"

    # -- query forms ---------------------------------------------------------

    def _generate_builder(
        self, builder: str, args: tuple[Expr, ...], comp: Comprehension
    ) -> None:
        self._check_shadowing(comp)
        arg_names = []
        for arg in args:
            name = self.fresh("dim")
            self.emit(f"{name} = {self.expr(arg)}")
            arg_names.append(name)

        group_by = self._trailing_group_by(comp)
        head_key, head_value = self._split_head(comp)

        if builder in _BUFFER_BUILDERS and len(args) == _BUFFER_BUILDERS[builder]:
            if group_by is not None:
                done = self._try_buffer_group_by(
                    builder, arg_names, comp, group_by, head_key, head_value
                )
                if done:
                    return
            else:
                self._buffer_direct(builder, arg_names, comp, head_key, head_value)
                return

        items = self._collect_items(comp, group_by, head_key, head_value)
        dims = ", ".join(arg_names)
        trailing = "," if arg_names else ""
        self.depth = 1
        self.emit(f"return _build({builder!r}, ({dims}{trailing}), {items})")

    def _generate_total_reduce(self, monoid_name: str, comp: Comprehension) -> None:
        """§2's reduction builder: ``var b = 1⊕; [ b = b ⊕ v | ... ]; b``."""
        self._check_shadowing(comp)
        if self._trailing_group_by(comp) is not None:
            raise CodegenUnsupported("reduction over a group-by comprehension")
        acc = self.fresh("acc")
        if monoid_name == "count":
            self.emit(f"{acc} = 0")
            self._loops(comp.qualifiers)
            self.emit(f"{acc} = {acc} + 1")
        elif monoid_name in _COMPILED_MONOIDS:
            self.emit(f"{acc} = {_zero_literal(monoid_name)}")
            self._loops(comp.qualifiers)
            self.emit(
                f"{acc} = " + _combine_py(monoid_name, acc, self.expr(comp.head))
            )
        else:
            raise CodegenUnsupported(f"monoid {monoid_name!r}")
        self.depth = 1
        self.emit(f"return {acc}")

    def _generate_list(self, comp: Comprehension) -> None:
        self._check_shadowing(comp)
        group_by = self._trailing_group_by(comp)
        head_key, head_value = self._split_head(comp)
        items = self._collect_items(comp, group_by, head_key, head_value)
        self.depth = 1
        self.emit(f"return {items}")

    # -- group-by strategies ---------------------------------------------------

    def _try_buffer_group_by(
        self,
        builder: str,
        arg_names: list[str],
        comp: Comprehension,
        group_by: GroupByQual,
        head_key: Optional[Expr],
        head_value: Expr,
    ) -> bool:
        """§3's special case: accumulate straight into the output buffer.

        Returns False (emitting nothing) when the shape does not fit, so
        the caller can fall back to hash-table grouping.
        """
        key_vars = pattern_vars(group_by.pattern)  # type: ignore[arg-type]
        key_parts = self._key_parts(head_key)
        if [getattr(k, "name", None) for k in key_parts] != key_vars:
            return False
        if len(key_parts) != len(arg_names):
            return False
        slots = self._extract_slots(head_value)
        if any(mon not in _ACCUM_OPS for mon, _g, _n in slots):
            return False

        shape = self._shape_tuple(arg_names)
        acc_names = []
        for mon, _g, _node in slots:
            acc = self.fresh("acc")
            acc_names.append(acc)
            fill = "0.0" if mon == "+" else "1.0"
            self.emit(f"{acc} = np.full({shape}, {fill})")

        base_depth = self.depth
        self._loops(self._quals_before_group_by(comp))
        index = ", ".join(self.renames[v] for v in key_vars)
        bounds = " and ".join(
            f"0 <= {self.renames[v]} < {dim}"
            for v, dim in zip(key_vars, arg_names)
        )
        self.emit(f"if {bounds}:")
        self.depth += 1
        for acc, (mon, g_expr, _node) in zip(acc_names, slots):
            self.emit(f"{acc}[{index}] {mon}= {self.expr(g_expr)}")
        self.depth = base_depth

        by_node = {id(node): name for (_m, _g, node), name in zip(slots, acc_names)}
        residual = self._render_with_slots(head_value, by_node)
        self._emit_buffer_return(builder, arg_names, residual)
        return True

    def _buffer_direct(
        self,
        builder: str,
        arg_names: list[str],
        comp: Comprehension,
        head_key: Optional[Expr],
        head_value: Expr,
    ) -> None:
        """§2: direct writes ``V[e1, e2] = value`` with bound guards."""
        key_parts = self._key_parts(head_key)
        if len(key_parts) != len(arg_names):
            raise CodegenUnsupported("key arity differs from builder dims")
        out = self.fresh("out")
        self.emit(f"{out} = np.zeros({self._shape_tuple(arg_names)})")
        base_depth = self.depth
        self._loops(comp.qualifiers)
        key_temps = []
        for part in key_parts:
            temp = self.fresh("k")
            self.emit(f"{temp} = {self.expr(part)}")
            key_temps.append(temp)
        bounds = " and ".join(
            f"0 <= {temp} < {dim}" for temp, dim in zip(key_temps, arg_names)
        )
        self.emit(f"if {bounds}:")
        self.depth += 1
        self.emit(f"{out}[{', '.join(key_temps)}] = {self.expr(head_value)}")
        self.depth = base_depth
        self._emit_buffer_return(builder, arg_names, out)

    def _collect_items(
        self,
        comp: Comprehension,
        group_by: Optional[GroupByQual],
        head_key: Optional[Expr],
        head_value: Expr,
    ) -> str:
        """Equation (12): hash-table grouping; or a plain append loop."""
        if group_by is None:
            items = self.fresh("items")
            self.emit(f"{items} = []")
            base_depth = self.depth
            self._loops(comp.qualifiers)
            self.emit(f"{items}.append({self.expr(comp.head)})")
            self.depth = base_depth
            return items

        key_vars = pattern_vars(group_by.pattern)  # type: ignore[arg-type]
        slots = self._extract_slots(head_value)
        groups = self.fresh("groups")
        self.emit(f"{groups} = {{}}")
        base_depth = self.depth
        self._loops(self._quals_before_group_by(comp))
        key = ", ".join(self.renames[v] for v in key_vars)
        key_tuple = f"({key},)"
        values = ", ".join(self.expr(g) for _m, g, _n in slots)
        current = self.fresh("cur")
        self.emit(f"{current} = {groups}.get({key_tuple})")
        self.emit(f"if {current} is None:")
        self.depth += 1
        self.emit(f"{groups}[{key_tuple}] = [{values}]")
        self.depth -= 1
        self.emit("else:")
        self.depth += 1
        for position, (mon, g_expr, _node) in enumerate(slots):
            self.emit(
                f"{current}[{position}] = "
                + _combine_py(mon, f"{current}[{position}]", self.expr(g_expr))
            )
        self.depth = base_depth

        items = self.fresh("items")
        slot_names = [self.fresh("agg") for _ in slots]
        self.emit(f"{items} = []")
        key_binder = ", ".join(self.bind_name(v) for v in key_vars)
        slot_binder = ", ".join(slot_names)
        self.emit(f"for ({key_binder},), ({slot_binder},) in {groups}.items():")
        self.depth += 1
        by_node = {id(node): name for (_m, _g, node), name in zip(slots, slot_names)}
        residual = self._render_with_slots(head_value, by_node)
        if head_key is not None:
            self.emit(f"{items}.append(({self.expr(head_key)}, {residual}))")
        else:
            self.emit(f"{items}.append({residual})")
        self.depth = base_depth
        return items

    # -- loop emission -----------------------------------------------------------

    def _loops(self, qualifiers: tuple[Qualifier, ...]) -> None:
        """Emit nested loops/conditionals; leaves ``self.depth`` inside."""
        pins, consumed = self._plan_index_pins(qualifiers)
        for position, qual in enumerate(qualifiers):
            if isinstance(qual, Generator):
                self._loop_for(qual, pins.get(position, {}))
            elif isinstance(qual, LetQual):
                self.emit(f"{self._pattern_target(qual.pattern)} = {self.expr(qual.expr)}")
            elif isinstance(qual, Guard):
                if position in consumed:
                    continue
                self.emit(f"if {self.expr(qual.expr)}:")
                self.depth += 1
            elif isinstance(qual, GroupByQual):
                raise CodegenUnsupported("group-by must be trailing")

    def _plan_index_pins(
        self, qualifiers: tuple[Qualifier, ...]
    ) -> tuple[dict[int, dict[int, Expr]], set[int]]:
        """The paper's index merging: an equality guard between a loop
        index of a dense traversal and an expression of already-bound
        variables pins that axis (``kk = k``, ``j = i + 1``) with a
        bounds check instead of looping it.

        Returns ``{generator position: {axis: pinned expression}}`` plus
        the set of consumed guard positions.
        """
        pins: dict[int, dict[int, Expr]] = {}
        consumed: set[int] = set()
        bound: set[str] = set()
        for position, qual in enumerate(qualifiers):
            if isinstance(qual, Generator):
                axis_vars = self._dense_axis_vars(qual)
                if axis_vars is not None:
                    for axis, axis_var in enumerate(axis_vars):
                        if axis_var is None:
                            continue
                        for later in range(position + 1, len(qualifiers)):
                            if later in consumed:
                                continue
                            guard = qualifiers[later]
                            if not isinstance(guard, Guard):
                                continue
                            pinned = _pin_expression(
                                guard.expr, axis_var, bound | set(self.env)
                            )
                            if pinned is not None:
                                pins.setdefault(position, {})[axis] = pinned
                                consumed.add(later)
                                break
            pattern = getattr(qual, "pattern", None)
            if pattern is not None:
                bound |= set(pattern_vars(pattern))
        return pins, consumed

    def _dense_axis_vars(self, gen: Generator) -> Optional[list[Optional[str]]]:
        """Axis variable names of a dense-storage generator, else None."""
        if not isinstance(gen.source, Var) or gen.source.name not in self.env:
            return None
        value = self.env[gen.source.name]
        two_dim = isinstance(value, DenseMatrix) or (
            isinstance(value, np.ndarray) and value.ndim == 2
        )
        one_dim = isinstance(value, DenseVector) or (
            isinstance(value, np.ndarray) and value.ndim == 1
        )
        if not (two_dim or one_dim):
            return None
        try:
            key_pat, _value_pat = self._split_pair_pattern(gen.pattern)
        except CodegenUnsupported:
            return None
        if two_dim and isinstance(key_pat, TuplePat) and len(key_pat.items) == 2:
            return [
                item.name if isinstance(item, VarPat) else None
                for item in key_pat.items
            ]
        if one_dim and isinstance(key_pat, VarPat):
            return [key_pat.name]
        return None

    def _loop_for(self, gen: Generator, pins: dict[int, str]) -> None:
        source = gen.source
        if isinstance(source, RangeExpr):
            if not isinstance(gen.pattern, VarPat):
                raise CodegenUnsupported("range generators bind one variable")
            var = self.bind_name(gen.pattern.name)
            hi = self.expr(source.hi)
            if source.inclusive:
                hi = f"({hi}) + 1"
            self.emit(f"for {var} in range({self.expr(source.lo)}, {hi}):")
            self.depth += 1
            return
        if not isinstance(source, Var) or source.name not in self.env:
            raise CodegenUnsupported("generator sources must be bound variables")
        value = self.env[source.name]
        src = self.fresh("src")
        self.emit(f"{src} = _env[{source.name!r}]")
        if isinstance(value, list):
            target = self._pattern_target(gen.pattern)
            self.emit(f"for {target} in {src}:")
            self.depth += 1
            return
        key_pat, value_pat = self._split_pair_pattern(gen.pattern)
        self._storage_loop(src, value, key_pat, value_pat, pins)

    def _emit_axis(
        self, var: str, extent: str, pinned_to: Optional[Expr]
    ) -> None:
        """One traversal dimension: a loop, or a pinned index (§3's
        'merge the array index kk with k')."""
        if pinned_to is None:
            self.emit(f"for {var} in range({extent}):")
        else:
            self.emit(f"{var} = {self.expr(pinned_to)}")
            self.emit(f"if 0 <= {var} < {extent}:")
        self.depth += 1

    def _storage_loop(
        self, src: str, value: Any, key_pat, value_pat, pins: dict[int, str]
    ) -> None:
        """Inline the storage's sparsifier as index loops (§2)."""
        if isinstance(value, DenseMatrix):
            i, j = self._matrix_key_names(key_pat)
            buf = self.fresh("buf")
            self.emit(f"{buf} = {src}.data")
            self._emit_axis(i, f"{src}.rows", pins.get(0))
            self._emit_axis(j, f"{src}.cols", pins.get(1))
            self._bind_value(value_pat, f"{buf}[{i}, {j}]")
        elif isinstance(value, DenseVector):
            i = self._pattern_name(key_pat)
            buf = self.fresh("buf")
            self.emit(f"{buf} = {src}.data")
            self._emit_axis(i, f"{src}.length", pins.get(0))
            self._bind_value(value_pat, f"{buf}[{i}]")
        elif isinstance(value, np.ndarray) and value.ndim == 2:
            i, j = self._matrix_key_names(key_pat)
            self._emit_axis(i, f"{src}.shape[0]", pins.get(0))
            self._emit_axis(j, f"{src}.shape[1]", pins.get(1))
            self._bind_value(value_pat, f"{src}[{i}, {j}]")
        elif isinstance(value, np.ndarray) and value.ndim == 1:
            i = self._pattern_name(key_pat)
            self._emit_axis(i, f"{src}.shape[0]", pins.get(0))
            self._bind_value(value_pat, f"{src}[{i}]")
        elif isinstance(value, CooMatrix):
            i, j = self._matrix_key_names(key_pat)
            entry = self.fresh("v")
            self.emit(f"for (({i}, {j}), {entry}) in sorted({src}.entries.items()):")
            self.depth += 1
            self._bind_value(value_pat, entry)
        elif isinstance(value, CooVector):
            i = self._pattern_name(key_pat)
            entry = self.fresh("v")
            self.emit(f"for ({i}, {entry}) in sorted({src}.entries.items()):")
            self.depth += 1
            self._bind_value(value_pat, entry)
        elif isinstance(value, CsrMatrix):
            i, j = self._matrix_key_names(key_pat)
            pos = self.fresh("p")
            self.emit(f"for {i} in range({src}.rows):")
            self.depth += 1
            self.emit(f"for {pos} in range({src}.indptr[{i}], {src}.indptr[{i} + 1]):")
            self.depth += 1
            self.emit(f"{j} = int({src}.indices[{pos}])")
            self._bind_value(value_pat, f"{src}.data[{pos}]")
        elif isinstance(value, CscMatrix):
            i, j = self._matrix_key_names(key_pat)
            pos = self.fresh("p")
            self.emit(f"for {j} in range({src}.cols):")
            self.depth += 1
            self.emit(f"for {pos} in range({src}.indptr[{j}], {src}.indptr[{j} + 1]):")
            self.depth += 1
            self.emit(f"{i} = int({src}.indices[{pos}])")
            self._bind_value(value_pat, f"{src}.data[{pos}]")
        else:
            raise CodegenUnsupported(
                f"no loop code for {type(value).__name__} sources"
            )

    # -- patterns -------------------------------------------------------------

    def _split_pair_pattern(self, pattern: Pattern):
        if isinstance(pattern, TuplePat) and len(pattern.items) == 2:
            return pattern.items[0], pattern.items[1]
        raise CodegenUnsupported(f"expected a (key, value) pattern, got {pattern}")

    def _matrix_key_names(self, key_pat: Pattern) -> tuple[str, str]:
        if isinstance(key_pat, TuplePat) and len(key_pat.items) == 2:
            return (
                self._pattern_name(key_pat.items[0]),
                self._pattern_name(key_pat.items[1]),
            )
        raise CodegenUnsupported(f"matrix keys are pairs, got {key_pat}")

    def _pattern_name(self, pattern: Pattern) -> str:
        if isinstance(pattern, VarPat):
            return self.bind_name(pattern.name)
        if isinstance(pattern, WildPat):
            return self.fresh("w")
        raise CodegenUnsupported(f"expected a variable pattern, got {pattern}")

    def _pattern_target(self, pattern: Pattern) -> str:
        if isinstance(pattern, VarPat):
            return self.bind_name(pattern.name)
        if isinstance(pattern, WildPat):
            return self.fresh("w")
        if isinstance(pattern, TuplePat):
            return "(" + ", ".join(self._pattern_target(p) for p in pattern.items) + ")"
        raise CodegenUnsupported(f"unsupported pattern {pattern}")

    def _bind_value(self, value_pat, source: str) -> None:
        if value_pat is None or isinstance(value_pat, WildPat):
            return
        if isinstance(value_pat, VarPat):
            self.emit(f"{self.bind_name(value_pat.name)} = {source}")
            return
        raise CodegenUnsupported(f"value patterns must be variables: {value_pat}")

    # -- helpers -------------------------------------------------------------------

    def _shape_tuple(self, arg_names: list[str]) -> str:
        inner = ", ".join(arg_names)
        if len(arg_names) == 1:
            inner += ","
        return f"({inner})"

    def _emit_buffer_return(
        self, builder: str, arg_names: list[str], buffer: str
    ) -> None:
        self.depth = 1
        if builder == "array":
            self.emit(f"return np.asarray({buffer}).ravel()")
        elif builder == "vector":
            self.emit(f"return _wrap_vector(np.asarray({buffer}), {arg_names[0]})")
        else:
            self.emit(
                f"return _wrap_matrix(np.asarray({buffer}), "
                f"{arg_names[0]}, {arg_names[1]})"
            )

    def _check_shadowing(self, comp: Comprehension) -> None:
        bound: set[str] = set()
        for qual in comp.qualifiers:
            pattern = getattr(qual, "pattern", None)
            if pattern is not None:
                bound |= set(pattern_vars(pattern))
        if free_vars(comp) & bound:
            raise CodegenUnsupported("shadowed names; use the interpreter")

    def _trailing_group_by(self, comp: Comprehension) -> Optional[GroupByQual]:
        group_bys = [q for q in comp.qualifiers if isinstance(q, GroupByQual)]
        if not group_bys:
            return None
        if len(group_bys) > 1 or not isinstance(comp.qualifiers[-1], GroupByQual):
            raise CodegenUnsupported("only one trailing group-by is compiled")
        gb = group_bys[0]
        if gb.pattern is None or gb.key is not None:
            raise CodegenUnsupported("group-by must be desugared")
        return gb

    def _quals_before_group_by(self, comp: Comprehension) -> tuple[Qualifier, ...]:
        return tuple(q for q in comp.qualifiers if not isinstance(q, GroupByQual))

    def _split_head(self, comp: Comprehension) -> tuple[Optional[Expr], Expr]:
        head = comp.head
        if isinstance(head, TupleExpr) and len(head.items) == 2:
            return head.items[0], head.items[1]
        return None, head

    def _key_parts(self, head_key: Optional[Expr]) -> list[Expr]:
        if head_key is None:
            raise CodegenUnsupported("builder heads are (key, value) pairs")
        if isinstance(head_key, TupleExpr):
            return list(head_key.items)
        return [head_key]

    def _extract_slots(self, head_value: Expr) -> list[tuple[str, Expr, Reduce]]:
        """All ``op/e`` reductions in the head, keyed by node identity."""
        slots: list[tuple[str, Expr, Reduce]] = []

        def visit(expr: Expr) -> None:
            if isinstance(expr, Reduce):
                mon, inner = expr.monoid, expr.expr
                if mon == "count":
                    mon, inner = "+", Lit(1)
                if mon not in _COMPILED_MONOIDS:
                    raise CodegenUnsupported(f"cannot compile monoid {mon!r}")
                slots.append((mon, inner, expr))
                return
            for child in _expr_children(expr):
                visit(child)

        visit(head_value)
        if not slots:
            raise CodegenUnsupported("group-by without aggregation")
        return slots

    def _render_with_slots(self, head_value: Expr, by_node: dict[int, str]) -> str:
        def render(expr: Expr) -> str:
            name = by_node.get(id(expr))
            if name is not None:
                return name
            return self.expr(expr, render_child=render)

        return render(head_value)

    # -- expression rendering -------------------------------------------------------

    def expr(self, expr: Expr, render_child=None) -> str:
        render = render_child or (lambda e: self.expr(e, render_child))
        if isinstance(expr, Lit):
            return repr(expr.value)
        if isinstance(expr, Var):
            name = expr.name
            if name in self.renames:
                return self.renames[name]
            if name in self.env:
                return f"_env[{name!r}]"
            raise CodegenUnsupported(f"unbound variable {name!r}")
        if isinstance(expr, TupleExpr):
            inner = ", ".join(render(item) for item in expr.items)
            if len(expr.items) == 1:
                inner += ","
            return f"({inner})"
        if isinstance(expr, BinOp):
            if expr.op == "/":
                return f"_div({render(expr.left)}, {render(expr.right)})"
            op = _PY_BINOPS.get(expr.op)
            if op is None:
                raise CodegenUnsupported(f"operator {expr.op!r}")
            return f"({render(expr.left)} {op} {render(expr.right)})"
        if isinstance(expr, UnOp):
            if expr.op == "-":
                return f"(-{render(expr.operand)})"
            return f"(not {render(expr.operand)})"
        if isinstance(expr, IfExpr):
            # Children render in field order so slot substitution stays
            # aligned even if a reduction sits inside a branch.
            cond = render(expr.cond)
            then = render(expr.then)
            orelse = render(expr.orelse)
            return f"({then} if {cond} else {orelse})"
        if isinstance(expr, Call):
            if expr.func not in _PY_CALLS:
                raise CodegenUnsupported(f"function {expr.func!r}")
            args = ", ".join(render(a) for a in expr.args)
            return f"{expr.func}({args})"
        if isinstance(expr, Field):
            if expr.name == "length":
                return f"len({render(expr.base)})"
            raise CodegenUnsupported(f"field {expr.name!r}")
        if isinstance(expr, Index):
            base = render(expr.base)
            indices = ", ".join(render(i) for i in expr.indices)
            if _indexes_storage(expr, self.env, self.renames):
                return f"{base}.get({indices})"
            return f"{base}[{indices}]"
        raise CodegenUnsupported(f"expression {type(expr).__name__}")


def _combine_py(mon: str, left: str, right: str) -> str:
    if mon in ("+", "*"):
        return f"{left} {mon} {right}"
    if mon == "min":
        return f"min({left}, {right})"
    if mon == "max":
        return f"max({left}, {right})"
    if mon == "&&":
        return f"bool({left} and {right})"
    return f"bool({left} or {right})"


def _zero_literal(mon: str) -> str:
    return {
        "+": "0", "*": "1", "min": "float('inf')",
        "max": "float('-inf')", "&&": "True", "||": "False",
    }[mon]


def _pin_expression(
    guard: Expr, axis_var: str, bound: set[str]
) -> Optional[Expr]:
    """If ``guard`` equates ``axis_var`` with an expression of bound
    variables, return that expression."""
    if not (isinstance(guard, BinOp) and guard.op == "=="):
        return None
    for mine, other in ((guard.left, guard.right), (guard.right, guard.left)):
        if (
            isinstance(mine, Var)
            and mine.name == axis_var
            and free_vars(other) <= bound
        ):
            return other
    return None


def _expr_children(expr: Expr) -> Iterator[Expr]:
    for f in dataclass_fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Expr):
                    yield item


def _indexes_storage(
    expr: Index, env: dict[str, Any], renames: dict[str, str]
) -> bool:
    if isinstance(expr.base, Var) and expr.base.name not in renames:
        value = env.get(expr.base.name)
        return (
            value is not None
            and hasattr(value, "get")
            and not isinstance(value, dict)
            and not isinstance(value, np.ndarray)
        )
    return False
